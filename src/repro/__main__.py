"""Entry point for ``python -m repro``."""

import os
import sys

from repro.cli import main

try:
    code = main()
except BrokenPipeError:
    # Downstream pipe (e.g. ``| head``) closed early: silence the final
    # stdout flush at interpreter shutdown and exit like a POSIX tool.
    os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
    code = 1
raise SystemExit(code)
