"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``compare`` — run SRB / OPT / PRD side by side over one scenario and
  print the accuracy / cost / CPU table.
* ``figure``  — regenerate one of the paper's figures (7.1 … 7.6b) and
  print its series.
* ``sweep``   — sweep any scenario parameter for any scheme subset.
* ``theorem`` — check Theorem 5.1's escape-time estimate against the
  exact Monte-Carlo value for a given region and start point.
* ``stats``   — render a metrics file (``--metrics-out`` /
  ``bench_metrics.json``) as human-readable tables.
* ``events``  — read a recorded event stream (``--events-out`` /
  flight-recorder JSONL), with filters and causal-chain rendering.
* ``monitor`` — aggregate an event stream (recorded, or from a live SRB
  run) into a per-interval timeline table.
* ``diagnose`` — replay an event stream against the framework's
  invariants and report violations/anomalies (exit 1 on violations).
* ``profile`` — run the SRB scheme with the tick-phase profiler
  attached and print where the time goes: the phase-budget table, the
  top-k hotspot tables, and the cell-occupancy skew.  ``--folded-out``
  writes collapsed-stack lines (flamegraph.pl / speedscope input),
  ``--profile-out`` the JSON phase-budget report.  Works identically
  with ``--shards N`` (per-shard summaries are merged).

All simulation commands accept ``--objects/--queries/--duration/--seed``
style overrides of the laptop-scale defaults; ``compare --metrics-out
FILE`` additionally records per-phase span timings and counters
(docs/OBSERVABILITY.md describes the vocabulary) plus per-checkpoint
time series, and ``compare --events-out/--flight-recorder`` records the
structured-event stream of the SRB scheme.  ``--faults
drop=0.05,dup=0.02,delay=2 --fault-seed N`` injects deterministic
channel/probe faults into the SRB run (docs/ROBUSTNESS.md); pipe the
resulting recorder through ``diagnose`` to check the robustness
invariants.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.analysis import expected_escape_time, simulate_escape_time
from repro.experiments import figures, format_table, run_schemes, sweep
from repro.faults import FaultPlan
from repro.geometry import Point, Rect
from repro.obs import (
    EventLog,
    causal_chain,
    diagnose,
    filter_events,
    folded_lines,
    load_metrics,
    read_events,
    render_document,
    render_profile,
    timeline,
    write_json,
)
from repro.simulation import Scenario, SRBSimulation


def _add_scenario_arguments(parser: argparse.ArgumentParser) -> None:
    base = figures.BENCH_BASE
    parser.add_argument("--objects", type=int, default=base.num_objects)
    parser.add_argument("--queries", type=int, default=base.num_queries)
    parser.add_argument("--speed", type=float, default=base.mean_speed,
                        help="mean speed v-bar")
    parser.add_argument("--period", type=float, default=base.mean_period,
                        help="mean movement period t_v-bar")
    parser.add_argument("--q-len", type=float, default=base.q_len)
    parser.add_argument("--k-max", type=int, default=base.k_max)
    parser.add_argument("--grid-m", type=int, default=base.grid_m)
    parser.add_argument("--delay", type=float, default=base.delay,
                        help="one-way communication delay tau")
    parser.add_argument("--duration", type=float, default=base.duration)
    parser.add_argument("--seed", type=int, default=base.seed)
    parser.add_argument("--reachability", action="store_true",
                        help="enable the Section 6.1 enhancement")
    parser.add_argument("--steadiness", type=float, default=0.0,
                        help="Section 6.2 weighted-perimeter D parameter")
    parser.add_argument("--no-caches", action="store_true",
                        help="disable the hot-path acceleration layer "
                             "(docs/PERFORMANCE.md) to bisect perf "
                             "regressions; results are identical, only "
                             "CPU cost changes")
    parser.add_argument("--kernel-backend", default="numpy",
                        choices=("numpy", "python", "both"),
                        help="batch-geometry backend (repro.kernels); "
                             "'both' runs each backend and verifies the "
                             "reports match (compare only)")
    parser.add_argument("--kernel-min-rows", type=int, default=8,
                        metavar="N",
                        help="batch-size cutoff below which kernel "
                             "dispatches take the scalar path (>= 1; "
                             "results are identical, only CPU cost "
                             "changes)")
    parser.add_argument("--faults", default=None, metavar="SPEC",
                        help="inject channel/probe faults, e.g. "
                             "'drop=0.05,dup=0.02,delay=2,probe_timeout=0.1' "
                             "(docs/ROBUSTNESS.md); delay counts ticks of "
                             "the sample interval")
    parser.add_argument("--fault-seed", type=int, default=0,
                        help="seed for the fault-injection PRNGs "
                             "(independent of --seed)")
    parser.add_argument("--retransmit-timeout", type=float, default=None,
                        help="how long a client waits for its safe region "
                             "before resending a report (faulted runs "
                             "only; default covers the worst faulted "
                             "round trip)")
    parser.add_argument("--shards", type=int, default=0,
                        help="split the grid across this many shard "
                             "servers behind a routing coordinator "
                             "(docs/SHARDING.md); 0 = single server")
    parser.add_argument("--shard-workers", type=int, default=0,
                        help="run each shard as a multiprocessing worker "
                             "(> 0) instead of in-process (0); requires "
                             "--shards")
    parser.add_argument("--kill-shard", default=None, metavar="SHARD@TIME",
                        help="shard-failure drill: kill that shard at "
                             "that simulation time and continue in "
                             "degraded mode (requires --shards >= 2)")
    parser.add_argument("--refresh-probes", action="store_true",
                        help="exact cross-shard kNN merges: probe "
                             "boundary candidates whose held positions "
                             "may be stale before ranking (requires "
                             "--shards)")
    parser.add_argument("--reshard", default=None,
                        metavar="+@T|-S@T[,...]",
                        help="elasticity drill: '+@TIME' adds a shard, "
                             "'-SHARD@TIME' removes one, live, "
                             "comma-separated (requires --shards)")
    parser.add_argument("--rebalance", default=None, metavar="SPEC",
                        help="occupancy-driven elastic rebalancing, e.g. "
                             "'max=6,grow-imbalance=1.5,cooldown=2' "
                             "(docs/SHARDING.md; requires --shards)")


def _scenario_from(args: argparse.Namespace) -> Scenario:
    if args.faults is not None:
        try:
            FaultPlan.parse(args.faults)
        except ValueError as error:
            print(f"bad --faults spec: {error}", file=sys.stderr)
            raise SystemExit(2) from None
    try:
        return figures.BENCH_BASE.with_overrides(
            num_objects=args.objects,
            num_queries=args.queries,
            mean_speed=args.speed,
            mean_period=args.period,
            q_len=args.q_len,
            k_max=args.k_max,
            grid_m=args.grid_m,
            delay=args.delay,
            duration=args.duration,
            seed=args.seed,
            use_reachability=args.reachability,
            steadiness=args.steadiness,
            enable_caches=not args.no_caches,
            kernel_backend=(
                "numpy"
                if args.kernel_backend == "both"
                else args.kernel_backend
            ),
            kernel_min_rows=args.kernel_min_rows,
            fault_spec=args.faults,
            fault_seed=args.fault_seed,
            retransmit_timeout=args.retransmit_timeout,
            shards=args.shards,
            shard_workers=args.shard_workers,
            kill_shard=args.kill_shard,
            refresh_probes=args.refresh_probes,
            reshard=args.reshard,
            rebalance=args.rebalance,
        )
    except ValueError as error:
        print(f"bad scenario: {error}", file=sys.stderr)
        raise SystemExit(2) from None


def _result_fields(row: dict) -> dict:
    """A report row minus timing — the fields kernels must not change."""
    return {k: v for k, v in row.items() if k != "cpu_s_per_time"}


def _cmd_compare(args: argparse.Namespace) -> int:
    scenario = _scenario_from(args)
    schemes = tuple(args.schemes.split(","))
    events_log = None
    if args.events_out is not None or args.flight_recorder is not None:
        try:
            events_log = EventLog(
                capacity=args.flight_recorder_size, sink=args.events_out
            )
        except OSError as error:
            print(f"cannot open {args.events_out}: {error}", file=sys.stderr)
            return 2
    reports = run_schemes(
        scenario, schemes=schemes, metrics=args.metrics_out is not None,
        events=events_log, timeseries=args.metrics_out is not None,
    )
    print(format_table(
        [report.row() for report in reports.values()],
        title=f"scheme comparison (N={scenario.num_objects}, "
              f"W={scenario.num_queries}, tau={scenario.delay:g})",
    ))
    if args.kernel_backend == "both":
        # A/B: rerun everything on the scalar backend and require the
        # result-determined numbers to match exactly (CPU time may not).
        alt = run_schemes(
            scenario.with_overrides(kernel_backend="python"), schemes=schemes
        )
        mismatched = sorted(
            name
            for name in reports
            if _result_fields(reports[name].row())
            != _result_fields(alt[name].row())
        )
        if mismatched:
            print(
                "kernel backend mismatch (numpy vs python): "
                + ", ".join(mismatched),
                file=sys.stderr,
            )
            return 1
        print("kernel backends equivalent: numpy == python")
    if args.metrics_out is not None:
        document = {
            "schemes": {
                name: report.metrics
                for name, report in reports.items()
                if report.metrics
            },
        }
        try:
            write_json(document, args.metrics_out)
        except OSError as error:
            print(f"cannot write {args.metrics_out}: {error}", file=sys.stderr)
            return 2
        print(f"metrics written to {args.metrics_out}")
    if events_log is not None:
        events_log.close()
        if args.events_out is not None:
            print(
                f"{events_log.total_emitted} events streamed to "
                f"{args.events_out}"
            )
        if args.flight_recorder is not None:
            try:
                kept = events_log.dump(args.flight_recorder)
            except OSError as error:
                print(
                    f"cannot write {args.flight_recorder}: {error}",
                    file=sys.stderr,
                )
                return 2
            print(
                f"flight recorder: last {kept} of "
                f"{events_log.total_emitted} events written to "
                f"{args.flight_recorder}"
            )
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    try:
        document = load_metrics(args.file)
    except OSError as error:
        print(f"cannot read {args.file}: {error}", file=sys.stderr)
        return 2
    print(render_document(document))
    return 0


def _compact(value) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    if isinstance(value, (list, dict)):
        return json.dumps(value)
    return str(value)


def _format_event(event: dict) -> str:
    """One event as one scannable line (seq, time, kind, cause, fields)."""
    seq = event.get("seq", "?")
    t = event.get("t", 0.0)
    kind = event.get("kind", "?")
    cause = event.get("cause")
    cause_text = f"<-#{cause}" if cause is not None else ""
    fields = " ".join(
        f"{key}={_compact(value)}"
        for key, value in event.items()
        if key not in ("seq", "t", "kind", "cause")
    )
    return f"#{seq:<7} t={t:<10g} {kind:<18} {cause_text:<9} {fields}".rstrip()


def _cmd_events(args: argparse.Namespace) -> int:
    try:
        events = read_events(args.file)
    except (OSError, json.JSONDecodeError) as error:
        print(f"cannot read {args.file}: {error}", file=sys.stderr)
        return 2
    if args.chain is not None:
        selected = causal_chain(events, args.chain)
        if not selected:
            print(
                f"no event with seq {args.chain} in {args.file}",
                file=sys.stderr,
            )
            return 1
    else:
        selected = filter_events(
            events, kind=args.kind, oid=args.oid, query=args.query,
            t_min=args.since, t_max=args.until,
        )
    if args.limit is not None:
        selected = selected[-args.limit:]
    for event in selected:
        print(_format_event(event))
    print(f"-- {len(selected)} of {len(events)} events", file=sys.stderr)
    return 0


def _cmd_monitor(args: argparse.Namespace) -> int:
    if args.file is not None:
        try:
            events = read_events(args.file)
        except (OSError, json.JSONDecodeError) as error:
            print(f"cannot read {args.file}: {error}", file=sys.stderr)
            return 2
        source = args.file
    else:
        scenario = _scenario_from(args)
        log = EventLog(capacity=args.capacity)
        run_schemes(scenario, schemes=("SRB",), events=log)
        events = [event.to_dict() for event in log.events()]
        source = (
            f"live SRB run (N={scenario.num_objects}, "
            f"W={scenario.num_queries}, T={scenario.duration:g})"
        )
    rows = timeline(events, interval=args.interval)
    print(format_table(rows, title=f"event timeline: {source}"))
    return 0


def _cmd_diagnose(args: argparse.Namespace) -> int:
    try:
        events = read_events(args.file)
    except (OSError, json.JSONDecodeError) as error:
        print(f"cannot read {args.file}: {error}", file=sys.stderr)
        return 2
    report = diagnose(
        events,
        probe_cascade_threshold=args.probe_cascade_threshold,
        shrink_storm_threshold=args.shrink_storm_threshold,
        shrink_storm_window=args.shrink_storm_window,
        retry_storm_threshold=args.retry_storm_threshold,
        retry_storm_window=args.retry_storm_window,
        stuck_degraded_timeout=args.stuck_degraded_timeout,
        check_ground_truth=args.ground_truth,
    )
    print(report.render())
    return 0 if report.ok else 1


def _cmd_profile(args: argparse.Namespace) -> int:
    scenario = _scenario_from(args)
    simulation = SRBSimulation(
        scenario,
        profile=True,
        profile_max_ticks=args.ticks,
        profile_top_k=args.top_k,
    )
    report = simulation.run()
    summary = report.extras.get("profile") or {}
    scope = (
        f"first {args.ticks} ticks" if args.ticks is not None
        else "whole run"
    )
    deployment = (
        f"{scenario.shards} shards" if scenario.shards else "single server"
    )
    print(
        f"SRB profile: N={scenario.num_objects} W={scenario.num_queries} "
        f"T={scenario.duration:g} ({deployment}, {scope})"
    )
    print(render_profile(summary, top_k=args.top_k))
    if args.folded_out is not None:
        try:
            with open(args.folded_out, "w", encoding="utf-8") as handle:
                for line in folded_lines(summary):
                    handle.write(line + "\n")
        except OSError as error:
            print(f"cannot write {args.folded_out}: {error}", file=sys.stderr)
            return 2
        print(f"collapsed stacks written to {args.folded_out}")
    if args.profile_out is not None:
        try:
            write_json(summary, args.profile_out)
        except OSError as error:
            print(f"cannot write {args.profile_out}: {error}", file=sys.stderr)
            return 2
        print(f"profile report written to {args.profile_out}")
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    figure_fn = figures.ALL_FIGURES.get(args.id)
    if figure_fn is None:
        known = ", ".join(sorted(figures.ALL_FIGURES))
        print(f"unknown figure {args.id!r}; known: {known}", file=sys.stderr)
        return 2
    result = figure_fn(_scenario_from(args))
    print(result.table())
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    scenario = _scenario_from(args)
    values = [_parse_value(v) for v in args.values.split(",")]
    schemes = tuple(args.schemes.split(","))
    rows = []
    for value, reports in sweep(scenario, args.parameter, values, schemes):
        for name, report in reports.items():
            row = {args.parameter: value, "scheme": name}
            row.update(report.row())
            row.pop("scheme", None)
            rows.append({args.parameter: value, "scheme": name,
                         "accuracy": report.accuracy,
                         "comm_cost": report.comm_cost,
                         "cpu_s_per_time": report.cpu_seconds_per_time})
    print(format_table(rows, title=f"sweep over {args.parameter}"))
    return 0


def _cmd_theorem(args: argparse.Namespace) -> int:
    region = Rect(0.0, 0.0, args.width, args.height)
    start = Point(args.x * args.width, args.y * args.height)
    paper = expected_escape_time(region, args.speed)
    exact = simulate_escape_time(region, start, args.speed, samples=args.samples)
    print(f"region            : {args.width:g} x {args.height:g} "
          f"(perimeter {region.perimeter:g})")
    print(f"start (fractional): ({args.x:g}, {args.y:g})")
    print(f"Theorem 5.1 says  : E[T] = {paper:.6f}")
    print(f"Monte Carlo says  : E[T] = {exact:.6f}  "
          f"({100 * exact / paper:.1f}% of the paper's estimate)")
    return 0


def _parse_value(text: str):
    for cast in (int, float):
        try:
            return cast(text)
        except ValueError:
            continue
    return text


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    commands = parser.add_subparsers(dest="command", required=True)

    compare = commands.add_parser(
        "compare", help="run SRB / OPT / PRD over one scenario"
    )
    _add_scenario_arguments(compare)
    compare.add_argument(
        "--schemes", default="SRB,OPT,PRD(1),PRD(0.1)",
        help="comma-separated scheme list",
    )
    compare.add_argument(
        "--metrics-out", metavar="FILE", default=None,
        help="enable the metrics registry and write per-scheme span "
             "timings, counters, and per-checkpoint time series to FILE "
             "(render with 'repro stats')",
    )
    compare.add_argument(
        "--events-out", metavar="FILE", default=None,
        help="stream every SRB structured event to FILE as JSONL "
             "(read with 'repro events' / 'repro monitor' / "
             "'repro diagnose')",
    )
    compare.add_argument(
        "--flight-recorder", metavar="FILE", default=None,
        help="keep the last --flight-recorder-size SRB events in a ring "
             "buffer and dump them to FILE at run end",
    )
    compare.add_argument(
        "--flight-recorder-size", type=int, default=4096, metavar="N",
        help="ring-buffer capacity for --flight-recorder (default 4096)",
    )
    compare.set_defaults(handler=_cmd_compare)

    stats = commands.add_parser(
        "stats", help="render a metrics file as human-readable tables"
    )
    stats.add_argument(
        "file", help="metrics JSON (from --metrics-out or bench_metrics.json)"
    )
    stats.set_defaults(handler=_cmd_stats)

    events_cmd = commands.add_parser(
        "events", help="read a recorded event stream (JSONL)"
    )
    events_cmd.add_argument("file", help="event JSONL file")
    events_cmd.add_argument("--kind", default=None,
                            help="keep only events of this kind")
    events_cmd.add_argument("--oid", default=None,
                            help="keep only events about this object id")
    events_cmd.add_argument("--query", default=None,
                            help="keep only events about this query id")
    events_cmd.add_argument("--since", type=float, default=None,
                            metavar="T", help="keep events with t >= T")
    events_cmd.add_argument("--until", type=float, default=None,
                            metavar="T", help="keep events with t <= T")
    events_cmd.add_argument("--limit", type=int, default=None, metavar="N",
                            help="print only the last N matching events")
    events_cmd.add_argument(
        "--chain", type=int, default=None, metavar="SEQ",
        help="render the full causal chain containing event SEQ "
             "(root update through probes and result changes)",
    )
    events_cmd.set_defaults(handler=_cmd_events)

    monitor = commands.add_parser(
        "monitor",
        help="per-interval timeline of an event stream (file or live run)",
    )
    monitor.add_argument(
        "file", nargs="?", default=None,
        help="event JSONL file; omitted: run the SRB scheme live",
    )
    monitor.add_argument("--interval", type=float, default=1.0,
                         help="timeline bucket width in simulated time")
    monitor.add_argument("--capacity", type=int, default=262144,
                         help="flight-recorder capacity for live runs")
    _add_scenario_arguments(monitor)
    monitor.set_defaults(handler=_cmd_monitor)

    diagnose_cmd = commands.add_parser(
        "diagnose",
        help="check a recorded event stream against the invariants",
    )
    diagnose_cmd.add_argument("file", help="event JSONL file")
    diagnose_cmd.add_argument(
        "--probe-cascade-threshold", type=int, default=10,
        help="max probes one root event may transitively cause",
    )
    diagnose_cmd.add_argument(
        "--shrink-storm-threshold", type=int, default=25,
        help="max shrink pushes per window before flagging a storm",
    )
    diagnose_cmd.add_argument(
        "--shrink-storm-window", type=float, default=1.0,
        help="storm-detection window in simulated time",
    )
    diagnose_cmd.add_argument(
        "--retry-storm-threshold", type=int, default=30,
        help="max probe retries per window before flagging a storm",
    )
    diagnose_cmd.add_argument(
        "--retry-storm-window", type=float, default=1.0,
        help="retry-storm window in simulated time",
    )
    diagnose_cmd.add_argument(
        "--stuck-degraded-timeout", type=float, default=5.0,
        help="max time an object may stay degraded without recovery",
    )
    diagnose_cmd.add_argument(
        "--ground-truth", action="store_true",
        help="treat any checkpoint mismatch as a violation (only sound "
             "for zero-delay runs)",
    )
    diagnose_cmd.set_defaults(handler=_cmd_diagnose)

    profile_cmd = commands.add_parser(
        "profile",
        help="attribute SRB tick time to phases and hotspots",
    )
    _add_scenario_arguments(profile_cmd)
    profile_cmd.add_argument(
        "--ticks", type=int, default=None, metavar="N",
        help="sampling capture: profile only the first N server ticks "
             "(per shard in sharded mode; default: the whole run)",
    )
    profile_cmd.add_argument(
        "--top-k", type=int, default=10, metavar="K",
        help="rows per hotspot table (queries / cells / objects)",
    )
    profile_cmd.add_argument(
        "--folded-out", metavar="FILE", default=None,
        help="write collapsed-stack lines ('phase;subphase micros') "
             "for flamegraph.pl or speedscope",
    )
    profile_cmd.add_argument(
        "--profile-out", metavar="FILE", default=None,
        help="write the JSON phase-budget report (phases, hotspots, "
             "occupancy; per-shard sections under 'shards')",
    )
    profile_cmd.set_defaults(handler=_cmd_profile)

    figure = commands.add_parser(
        "figure", help="regenerate a paper figure (7.1 ... 7.6b)"
    )
    figure.add_argument("id", help="figure id, e.g. 7.1 or 7.6a")
    _add_scenario_arguments(figure)
    figure.set_defaults(handler=_cmd_figure)

    sweep_cmd = commands.add_parser(
        "sweep", help="sweep one scenario parameter"
    )
    sweep_cmd.add_argument("parameter", help="Scenario field, e.g. delay")
    sweep_cmd.add_argument("values", help="comma-separated values")
    _add_scenario_arguments(sweep_cmd)
    sweep_cmd.add_argument("--schemes", default="SRB,OPT")
    sweep_cmd.set_defaults(handler=_cmd_sweep)

    theorem = commands.add_parser(
        "theorem", help="Theorem 5.1 estimate vs exact Monte Carlo"
    )
    theorem.add_argument("--width", type=float, default=0.1)
    theorem.add_argument("--height", type=float, default=0.05)
    theorem.add_argument("--x", type=float, default=0.5,
                         help="fractional start x within the region")
    theorem.add_argument("--y", type=float, default=0.5)
    theorem.add_argument("--speed", type=float, default=0.01)
    theorem.add_argument("--samples", type=int, default=200_000)
    theorem.set_defaults(handler=_cmd_theorem)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover — exercised via __main__
    raise SystemExit(main())
