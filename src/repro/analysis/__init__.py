"""Analytical companions to the paper's theory (Theorem 5.1, Section 6.2)."""

from repro.analysis.theorem import (
    expected_escape_time,
    simulate_escape_time,
    theorem_5_1_cost,
    weighted_escape_time,
)

__all__ = [
    "expected_escape_time",
    "simulate_escape_time",
    "theorem_5_1_cost",
    "weighted_escape_time",
]
