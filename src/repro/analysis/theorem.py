"""Theorem 5.1 and the weighted-perimeter objective, made checkable.

Theorem 5.1 states: for an object at point ``p`` inside a convex safe
region ``R``, moving in a uniformly random direction at constant speed
``phi``, the amortised location-update cost is

    Cost_p = C_l * 2 * pi * phi / Perimeter(R)

equivalently, the expected time until the boundary is hit is

    E[T] = Perimeter(R) / (2 * pi * phi)

independent of where ``p`` sits.  **Reproduction finding:** the proof's
key identity, ``integral of k(theta) d theta = Perimeter(R)`` (``k`` the
ray length from ``p``), holds only for a circle about its centre.  For
the unit square's centre the integral is ``4 ln(1 + sqrt 2) ~ 3.53``, not
4; and the integral *does* depend on ``p`` (it shrinks towards the
boundary).  Empirically the perimeter formula is an upper bound on the
true expected escape time over the regions this system produces, and the
*design implication* the paper draws from it — prefer long-perimeter
regions — remains directionally sound, which is why the Ir-lp machinery
keeps perimeter as its objective.  This module provides the paper's
closed form, an exact Monte-Carlo estimator (the ground truth), and the
steady-movement variant of Section 6.2, so the gap is measurable and the
estimators usable for capacity planning.
"""

from __future__ import annotations

import math

import numpy as np

from repro.geometry.point import Point
from repro.geometry.rect import Rect


def expected_escape_time(region: Rect, speed: float) -> float:
    """Theorem 5.1's escape-time estimate, ``Perimeter(R) / (2 pi phi)``.

    This is the *paper's* closed form.  The true expected escape time
    depends on the start point and is smaller (see the module docstring);
    use :func:`simulate_escape_time` for the exact value.
    """
    if speed <= 0:
        raise ValueError("speed must be positive")
    return region.perimeter / (2.0 * math.pi * speed)


def theorem_5_1_cost(region: Rect, speed: float, c_l: float = 1.0) -> float:
    """Amortised update cost per time unit for a client in ``region``."""
    return c_l / expected_escape_time(region, speed)


def _ray_exit_lengths(region: Rect, p: Point, angles: np.ndarray) -> np.ndarray:
    """Distance from ``p`` to the boundary along each direction."""
    dx = np.cos(angles)
    dy = np.sin(angles)
    with np.errstate(divide="ignore"):
        tx = np.where(
            dx > 0,
            (region.max_x - p.x) / dx,
            np.where(dx < 0, (region.min_x - p.x) / dx, np.inf),
        )
        ty = np.where(
            dy > 0,
            (region.max_y - p.y) / dy,
            np.where(dy < 0, (region.min_y - p.y) / dy, np.inf),
        )
    return np.minimum(tx, ty)


def simulate_escape_time(
    region: Rect,
    p: Point,
    speed: float,
    samples: int = 100_000,
    seed: int = 0,
) -> float:
    """Monte-Carlo estimate of the mean escape time from ``p``.

    Draws uniformly random directions and averages the exit time — the
    empirical counterpart of Theorem 5.1's integral.  Converges to
    :func:`expected_escape_time` for every interior ``p``.
    """
    if not region.contains_point(p):
        raise ValueError("start point must lie inside the region")
    if speed <= 0:
        raise ValueError("speed must be positive")
    rng = np.random.default_rng(seed)
    angles = rng.uniform(0.0, 2.0 * math.pi, size=samples)
    lengths = _ray_exit_lengths(region, p, angles)
    return float(np.mean(lengths)) / speed


def weighted_escape_time(
    region: Rect,
    p: Point,
    p_lst: Point,
    speed: float,
    steadiness: float,
    samples: int = 100_000,
    seed: int = 0,
) -> float:
    """Expected escape time under the steady-movement density (§6.2).

    The direction density is ``(1 + D) / 2 pi`` within 90 degrees of the
    previous movement direction ``p_lst -> p`` and ``(1 - D) / 2 pi``
    behind — the distribution the weighted-perimeter objective optimises
    for.  Estimated by importance-weighted Monte Carlo.
    """
    if not 0.0 <= steadiness <= 1.0:
        raise ValueError("steadiness must be within [0, 1]")
    if speed <= 0:
        raise ValueError("speed must be positive")
    heading = math.atan2(p.y - p_lst.y, p.x - p_lst.x)
    rng = np.random.default_rng(seed)
    angles = rng.uniform(0.0, 2.0 * math.pi, size=samples)
    lengths = _ray_exit_lengths(region, p, angles)
    relative = np.mod(angles - heading + math.pi, 2.0 * math.pi) - math.pi
    weights = np.where(
        np.abs(relative) <= math.pi / 2.0,
        1.0 + steadiness,
        1.0 - steadiness,
    )
    return float(np.sum(lengths * weights) / np.sum(weights)) / speed
