"""Multi-seed aggregation for experiment results.

Single-seed series are reproducible but carry sampling noise; the paper
averages long runs instead.  This module reruns any scheme set over
several seeds and reports mean and standard deviation per metric — the
responsible way to quote a number from this harness.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.experiments.runner import SchemeName, run_schemes
from repro.simulation.scenario import Scenario

#: Metrics aggregated from each report (all are plain floats).
DEFAULT_METRICS: tuple[str, ...] = (
    "accuracy",
    "comm_cost",
    "cpu_seconds_per_time",
)


@dataclass(frozen=True, slots=True)
class MetricSummary:
    """Mean and spread of one metric over seeds."""

    mean: float
    std: float
    minimum: float
    maximum: float
    samples: int

    def __str__(self) -> str:
        return f"{self.mean:.4g} ± {self.std:.2g}"


@dataclass(slots=True)
class AggregateResult:
    """Per-scheme metric summaries over a seed set."""

    scheme: str
    seeds: tuple[int, ...]
    metrics: dict[str, MetricSummary]

    def row(self) -> dict:
        flat: dict = {"scheme": self.scheme, "seeds": len(self.seeds)}
        for name, summary in self.metrics.items():
            flat[name] = summary.mean
            flat[f"{name}_std"] = summary.std
        return flat


def summarise(values: Sequence[float]) -> MetricSummary:
    """Mean / sample std / extrema of a non-empty value list."""
    if not values:
        raise ValueError("cannot summarise an empty sample")
    n = len(values)
    mean = sum(values) / n
    if n > 1:
        variance = sum((v - mean) ** 2 for v in values) / (n - 1)
    else:
        variance = 0.0
    return MetricSummary(
        mean=mean,
        std=math.sqrt(variance),
        minimum=min(values),
        maximum=max(values),
        samples=n,
    )


def aggregate_over_seeds(
    base: Scenario,
    seeds: Iterable[int],
    schemes: Iterable[SchemeName] = ("SRB", "OPT"),
    metrics: Sequence[str] = DEFAULT_METRICS,
) -> list[AggregateResult]:
    """Run ``schemes`` for every seed and summarise each metric.

    Each seed regenerates the world (trajectories and workload), so the
    spread reflects scenario-level randomness, not measurement noise.
    """
    seeds = tuple(seeds)
    if not seeds:
        raise ValueError("need at least one seed")
    schemes = tuple(schemes)
    collected: dict[str, dict[str, list[float]]] = {
        scheme: {metric: [] for metric in metrics} for scheme in schemes
    }
    for seed in seeds:
        reports = run_schemes(base.with_overrides(seed=seed), schemes)
        for scheme, report in reports.items():
            for metric in metrics:
                collected[scheme][metric].append(
                    float(getattr(report, metric))
                )
    return [
        AggregateResult(
            scheme=scheme,
            seeds=seeds,
            metrics={
                metric: summarise(values)
                for metric, values in by_metric.items()
            },
        )
        for scheme, by_metric in collected.items()
    ]


def relative_spread(result: AggregateResult, metric: str) -> float:
    """Coefficient of variation (std / mean) of a metric; 0 for zero mean."""
    summary = result.metrics[metric]
    if summary.mean == 0:
        return 0.0
    return summary.std / abs(summary.mean)
