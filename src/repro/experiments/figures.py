"""One function per figure of the paper's evaluation (Section 7).

Table 7.1 gives the paper's defaults at testbed scale (100,000 objects,
5,000 time units, two dedicated PCs); :data:`PAPER_DEFAULTS` records them
verbatim.  :data:`BENCH_BASE` is the laptop-scale base scenario used by the
benchmark suite — densities (objects per query range, objects per grid
cell) are preserved so every reported *shape* survives the scaling; see
DESIGN.md §3 and EXPERIMENTS.md for the mapping and the measured numbers.

Every ``figure_*`` function returns a :class:`FigureResult` whose rows are
the same series the paper plots.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.experiments.reporting import format_table
from repro.experiments.runner import build_truth, sweep
from repro.simulation.engine import SRBSimulation
from repro.simulation.scenario import Scenario
from repro.workloads.generator import generate_queries

#: Table 7.1 of the paper, verbatim.
PAPER_DEFAULTS = {
    "N": 100_000,
    "W": 1_000,
    "v_mean": 0.01,
    "t_v_mean": 0.005,
    "q_len": 0.005,
    "k_max": 10,
    "t_prd": (1.0, 0.1),
    "M": 50,
    "duration": 5_000.0,
}

#: Laptop-scale base scenario for the benchmark suite (density-preserving).
BENCH_BASE = Scenario(
    num_objects=1200,
    num_queries=40,
    mean_speed=0.01,
    mean_period=0.1,
    q_len=0.045,
    k_max=3,
    grid_m=15,
    delay=0.0,
    duration=5.0,
    sample_interval=0.05,
    client_poll_interval=5e-3,
    seed=1,
)


@dataclass(slots=True)
class FigureResult:
    """Rows of one reproduced figure plus its rendering."""

    figure_id: str
    title: str
    rows: list[dict] = field(default_factory=list)

    def table(self) -> str:
        return format_table(self.rows, title=f"{self.figure_id}: {self.title}")


def _scheme_rows(results, parameter: str, metrics: Sequence[str]) -> list[dict]:
    rows = []
    for value, reports in results:
        for name, report in reports.items():
            row = {parameter: value, "scheme": name}
            for metric in metrics:
                row[metric] = getattr(report, metric)
            rows.append(row)
    return rows


def figure_7_1(base: Scenario = BENCH_BASE, delays=(0.0, 0.05, 0.1, 0.2, 0.5)) -> FigureResult:
    """Figure 7.1: impact of communication delay tau.

    (a) monitoring accuracy and (b) communication cost of SRB / OPT /
    PRD(1) / PRD(0.1) as the one-way delay grows.  Expected shape: SRB is
    100% accurate at tau = 0 and degrades slowly; PRD lives at 80-90%;
    costs are flat in tau with OPT < SRB << PRD(1) < PRD(0.1).
    """
    results = sweep(base, "delay", delays)
    rows = _scheme_rows(results, "delay", ("accuracy", "comm_cost"))
    return FigureResult("Fig 7.1", "accuracy & communication cost vs delay", rows)


def figure_7_2(base: Scenario = BENCH_BASE, query_counts=(10, 20, 40, 80)) -> FigureResult:
    """Figure 7.2: scalability with the number of queries W.

    Expected shape: SRB CPU grows sublinearly in W (grid filtering), PRD
    CPU linearly; SRB communication cost grows sublinearly and stays close
    to OPT.
    """
    results = sweep(base, "num_queries", query_counts)
    rows = _scheme_rows(
        results, "W", ("cpu_seconds_per_time", "comm_cost", "accuracy")
    )
    return FigureResult("Fig 7.2", "CPU time & communication cost vs W", rows)


def figure_7_3(base: Scenario = BENCH_BASE, object_counts=(300, 600, 1200, 2400)) -> FigureResult:
    """Figure 7.3: scalability with the number of objects N.

    Expected shape: SRB CPU sublinear in N (incrementally maintained
    R*-tree) while PRD rebuilds everything per period; SRB communication
    cost per client grows sublinearly (denser objects shrink kNN safe
    regions) and stays close to OPT.
    """
    results = sweep(base, "num_objects", object_counts)
    rows = _scheme_rows(
        results, "N", ("cpu_seconds_per_time", "comm_cost", "accuracy")
    )
    return FigureResult("Fig 7.3", "CPU time & communication cost vs N", rows)


def figure_7_4a(base: Scenario = BENCH_BASE, speeds=(0.01, 0.02, 0.05, 0.1, 0.2)) -> FigureResult:
    """Figure 7.4(a): SRB communication cost vs average speed v-bar.

    Expected shape: cost per client-time grows with speed; cost per
    *distance unit travelled* flattens towards a constant — geometric
    boundary crossings depend on path length, not on how fast it is
    traversed.  (At bench scale a speed-independent component — contention
    knots rate-capped by the client polling interval — makes the
    per-distance curve fall towards that plateau instead of being exactly
    flat; see EXPERIMENTS.md.)
    """
    rows = []
    for value, reports in sweep(base, "mean_speed", speeds, schemes=("SRB",)):
        report = reports["SRB"]
        rows.append(
            {
                "v_mean": value,
                "comm_cost": report.comm_cost,
                "comm_cost_per_distance": report.comm_cost_per_distance,
            }
        )
    return FigureResult("Fig 7.4a", "communication cost vs average speed", rows)


def figure_7_4b(base: Scenario = BENCH_BASE, periods=(0.05, 0.1, 0.2, 0.5, 1.0)) -> FigureResult:
    """Figure 7.4(b): SRB communication cost vs movement period t_v-bar.

    Expected shape: essentially flat — SRB is robust to how often objects
    change direction.
    """
    rows = []
    for value, reports in sweep(base, "mean_period", periods, schemes=("SRB",)):
        report = reports["SRB"]
        rows.append({"t_v_mean": value, "comm_cost": report.comm_cost})
    return FigureResult("Fig 7.4b", "communication cost vs movement period", rows)


def figure_7_5(base: Scenario = BENCH_BASE, grid_sizes=(5, 10, 15, 30, 60, 150)) -> FigureResult:
    """Figure 7.5: SRB performance vs grid partitioning M.

    Expected shape: the cost curve has two regimes.  With very coarse
    grids every query overlapping an object's huge cell is "relevant" and
    must be dodged, shrinking safe regions (the paper notes the regions
    "are determined more by the relevant queries than by the grid cell");
    with very fine grids the cell itself caps the regions and cost rises
    sharply (the paper's M = 50 -> 100 jump).  CPU time falls with M
    (fewer relevant queries per safe-region computation).  At the paper's
    density only the rising branch is visible; at bench density the full
    U-shape appears.  EXPERIMENTS.md discusses the mapping.
    """
    rows = []
    for value, reports in sweep(base, "grid_m", grid_sizes, schemes=("SRB",)):
        report = reports["SRB"]
        rows.append(
            {
                "M": value,
                "comm_cost": report.comm_cost,
                "cpu_seconds_per_time": report.cpu_seconds_per_time,
            }
        )
    return FigureResult("Fig 7.5", "communication cost & CPU time vs M", rows)


def figure_7_6a(base: Scenario = BENCH_BASE, query_counts=(10, 20, 40, 80)) -> FigureResult:
    """Figure 7.6(a): the reachability-circle enhancement vs W.

    Two variants are reported per W.  Under the *paper's* semantics (the
    reachability circle resolves decisions but tightened regions are not
    installed) the enhancement cuts communication cost by the paper's
    20-40% — at a monitoring-accuracy cost the paper never reports,
    because a decision made on a constrained region can go stale the
    moment the object outruns it.  The *exact* variant installs and
    pushes every decisive tightening (0.5 per downlink push), keeping
    accuracy intact; its net savings are smaller and fade as W grows.
    EXPERIMENTS.md discusses this reproduction finding in detail.
    """
    rows = []
    for w in query_counts:
        plain = base.with_overrides(num_queries=w, use_reachability=False)
        exact = plain.with_overrides(use_reachability=True)
        paper = exact.with_overrides(reachability_pushes=False)
        truth = build_truth(plain)
        report_plain = _run_srb(plain, truth)
        report_exact = _run_srb(exact, truth)
        report_paper = _run_srb(paper, truth)
        rows.append(
            {
                "W": w,
                "comm_cost_srb": report_plain.comm_cost,
                "comm_reach_exact": report_exact.comm_cost,
                "improve_exact_pct": _improvement(report_plain, report_exact),
                "comm_reach_paper": report_paper.comm_cost,
                "improve_paper_pct": _improvement(report_plain, report_paper),
                "acc_srb": report_plain.accuracy,
                "acc_exact": report_exact.accuracy,
                "acc_paper": report_paper.accuracy,
            }
        )
    return FigureResult("Fig 7.6a", "reachability-circle enhancement vs W", rows)


def figure_7_6b(
    base: Scenario = BENCH_BASE,
    periods=(0.05, 0.1, 0.2, 0.5, 1.0),
    steadiness: float = 0.5,
) -> FigureResult:
    """Figure 7.6(b): the weighted-perimeter enhancement vs t_v-bar (D=0.5).

    Expected shape: slightly harmful when direction changes constantly
    (tiny periods), 5-15% cheaper once movement is steady.
    """
    rows = []
    for period in periods:
        plain = base.with_overrides(mean_period=period, steadiness=0.0)
        enhanced = plain.with_overrides(steadiness=steadiness)
        truth = build_truth(plain)
        report_plain = _run_srb(plain, truth)
        report_enhanced = _run_srb(enhanced, truth)
        improvement = _improvement(report_plain, report_enhanced)
        rows.append(
            {
                "t_v_mean": period,
                "comm_cost_srb": report_plain.comm_cost,
                "comm_cost_weighted": report_enhanced.comm_cost,
                "improvement_pct": improvement,
            }
        )
    return FigureResult("Fig 7.6b", "weighted-perimeter enhancement vs t_v", rows)


def _run_srb(scenario: Scenario, truth):
    fresh = generate_queries(scenario.workload(), seed=scenario.seed)
    return SRBSimulation(scenario, queries=fresh, truth=truth).run()


def _improvement(plain, enhanced) -> float:
    if plain.comm_cost == 0:
        return 0.0
    return 100.0 * (plain.comm_cost - enhanced.comm_cost) / plain.comm_cost


ALL_FIGURES = {
    "7.1": figure_7_1,
    "7.2": figure_7_2,
    "7.3": figure_7_3,
    "7.4a": figure_7_4a,
    "7.4b": figure_7_4b,
    "7.5": figure_7_5,
    "7.6a": figure_7_6a,
    "7.6b": figure_7_6b,
}
