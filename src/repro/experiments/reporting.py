"""Plain-text tables for experiment output (the repo's "figures")."""

from __future__ import annotations

from typing import Iterable, Mapping


def format_table(rows: Iterable[Mapping], title: str | None = None) -> str:
    """Render dict rows as an aligned ASCII table (insertion-ordered keys)."""
    rows = [dict(row) for row in rows]
    if not rows:
        return f"{title}\n(no data)" if title else "(no data)"
    columns: list[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    rendered = [
        {column: _fmt(row.get(column, "")) for column in columns}
        for row in rows
    ]
    widths = {
        column: max(len(column), *(len(row[column]) for row in rendered))
        for column in columns
    }
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(column.ljust(widths[column]) for column in columns)
    lines.append(header)
    lines.append("-+-".join("-" * widths[column] for column in columns))
    for row in rendered:
        lines.append(
            " | ".join(row[column].ljust(widths[column]) for column in columns)
        )
    return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.5g}"
    return str(value)
