"""Reproduction harness for every figure of the paper's Section 7."""

from repro.experiments import figures
from repro.experiments.reporting import format_table
from repro.experiments.runner import SchemeName, run_schemes, sweep

__all__ = ["SchemeName", "run_schemes", "sweep", "format_table", "figures"]
