"""Run the monitoring schemes side by side over a shared scenario.

All schemes of one scenario share the same trajectories and the same
(memoised) ground-truth result series, so their accuracy numbers are
comparable and the exact evaluation work is paid once.  Every scheme that
mutates query state (SRB) receives a freshly generated — but, thanks to
deterministic seeding, parameter-identical — copy of the workload.
"""

from __future__ import annotations

from typing import Iterable, Literal

from repro.baselines.optimal import optimal_report
from repro.baselines.periodic import PRDSimulation
from repro.baselines.qindex import QIndexSimulation
from repro.kernels import Kernels
from repro.mobility.waypoint import RandomWaypointModel
from repro.obs import MetricsRegistry, TimeSeriesSampler
from repro.simulation.engine import SRBSimulation
from repro.simulation.metrics import SchemeReport
from repro.simulation.scenario import Scenario
from repro.simulation.truth import GroundTruth
from repro.workloads.generator import generate_queries

SchemeName = Literal["SRB", "OPT", "PRD(1)", "PRD(0.1)", "QIDX(0.1)"]

DEFAULT_SCHEMES: tuple[SchemeName, ...] = ("SRB", "OPT", "PRD(1)", "PRD(0.1)")


def build_truth(scenario: Scenario) -> GroundTruth:
    """Trajectories + workload + memoised exact results for a scenario."""
    model = RandomWaypointModel(
        scenario.mean_speed,
        scenario.mean_period,
        scenario.space,
        seed=scenario.seed,
    )
    trajectories = {
        oid: model.create(oid) for oid in range(scenario.num_objects)
    }
    queries = generate_queries(scenario.workload(), seed=scenario.seed)
    return GroundTruth(
        trajectories, queries,
        kernels=Kernels(
            scenario.kernel_backend, min_rows=scenario.kernel_min_rows
        ),
    )


def run_schemes(
    scenario: Scenario,
    schemes: Iterable[SchemeName] = DEFAULT_SCHEMES,
    truth: GroundTruth | None = None,
    metrics: bool = False,
    events=None,
    timeseries: bool = False,
) -> dict[str, SchemeReport]:
    """Run the requested schemes over one scenario; reports keyed by name.

    With ``metrics=True`` every simulated scheme gets its own fresh
    :class:`~repro.obs.MetricsRegistry`, and its snapshot lands on
    ``SchemeReport.metrics`` (OPT replays recorded truth and has no
    instrumented server, so its snapshot stays empty).

    ``events`` (an :class:`~repro.obs.EventLog`) and ``timeseries``
    instrument the **SRB scheme only** — the baselines replay recorded
    truth or batch-reevaluate without a :class:`DatabaseServer`, so they
    have no event stream to record.  ``timeseries=True`` implies a
    metrics registry for SRB (the sampler reads counters) and attaches
    per-checkpoint series to its report snapshot.
    """
    if truth is None:
        truth = build_truth(scenario)
    def registry() -> MetricsRegistry | None:
        return MetricsRegistry() if metrics else None

    reports: dict[str, SchemeReport] = {}
    for scheme in schemes:
        if scheme == "SRB":
            fresh = generate_queries(scenario.workload(), seed=scenario.seed)
            srb_registry = registry()
            sampler = None
            if timeseries:
                if srb_registry is None:
                    srb_registry = MetricsRegistry()
                sampler = TimeSeriesSampler(srb_registry)
            reports[scheme] = SRBSimulation(
                scenario, queries=fresh, truth=truth, metrics=srb_registry,
                events=events, sampler=sampler,
            ).run()
        elif scheme == "OPT":
            reports[scheme] = optimal_report(scenario, truth=truth)
        elif scheme.startswith("PRD(") and scheme.endswith(")"):
            t_prd = float(scheme[4:-1])
            fresh = generate_queries(scenario.workload(), seed=scenario.seed)
            reports[scheme] = PRDSimulation(
                scenario, t_prd, queries=fresh, truth=truth,
                metrics=registry(),
            ).run()
        elif scheme.startswith("QIDX(") and scheme.endswith(")"):
            t_prd = float(scheme[5:-1])
            fresh = generate_queries(scenario.workload(), seed=scenario.seed)
            reports[scheme] = QIndexSimulation(
                scenario, t_prd, queries=fresh, truth=truth,
                metrics=registry(),
            ).run()
        else:
            raise ValueError(f"unknown scheme: {scheme!r}")
    return reports


def sweep(
    base: Scenario,
    parameter: str,
    values: Iterable,
    schemes: Iterable[SchemeName] = DEFAULT_SCHEMES,
) -> list[tuple[object, dict[str, SchemeReport]]]:
    """Run all schemes across a one-parameter sweep.

    Scenarios differing only in ``delay`` share trajectories and truth;
    any other parameter changes the world, so truth is rebuilt per value.
    """
    results = []
    shared_truth = build_truth(base) if parameter == "delay" else None
    for value in values:
        scenario = base.with_overrides(**{parameter: value})
        truth = shared_truth if parameter == "delay" else None
        results.append((value, run_schemes(scenario, schemes, truth=truth)))
    return results
