"""ASCII rendering of the monitored world — a debugging lens.

Renders objects, safe regions, and query quarantine areas into a
character grid.  Invaluable when debugging safe-region geometry: a single
frame shows which query pinches which object.

::

    from repro.viz import render_world
    print(render_world(server, width=60))

Legend: ``.`` empty, ``o`` object, ``#`` safe-region boundary, ``R``
range-query rectangle, ``K`` kNN quarantine circle, ``*`` overlaps.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Mapping

from repro.core.queries import KNNQuery, Query, RangeQuery
from repro.geometry.point import Point
from repro.geometry.rect import Rect

ObjectId = Hashable

#: Painting order: later layers overwrite earlier ones.
_EMPTY = "."
_REGION = "#"
_RANGE = "R"
_KNN = "K"
_OBJECT = "o"
_OVERLAP = "*"


class AsciiCanvas:
    """A character grid over a rectangular world."""

    def __init__(self, space: Rect, width: int = 72, height: int | None = None):
        if width < 2:
            raise ValueError("width must be at least 2")
        self.space = space
        self.width = width
        if height is None:
            # Terminal cells are ~2x taller than wide; keep aspect ratio.
            height = max(2, round(width * space.height / space.width / 2))
        self.height = height
        self._grid = [[_EMPTY] * width for _ in range(height)]

    # ------------------------------------------------------------------
    def _to_cell(self, p: Point) -> tuple[int, int]:
        cx = (p.x - self.space.min_x) / self.space.width
        cy = (p.y - self.space.min_y) / self.space.height
        col = min(int(cx * self.width), self.width - 1)
        row = min(int((1.0 - cy) * self.height), self.height - 1)
        return max(row, 0), max(col, 0)

    def _paint(self, row: int, col: int, char: str) -> None:
        current = self._grid[row][col]
        if current in (_EMPTY, char):
            self._grid[row][col] = char
        else:
            self._grid[row][col] = _OVERLAP

    def point(self, p: Point, char: str = _OBJECT) -> None:
        row, col = self._to_cell(p)
        self._paint(row, col, char)

    def rect_outline(self, rect: Rect, char: str = _REGION) -> None:
        clipped = rect.intersection(self.space)
        if clipped is None:
            return
        top_left = self._to_cell(Point(clipped.min_x, clipped.max_y))
        bottom_right = self._to_cell(Point(clipped.max_x, clipped.min_y))
        r0, c0 = top_left
        r1, c1 = bottom_right
        for col in range(c0, c1 + 1):
            self._paint(r0, col, char)
            self._paint(r1, col, char)
        for row in range(r0, r1 + 1):
            self._paint(row, c0, char)
            self._paint(row, c1, char)

    def circle_outline(self, center: Point, radius: float, char: str = _KNN) -> None:
        if radius <= 0:
            self.point(center, char)
            return
        steps = max(16, int(2 * 3.14159 * radius / self.space.width * self.width * 2))
        import math
        for i in range(steps):
            angle = 2 * math.pi * i / steps
            p = Point(
                center.x + radius * math.cos(angle),
                center.y + radius * math.sin(angle),
            )
            if self.space.contains_point(p):
                row, col = self._to_cell(p)
                self._paint(row, col, char)

    def render(self) -> str:
        return "\n".join("".join(row) for row in self._grid)


def render_world(
    server,
    width: int = 72,
    show_regions: bool = True,
    show_queries: bool = True,
    objects: Iterable[ObjectId] | None = None,
) -> str:
    """Render a :class:`~repro.core.server.DatabaseServer`'s current view.

    ``objects`` restricts which safe regions are drawn (all by default —
    busy worlds are more readable with a handful).
    """
    canvas = AsciiCanvas(server.config.space, width=width)
    if show_queries:
        for query in sorted(server.queries(), key=lambda q: q.query_id):
            _draw_query(canvas, query)
    ids = list(objects) if objects is not None else None
    for oid, region in server.object_index.all_entries():
        if ids is not None and oid not in ids:
            continue
        if show_regions:
            canvas.rect_outline(region, _REGION)
    for oid, region in server.object_index.all_entries():
        if ids is not None and oid not in ids:
            continue
        canvas.point(server._objects[oid].p_lst, _OBJECT)
    return canvas.render()


def render_positions(
    positions: Mapping[ObjectId, Point],
    queries: Iterable[Query] = (),
    space: Rect | None = None,
    width: int = 72,
) -> str:
    """Render raw positions and queries without a server."""
    canvas = AsciiCanvas(space or Rect(0.0, 0.0, 1.0, 1.0), width=width)
    for query in queries:
        _draw_query(canvas, query)
    for p in positions.values():
        canvas.point(p, _OBJECT)
    return canvas.render()


def _draw_query(canvas: AsciiCanvas, query: Query) -> None:
    if isinstance(query, RangeQuery):
        canvas.rect_outline(query.rect, _RANGE)
    elif isinstance(query, KNNQuery):
        canvas.circle_outline(query.center, query.radius, _KNN)
        canvas.point(query.center, _KNN)
    else:
        # Extension types: draw the quarantine bounding box.
        canvas.rect_outline(query.quarantine_bounding_rect(), _KNN)
