"""Deterministic fault injection for the client–server protocol.

The paper's protocol (Algorithm 1, Section 3) assumes a perfectly
reliable channel: every exit report arrives exactly once, in order, and
every server probe answers instantly.  This module makes the opposite
assumption testable: a :class:`FaultPlan` describes an unreliable world
— reports dropped, duplicated, or delayed; probes timing out or
answering with stale positions — and :class:`FaultyChannel` applies it
deterministically, so any faulted run is reproducible from its seed.

Two layers consume this module:

* the simulator (:mod:`repro.simulation.engine`) routes both protocol
  directions and the probe channel through :class:`FaultyChannel`
  instances (``Scenario.fault_spec`` / ``repro compare --faults``);
* the server (:mod:`repro.core.server`) understands
  :class:`ProbeTimeout` — a probe attempt that will never answer — and
  responds with bounded retry, exponential backoff, and degraded mode
  (docs/ROBUSTNESS.md).

Determinism contract: each channel owns one PRNG seeded from
``(plan.seed, channel name)`` and consumes it once per message (or probe
attempt) in send order.  The event-driven simulator processes events in
a deterministic order, so the whole faulted run replays bit-identically
for a fixed ``(scenario seed, fault seed)`` pair.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, fields, replace


class ProbeTimeout(Exception):
    """A server-initiated probe attempt that will never answer.

    Raised by the position oracle (the probe channel) to signal one
    timed-out attempt; the server retries with exponential backoff up to
    ``ServerConfig.probe_retries`` times before degrading the object.
    """


@dataclass(frozen=True, slots=True)
class FaultPlan:
    """Declarative description of an unreliable deployment.

    Message faults (both protocol directions, applied per message):

    * ``drop`` — probability a message is lost in transit.
    * ``dup`` — probability a message is delivered twice (the duplicate
      gets its own independent delay).
    * ``delay`` — maximum extra delivery delay, in whole ticks; each
      delivered copy is delayed by a uniform integer in ``[0, delay]``
      ticks, which also reorders messages relative to each other.

    Probe faults (the server-initiated probe channel, per attempt):

    * ``probe_timeout`` — probability one probe attempt times out
      (:class:`ProbeTimeout`); retries draw fresh outcomes.
    * ``probe_stale`` — probability a probe answers with the position
      ``stale_age`` ticks in the past instead of the current one.

    The tick length is the consumer's choice; the simulator uses the
    scenario's ``sample_interval``.  ``seed`` fixes every random
    decision (see the module docstring's determinism contract).
    """

    drop: float = 0.0
    dup: float = 0.0
    delay: int = 0
    probe_timeout: float = 0.0
    probe_stale: float = 0.0
    stale_age: int = 1
    seed: int = 0

    def __post_init__(self) -> None:
        for name in ("drop", "dup", "probe_timeout", "probe_stale"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be a probability, got {value!r}")
        if self.drop >= 1.0:
            raise ValueError("drop=1 would sever the channel entirely")
        if self.delay < 0 or self.delay != int(self.delay):
            raise ValueError(f"delay must be a whole tick count: {self.delay!r}")
        if self.stale_age < 0:
            raise ValueError(f"stale_age must be non-negative: {self.stale_age!r}")

    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, spec: str, seed: int = 0) -> "FaultPlan":
        """Build a plan from a ``key=value,key=value`` CLI spec.

        Example: ``drop=0.05,dup=0.02,delay=2,probe_timeout=0.1``.
        Unknown keys raise ``ValueError`` listing the vocabulary.
        """
        known = {f.name for f in fields(cls)} - {"seed"}
        values: dict = {"seed": seed}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            key, sep, raw = part.partition("=")
            key = key.strip()
            if not sep or key not in known:
                raise ValueError(
                    f"unknown fault key {key!r}; known: {', '.join(sorted(known))}"
                )
            raw = raw.strip()
            values[key] = (
                int(raw) if key in ("delay", "stale_age") else float(raw)
            )
        return cls(**values)

    def describe(self) -> str:
        """The plan as a round-trippable ``key=value`` spec string."""
        parts = []
        for f in fields(self):
            if f.name == "seed":
                continue
            value = getattr(self, f.name)
            if value != f.default:
                parts.append(f"{f.name}={value:g}")
        return ",".join(parts) or "none"

    @property
    def message_faults(self) -> bool:
        """True when the plan perturbs the message channels at all."""
        return self.drop > 0.0 or self.dup > 0.0 or self.delay > 0

    @property
    def probe_faults(self) -> bool:
        return self.probe_timeout > 0.0 or self.probe_stale > 0.0

    def with_seed(self, seed: int) -> "FaultPlan":
        return replace(self, seed=seed)

    def channel(self, name: str) -> "FaultyChannel":
        """An independent deterministic channel named ``name``."""
        return FaultyChannel(self, name)


class FaultyChannel:
    """One direction of an unreliable channel, deterministically seeded.

    Each call to :meth:`deliveries` consumes the channel's PRNG once per
    decision and describes the fate of the *next* message; each call to
    :meth:`probe_outcome` the fate of the next probe attempt.  Counters
    (``sent`` / ``dropped`` / ``duplicated`` / ``delayed``) make fault
    realisations inspectable in tests and reports.
    """

    __slots__ = ("plan", "name", "sent", "dropped", "duplicated",
                 "delayed", "_rng")

    def __init__(self, plan: FaultPlan, name: str) -> None:
        self.plan = plan
        self.name = name
        self.sent = 0
        self.dropped = 0
        self.duplicated = 0
        self.delayed = 0
        # random.Random seeds strings via their bytes (not hash()), so
        # the stream is stable across processes and interpreter runs.
        self._rng = random.Random(f"faults:{plan.seed}:{name}")

    def deliveries(self) -> list[int]:
        """Tick delays of each delivered copy of the next message.

        ``[]`` means the message was dropped; two entries mean it was
        duplicated.  ``[0]`` is a clean, undelayed delivery.
        """
        plan = self.plan
        rng = self._rng
        self.sent += 1
        if plan.drop and rng.random() < plan.drop:
            self.dropped += 1
            return []
        copies = [rng.randint(0, plan.delay) if plan.delay else 0]
        if plan.dup and rng.random() < plan.dup:
            self.duplicated += 1
            copies.append(rng.randint(0, plan.delay) if plan.delay else 1)
        if any(copies):
            self.delayed += 1
        return copies

    def probe_outcome(self) -> str:
        """Fate of the next probe attempt: ``ok`` | ``timeout`` | ``stale``."""
        plan = self.plan
        self.sent += 1
        roll = self._rng.random()
        if plan.probe_timeout and roll < plan.probe_timeout:
            self.dropped += 1
            return "timeout"
        if plan.probe_stale and roll < plan.probe_timeout + plan.probe_stale:
            self.delayed += 1
            return "stale"
        return "ok"
