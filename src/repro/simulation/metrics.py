"""Cost accounting and per-scheme reports (Section 7.1 metrics).

The uplink is twice as costly as the downlink: a source-initiated update
costs ``C_l = 1``; a server-initiated probe-plus-update costs
``C_p = 1.5`` (0.5 downlink request + 1 uplink response).  Safe-region
shrink pushes introduced by the reachability enhancement are downlink-only
messages, costing 0.5.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: The single source of truth for message weights (Section 7.1).  Every
#: scheme — SRB, the baselines, and any future one — must derive weighted
#: totals from these constants via :class:`CommunicationCosts`; never
#: hard-code the arithmetic (tests/test_costs_consistency.py enforces it).
C_UPDATE = 1.0
C_PROBE = 1.5
C_PUSH = 0.5


def weighted_message_cost(updates: int, probes: int, pushes: int) -> float:
    """The weighted wireless total for raw message counts."""
    return C_UPDATE * updates + C_PROBE * probes + C_PUSH * pushes


@dataclass(slots=True)
class CommunicationCosts:
    """Message counters and their weighted total."""

    updates: int = 0
    probes: int = 0
    pushes: int = 0

    @classmethod
    def from_server_stats(cls, stats, updates: int) -> "CommunicationCosts":
        """Combine client-side update counts with the server's probe and
        push counters (``repro.core.server.ServerStats``)."""
        return cls(
            updates=updates,
            probes=stats.probes,
            pushes=stats.safe_region_pushes,
        )

    @property
    def total(self) -> float:
        return weighted_message_cost(self.updates, self.probes, self.pushes)

    def per_client_per_time(self, num_objects: int, duration: float) -> float:
        """The paper's wireless-communication-cost metric."""
        return self.total / (num_objects * duration)


@dataclass(slots=True)
class AccuracyAccumulator:
    """Mean of the per-query exact-match indicator over checkpoints."""

    matches: int = 0
    comparisons: int = 0

    def record(self, matched: bool) -> None:
        self.comparisons += 1
        if matched:
            self.matches += 1

    @property
    def value(self) -> float:
        if self.comparisons == 0:
            return 1.0
        return self.matches / self.comparisons


@dataclass(slots=True)
class SchemeReport:
    """Everything one simulated scheme reports for one scenario."""

    scheme: str
    num_objects: int
    num_queries: int
    duration: float
    accuracy: float
    costs: CommunicationCosts
    cpu_seconds: float
    #: Total distance travelled by all objects (for cost-per-distance).
    total_distance: float = 0.0
    extras: dict = field(default_factory=dict)
    #: Observability snapshot (``MetricsRegistry.to_dict()``) when the
    #: run was executed with metrics enabled; empty otherwise.
    metrics: dict = field(default_factory=dict)

    @property
    def comm_cost(self) -> float:
        """Communication cost per client per time unit."""
        return self.costs.per_client_per_time(self.num_objects, self.duration)

    @property
    def comm_cost_per_distance(self) -> float:
        """Communication cost per distance unit travelled (Figure 7.4a)."""
        if self.total_distance == 0.0:
            return 0.0
        return self.costs.total / self.total_distance

    @property
    def cpu_seconds_per_time(self) -> float:
        """Server CPU seconds per simulated time unit (scalability metric)."""
        return self.cpu_seconds / self.duration

    def row(self) -> dict:
        """Flat dictionary for tabular reporting."""
        return {
            "scheme": self.scheme,
            "N": self.num_objects,
            "W": self.num_queries,
            "accuracy": round(self.accuracy, 4),
            "comm_cost": round(self.comm_cost, 5),
            "cpu_s_per_time": round(self.cpu_seconds_per_time, 5),
            "updates": self.costs.updates,
            "probes": self.costs.probes,
            "pushes": self.costs.pushes,
            **self.extras,
        }
