"""Discrete event simulation of the monitoring system (Section 7).

* :class:`~repro.simulation.scenario.Scenario` — one experiment's
  parameters (Table 7.1, scaled to laptop size by default).
* :class:`~repro.simulation.truth.GroundTruth` — exact sampled query
  results, the yardstick for accuracy and the OPT baseline.
* :class:`~repro.simulation.engine.SRBSimulation` — the event-driven
  safe-region scheme with communication delay.
* :mod:`~repro.simulation.metrics` — cost accounting and reports.
"""

from repro.simulation.engine import SRBSimulation
from repro.simulation.metrics import CommunicationCosts, SchemeReport
from repro.simulation.scenario import Scenario
from repro.simulation.truth import GroundTruth

__all__ = [
    "Scenario",
    "GroundTruth",
    "CommunicationCosts",
    "SchemeReport",
    "SRBSimulation",
]
