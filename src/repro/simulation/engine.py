"""Event-driven simulation of the SRB scheme (Section 7).

The simulator is exact: safe-region exits are computed analytically from
the piecewise-linear trajectories, so location updates fire at the precise
boundary-crossing instants — there is no polling and no time step.  The
one-way propagation delay ``tau`` applies to both directions: the server
receives an update ``tau`` after the client sends it, and the client
installs its new safe region ``tau`` after the server computes it.

Event kinds, in processing priority at equal timestamps:

1. ``exit``           — a client crosses its safe-region boundary (sends).
2. ``recv_update``    — the server receives a source-initiated update.
3. ``recv_region``    — a client installs a safe region from the server.
4. ``sample``         — an accuracy checkpoint is taken.
5. ``client_timeout`` — a client gives up waiting for its safe region
   and retransmits its report (fault injection only).

With ``Scenario.fault_spec`` set, both protocol directions and the
probe channel run through :class:`repro.faults.FaultyChannel`: reports
and regions can be dropped, duplicated, or delayed whole ticks of
``sample_interval`` (which reorders them), and probes can time out
(:class:`repro.faults.ProbeTimeout`, handled by the server's retry +
degraded-mode machinery) or answer stale.  Clients arm a retransmit
timer per report so a lost message in either direction cannot silence
an object forever (docs/ROBUSTNESS.md).
"""

from __future__ import annotations

import heapq
import itertools
import math

from repro.core.queries import Query
from repro.core.server import DatabaseServer, ServerConfig
from repro.faults import ProbeTimeout
from repro.kernels import Kernels
from repro.mobility.client import MobileClient
from repro.mobility.waypoint import RandomWaypointModel
from repro.obs import NULL_EVENT_LOG, NULL_REGISTRY, Tracer
from repro.simulation.metrics import (
    AccuracyAccumulator,
    CommunicationCosts,
    SchemeReport,
)
from repro.simulation.scenario import Scenario
from repro.simulation.truth import GroundTruth
from repro.workloads.generator import generate_queries

_PRIO_EXIT = 0
_PRIO_RECV_UPDATE = 1
_PRIO_RECV_REGION = 2
_PRIO_SAMPLE = 3
_PRIO_TIMEOUT = 4




class SRBSimulation:
    """One run of the safe-region-based monitoring scheme."""

    def __init__(
        self,
        scenario: Scenario,
        queries: list[Query] | None = None,
        truth: GroundTruth | None = None,
        metrics=None,
        events=None,
        sampler=None,
        profile: bool = False,
        profile_max_ticks: int | None = None,
        profile_top_k: int = 10,
    ) -> None:
        self.scenario = scenario
        self.metrics = NULL_REGISTRY if metrics is None else metrics
        #: Structured-event stream threaded into the server (flight
        #: recorder); the shared no-op unless a recorder is attached.
        self.events = NULL_EVENT_LOG if events is None else events
        #: Optional :class:`~repro.obs.TimeSeriesSampler` resolved at
        #: every accuracy checkpoint; its series land on the report's
        #: metrics snapshot under ``"timeseries"``.
        self.sampler = sampler
        self._trace = Tracer(self.metrics)
        if truth is not None:
            if queries is None:
                queries = truth.queries
            self.queries = queries
            self.truth = truth
            self.clients = {
                oid: MobileClient(oid, trajectory)
                for oid, trajectory in truth.trajectories().items()
            }
        else:
            model = RandomWaypointModel(
                scenario.mean_speed,
                scenario.mean_period,
                scenario.space,
                seed=scenario.seed,
            )
            self.clients = {
                oid: MobileClient(oid, model.create(oid))
                for oid in range(scenario.num_objects)
            }
            if queries is None:
                queries = generate_queries(
                    scenario.workload(), seed=scenario.seed
                )
            self.queries = queries
            self.truth = GroundTruth(
                {oid: client.trajectory for oid, client in self.clients.items()},
                queries,
                kernels=Kernels(
                    scenario.kernel_backend,
                    min_rows=scenario.kernel_min_rows,
                ),
            )
        #: Fault injection (docs/ROBUSTNESS.md).  ``None`` reproduces the
        #: paper's perfectly reliable channel bit-for-bit; otherwise both
        #: protocol directions and the probe channel are independently
        #: seeded :class:`~repro.faults.FaultyChannel` instances, and
        #: ``delay`` in the plan counts ticks of ``sample_interval``.
        self.faults = scenario.fault_plan()
        self._fault_tick = scenario.sample_interval
        if self.faults is not None and self.faults.message_faults:
            self._up = self.faults.channel("uplink")
            self._down = self.faults.channel("downlink")
        else:
            self._up = self._down = None
        self._probe_channel = (
            self.faults.channel("probe")
            if self.faults is not None and self.faults.probe_faults
            else None
        )
        if self._up is not None:
            # Worst faulted round trip: both propagation legs plus the
            # maximum injected lag, padded a tick so a maximally delayed
            # region still beats the timer.
            self._retransmit_timeout = (
                scenario.retransmit_timeout
                if scenario.retransmit_timeout is not None
                else 2.0 * scenario.delay
                + (self.faults.delay + 2) * self._fault_tick
            )
        else:
            self._retransmit_timeout = None
        faulted = self.faults is not None
        server_config = ServerConfig(
                grid_m=scenario.grid_m,
                space=scenario.space,
                max_speed=(
                    scenario.max_speed if scenario.use_reachability else None
                ),
                reachability_pushes=scenario.reachability_pushes,
                steadiness=scenario.steadiness,
                batch_range_regions=scenario.batch_range_regions,
                anti_storm_relief=scenario.anti_storm_relief,
                enable_caches=scenario.enable_caches,
                kernel_backend=scenario.kernel_backend,
                kernel_min_rows=scenario.kernel_min_rows,
                # Under faults, duplicated/reordered reports are normal
                # traffic — never crash on them — and degraded regions
                # get the waypoint model's hard speed bound so widening
                # stays tight (§6.1) even when reachability is off.
                on_unknown_object="drop" if faulted else "raise",
                degraded_max_speed=(
                    scenario.max_speed if faulted else None
                ),
        )
        if scenario.shards:
            from repro.sharding import ShardedServer

            # Spatially sharded deployment (docs/SHARDING.md): same
            # config per shard, merged results behind the same API.
            self.server = ShardedServer(
                self._probe_oracle,
                server_config,
                n_shards=scenario.shards,
                n_workers=scenario.shard_workers,
                metrics=self.metrics,
                events=self.events,
                refresh_probes=scenario.refresh_probes,
            )
        else:
            self.server = DatabaseServer(
                position_oracle=self._probe_oracle,
                metrics=self.metrics,
                events=self.events,
                config=server_config,
            )
        #: Tick-phase profiling (docs/OBSERVABILITY.md "Profiling and
        #: cost attribution").  When enabled the server — single or
        #: sharded, same surface — attributes every tick's wall time to
        #: named phases; the merged summary lands on the report under
        #: ``extras["profile"]``.
        self._profiling = bool(profile)
        self._profile_top_k = profile_top_k
        if self._profiling:
            self.server.profile_start(max_ticks=profile_max_ticks)
        #: Occupancy-driven elasticity (docs/SHARDING.md): checked at
        #: every accuracy checkpoint, so the census the policy reads is
        #: the same one the imbalance gauge publishes.
        self._rebalance_policy = (
            scenario.rebalance_policy() if scenario.shards else None
        )
        self.costs = CommunicationCosts()
        self.accuracy = AccuracyAccumulator()
        self._now = 0.0
        self._heap: list = []
        self._seq = itertools.count()

    # ------------------------------------------------------------------
    # Event plumbing
    # ------------------------------------------------------------------
    def _schedule(self, t: float, priority: int, kind: str, payload) -> None:
        heapq.heappush(self._heap, (t, priority, next(self._seq), kind, payload))

    def _probe_oracle(self, oid):
        """Server-initiated probe: the client's exact current position.

        With probe faults injected, one attempt can time out
        (:class:`ProbeTimeout` — the server retries with backoff) or
        answer with the position ``stale_age`` ticks in the past.
        """
        if self._probe_channel is not None:
            outcome = self._probe_channel.probe_outcome()
            if outcome == "timeout":
                raise ProbeTimeout(f"probe of {oid!r} timed out")
            if outcome == "stale":
                stale_t = max(
                    self._now - self.faults.stale_age * self._fault_tick, 0.0
                )
                return self.clients[oid].position_at(stale_t)
        return self.clients[oid].position_at(self._now)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def _bootstrap(self) -> None:
        """Load objects, register queries, and hand out initial regions.

        Bootstrap is instantaneous (no propagation delay): the paper's
        monitoring period starts with a consistent, fully set-up system.
        """
        self._now = 0.0
        self.server.load_objects(
            (oid, client.position_at(0.0)) for oid, client in self.clients.items()
        )
        for query in self.queries:
            self.server.register_query(query, time=0.0)
        horizon = self.scenario.duration
        for oid, client in self.clients.items():
            client.install_safe_region(self.server.safe_region_of(oid), 0.0)
            exit_at = max(
                client.next_exit_time(0.0, horizon),
                self.scenario.client_poll_interval,
            )
            if exit_at <= horizon:
                self._schedule(exit_at, _PRIO_EXIT, "exit", (oid, client.epoch))
        for t in self.scenario.sample_times():
            self._schedule(t, _PRIO_SAMPLE, "sample", None)
        if self.scenario.kill_shard is not None:
            shard_id, kill_at = self.scenario.parsed_kill_shard()
            self._schedule(kill_at, _PRIO_EXIT, "kill_shard", shard_id)
        if self.scenario.reshard is not None:
            for action, shard_id, at in self.scenario.parsed_reshard():
                self._schedule(at, _PRIO_EXIT, "reshard", (action, shard_id))

    def run(self) -> SchemeReport:
        """Execute the full scenario and return the report."""
        event_counter = self.metrics.counter
        counters = {
            kind: event_counter(f"sim.events.{kind}")
            for kind in ("exit", "retry", "recv_update", "recv_region",
                         "sample", "client_timeout", "kill_shard", "reshard")
        }
        with self._trace.span("sim.run"):
            self._bootstrap()
            scenario = self.scenario
            while self._heap:
                t, _, _, kind, payload = heapq.heappop(self._heap)
                if t > scenario.duration:
                    break
                self._now = t
                counters[kind].inc()
                if kind == "exit":
                    self._on_exit(*payload)
                elif kind == "retry":
                    self._on_retry(*payload)
                elif kind == "recv_update":
                    self._on_recv_update(*payload)
                elif kind == "recv_region":
                    self._on_recv_region(*payload)
                elif kind == "client_timeout":
                    self._on_client_timeout(*payload)
                elif kind == "kill_shard":
                    self.server.kill_shard(payload, time=t)
                elif kind == "reshard":
                    self._on_reshard(*payload)
                else:
                    self._on_sample()
        self.server.refresh_index_gauges()
        total_distance = sum(
            client.trajectory.distance_travelled(0.0, scenario.duration)
            for client in self.clients.values()
        )
        self.costs = CommunicationCosts.from_server_stats(
            self.server.stats, updates=self.costs.updates
        )
        snapshot = self.metrics.to_dict() if self.metrics.enabled else {}
        if scenario.shards and self.metrics.enabled:
            # One metrics section per live shard rides on the snapshot
            # (``repro stats`` renders them alongside the coordinator's).
            snapshot = dict(snapshot)
            snapshot["shards"] = self.server.shard_metrics_snapshots()
        if self.sampler is not None:
            # Per-tick series ride on the metrics snapshot so one
            # ``--metrics-out`` document carries both shapes; ``repro
            # stats`` renders the extra section.
            snapshot = dict(snapshot)
            snapshot["timeseries"] = self.sampler.to_dict()
        extras = {
            "reevaluations": self.server.stats.queries_reevaluated,
            "result_changes": self.server.stats.result_changes,
        }
        if self.faults is not None:
            extras["faults"] = self._fault_summary()
        if self._profiling:
            # Snapshot before ``close()`` tears down shard workers; the
            # sharded snapshot merges every shard's summary.
            extras["profile"] = self.server.profile_snapshot(
                self._profile_top_k
            )
        if scenario.shards:
            extras["shards"] = {
                "n_shards": self.server.n_shards,
                "n_workers": self.server.n_workers,
                "live": list(self.server.live_shard_ids()),
                "dead": sorted(self.server.dead_shards()),
                "retired": sorted(self.server.retired_shards()),
                "objects": self.server.shard_object_counts(),
                "busy_seconds": self.server.shard_busy_seconds(),
                "route_seconds": self.server.route_seconds,
                "merge_seconds": self.server.merge_seconds,
                "refresh_probes": self.server.refresh_probe_count,
            }
            self.server.close()
        return SchemeReport(
            scheme="SRB",
            num_objects=scenario.num_objects,
            num_queries=len(self.queries),
            duration=scenario.duration,
            accuracy=self.accuracy.value,
            costs=self.costs,
            cpu_seconds=self.server.stats.cpu_seconds,
            total_distance=total_distance,
            extras=extras,
            metrics=snapshot,
        )

    def _fault_summary(self) -> dict:
        """Realised fault statistics for the report (faulted runs only)."""
        summary: dict = {"plan": self.faults.describe()}
        for label, channel in (
            ("uplink", self._up),
            ("downlink", self._down),
            ("probe", self._probe_channel),
        ):
            if channel is not None:
                summary[label] = {
                    "sent": channel.sent,
                    "dropped": channel.dropped,
                    "duplicated": channel.duplicated,
                    "delayed": channel.delayed,
                }
        stats = self.server.stats
        summary["server"] = {
            "probe_timeouts": stats.probe_timeouts,
            "probe_retries": stats.probe_retries,
            "unknown_updates": stats.unknown_updates,
            "time_regressions": stats.time_regressions,
            "degraded_entries": stats.degraded_entries,
        }
        return summary

    # ------------------------------------------------------------------
    # Handlers
    # ------------------------------------------------------------------
    def _send_update(self, client: MobileClient) -> None:
        client.begin_update()
        self._transmit(client)

    def _transmit(self, client: MobileClient) -> None:
        """Send (or resend) a client's report over the uplink.

        Each transmission reads the client's *current* position — a
        retransmission after a lost round trip reports where the object
        is now, not where it was when the lost report was sent.
        """
        position = client.position_at(self._now)
        self.costs.updates += 1
        base = self._now + self.scenario.delay
        if self._up is None:
            self._schedule(
                base, _PRIO_RECV_UPDATE, "recv_update", (client.oid, position)
            )
        else:
            for lag in self._up.deliveries():
                self._schedule(
                    base + lag * self._fault_tick,
                    _PRIO_RECV_UPDATE,
                    "recv_update",
                    (client.oid, position),
                )
        if self._retransmit_timeout is not None:
            timeout_at = self._now + self._retransmit_timeout
            if timeout_at <= self.scenario.duration:
                self._schedule(
                    timeout_at,
                    _PRIO_TIMEOUT,
                    "client_timeout",
                    (client.oid, client.epoch),
                )

    def _on_client_timeout(self, oid, epoch: int) -> None:
        """Retransmit a report whose round trip evidently got lost."""
        client = self.clients[oid]
        if client.awaiting and epoch == client.epoch:
            self._transmit(client)

    def _on_exit(self, oid, epoch: int) -> None:
        client = self.clients[oid]
        if epoch != client.epoch or client.awaiting:
            return  # a newer safe region superseded this crossing
        self._send_update(client)

    def _on_retry(self, oid, epoch: int) -> None:
        """Poll-paced recheck after installing an already-left region.

        If the client wandered back inside in the meantime, monitoring
        resumes without a message; otherwise it reports now.
        """
        client = self.clients[oid]
        if epoch != client.epoch or client.awaiting:
            return
        position = client.position_at(self._now)
        region = client.safe_region
        if region is not None and region.contains_point(position, eps=1e-12):
            horizon = self.scenario.duration
            exit_at = max(
                client.next_exit_time(self._now, horizon),
                self._now + self.scenario.client_poll_interval,
            )
            if exit_at <= horizon and not math.isinf(exit_at):
                self._schedule(exit_at, _PRIO_EXIT, "exit", (oid, client.epoch))
            return
        self._send_update(client)

    def _deliver_region(self, target, region) -> None:
        """Send one safe region down to a client, through the faults."""
        base = self._now + self.scenario.delay
        if self._down is None:
            self._schedule(base, _PRIO_RECV_REGION, "recv_region", (target, region))
            return
        for lag in self._down.deliveries():
            self._schedule(
                base + lag * self._fault_tick,
                _PRIO_RECV_REGION,
                "recv_region",
                (target, region),
            )

    def _on_recv_update(self, oid, position) -> None:
        outcome = self.server.handle_location_update(oid, position, self._now)
        if outcome.safe_region is not None:
            self._deliver_region(oid, outcome.safe_region)
        for target, region in outcome.probed.items():
            self._deliver_region(target, region)
        # ``outcome.missed`` targets have no deliverable region — they
        # went degraded server-side and recover at their next probe or
        # their own next boundary-crossing report.

    def _on_recv_region(self, oid, region) -> None:
        client = self.clients[oid]
        if client.install_safe_region(region, self._now):
            horizon = self.scenario.duration
            exit_at = client.next_exit_time(self._now, horizon)
            # Clients poll their position at a finite granularity; a fresh
            # safe region is therefore observed for at least one interval.
            exit_at = max(
                exit_at, self._now + self.scenario.client_poll_interval
            )
            if exit_at <= horizon and not math.isinf(exit_at):
                self._schedule(exit_at, _PRIO_EXIT, "exit", (oid, client.epoch))
        else:
            # Already outside the freshly installed region (communication
            # delay).  The client notices at its next position poll and
            # reports again — an immediate resend would ping-pong with the
            # server under moderate delay, roughly doubling the cost.
            retry_at = self._now + self.scenario.client_poll_interval
            if retry_at <= self.scenario.duration:
                self._schedule(
                    retry_at, _PRIO_EXIT, "retry", (oid, client.epoch)
                )

    def _on_reshard(self, action: str, shard_id) -> None:
        """Apply one scheduled elastic topology change, live.

        Migration evicts can probe and re-region other objects; those
        regions must reach their clients exactly like update-path
        regions, or the closed loop desynchronises.
        """
        if action == "add":
            outcome = self.server.add_shard(self._now)
        else:
            outcome = self.server.remove_shard(shard_id, self._now)
        for target, region in outcome.probed.items():
            self._deliver_region(target, region)

    def _maybe_rebalance(self) -> None:
        outcome = self.server.maybe_rebalance(
            self._rebalance_policy, self._now
        )
        if outcome is not None:
            for target, region in outcome.probed.items():
                self._deliver_region(target, region)

    def _on_sample(self) -> None:
        if self._rebalance_policy is not None:
            self._maybe_rebalance()
        true_results = self.truth.evaluate_at(self._now)
        matches = 0
        for query in self.queries:
            if query.result_snapshot() == true_results[query.query_id]:
                matches += 1
            self.accuracy.record(
                query.result_snapshot() == true_results[query.query_id]
            )
        if self.events.enabled:
            self.events.set_time(self._now)
            self.events.emit(
                "sample", matches=matches, comparisons=len(self.queries)
            )
        if self.sampler is not None:
            self.sampler.sample(self._now)
