"""Experiment scenarios (Table 7.1, scaled for laptop execution).

The paper simulates N = 100,000 objects for 5,000 logical time units on two
dedicated PCs.  The defaults here preserve the *densities* that drive the
algorithms' behaviour while remaining minutes-scale on one machine:

* ``q_len`` is scaled so a range query covers a few objects in expectation
  (the paper: 0.005² x 100k ≈ 2.5 objects per query).
* ``grid_m`` is scaled so a cell holds a handful of objects, as M = 50
  does at paper scale.

Every figure-reproduction bench can override any field; running at full
paper scale is only a matter of passing the Table 7.1 values.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.faults import FaultPlan
from repro.geometry.rect import Rect
from repro.workloads.generator import WorkloadConfig

UNIT_SPACE = Rect(0.0, 0.0, 1.0, 1.0)


@dataclass(frozen=True, slots=True)
class Scenario:
    """All knobs of one simulation run."""

    num_objects: int = 2000
    num_queries: int = 100
    mean_speed: float = 0.01          # paper's v-bar
    mean_period: float = 0.1          # paper's t_v-bar (scaled; see module doc)
    q_len: float = 0.035              # selectivity-preserving (paper: 0.005)
    k_max: int = 5
    grid_m: int = 20                  # cell-density-preserving (paper: 50)
    delay: float = 0.0                # tau, one-way propagation delay
    duration: float = 10.0            # paper: 5000 time units
    sample_interval: float = 0.05     # accuracy checkpoint spacing
    #: Minimum time between a client installing a safe region and its next
    #: boundary-crossing report — the client's position-polling (GPS)
    #: granularity.  Bounds the worst-case update rate of an object pinned
    #: against a quarantine boundary by a genuinely adjacent competitor.
    client_poll_interval: float = 1e-3
    #: Checkpoint spacing for counting OPT's result-change events.  Must be
    #: finer than ``sample_interval``: rank flips oscillate, and two coarse
    #: snapshots that happen to agree hide every crossing in between,
    #: flattering OPT.  ``None`` derives ``sample_interval / 5``.
    opt_sample_interval: float | None = None
    seed: int = 0
    order_sensitive: bool = True
    use_reachability: bool = False    # Section 6.1 enhancement
    #: Keep quarantine invariants exact under the reachability constraint
    #: (install + push tightened regions).  False = the paper's semantics.
    reachability_pushes: bool = True
    steadiness: float = 0.0           # Section 6.2 enhancement (D)
    #: Ablation switches (DESIGN.md §6 and Section 5.3).
    batch_range_regions: bool = True
    anti_storm_relief: bool = False
    #: Hot-path acceleration layer (docs/PERFORMANCE.md); disable with
    #: ``repro ... --no-caches`` to bisect perf regressions.  Results are
    #: identical either way — only CPU cost changes.
    enable_caches: bool = True
    #: Batch-geometry backend (``repro.kernels``): ``"numpy"`` or the
    #: bit-identical ``"python"`` fallback (``--kernel-backend``).
    kernel_backend: str = "numpy"
    #: Batch-size cutoff below which kernel dispatches fall back to the
    #: scalar path (``--kernel-min-rows``); must be at least 1.
    kernel_min_rows: int = 8
    #: Fault injection (docs/ROBUSTNESS.md): a ``FaultPlan`` spec string
    #: such as ``"drop=0.05,dup=0.02,delay=2"`` (``--faults``), or
    #: ``None`` for the paper's perfectly reliable channel.  ``delay``
    #: here counts *ticks* of ``sample_interval``.
    fault_spec: str | None = None
    fault_seed: int = 0
    #: Spatial sharding (docs/SHARDING.md): split the grid across this
    #: many shard servers behind a routing coordinator (``--shards``).
    #: ``0`` runs the paper's single server.
    shards: int = 0
    #: ``> 0`` runs each shard as a ``multiprocessing`` worker process;
    #: ``0`` keeps shards in-process, which is result-equivalent to the
    #: single-server baseline (``--shard-workers``).
    shard_workers: int = 0
    #: Shard-failure drill: ``"SHARD@TIME"`` kills that shard mid-run
    #: and the cluster continues in degraded mode (``--kill-shard``).
    kill_shard: str | None = None
    #: Exact cross-shard kNN merges: probe boundary candidates whose
    #: held positions may be stale before ranking (``--refresh-probes``).
    refresh_probes: bool = False
    #: Elasticity drill: comma-separated ``+@TIME`` (add a shard) and
    #: ``-SHARD@TIME`` (remove that shard) events (``--reshard``).
    reshard: str | None = None
    #: Occupancy-driven rebalancing: a ``RebalancePolicy`` spec string
    #: such as ``"max=6,grow-imbalance=1.5,cooldown=2"`` checked at
    #: every sample tick (``--rebalance``).
    rebalance: str | None = None
    #: How long a client waits for its new safe region before
    #: retransmitting the report (lost uplink or downlink).  ``None``
    #: derives a bound covering the worst faulted round trip.  Only
    #: active when ``fault_spec`` is set.
    retransmit_timeout: float | None = None
    space: Rect = UNIT_SPACE

    def __post_init__(self) -> None:
        if self.num_objects < 1:
            raise ValueError("need at least one object")
        if self.duration <= 0:
            raise ValueError("duration must be positive")
        if self.sample_interval <= 0:
            raise ValueError("sample_interval must be positive")
        if self.delay < 0:
            raise ValueError("delay must be non-negative")
        if self.client_poll_interval <= 0:
            raise ValueError("client_poll_interval must be positive")
        if self.kernel_backend not in ("numpy", "python"):
            raise ValueError(
                "kernel_backend must be 'numpy' or 'python', "
                f"got {self.kernel_backend!r}"
            )
        if self.kernel_min_rows < 1:
            raise ValueError("kernel_min_rows must be at least 1")
        if self.fault_spec is not None:
            # Fail fast on a malformed spec — parse() raises ValueError.
            FaultPlan.parse(self.fault_spec)
        if self.retransmit_timeout is not None and self.retransmit_timeout <= 0:
            raise ValueError("retransmit_timeout must be positive")
        if self.shards < 0:
            raise ValueError("shards must be non-negative")
        if self.shard_workers and not self.shards:
            raise ValueError("shard_workers requires shards > 0")
        if self.kill_shard is not None:
            shard_id, kill_at = self.parsed_kill_shard()
            if not self.shards:
                raise ValueError("kill_shard requires shards > 0")
            if not 0 <= shard_id < self.shards:
                raise ValueError(
                    f"kill_shard names shard {shard_id}, "
                    f"but there are only {self.shards}"
                )
            if self.shards < 2:
                raise ValueError("cannot kill the only shard")
            if not 0 < kill_at <= self.duration:
                raise ValueError("kill_shard time must fall inside the run")
        if self.refresh_probes and not self.shards:
            raise ValueError("refresh_probes requires shards > 0")
        if self.reshard is not None:
            if not self.shards:
                raise ValueError("reshard requires shards > 0")
            for action, shard_id, at in self.parsed_reshard():
                if action == "remove" and not 0 <= shard_id:
                    raise ValueError("reshard names a negative shard id")
                if not 0 < at <= self.duration:
                    raise ValueError(
                        "reshard times must fall inside the run"
                    )
        if self.rebalance is not None:
            if not self.shards:
                raise ValueError("rebalance requires shards > 0")
            from repro.sharding.rebalance import RebalancePolicy

            # Fail fast on a malformed spec — parse() raises ValueError.
            RebalancePolicy.parse(self.rebalance)

    @property
    def max_speed(self) -> float:
        """Hard speed bound of the waypoint model (``2 v_mean``)."""
        return 2.0 * self.mean_speed

    def workload(self) -> WorkloadConfig:
        """Query-mix parameters derived from this scenario."""
        return WorkloadConfig(
            num_queries=self.num_queries,
            q_len=self.q_len,
            k_max=self.k_max,
            order_sensitive=self.order_sensitive,
            space=self.space,
        )

    def sample_times(self) -> list[float]:
        """Accuracy checkpoints: multiples of ``sample_interval``."""
        count = int(math.floor(self.duration / self.sample_interval))
        return [round(i * self.sample_interval, 9) for i in range(1, count + 1)]

    def opt_sample_times(self) -> list[float]:
        """Finer checkpoints for counting OPT's result-change events."""
        interval = self.opt_sample_interval
        if interval is None:
            interval = self.sample_interval / 5.0
        count = int(math.floor(self.duration / interval))
        return [round(i * interval, 9) for i in range(1, count + 1)]

    def parsed_kill_shard(self) -> tuple[int, float]:
        """The ``kill_shard`` spec as ``(shard_id, time)``."""
        if self.kill_shard is None:
            raise ValueError("no kill_shard spec set")
        try:
            shard_text, _, time_text = self.kill_shard.partition("@")
            return int(shard_text), float(time_text)
        except ValueError as exc:
            raise ValueError(
                f"kill_shard must look like 'SHARD@TIME', "
                f"got {self.kill_shard!r}"
            ) from exc

    def parsed_reshard(self) -> list[tuple[str, int | None, float]]:
        """The ``reshard`` spec as ``(action, shard_id, time)`` triples.

        ``("add", None, t)`` for ``+@t``; ``("remove", s, t)`` for
        ``-s@t``.  Sorted by time so the engine can schedule them in
        replay order.
        """
        if self.reshard is None:
            raise ValueError("no reshard spec set")
        events: list[tuple[str, int | None, float]] = []
        for item in self.reshard.split(","):
            item = item.strip()
            if not item:
                continue
            head, sep, time_text = item.partition("@")
            try:
                if not sep:
                    raise ValueError(item)
                at = float(time_text)
                if head == "+":
                    events.append(("add", None, at))
                elif head.startswith("-"):
                    events.append(("remove", int(head[1:]), at))
                else:
                    raise ValueError(item)
            except ValueError as exc:
                raise ValueError(
                    "reshard items must look like '+@TIME' or "
                    f"'-SHARD@TIME', got {item!r}"
                ) from exc
        return sorted(events, key=lambda e: e[2])

    def rebalance_policy(self):
        """The parsed ``RebalancePolicy``, or ``None`` when unset."""
        if self.rebalance is None:
            return None
        from repro.sharding.rebalance import RebalancePolicy

        return RebalancePolicy.parse(self.rebalance)

    def fault_plan(self) -> FaultPlan | None:
        """The parsed, seeded :class:`FaultPlan`, or ``None`` (reliable)."""
        if self.fault_spec is None:
            return None
        return FaultPlan.parse(self.fault_spec, seed=self.fault_seed)

    def with_overrides(self, **kwargs) -> "Scenario":
        """A copy with the given fields replaced."""
        return replace(self, **kwargs)


def scaled_q_len(num_objects: int, objects_per_query: float = 2.5) -> float:
    """Query side length putting ``objects_per_query`` in a range query."""
    return math.sqrt(objects_per_query / num_objects)
