"""Ground truth: exact query results from exact object positions.

The OPT scheme of Section 7 has perfect knowledge — it *is* the true
result series.  This module computes, at each sampling checkpoint, the
exact result of every query from the exact trajectory positions; the
series serves both as the accuracy yardstick for SRB / PRD and as the
basis of the OPT communication-cost lower bound.
"""

from __future__ import annotations

from typing import Hashable, Mapping, Sequence

import numpy as np

from repro.core.queries import KNNQuery, Query, RangeQuery
from repro.kernels import Kernels
from repro.mobility.waypoint import Trajectory

ObjectId = Hashable
Snapshot = frozenset | tuple


class GroundTruth:
    """Exact evaluation of a fixed query set over exact positions.

    Checkpoint evaluation runs on the shared batch kernels
    (``repro.kernels``): one containment pass per range query, one
    deterministic top-k selection per kNN query.  kNN distance ties
    break by object registration order (the kernels' ``(d2, row)`` rule),
    so the truth series is identical under either kernel backend.
    """

    def __init__(
        self,
        trajectories: Mapping[ObjectId, Trajectory],
        queries: Sequence[Query],
        kernels: Kernels | None = None,
    ) -> None:
        self._ids = list(trajectories.keys())
        self._trajectories = [trajectories[oid] for oid in self._ids]
        self.queries = list(queries)
        self.kernels = kernels if kernels is not None else Kernels()
        self._memo: dict[float, dict[str, Snapshot]] = {}

    def trajectories(self) -> dict[ObjectId, Trajectory]:
        """The object trajectories this truth was built over."""
        return dict(zip(self._ids, self._trajectories))

    def positions_at(self, t: float) -> tuple[np.ndarray, np.ndarray]:
        """Coordinate arrays (xs, ys) aligned with the object-id order."""
        n = len(self._trajectories)
        xs = np.empty(n)
        ys = np.empty(n)
        for i, trajectory in enumerate(self._trajectories):
            p = trajectory.position_at(t)
            xs[i] = p.x
            ys[i] = p.y
        return xs, ys

    def evaluate_at(self, t: float) -> dict[str, Snapshot]:
        """True result snapshot of every query at time ``t``.

        Snapshots use the same types as ``Query.result_snapshot`` so they
        compare directly against monitored results: frozensets for range
        and order-insensitive kNN queries, ordered tuples for
        order-sensitive kNN queries.  Evaluations are memoised per
        timestamp so the schemes sharing one truth (SRB / PRD / OPT) pay
        for each checkpoint once.
        """
        cached = self._memo.get(t)
        if cached is not None:
            return cached
        xs, ys = self.positions_at(t)
        ranges = [q for q in self.queries if isinstance(q, RangeQuery)]
        knns = [q for q in self.queries if isinstance(q, KNNQuery)]
        unsupported = len(ranges) + len(knns) - len(self.queries)
        if unsupported:  # pragma: no cover
            bad = next(
                q for q in self.queries
                if not isinstance(q, (RangeQuery, KNNQuery))
            )
            raise TypeError(f"unsupported query type: {type(bad).__name__}")
        results: dict[str, Snapshot] = {}
        # One grouped containment dispatch answers every range query and
        # one grouped top-k dispatch every kNN query — the checkpoint
        # cost no longer scales kernel-call overhead with query count.
        if ranges:
            masks = self.kernels.grouped_points_in_rects(
                xs, ys,
                [q.rect.min_x for q in ranges],
                [q.rect.min_y for q in ranges],
                [q.rect.max_x for q in ranges],
                [q.rect.max_y for q in ranges],
            )
            for query, mask in zip(ranges, masks):
                results[query.query_id] = frozenset(
                    oid for oid, inside in zip(self._ids, mask) if inside
                )
        if knns:
            tops = self.kernels.grouped_top_k(
                xs, ys,
                [q.center.x for q in knns],
                [q.center.y for q in knns],
                [q.k for q in knns],
            )
            for query, top in zip(knns, tops):
                if not top:
                    results[query.query_id] = (
                        () if query.order_sensitive else frozenset()
                    )
                    continue
                ids = tuple(self._ids[row] for row in top)
                results[query.query_id] = (
                    ids if query.order_sensitive else frozenset(ids)
                )
        self._memo[t] = results
        return results


def opt_update_count(
    previous: Mapping[str, Snapshot] | None,
    current: Mapping[str, Snapshot],
    queries: Sequence[Query],
) -> int:
    """Source-initiated updates OPT sends between two checkpoints.

    An OPT client reports exactly when its own movement changes some
    query's result.  Between consecutive (fine-grained) checkpoints:

    * for a range query, every object whose membership flipped crossed
      the boundary itself — one update each;
    * for a kNN query, every membership change is one update, and every
      *order inversion* among surviving results (a pair whose relative
      order flipped) is one distance crossing — caused by one mover, so
      one update each.  A plain "did the tuple change" test would
      undercount rapid rank churn and flatter OPT.
    """
    if previous is None:
        return 0
    updates = 0
    for query in queries:
        before = previous[query.query_id]
        after = current[query.query_id]
        if isinstance(query, RangeQuery) or isinstance(before, frozenset):
            updates += len(before ^ after)
        else:
            before_set = frozenset(before)
            after_set = frozenset(after)
            updates += len(before_set ^ after_set)
            survivors_before = [o for o in before if o in after_set]
            rank_after = {o: i for i, o in enumerate(after)}
            updates += _inversions(
                [rank_after[o] for o in survivors_before]
            )
    return updates


def _inversions(sequence: list[int]) -> int:
    """Number of out-of-order pairs (insertion-count merge is overkill here)."""
    count = 0
    for i in range(len(sequence)):
        for j in range(i + 1, len(sequence)):
            if sequence[i] > sequence[j]:
                count += 1
    return count
