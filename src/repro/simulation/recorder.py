"""Event-trace recording for the SRB simulator.

Wraps an :class:`~repro.simulation.engine.SRBSimulation` so every
protocol event — boundary crossings, server receptions, probes, region
installs, accuracy samples — is appended to an in-memory trace and
optionally streamed to a JSON-lines file.  Traces make protocol bugs
visible (who re-reported, how often, triggered by what) and feed the
per-object statistics used when tuning scenarios.

::

    sim = SRBSimulation(scenario)
    trace = attach_recorder(sim)
    report = sim.run()
    print(trace.summary())
    trace.dump("run.jsonl")
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from typing import Hashable

from repro.simulation.engine import SRBSimulation

ObjectId = Hashable


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One recorded protocol event."""

    time: float
    kind: str
    oid: ObjectId | None
    detail: dict = field(default_factory=dict)

    def as_json(self) -> str:
        payload = {"t": self.time, "kind": self.kind}
        if self.oid is not None:
            payload["oid"] = self.oid
        if self.detail:
            payload.update(self.detail)
        return json.dumps(payload, default=str)


class Trace:
    """The recorded event stream plus convenience analytics."""

    def __init__(self) -> None:
        self.events: list[TraceEvent] = []

    def append(self, event: TraceEvent) -> None:
        self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)

    def of_kind(self, kind: str) -> list[TraceEvent]:
        return [event for event in self.events if event.kind == kind]

    def updates_per_object(self) -> Counter:
        """Source-initiated update counts keyed by object id."""
        counts: Counter = Counter()
        for event in self.events:
            if event.kind == "update_sent":
                counts[event.oid] += 1
        return counts

    def hottest_objects(self, top: int = 5) -> list[tuple[ObjectId, int]]:
        """The objects reporting most often — storm / contention suspects."""
        return self.updates_per_object().most_common(top)

    def summary(self) -> str:
        """Human-readable one-screen digest of the run."""
        kinds = Counter(event.kind for event in self.events)
        lines = [f"{len(self.events)} events"]
        for kind, count in sorted(kinds.items()):
            lines.append(f"  {kind:16s} {count}")
        hot = self.hottest_objects(3)
        if hot:
            rendered = ", ".join(f"{oid}x{count}" for oid, count in hot)
            lines.append(f"  hottest reporters: {rendered}")
        return "\n".join(lines)

    def dump(self, path) -> int:
        """Write the trace as JSON lines; returns the event count."""
        with open(path, "w") as handle:
            for event in self.events:
                handle.write(event.as_json())
                handle.write("\n")
        return len(self.events)


def attach_recorder(simulation: SRBSimulation) -> Trace:
    """Instrument a simulation (before ``run()``); returns the live trace."""
    trace = Trace()

    original_send = simulation._send_update
    original_recv_update = simulation._on_recv_update
    original_recv_region = simulation._on_recv_region
    original_sample = simulation._on_sample
    original_oracle = simulation._probe_oracle

    def send_update(client):
        trace.append(TraceEvent(simulation._now, "update_sent", client.oid))
        original_send(client)

    def on_recv_update(oid, position):
        trace.append(
            TraceEvent(
                simulation._now, "server_received", oid,
                {"x": position.x, "y": position.y},
            )
        )
        original_recv_update(oid, position)

    def on_recv_region(oid, region):
        trace.append(
            TraceEvent(
                simulation._now, "region_installed", oid,
                {"w": region.width, "h": region.height},
            )
        )
        original_recv_region(oid, region)

    def on_sample():
        trace.append(TraceEvent(simulation._now, "sample", None))
        original_sample()

    def probe_oracle(oid):
        trace.append(TraceEvent(simulation._now, "probe", oid))
        return original_oracle(oid)

    simulation._send_update = send_update
    simulation._on_recv_update = on_recv_update
    simulation._on_recv_region = on_recv_region
    simulation._on_sample = on_sample
    simulation._probe_oracle = probe_oracle
    # The server holds a reference to the original oracle; re-point it.
    simulation.server._oracle = probe_oracle
    return trace
