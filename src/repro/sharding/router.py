"""Stateless routing of updates and queries onto shards.

The router is pure geometry plus the :class:`~repro.sharding.shardmap.
ShardMap`: a location update goes to the owner of its destination cell,
a range query fans out to every shard owning a cell its rectangle
overlaps, and a kNN query fans out to every shard owning a cell its
quarantine circle intersects.  It keeps *no* per-object or per-query
state, so coordinator and workers can each hold one and always agree.

Cell arithmetic is delegated to a bare :class:`~repro.index.grid.
GridIndex` over the same ``(grid_m, space)`` — the router must clamp
out-of-space points and round cell boundaries *exactly* like the
per-shard servers do, and sharing the implementation is the only way
that never drifts.
"""

from __future__ import annotations

from repro.geometry.circle import Circle
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.index.grid import GridIndex
from repro.sharding.shardmap import CellId, ShardMap


class ShardRouter:
    """Maps points, rectangles, and circles to live shard ids."""

    __slots__ = ("map", "grid")

    def __init__(self, shard_map: ShardMap, space: Rect) -> None:
        self.map = shard_map
        # Geometry only — no queries are ever inserted into this grid.
        self.grid = GridIndex(shard_map.grid_m, space, enable_cache=False)

    @property
    def n_shards(self) -> int:
        return self.map.n_shards

    def cell_of(self, p: Point) -> CellId:
        return self.grid.cell_of(p)

    def shard_for_point(
        self, p: Point, excluding: frozenset[int] = frozenset()
    ) -> int:
        """The shard a location update lands on (the cell's live owner)."""
        return self.map.shard_of(self.grid.cell_of(p), excluding)

    def shards_for_rect(
        self, rect: Rect, excluding: frozenset[int] = frozenset()
    ) -> set[int]:
        """Live shards a range query's rectangle fans out to."""
        return self.map.shards_of(
            self.grid.cells_overlapping(rect), excluding
        )

    def shards_for_circle(
        self, circle: Circle, excluding: frozenset[int] = frozenset()
    ) -> set[int]:
        """Live shards a kNN quarantine circle fans out to.

        ``cells_overlapping`` scans the circle's bounding rectangle; the
        exact disk test then drops the corner cells the disk misses.
        """
        cells = [
            cell
            for cell in self.grid.cells_overlapping(circle.bounding_rect())
            if circle.intersects_rect(self.grid.cell_rect(cell))
        ]
        return self.map.shards_of(cells, excluding)
