"""Deterministic cell → shard partition map (rendezvous hashing).

The sharded deployment (docs/SHARDING.md) splits the M x M query grid's
cells across N shards.  The assignment must be

* **total** — every cell has exactly one owner for every live-shard set;
* **deterministic across processes** — the router runs in the
  coordinator and in every worker, and all of them must agree without
  coordination.  Python's builtin ``hash`` is salted per process, so the
  map hashes with :func:`hashlib.blake2b` instead;
* **stable under resharding** — growing N to N+1 must move few cells.

Rendezvous (highest-random-weight) hashing gives all three: each cell
is owned by the shard with the highest keyed hash weight, so adding a
shard only moves the cells the *new* shard wins (1/(N+1) of them in
expectation), and removing a shard only moves that shard's cells — to
each cell's runner-up, which is exactly the fail-over rule the
coordinator uses when a shard dies mid-run.
"""

from __future__ import annotations

import hashlib
import struct
from collections.abc import Iterable

CellId = tuple[int, int]

_DIGEST_SIZE = 8  # 64-bit weights: ties are a 2^-64 coincidence


def _weight(cell: CellId, shard: int) -> int:
    """The rendezvous weight of ``(cell, shard)`` — process-independent."""
    payload = struct.pack(">qqq", cell[0], cell[1], shard)
    return int.from_bytes(
        hashlib.blake2b(payload, digest_size=_DIGEST_SIZE).digest(), "big"
    )


class ShardMap:
    """Owner lookup for every cell of an ``grid_m`` x ``grid_m`` grid."""

    __slots__ = ("n_shards", "grid_m", "_owners")

    def __init__(self, n_shards: int, grid_m: int) -> None:
        if n_shards < 1:
            raise ValueError("need at least one shard")
        if grid_m < 1:
            raise ValueError("grid_m must be positive")
        self.n_shards = n_shards
        self.grid_m = grid_m
        # The full-health owner table is dense and small (M^2 cells);
        # precomputing it keeps the per-update routing at one dict hit.
        self._owners: dict[CellId, int] = {
            (i, j): self._rank((i, j))[0]
            for i in range(grid_m)
            for j in range(grid_m)
        }

    def _rank(self, cell: CellId) -> list[int]:
        """Shards ordered by descending weight (ties broken by id)."""
        return sorted(
            range(self.n_shards),
            key=lambda shard: (-_weight(cell, shard), shard),
        )

    def shard_of(
        self, cell: CellId, excluding: frozenset[int] = frozenset()
    ) -> int:
        """The live owner of ``cell``.

        ``excluding`` names dead shards; the cell falls over to its
        highest-weight surviving shard, so routing stays total as long
        as one shard lives.
        """
        if not excluding:
            return self._owners[cell]
        for shard in self._rank(cell):
            if shard not in excluding:
                return shard
        raise ValueError("every shard is excluded")

    def shards_of(
        self,
        cells: Iterable[CellId],
        excluding: frozenset[int] = frozenset(),
    ) -> set[int]:
        """The set of live owners covering ``cells``."""
        return {self.shard_of(cell, excluding) for cell in cells}

    def cells_of(
        self, shard: int, excluding: frozenset[int] = frozenset()
    ) -> list[CellId]:
        """All cells owned by ``shard``, in row-major order."""
        return [
            cell
            for cell in sorted(self._owners)
            if self.shard_of(cell, excluding) == shard
        ]

    def counts(
        self, excluding: frozenset[int] = frozenset()
    ) -> dict[int, int]:
        """Cells owned per live shard — the balance/skew diagnostic."""
        tallies = {
            shard: 0 for shard in range(self.n_shards)
            if shard not in excluding
        }
        for cell in self._owners:
            tallies[self.shard_of(cell, excluding)] += 1
        return tallies
