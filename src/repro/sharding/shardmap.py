"""Deterministic cell → shard partition map (rendezvous hashing).

The sharded deployment (docs/SHARDING.md) splits the M x M query grid's
cells across N shards.  The assignment must be

* **total** — every cell has exactly one owner for every live-shard set;
* **deterministic across processes** — the router runs in the
  coordinator and in every worker, and all of them must agree without
  coordination.  Python's builtin ``hash`` is salted per process, so the
  map hashes with :func:`hashlib.blake2b` instead;
* **stable under resharding** — growing N to N+1 must move few cells.

Rendezvous (highest-random-weight) hashing gives all three: each cell
is owned by the shard with the highest keyed hash weight, so adding a
shard only moves the cells the *new* shard wins (1/(N+1) of them in
expectation), and removing a shard only moves that shard's cells — to
each cell's runner-up, which is exactly the fail-over rule the
coordinator uses when a shard dies mid-run.

Because a weight depends only on ``(cell, shard_id)``, the same
properties hold for *any* set of shard ids, not just ``0..N-1`` —
which is what makes the elastic topology cheap:
:meth:`ShardMap.with_shard` / :meth:`ShardMap.without_shard` derive the
next epoch's map, and :meth:`ShardMap.moved_cells` lists exactly the
cells whose owner changed (the only cells whose objects and query
copies must migrate).
"""

from __future__ import annotations

import hashlib
import struct
from collections.abc import Iterable

CellId = tuple[int, int]

_DIGEST_SIZE = 8  # 64-bit weights: ties are a 2^-64 coincidence


def _weight(cell: CellId, shard: int) -> int:
    """The rendezvous weight of ``(cell, shard)`` — process-independent."""
    payload = struct.pack(">qqq", cell[0], cell[1], shard)
    return int.from_bytes(
        hashlib.blake2b(payload, digest_size=_DIGEST_SIZE).digest(), "big"
    )


class ShardMap:
    """Owner lookup for every cell of an ``grid_m`` x ``grid_m`` grid.

    ``shards`` is either a count (ids ``0..N-1``, the fixed-topology
    spelling) or an explicit iterable of shard ids (the elastic
    spelling — ids need not be contiguous after a ``remove_shard``).
    """

    __slots__ = ("shard_ids", "grid_m", "_owners")

    def __init__(self, shards: int | Iterable[int], grid_m: int) -> None:
        if isinstance(shards, int):
            if shards < 1:
                raise ValueError("need at least one shard")
            shard_ids: tuple[int, ...] = tuple(range(shards))
        else:
            shard_ids = tuple(sorted(set(shards)))
            if not shard_ids:
                raise ValueError("need at least one shard")
            if any(s < 0 for s in shard_ids):
                raise ValueError("shard ids must be non-negative")
        if grid_m < 1:
            raise ValueError("grid_m must be positive")
        self.shard_ids = shard_ids
        self.grid_m = grid_m
        # The full-health owner table is dense and small (M^2 cells);
        # precomputing it keeps the per-update routing at one dict hit.
        self._owners: dict[CellId, int] = {
            (i, j): self._rank((i, j))[0]
            for i in range(grid_m)
            for j in range(grid_m)
        }

    @property
    def n_shards(self) -> int:
        """How many shards participate in this map."""
        return len(self.shard_ids)

    def _rank(self, cell: CellId) -> list[int]:
        """Shards ordered by descending weight (ties broken by id)."""
        return sorted(
            self.shard_ids,
            key=lambda shard: (-_weight(cell, shard), shard),
        )

    def shard_of(
        self, cell: CellId, excluding: frozenset[int] = frozenset()
    ) -> int:
        """The live owner of ``cell``.

        ``excluding`` names dead shards; the cell falls over to its
        highest-weight surviving shard, so routing stays total as long
        as one shard lives.
        """
        if not excluding:
            return self._owners[cell]
        for shard in self._rank(cell):
            if shard not in excluding:
                return shard
        raise ValueError(
            f"no live owner for cell {cell}: all "
            f"{len(self.shard_ids)} shards are excluded"
        )

    def shards_of(
        self,
        cells: Iterable[CellId],
        excluding: frozenset[int] = frozenset(),
    ) -> set[int]:
        """The set of live owners covering ``cells``."""
        return {self.shard_of(cell, excluding) for cell in cells}

    def cells_of(
        self, shard: int, excluding: frozenset[int] = frozenset()
    ) -> list[CellId]:
        """All cells owned by ``shard``, in row-major order."""
        return [
            cell
            for cell in sorted(self._owners)
            if self.shard_of(cell, excluding) == shard
        ]

    def counts(
        self, excluding: frozenset[int] = frozenset()
    ) -> dict[int, int]:
        """Cells owned per live shard — the balance/skew diagnostic."""
        tallies = {
            shard: 0 for shard in self.shard_ids
            if shard not in excluding
        }
        for cell in self._owners:
            tallies[self.shard_of(cell, excluding)] += 1
        return tallies

    # -- elastic topology ----------------------------------------------
    def with_shard(self, shard_id: int) -> "ShardMap":
        """The map after ``shard_id`` joins (only its wins move)."""
        if shard_id in self.shard_ids:
            raise ValueError(f"shard {shard_id} is already in the map")
        return ShardMap((*self.shard_ids, shard_id), self.grid_m)

    def without_shard(self, shard_id: int) -> "ShardMap":
        """The map after ``shard_id`` retires (only its cells move)."""
        if shard_id not in self.shard_ids:
            raise ValueError(f"shard {shard_id} is not in the map")
        if len(self.shard_ids) == 1:
            raise ValueError("cannot remove the last shard from the map")
        return ShardMap(
            tuple(s for s in self.shard_ids if s != shard_id), self.grid_m
        )

    def moved_cells(self, successor: "ShardMap") -> list[CellId]:
        """Cells whose owner differs between ``self`` and ``successor``.

        The migration work-list of one topology change, in row-major
        order.  Rendezvous guarantees it is exactly the joining shard's
        wins (growth) or the leaving shard's cells (shrink).
        """
        if successor.grid_m != self.grid_m:
            raise ValueError("cannot diff maps over different grids")
        return [
            cell
            for cell in sorted(self._owners)
            if successor._owners[cell] != self._owners[cell]
        ]
