"""Spatially sharded multi-server deployment (docs/SHARDING.md).

The grid's cells are partitioned across N shards by a deterministic
rendezvous-hash map (:mod:`repro.sharding.shardmap`); a stateless
router (:mod:`repro.sharding.router`) sends each location update to its
cell's owner and fans queries out to every shard their quarantine area
overlaps; the coordinator (:mod:`repro.sharding.coordinator`) merges
per-shard partial results — range by union, kNN by a
``kernels.top_k_rows`` re-rank — behind the single-server API.

Shards run in-process (``n_workers=0``, result-equivalent to the
single-server baseline) or as one ``multiprocessing`` worker each.

The shard set is *elastic*: ``ShardedServer.add_shard`` /
``remove_shard`` resize a live cluster (rendezvous moves only the
joining shard's wins or the retiree's cells), and
:class:`~repro.sharding.rebalance.RebalancePolicy` drives those moves
from the per-shard occupancy census.  ``refresh_probes=True`` restores
exact cross-shard kNN merges by probing stale boundary candidates.
"""

from repro.sharding.backend import ShardBackend, query_from_spec, query_spec
from repro.sharding.coordinator import InProcessShard, ShardedServer
from repro.sharding.rebalance import RebalancePolicy
from repro.sharding.router import ShardRouter
from repro.sharding.shardmap import ShardMap
from repro.sharding.snapshot import restore_shards, snapshot_shards
from repro.sharding.worker import WorkerShard

__all__ = [
    "InProcessShard",
    "RebalancePolicy",
    "ShardBackend",
    "ShardMap",
    "ShardRouter",
    "ShardedServer",
    "WorkerShard",
    "query_from_spec",
    "query_spec",
    "restore_shards",
    "snapshot_shards",
]
