"""The sharded deployment's coordinator (docs/SHARDING.md).

:class:`ShardedServer` presents the single-server surface —
``load_objects`` / ``register_query`` / ``handle_location_update(s)`` /
``stats`` — over N per-cell shards.  It owns all cross-shard state:

* the **home table** (object → shard), updated when an update's
  destination cell is owned by a different shard: the old home evicts
  (``DatabaseServer.evict_object`` repairs its local results) and the
  new home adds the object;
* the **merged views** — the caller's original query objects, whose
  ``results``/``radius`` the coordinator maintains from per-shard
  partial results.  Range results are the union of the holders'
  partials; kNN pools each holder's local members (with their
  safe-region distance bounds) and re-ranks them with
  ``kernels.top_k_rows``, exact distances first, object id on ties;
* the **fan-out ledger** (query → holder shards).  A kNN view's merged
  radius is the conservative bound ``max_dist`` of its k-th pooled
  candidate; whenever the bound's circle reaches cells of a non-holder,
  the query is registered there too (sticky), so the merged top-k can
  never miss an object a holder does not see.

Shards run in-process (``n_workers=0`` — deterministic, and results
are pinned equivalent to the single-server baseline in
``tests/test_sharding_equivalence.py``) or as one ``multiprocessing``
worker each (``repro.sharding.worker``), escaping the GIL.

A dead shard (``kill_shard`` — the failure drill) stays in the merge as
a *frozen* partial: its members remain in results but are flagged
``degraded``, never silently dropped, until the objects re-home by
reporting — routing falls over to each cell's rendezvous runner-up.
"""

from __future__ import annotations

import math
import time as _time
from dataclasses import fields as _dataclass_fields
from typing import Hashable, Iterable

from repro.core.queries import KNNQuery, Query, RangeQuery
from repro.core.results import BatchOutcome, ResultChange, UpdateOutcome
from repro.core.server import PositionOracle, ServerConfig, ServerStats
from repro.faults import ProbeTimeout
from repro.geometry.circle import Circle
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.kernels import Kernels
from repro.obs import (
    NULL_EVENT_LOG,
    NULL_REGISTRY,
    MetricsRegistry,
    merge_profiles,
)
from repro.sharding.backend import ShardBackend, query_spec
from repro.sharding.router import ShardRouter
from repro.sharding.shardmap import ShardMap
from repro.sharding.worker import WorkerShard

ObjectId = Hashable


class InProcessShard:
    """Shard handle running its backend on the coordinator's thread."""

    def __init__(self, shard_id: int, config: ServerConfig, oracle,
                 metrics_enabled: bool = False, events=None) -> None:
        self.shard_id = shard_id
        self._oracle = oracle
        registry = MetricsRegistry() if metrics_enabled else None
        self.backend = ShardBackend(
            shard_id, config, oracle, metrics=registry, events=events
        )
        self.alive = True

    def call(self, name: str, *args):
        if name == "restore":
            self.backend.restore(args[0], self._oracle)
            return None
        return getattr(self.backend, name)(*args)

    def kill(self) -> None:
        self.alive = False
        self.backend = None  # frozen: the process is "gone"

    def close(self) -> None:
        self.alive = False


class RetiredSlot:
    """Placeholder for a shard id retired by ``remove_shard``.

    Keeps per-shard lists dense (ids never get reused), while any
    attempt to operate on the retired shard fails loudly.
    """

    alive = False

    def __init__(self, shard_id: int) -> None:
        self.shard_id = shard_id

    def call(self, name: str, *args):
        raise RuntimeError(
            f"shard {self.shard_id} was removed and cannot serve {name!r}"
        )

    def kill(self) -> None:  # pragma: no cover - nothing to kill
        pass

    def close(self) -> None:
        pass


class ShardedServer:
    """Coordinator over N cell-owned shards (see module docstring)."""

    def __init__(
        self,
        position_oracle: PositionOracle,
        config: ServerConfig | None = None,
        n_shards: int = 2,
        n_workers: int = 0,
        metrics=None,
        events=None,
        refresh_probes: bool = False,
        shard_ids: Iterable[int] | None = None,
    ) -> None:
        if shard_ids is not None:
            live_ids = tuple(sorted(set(shard_ids)))
            if not live_ids:
                raise ValueError("need at least one shard")
            if any(s < 0 for s in live_ids):
                raise ValueError("shard ids must be non-negative")
            n_shards = live_ids[-1] + 1
        else:
            if n_shards < 1:
                raise ValueError("need at least one shard")
            live_ids = tuple(range(n_shards))
        if n_workers < 0:
            raise ValueError("n_workers must be non-negative")
        self.config = config or ServerConfig()
        #: Allocated slot space: shard ids ever issued.  Retired ids
        #: (``remove_shard``) keep their slot — ids are never reused, so
        #: frozen stats and event streams stay unambiguous.
        self.n_shards = n_shards
        #: Any non-zero worker count runs one process per live shard;
        #: the knob is a mode bit kept numeric for CLI symmetry.
        self.n_workers = len(live_ids) if n_workers else 0
        self._oracle = position_oracle
        self.metrics = NULL_REGISTRY if metrics is None else metrics
        self.events = NULL_EVENT_LOG if events is None else events
        #: Merge-time exactness mode (docs/SHARDING.md "Refresh
        #: probes"): when on, the cross-shard kNN merge probes boundary
        #: candidates whose held positions could be stale.  Off by
        #: default — the merge is then bit-identical to the historical
        #: behaviour (and to the single server fed the same reports).
        self.refresh_probes = bool(refresh_probes)
        #: Total refresh probes issued (also counted on
        #: ``shard.fanout.refresh_probes`` when metrics are on).
        self.refresh_probe_count = 0
        self._probe_memo: dict[ObjectId, tuple[float, float] | None] = {}
        self.map = ShardMap(live_ids, self.config.grid_m)
        self.router = ShardRouter(self.map, self.config.space)
        self.kernels = Kernels(
            self.config.kernel_backend,
            min_rows=self.config.kernel_min_rows,
        )
        space = self.config.space
        self._diameter = math.hypot(space.width, space.height)

        self._homes: dict[ObjectId, int] = {}
        self._home_counts = [0] * n_shards
        self._views: dict[str, Query] = {}
        self._partials: dict[str, dict[int, dict]] = {}
        self._holders: dict[str, set[int]] = {}
        self._dead: set[int] = set()
        self._dead_at: dict[int, float] = {}
        self._retired: set[int] = set(range(n_shards)) - set(live_ids)
        #: Clock of the last ``maybe_rebalance`` action (cooldown input).
        self.last_rebalance_at: float | None = None
        self._clock = 0.0
        self._merged_changes = 0
        #: Degraded-member flags of the last merge, per query id.
        self._merge_degraded: dict[str, frozenset] = {}
        #: Views whose partials changed as a side effect (registration
        #: probes on a shard flipping other local results); drained by
        #: every top-level operation.
        self._dirty: set[str] = set()
        self._stats_cache: dict[int, ServerStats] = {}
        self._metrics_cache: dict[int, dict] = {}
        #: Frozen per-shard profile summaries (kill/close), mirroring
        #: ``_stats_cache`` so ``profile_snapshot`` keeps answering
        #: after workers are gone.
        self._profile_cache: dict[int, dict] = {}
        self._profiling = False
        self._busy = [0.0] * n_shards
        #: Coordinator compute: routing plus merging, the serial part of
        #: the scaling model (benchmarks/test_shards_bench.py).
        self.route_seconds = 0.0
        self.merge_seconds = 0.0

        self._m_migrations = self.metrics.counter("shard.migrations")
        self._m_fanout_reg = self.metrics.counter("shard.fanout.registrations")
        self._m_expansions = self.metrics.counter("shard.fanout.expansions")
        self._m_dead_routed = self.metrics.counter("shard.dead_routed")
        self._m_refresh = self.metrics.counter("shard.fanout.refresh_probes")
        self._m_rebal_checks = self.metrics.counter("shard.rebalance.checks")
        self._m_rebal_grows = self.metrics.counter("shard.rebalance.grows")
        self._m_rebal_shrinks = self.metrics.counter("shard.rebalance.shrinks")
        self._m_rebal_cells = self.metrics.counter(
            "shard.rebalance.moved_cells"
        )
        self._m_rebal_objects = self.metrics.counter(
            "shard.rebalance.moved_objects"
        )
        self._c_updates = [
            self.metrics.counter(f"shard.updates.s{i}") for i in range(n_shards)
        ]
        self._g_objects = [
            self.metrics.gauge(f"shard.objects.s{i}") for i in range(n_shards)
        ]
        self._g_imbalance = self.metrics.gauge("shard.objects.imbalance")
        self._g_dead = self.metrics.gauge("shard.dead")

        self._shards: list = [
            self._make_shard(i) if i in set(live_ids) else RetiredSlot(i)
            for i in range(n_shards)
        ]

    def _make_shard(self, shard_id: int):
        """One fresh shard handle in the cluster's execution mode."""
        if self.n_workers:
            return WorkerShard(
                shard_id, self.config, self._oracle, self.metrics.enabled
            )
        # In-process shards share the coordinator's event log: one
        # causally ordered stream, exactly like the single server.
        return InProcessShard(
            shard_id, self.config, self._oracle, self.metrics.enabled,
            events=self.events,
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __contains__(self, oid: ObjectId) -> bool:
        return oid in self._homes

    @property
    def object_count(self) -> int:
        return len(self._homes)

    @property
    def query_count(self) -> int:
        return len(self._views)

    @property
    def clock(self) -> float:
        return self._clock

    def queries(self) -> frozenset[Query]:
        return frozenset(self._views.values())

    def shard_of_object(self, oid: ObjectId) -> int:
        return self._homes[oid]

    def dead_shards(self) -> frozenset[int]:
        return frozenset(self._dead)

    def retired_shards(self) -> frozenset[int]:
        return frozenset(self._retired)

    def live_shard_ids(self) -> tuple[int, ...]:
        return tuple(self._live())

    def shard_object_counts(self) -> list[int]:
        return list(self._home_counts)

    def holders_of(self, query_id: str) -> frozenset[int]:
        return frozenset(self._holders[query_id])

    def safe_region_of(self, oid: ObjectId) -> Rect:
        home = self._homes[oid]
        if home in self._dead:
            raise KeyError(f"object {oid!r} is homed on dead shard {home}")
        return self._shards[home].call("safe_region", oid)

    def degraded_objects(self) -> dict[ObjectId, float]:
        merged: dict[ObjectId, float] = {}
        for i in self._live():
            merged.update(self._shards[i].call("info")["degraded"])
        for oid, home in self._homes.items():
            if home in self._dead:
                merged.setdefault(oid, self._dead_at[home])
        return merged

    def shard_busy_seconds(self) -> list[float]:
        """Per-shard compute seconds (dead shards: frozen at kill)."""
        busy = list(self._busy)
        for i in self._live():
            if self._shards[i].alive:
                busy[i] = self._shards[i].call("info")["busy"]
        return busy

    def validate(self) -> None:
        for i in self._live():
            self._shards[i].call("validate")
            info = self._shards[i].call("info")
            expected = sorted(
                (oid for oid, home in self._homes.items() if home == i),
                key=repr,
            )
            assert info["oids"] == expected, f"home table desync on shard {i}"

    def refresh_index_gauges(self) -> None:
        if not self.metrics.enabled:
            return
        live = self._live()
        for i in range(self.n_shards):
            self._g_objects[i].set(self._home_counts[i])
        counts = [self._home_counts[i] for i in live]
        if counts and sum(counts):
            self._g_imbalance.set(max(counts) * len(counts) / sum(counts))
        else:
            # An empty cluster is balanced by definition; a stale gauge
            # here would feed phantom skew to the rebalance policy.
            self._g_imbalance.set(1.0)
        self._g_dead.set(len(self._dead))
        if not self.n_workers:
            for i in live:
                self._shards[i].call("refresh_index_gauges")

    @property
    def stats(self) -> ServerStats:
        """Summed per-shard counters; merged-view result changes.

        Per-message cost accounting survives sharding unchanged:
        ``probes`` and ``safe_region_pushes`` are real messages wherever
        they originate, so the sum is the system's message bill.
        ``result_changes`` counts *merged-view* changes — per-shard
        local flips that cancel out in the merge are not deliverable
        deltas.  ``cpu_seconds`` sums shard compute (wall-clock on a
        multi-core host is the max, not the sum; the shard benchmark
        models that explicitly).
        """
        agg = ServerStats()
        for i in range(self.n_shards):
            shard_stats = self._shard_stats(i)
            for f in _dataclass_fields(ServerStats):
                setattr(
                    agg, f.name,
                    getattr(agg, f.name) + getattr(shard_stats, f.name),
                )
        agg.result_changes = self._merged_changes
        # Merge-time refresh probes are real messages to real clients;
        # they land on the same bill as shard-issued probes so the
        # communication-cost model sees the exactness premium.
        agg.probes += self.refresh_probe_count
        return agg

    def profile_start(self, max_ticks: int | None = None) -> None:
        """Begin a tick-phase profiling session on every live shard.

        Rides the existing op pipe (``profile_start`` is an ordinary
        backend op), so worker mode needs no protocol change.
        """
        self._profiling = True
        for i in self._live():
            if self._shards[i].alive:
                self._shards[i].call("profile_start", max_ticks)

    def profile_stop(self) -> None:
        """End the session (shards go back to the no-op profiler)."""
        self._profiling = False
        for i in self._live():
            if self._shards[i].alive:
                self._shards[i].call("profile_stop")

    def profile_snapshot(self, top_k: int = 10) -> dict:
        """Cluster-wide merged profile, plus per-shard summaries.

        Dead or closed shards answer from the summary frozen at
        kill/close time, exactly like ``stats``.
        """
        snapshots: dict[int, dict] = {}
        for i in range(self.n_shards):
            shard = self._shards[i]
            if i not in self._dead and shard.alive:
                snapshots[i] = shard.call("profile_snapshot", top_k)
            elif i in self._profile_cache:
                snapshots[i] = self._profile_cache[i]
        merged = merge_profiles(snapshots.values())
        merged["shards"] = {
            f"shard{i}": summary for i, summary in snapshots.items()
        }
        return merged

    def shard_metrics_snapshots(self) -> dict[str, dict]:
        """Per-shard metric registries, keyed ``shard<i>``.

        Live shards answer directly; closed or retired shards answer
        from the registry frozen at shutdown/retirement, so an elastic
        run's report still carries every shard that ever served (dead
        shards took their registry with them — nothing to render).
        """
        out = {}
        if not self.metrics.enabled:
            return out
        for i in range(self.n_shards):
            if i in self._dead:
                continue
            if self._shards[i].alive:
                snapshot = self._shards[i].call("metrics_snapshot")
            else:
                snapshot = self._metrics_cache.get(i)
            if snapshot is not None:
                out[f"shard{i}"] = snapshot
        return out

    # ------------------------------------------------------------------
    # Object population
    # ------------------------------------------------------------------
    def load_objects(
        self, positions: Iterable[tuple[ObjectId, Point]], time: float = 0.0
    ) -> dict[ObjectId, Rect]:
        self._clock = max(self._clock, time)
        start = _time.process_time()
        excluding = frozenset(self._dead)
        by_shard: dict[int, list] = {}
        for oid, position in positions:
            if oid in self._homes:
                raise KeyError(f"object {oid!r} already loaded")
            shard = self.router.shard_for_point(position, excluding)
            self._homes[oid] = shard
            self._home_counts[shard] += 1
            by_shard.setdefault(shard, []).append(
                (oid, (position.x, position.y))
            )
        self.route_seconds += _time.process_time() - start
        regions: dict[ObjectId, Rect] = {}
        for shard in sorted(by_shard):
            resp = self._shards[shard].call("load", by_shard[shard], time)
            regions.update(resp["regions"])
        self.refresh_index_gauges()
        return regions

    # ------------------------------------------------------------------
    # Query registration
    # ------------------------------------------------------------------
    def register_query(self, query: Query, time: float = 0.0) -> UpdateOutcome:
        qid = query.query_id
        if qid in self._views:
            raise ValueError(f"query {qid!r} already registered")
        spec = query_spec(query)  # raises TypeError for extension types
        del spec
        self._clock = max(self._clock, time)
        self._begin_op()
        excluding = frozenset(self._dead)
        if isinstance(query, RangeQuery):
            targets = sorted(self.router.shards_for_rect(query.rect, excluding))
        else:
            # A fresh kNN query has no distance bound yet: only a global
            # evaluation can find the true top-k, so every live shard
            # evaluates once; the bound then prunes the fan-out.
            targets = sorted(self._live())
        self._views[qid] = query
        self._partials[qid] = {}
        self._holders[qid] = set()
        outcome = UpdateOutcome()
        for shard in targets:
            self._register_on(qid, shard, time, outcome)
        # The initial merge is the registration itself, not a result
        # change — mirror the single server, which reports it as a
        # ``ResultChange(qid, None, snapshot)`` without counting it.
        self._dirty.discard(qid)
        self._remerge(qid, time, outcome=None, count=False)
        if isinstance(query, KNNQuery):
            self._prune(qid)
        outcome.changes.insert(0, ResultChange(
            qid, None, query.result_snapshot(),
            degraded=self._degraded_members(qid),
        ))
        self._drain_dirty(time, outcome)
        return outcome

    def deregister_query(self, query: Query) -> None:
        qid = query.query_id
        if qid not in self._views:
            raise KeyError(f"query {qid!r} is not registered")
        for shard in sorted(self._holders[qid]):
            if shard not in self._dead:
                self._shards[shard].call("deregister", qid)
        del self._views[qid]
        del self._partials[qid]
        del self._holders[qid]

    # ------------------------------------------------------------------
    # Location updates
    # ------------------------------------------------------------------
    def handle_location_update(
        self, oid: ObjectId, position: Point, time: float = 0.0
    ) -> UpdateOutcome:
        self._clock = max(self._clock, time)
        self._begin_op()
        start = _time.process_time()
        plan = self._plan_report(oid, position)
        per_shard: dict[int, list[tuple]] = {}
        for shard, op in plan:
            per_shard.setdefault(shard, []).append(op)
        self.route_seconds += _time.process_time() - start
        responses = self._dispatch(per_shard, time)
        start = _time.process_time()
        outcome = UpdateOutcome()
        affected = self._absorb_responses(responses)
        for shard, op in plan:
            shard_outcome = responses[shard]["outcomes"].pop(0)
            self._fold_outcome(outcome, shard_outcome)
        for qid in sorted(affected):
            self._dirty.discard(qid)
            self._remerge(qid, time, outcome)
        self._drain_dirty(time, outcome)
        self.merge_seconds += _time.process_time() - start
        return outcome

    def handle_location_updates(
        self, reports: Iterable[tuple[ObjectId, Point]], time: float = 0.0
    ) -> BatchOutcome:
        """Batched same-tick reports, mirroring the single server's order.

        The deterministic (destination cell, submission index) order —
        with the duplicate-id fallback to plain submission order — is
        computed coordinator-side, then split into per-shard op streams
        that preserve each shard's subsequence.  Shard states are
        therefore identical whether the streams run interleaved
        in-process or concurrently in workers: shards share no state,
        only the coordinator's merge joins them.
        """
        self._clock = max(self._clock, time)
        self._begin_op()
        start = _time.process_time()
        reports = list(reports)
        oids = [oid for oid, _ in reports]
        if len(set(oids)) != len(oids):
            ordered: Iterable[int] = range(len(reports))
            cells: list | None = None
        else:
            cells = self.router.grid.cells_of_points(
                [position for _, position in reports]
            )
            ordered = sorted(
                range(len(reports)), key=lambda i: (cells[i], i)
            )
        plan: list[tuple[int, tuple]] = []
        for i in ordered:
            oid, position = reports[i]
            plan.extend(self._plan_report(
                oid, position, cells[i] if cells is not None else None
            ))
        per_shard: dict[int, list[tuple]] = {}
        for shard, op in plan:
            per_shard.setdefault(shard, []).append(op)
        self.route_seconds += _time.process_time() - start

        responses = self._dispatch(per_shard, time)

        start = _time.process_time()
        batch = BatchOutcome()
        affected = self._absorb_responses(responses)
        for shard, op in plan:
            batch.merge(op[1], responses[shard]["outcomes"].pop(0))
        merged = UpdateOutcome()
        for qid in sorted(affected):
            self._dirty.discard(qid)
            self._remerge(qid, time, merged)
        self._drain_dirty(time, merged)
        batch.changes.extend(merged.changes)
        batch.regions.update(merged.probed)
        self.merge_seconds += _time.process_time() - start
        self.refresh_index_gauges()
        return batch

    # ------------------------------------------------------------------
    # Failure drill
    # ------------------------------------------------------------------
    def kill_shard(self, shard_id: int, time: float | None = None) -> UpdateOutcome:
        """Hard-stop one shard and contain the damage (docs/SHARDING.md).

        The dead shard's last known partials stay in every merge as
        frozen, ``degraded``-flagged members — conservative, never
        silently dropped.  Routing falls over to each cell's
        rendezvous runner-up, queries are re-registered on the shards
        adopting territory, and each frozen object heals the moment it
        next reports (it migrates to its fall-over home).
        """
        if not 0 <= shard_id < self.n_shards:
            raise ValueError(f"no such shard: {shard_id}")
        if shard_id in self._retired:
            raise ValueError(
                f"shard {shard_id} was removed and cannot be killed"
            )
        if shard_id in self._dead:
            raise ValueError(f"shard {shard_id} is already dead")
        if len(self._live()) == 1:
            raise ValueError("cannot kill the last live shard")
        now = self._clock if time is None else max(time, self._clock)
        self._clock = now
        self._begin_op()
        # Freeze the accounting before the state disappears.
        self._stats_cache[shard_id] = self._shards[shard_id].call("stats")
        self._busy[shard_id] = self._shards[shard_id].call("info")["busy"]
        if self._profiling:
            self._profile_cache[shard_id] = self._shards[shard_id].call(
                "profile_snapshot", 10
            )
        self._dead.add(shard_id)
        self._dead_at[shard_id] = now
        self._shards[shard_id].kill()
        if self.events.enabled:
            self.events.set_time(now)
            self.events.emit("shard_killed", shard=shard_id)
        excluding = frozenset(self._dead)
        outcome = UpdateOutcome()
        for qid in sorted(self._views):
            self._holders[qid].discard(shard_id)
            view = self._views[qid]
            if isinstance(view, RangeQuery):
                needed = self.router.shards_for_rect(view.rect, excluding)
            else:
                radius = view.radius if view.radius > 0 else self._diameter
                needed = self.router.shards_for_circle(
                    Circle(view.center, radius), excluding
                )
            for shard in sorted(needed - self._holders[qid]):
                self._register_on(qid, shard, now, outcome)
            self._dirty.discard(qid)
            self._remerge(qid, now, outcome)
        self._drain_dirty(now, outcome)
        self.refresh_index_gauges()
        return outcome

    # ------------------------------------------------------------------
    # Elastic topology
    # ------------------------------------------------------------------
    def add_shard(self, time: float | None = None) -> UpdateOutcome:
        """Grow the cluster by one shard, live (docs/SHARDING.md).

        Rendezvous hashing makes growth cheap: only the cells the new
        shard *wins* change owner — ``1/(N+1)`` of the grid in
        expectation — and :meth:`ShardMap.moved_cells` lists exactly
        those.  Query copies register on the new shard first (so
        migrated objects are evaluated on arrival, exactly like an
        update-path migration), then each moved object replays as an
        evict on its old home plus an add on the new shard.  The home
        table tracks every move, so ``validate()`` holds mid- and
        post-migration.  The new shard's id is ``n_shards - 1`` after
        the call; ids are never reused.

        Resharding requires a healthy cluster: a dead shard's frozen
        objects cannot be migrated, so heal (or drill) first.
        """
        if self._dead:
            raise ValueError(
                "cannot reshard with dead shards present: "
                f"{sorted(self._dead)} must heal first"
            )
        now = self._clock if time is None else max(time, self._clock)
        self._clock = now
        self._begin_op()
        new_id = self.n_shards
        new_map = self.map.with_shard(new_id)
        moved = self.map.moved_cells(new_map)
        # Gather the moving residents while the old owners still answer.
        by_old: dict[int, list] = {}
        for cell in moved:
            by_old.setdefault(self.map.shard_of(cell), []).append(cell)
        migrating: list[tuple] = []
        for old in sorted(by_old):
            resp = self._shards[old].call("residents", by_old[old])
            migrating.extend(
                (oid, (x, y), old, new_id) for oid, x, y in resp["rows"]
            )
        # Allocate the slot and spawn the shard (worker mode: a fresh
        # process) before any state references the new id.
        self._shards.append(self._make_shard(new_id))
        self._busy.append(0.0)
        self._home_counts.append(0)
        self._c_updates.append(
            self.metrics.counter(f"shard.updates.s{new_id}")
        )
        self._g_objects.append(self.metrics.gauge(f"shard.objects.s{new_id}"))
        self.n_shards = new_id + 1
        if self.n_workers:
            self.n_workers += 1
        self.map = new_map
        self.router = ShardRouter(new_map, self.config.space)
        outcome = UpdateOutcome()
        self._cover_queries(now, outcome)
        self._migrate(migrating, now, outcome)
        self._m_rebal_cells.inc(len(moved))
        self._m_rebal_objects.inc(len(migrating))
        if self.events.enabled:
            self.events.set_time(now)
            self.events.emit(
                "shard_added", shard=new_id, moved_cells=len(moved),
                moved_objects=len(migrating),
                consistent=self._consistent_homes(),
            )
        self.refresh_index_gauges()
        return outcome

    def remove_shard(
        self, shard_id: int, time: float | None = None
    ) -> UpdateOutcome:
        """Retire one live shard, migrating its objects off first.

        The inverse drill of :meth:`add_shard`: exactly the retiring
        shard's cells change owner (each to its rendezvous runner-up),
        adopting shards get query copies before the objects arrive, and
        every object replays as evict+add so intermediate states stay
        ``validate()``-clean.  The slot is then frozen — stats, busy
        time, metrics, and profile answer from caches exactly like a
        closed cluster — and the id is never reused.
        """
        if not 0 <= shard_id < self.n_shards:
            raise ValueError(f"no such shard: {shard_id}")
        if shard_id in self._retired:
            raise ValueError(f"shard {shard_id} is already removed")
        if self._dead:
            raise ValueError(
                "cannot reshard with dead shards present: "
                f"{sorted(self._dead)} must heal first"
            )
        if len(self._live()) == 1:
            raise ValueError("cannot remove the last live shard")
        now = self._clock if time is None else max(time, self._clock)
        self._clock = now
        self._begin_op()
        new_map = self.map.without_shard(shard_id)
        moved = self.map.cells_of(shard_id)
        resp = self._shards[shard_id].call("residents", moved)
        cells = self.router.grid.cells_of_points(
            [Point(x, y) for _, x, y in resp["rows"]]
        )
        migrating = [
            (oid, (x, y), shard_id, new_map.shard_of(cell))
            for (oid, x, y), cell in zip(resp["rows"], cells)
        ]
        self.map = new_map
        self.router = ShardRouter(new_map, self.config.space)
        outcome = UpdateOutcome()
        self._cover_queries(now, outcome)
        self._migrate(migrating, now, outcome)
        # Drop the retiree's query copies; its partials are already
        # empty (every resident was just evicted), so merges only lose
        # a zero contribution.
        for qid in sorted(self._views):
            if shard_id in self._holders[qid]:
                self._shards[shard_id].call("deregister", qid)
                self._holders[qid].discard(shard_id)
                self._partials[qid].pop(shard_id, None)
                self._dirty.add(qid)
        self._drain_dirty(now, outcome)
        # Freeze the slot's accounting, then retire it for good.
        shard = self._shards[shard_id]
        self._stats_cache[shard_id] = shard.call("stats")
        self._busy[shard_id] = shard.call("info")["busy"]
        snapshot = shard.call("metrics_snapshot")
        if snapshot is not None:
            self._metrics_cache[shard_id] = snapshot
        if self._profiling:
            self._profile_cache[shard_id] = shard.call("profile_snapshot", 10)
        shard.close()
        self._shards[shard_id] = RetiredSlot(shard_id)
        self._retired.add(shard_id)
        if self.n_workers:
            self.n_workers -= 1
        self._m_rebal_cells.inc(len(moved))
        self._m_rebal_objects.inc(len(migrating))
        if self.events.enabled:
            self.events.set_time(now)
            self.events.emit(
                "shard_removed", shard=shard_id, moved_cells=len(moved),
                moved_objects=len(migrating),
                consistent=self._consistent_homes(),
            )
        self.refresh_index_gauges()
        return outcome

    def maybe_rebalance(self, policy, time: float | None = None):
        """Apply one step of an occupancy-driven rebalance policy.

        ``policy`` is a :class:`repro.sharding.rebalance.RebalancePolicy`
        (or anything with its ``decide`` signature).  The decision input
        is the live per-shard object census — the same numbers behind
        the ``shard.objects.imbalance`` gauge.  Returns the topology
        change's :class:`UpdateOutcome`, or ``None`` when the policy
        holds still.  Never acts on an unhealthy cluster.
        """
        now = self._clock if time is None else max(time, self._clock)
        self._m_rebal_checks.inc()
        if self._dead:
            return None
        counts = {i: self._home_counts[i] for i in self._live()}
        action = policy.decide(counts, now, self.last_rebalance_at)
        if action is None:
            return None
        if action == "grow":
            outcome = self.add_shard(now)
            detail: dict = {"action": "grow", "shard": self.n_shards - 1}
            self._m_rebal_grows.inc()
        else:
            kind, victim = action
            if kind != "shrink":
                raise ValueError(f"unknown rebalance action {action!r}")
            outcome = self.remove_shard(victim, now)
            detail = {"action": "shrink", "shard": victim}
            self._m_rebal_shrinks.inc()
        self.last_rebalance_at = now
        if self.events.enabled:
            self.events.set_time(now)
            self.events.emit("rebalance", **detail)
        return outcome

    def _cover_queries(self, time: float, outcome: UpdateOutcome) -> None:
        """Register every view on the shards its coverage now needs."""
        excluding = frozenset(self._dead)
        for qid in sorted(self._views):
            view = self._views[qid]
            if isinstance(view, RangeQuery):
                needed = self.router.shards_for_rect(view.rect, excluding)
            else:
                radius = view.radius if view.radius > 0 else self._diameter
                needed = self.router.shards_for_circle(
                    Circle(view.center, radius), excluding
                )
            for shard in sorted(needed - self._holders[qid]):
                self._register_on(qid, shard, time, outcome)
                self._dirty.add(qid)

    def _migrate(
        self, rows: list[tuple], time: float, outcome: UpdateOutcome
    ) -> None:
        """Replay ``(oid, pos, old, target)`` moves as evict+add pairs."""
        plan: list[tuple[int, tuple]] = []
        for oid, pos, old, target in rows:
            plan.append((old, ("evict", oid)))
            plan.append((target, ("add", oid, pos)))
            self._homes[oid] = target
            self._home_counts[old] -= 1
            self._home_counts[target] += 1
        per_shard: dict[int, list[tuple]] = {}
        for shard, op in plan:
            per_shard.setdefault(shard, []).append(op)
        responses = self._dispatch(per_shard, time)
        affected = self._absorb_responses(responses)
        for shard, op in plan:
            shard_outcome = responses[shard]["outcomes"].pop(0)
            self._fold_outcome(outcome, shard_outcome)
        for qid in sorted(affected):
            self._dirty.discard(qid)
            self._remerge(qid, time, outcome)
        self._drain_dirty(time, outcome)

    def _consistent_homes(self) -> bool:
        """Does every live shard's object table match the home table?

        The audit behind the ``consistent`` flag on reshard events —
        ``repro diagnose`` treats a ``false`` as a violation (a split
        or torn home table after a migration).
        """
        for i in self._live():
            if not self._shards[i].alive:
                continue
            expected = sorted(
                (oid for oid, home in self._homes.items() if home == i),
                key=repr,
            )
            if self._shards[i].call("info")["oids"] != expected:
                return False
        return True

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut the shards down, freezing their final stats first.

        ``stats`` / ``shard_busy_seconds`` / ``shard_metrics_snapshots``
        keep answering from the frozen values, so a report can be
        assembled after the worker processes are gone.
        """
        for i in self._live():
            shard = self._shards[i]
            if not shard.alive:
                continue
            self._stats_cache[i] = shard.call("stats")
            self._busy[i] = shard.call("info")["busy"]
            snapshot = shard.call("metrics_snapshot")
            if snapshot is not None:
                self._metrics_cache[i] = snapshot
            if self._profiling:
                self._profile_cache[i] = shard.call("profile_snapshot", 10)
            shard.close()

    def __enter__(self) -> "ShardedServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _live(self) -> list[int]:
        return [
            i for i in range(self.n_shards)
            if i not in self._dead and i not in self._retired
        ]

    def _begin_op(self) -> None:
        """Reset per-operation merge state (the refresh-probe memo)."""
        if self.refresh_probes:
            self._probe_memo.clear()

    def _shard_stats(self, shard_id: int) -> ServerStats:
        if shard_id in self._dead or not self._shards[shard_id].alive:
            return self._stats_cache.get(shard_id, ServerStats())
        return self._shards[shard_id].call("stats")

    def _plan_report(
        self, oid: ObjectId, position: Point, cell=None
    ) -> list[tuple[int, tuple]]:
        """The per-shard ops one report expands to; updates the home table.

        ``cell`` short-circuits the cell lookup when the batch path has
        already computed it for the deterministic ordering.
        """
        excluding = frozenset(self._dead)
        if cell is not None:
            target = self.map.shard_of(cell, excluding)
        else:
            target = self.router.shard_for_point(position, excluding)
        home = self._homes.get(oid)
        pos = (position.x, position.y)
        if self.refresh_probes:
            # A position reported this operation is fresh by definition:
            # pre-seeding the memo spares the merge a probe round trip.
            self._probe_memo[oid] = pos
        self._c_updates[target].inc()
        if home is None or home == target:
            # Unknown ids ride the update op: the owning shard applies
            # its configured raise/drop policy and does the counting.
            return [(target, ("update", oid, pos))]
        self._m_migrations.inc()
        ops: list[tuple[int, tuple]] = []
        if home in self._dead:
            self._m_dead_routed.inc()
        else:
            ops.append((home, ("evict", oid)))
        ops.append((target, ("add", oid, pos)))
        self._homes[oid] = target
        self._home_counts[home] -= 1
        self._home_counts[target] += 1
        return ops

    def _dispatch(
        self, per_shard: dict[int, list[tuple]], time: float
    ) -> dict[int, dict]:
        """Run each shard's op stream; workers run them concurrently."""
        if not self.n_workers:
            return {
                shard: self._shards[shard].call("batch", ops, time)
                for shard, ops in sorted(per_shard.items())
            }
        from multiprocessing.connection import wait

        pending: dict = {}
        for shard, ops in sorted(per_shard.items()):
            self._shards[shard].send_op("batch", ops, time)
            pending[self._shards[shard].conn] = shard
        responses: dict[int, dict] = {}
        while pending:
            for conn in wait(list(pending)):
                shard = pending[conn]
                done = self._shards[shard].service()
                if done is not None:
                    responses[shard] = done[1]
                    del pending[conn]
        return responses

    def _absorb_responses(self, responses: dict[int, dict]) -> set[str]:
        """Store refreshed partials and busy time; return affected qids."""
        affected: set[str] = set()
        for shard, resp in responses.items():
            self._busy[shard] = resp["busy"]
            for qid, partial in resp["partials"].items():
                if qid in self._partials:
                    self._partials[qid][shard] = partial
                    affected.add(qid)
        return affected

    @staticmethod
    def _fold_outcome(into: UpdateOutcome, outcome: UpdateOutcome) -> None:
        if outcome.safe_region is not None:
            into.safe_region = outcome.safe_region
        into.probed.update(outcome.probed)
        for missed in outcome.missed:
            if missed not in into.missed:
                into.missed.append(missed)
        into.queries_checked += outcome.queries_checked
        into.queries_reevaluated += outcome.queries_reevaluated

    def _register_on(
        self, qid: str, shard: int, time: float,
        outcome: UpdateOutcome | None,
    ) -> None:
        spec = query_spec(self._views[qid])
        resp = self._shards[shard].call("register", spec, time)
        self._holders[qid].add(shard)
        self._partials[qid][shard] = resp["partial"]
        for other, partial in resp["partials"].items():
            if other != qid and other in self._partials:
                self._partials[other][shard] = partial
                self._dirty.add(other)
        self._m_fanout_reg.inc()
        if outcome is not None:
            self._fold_outcome(outcome, resp["outcome"])

    def _drain_dirty(
        self, time: float, outcome: UpdateOutcome | None
    ) -> None:
        """Remerge views whose partials changed as side effects.

        Remerging can register queries on further shards (fan-out
        expansion), whose evaluation probes can dirty yet more views;
        registrations are sticky and per-(query, shard) unique, so the
        drain terminates.
        """
        while self._dirty:
            qid = min(self._dirty)
            self._dirty.discard(qid)
            if qid in self._views:
                self._remerge(qid, time, outcome)

    def _prune(self, qid: str) -> None:
        """Drop holders outside a kNN view's conservative bound.

        Sound because the bound circle covers every cell that can hold
        a top-k member (docs/SHARDING.md); the expansion in ``_remerge``
        re-registers a pruned shard the moment the bound grows back
        over its territory.  One-shot at registration — no churn.
        """
        view = self._views[qid]
        if view.radius <= 0 or view.radius >= self._diameter:
            return
        excluding = frozenset(self._dead)
        needed = self.router.shards_for_circle(
            Circle(view.center, view.radius), excluding
        )
        for shard in sorted(self._holders[qid] - needed):
            self._shards[shard].call("deregister", qid)
            self._holders[qid].discard(shard)
            self._partials[qid].pop(shard, None)

    def _degraded_members(self, qid: str) -> tuple:
        view = self._views[qid]
        flagged = self._merge_degraded.get(qid, frozenset())
        return tuple(sorted(
            (oid for oid in view.results if oid in flagged), key=repr
        ))

    def _remerge(
        self, qid: str, time: float, outcome: UpdateOutcome | None,
        count: bool = True,
    ) -> None:
        """Recompute one merged view from current partials.

        For kNN views, runs the fan-out fixpoint: after each merge the
        conservative bound may cover cells of non-holders; those shards
        are registered (their registration evaluates local objects) and
        the merge repeats.  The bound only shrinks as holders join, so
        the loop visits each shard at most once.
        """
        view = self._views[qid]
        before = view.result_snapshot()
        for _ in range(self.n_shards + 1):
            degraded = self._recompute_view(qid)
            if not isinstance(view, KNNQuery):
                break
            radius = view.radius if view.radius > 0 else self._diameter
            needed = self.router.shards_for_circle(
                Circle(view.center, radius), frozenset(self._dead)
            )
            missing = sorted(needed - self._holders[qid])
            if not missing:
                break
            for shard in missing:
                self._register_on(qid, shard, time, outcome)
            self._m_expansions.inc(len(missing))
        self._merge_degraded[qid] = frozenset(degraded)
        after = view.result_snapshot()
        if outcome is not None:
            outcome.changes.append(
                ResultChange(qid, before, after, degraded=degraded)
            )
        if count and before != after:
            self._merged_changes += 1

    def _recompute_view(self, qid: str) -> tuple:
        """One merge pass; returns the degraded-member flags."""
        view = self._views[qid]
        parts = self._partials[qid]
        if isinstance(view, RangeQuery):
            merged: set = set()
            degraded: set = set()
            for shard in sorted(parts):
                partial = parts[shard]
                dead = shard in self._dead
                flagged = set(partial["degraded"])
                for oid in partial["results"]:
                    if dead and self._homes.get(oid, shard) != shard:
                        continue  # re-homed: the live shard answers now
                    merged.add(oid)
                    if dead or oid in flagged:
                        degraded.add(oid)
            view.results = merged
            return tuple(sorted(degraded & merged, key=repr))

        pool: dict = {}
        flagged_src: dict = {}
        # Live rows first: a frozen row must never shadow a live one.
        for shard in sorted(parts, key=lambda s: (s in self._dead, s)):
            partial = parts[shard]
            dead = shard in self._dead
            flagged = set(partial["degraded"])
            for row in partial["rows"]:
                oid = row[0]
                if oid in pool:
                    continue
                if dead and self._homes.get(oid, shard) != shard:
                    continue
                pool[oid] = row
                flagged_src[oid] = dead or oid in flagged
        try:
            rows = sorted(pool.values())
        except TypeError:  # unorderable object ids
            rows = sorted(pool.values(), key=lambda r: repr(r[0]))
        bounds = sorted(r[3] for r in rows)
        if len(bounds) >= view.k:
            bound = bounds[view.k - 1]
        else:
            bound = self._diameter
        xs = [r[1] for r in rows]
        ys = [r[2] for r in rows]
        if self.refresh_probes and rows:
            self._refresh_rows(rows, xs, ys, bound)
        top = self.kernels.top_k_rows(
            xs, ys, view.center.x, view.center.y, view.k,
        )
        view.results = [rows[i][0] for i in top]
        # The merged radius stays the conservative k-th ``max_dist``
        # even when probes tightened the ranking: the fan-out expansion
        # must cover every object that *could* enter the top-k without
        # reporting, which fresh point positions cannot bound.
        view.radius = bound
        return tuple(sorted(
            (oid for oid in view.results if flagged_src.get(oid)), key=repr
        ))

    def _refresh_rows(
        self, rows: list, xs: list, ys: list, bound: float
    ) -> None:
        """Swap held coordinates for probed ones on boundary candidates.

        Exactness (docs/SHARDING.md "Refresh probes"): ``bound`` is the
        k-th smallest ``max_dist``, so k candidates have true distance
        ≤ ``bound``; any candidate whose safe-region ``min_dist``
        exceeds it cannot belong to the true top-k and needs no probe.
        Probing every remaining candidate and re-ranking by live
        positions therefore reproduces the single server's answer.
        Probes are memoised per top-level operation (and pre-seeded
        with this batch's reported positions), so only genuinely stale
        boundary candidates cost a message; a probe timeout falls back
        to the held row — conservative, never worse than before.
        """
        memo = self._probe_memo
        for i, row in enumerate(rows):
            if len(row) < 5 or row[4] > bound:
                continue
            oid = row[0]
            if oid in memo:
                fresh = memo[oid]
            else:
                self._m_refresh.inc()
                self.refresh_probe_count += 1
                try:
                    p = self._oracle(oid)
                except ProbeTimeout:
                    fresh = None
                else:
                    fresh = (p.x, p.y)
                memo[oid] = fresh
            if fresh is not None:
                xs[i] = fresh[0]
                ys[i] = fresh[1]
