"""Occupancy-driven elastic rebalance policy (docs/SHARDING.md).

The coordinator exposes the mechanism — ``add_shard`` / ``remove_shard``
migrate exactly the cells the rendezvous map moves — and this module
owns the *policy*: when is the cluster worth resizing?

The decision input is the live per-shard object census, the same
numbers behind the ``shard.objects.imbalance`` gauge
(``max(counts) * n / sum(counts)``; 1.0 is perfect balance):

* **grow** when the census is hot *and* skewed — mean occupancy at or
  above ``grow_occupancy`` and imbalance at or above ``grow_imbalance``
  — because rendezvous growth carves cells off every shard, including
  the overloaded one, and a cold cluster gains nothing from more
  fan-out surface;
* **shrink** when the cluster runs cold — mean occupancy strictly below
  ``shrink_occupancy`` — retiring the emptiest live shard (lowest id on
  ties) so the merge has fewer partials to pool;
* otherwise hold still.  A ``cooldown`` between actions stops the
  policy from thrashing while a migration's effects settle, and
  ``min_shards`` / ``max_shards`` bound the topology.

Policies are parsed from compact CLI specs (``--rebalance``), e.g.::

    max=6,grow-occupancy=120,grow-imbalance=1.5,cooldown=2

Unset keys keep the defaults below.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Spec key → constructor field.
_KEYS = {
    "min": "min_shards",
    "max": "max_shards",
    "grow-occupancy": "grow_occupancy",
    "grow-imbalance": "grow_imbalance",
    "shrink-occupancy": "shrink_occupancy",
    "cooldown": "cooldown",
}


@dataclass(frozen=True, slots=True)
class RebalancePolicy:
    """Threshold policy over the live per-shard object census."""

    #: Never shrink below / grow above this many live shards.
    min_shards: int = 1
    max_shards: int = 8
    #: Grow only when mean objects per live shard reaches this…
    grow_occupancy: float = 100.0
    #: …and the imbalance gauge (max * n / sum) reaches this.
    grow_imbalance: float = 1.25
    #: Shrink when mean objects per live shard falls below this
    #: (0 disables shrinking).
    shrink_occupancy: float = 0.0
    #: Minimum clock time between actions.
    cooldown: float = 1.0

    def __post_init__(self) -> None:
        if self.min_shards < 1:
            raise ValueError("min_shards must be at least 1")
        if self.max_shards < self.min_shards:
            raise ValueError("max_shards must be >= min_shards")
        if self.grow_imbalance < 1.0:
            raise ValueError("grow_imbalance below 1.0 can never hold still")
        if self.cooldown < 0:
            raise ValueError("cooldown must be non-negative")

    @classmethod
    def parse(cls, spec: str) -> "RebalancePolicy":
        """A policy from a ``key=value,...`` spec (see module docstring)."""
        overrides: dict = {}
        for item in spec.split(","):
            item = item.strip()
            if not item:
                continue
            key, sep, value = item.partition("=")
            field = _KEYS.get(key.strip())
            if not sep or field is None:
                known = ", ".join(sorted(_KEYS))
                raise ValueError(
                    f"bad rebalance spec item {item!r} (known keys: {known})"
                )
            try:
                parsed = float(value)
            except ValueError:
                raise ValueError(
                    f"bad rebalance spec value in {item!r}"
                ) from None
            if field in ("min_shards", "max_shards"):
                parsed = int(parsed)
            overrides[field] = parsed
        return cls(**overrides)

    def decide(
        self,
        counts: dict[int, int],
        now: float,
        last_action_at: float | None,
    ):
        """``"grow"``, ``("shrink", shard_id)``, or ``None`` (hold).

        ``counts`` is the live shard → object count census.  The caller
        (``ShardedServer.maybe_rebalance``) supplies the clock pair for
        the cooldown check and executes whatever comes back.
        """
        if last_action_at is not None and now - last_action_at < self.cooldown:
            return None
        live = len(counts)
        total = sum(counts.values())
        if live == 0 or total == 0:
            return None
        mean = total / live
        imbalance = max(counts.values()) * live / total
        if (
            live < self.max_shards
            and mean >= self.grow_occupancy
            and imbalance >= self.grow_imbalance
        ):
            return "grow"
        if (
            self.shrink_occupancy > 0
            and live > self.min_shards
            and mean < self.shrink_occupancy
        ):
            victim = min(sorted(counts), key=lambda i: counts[i])
            return ("shrink", victim)
        return None
