"""Snapshot v2 save/load for the sharded deployment.

A sharded checkpoint is a thin envelope around one core snapshot
(:mod:`repro.core.snapshot`, format v2) **per shard** — each shard's
payload round-trips through the exact machinery the single server uses,
so the per-shard format never forks.  The envelope adds only what the
coordinator owns: the shard count (the cell → shard map is a pure
function of ``(n_shards, grid_m)``, so it needs no serialising) and the
coordinator clock.  Only healthy clusters checkpoint: a dead shard's
frozen partials are transient containment state, not durable data.
"""

from __future__ import annotations

import json

from repro.core.snapshot import FORMAT_VERSION, snapshot_server
from repro.sharding.coordinator import ShardedServer


def snapshot_shards(sharded: ShardedServer) -> dict:
    """Checkpoint every live shard of a healthy cluster.

    Retired slots (``remove_shard``) carry no durable state — their
    objects migrated before retirement — so the envelope records the
    *live* shard ids alongside the per-shard payloads.  Restoring
    rebuilds the same holey topology (ids are never reused).
    """
    if sharded.dead_shards():
        raise ValueError("cannot snapshot a cluster with dead shards")
    live = sharded.live_shard_ids()
    if sharded.n_workers:
        payloads = [sharded._shards[i].call("snapshot") for i in live]
    else:
        payloads = [
            snapshot_server(sharded._shards[i].backend.server)
            for i in live
        ]
    return {
        "version": FORMAT_VERSION,
        "kind": "sharded",
        "n_shards": sharded.n_shards,
        "shard_ids": list(live),
        "time": sharded.clock,
        "shards": payloads,
    }


def restore_shards(
    payload: dict,
    position_oracle,
    n_workers: int = 0,
    metrics=None,
    events=None,
    refresh_probes: bool = False,
) -> ShardedServer:
    """Rebuild a :class:`ShardedServer` from :func:`snapshot_shards` output.

    Each shard restores through :func:`repro.core.snapshot.restore_server`;
    the coordinator then rebuilds its own state — home table from the
    shard object tables, merged views from the restored per-shard query
    copies — so the result continues exactly where the checkpoint left
    off (pinned in ``tests/test_sharding_snapshot.py``).

    The home table must come out *consistent*: an object claimed by two
    shard payloads means the checkpoint interleaved a migration's evict
    and add (a torn, mid-move capture) and is rejected rather than
    restored split — the invariant ``repro diagnose`` audits on reshard
    events.
    """
    if payload.get("kind") != "sharded":
        raise ValueError("not a sharded snapshot (missing kind='sharded')")
    if payload.get("version") != FORMAT_VERSION:
        raise ValueError(
            f"unsupported snapshot version {payload.get('version')!r}"
        )
    shard_payloads = payload["shards"]
    shard_ids = payload.get("shard_ids")
    if shard_ids is None:  # pre-elastic envelope: ids were 0..N-1
        shard_ids = list(range(payload["n_shards"]))
    if len(shard_ids) != len(shard_payloads):
        raise ValueError(
            f"snapshot lists {len(shard_ids)} shard ids but "
            f"{len(shard_payloads)} shard payloads"
        )
    config_payload = shard_payloads[0]["config"]
    from repro.core.snapshot import config_from_payload

    config = config_from_payload(config_payload)
    sharded = ShardedServer(
        position_oracle,
        config,
        n_workers=n_workers,
        metrics=metrics,
        events=events,
        refresh_probes=refresh_probes,
        shard_ids=shard_ids,
    )
    sharded._clock = payload["time"]
    for shard_id, shard_payload in zip(shard_ids, shard_payloads):
        sharded._shards[shard_id].call("restore", shard_payload)
        for key in shard_payload["objects"]:
            oid = json.loads(key)
            oid = tuple(oid) if isinstance(oid, list) else oid
            held = sharded._homes.get(oid)
            if held is not None:
                raise ValueError(
                    f"torn snapshot: object {oid!r} appears on shards "
                    f"{held} and {shard_id} — the checkpoint caught a "
                    "migration between its evict and add"
                )
            sharded._homes[oid] = shard_id
            sharded._home_counts[shard_id] += 1
        for spec in shard_payload["queries"]:
            qid = spec["query_id"]
            if qid not in sharded._views:
                sharded._views[qid] = _view_from_snapshot_spec(spec)
                sharded._partials[qid] = {}
                sharded._holders[qid] = set()
            sharded._holders[qid].add(shard_id)
    for qid in sorted(sharded._views):
        for shard_id in sorted(sharded._holders[qid]):
            partials = sharded._shards[shard_id].call(
                "query_partials", [qid]
            )
            sharded._partials[qid][shard_id] = partials[qid]
        sharded._remerge(qid, sharded._clock, outcome=None, count=False)
    sharded._dirty.clear()
    return sharded


def _view_from_snapshot_spec(spec: dict):
    """A merged-view query object from a core-snapshot query payload."""
    from repro.core.queries import KNNQuery, RangeQuery
    from repro.geometry.point import Point
    from repro.geometry.rect import Rect

    if spec["type"] == "range":
        return RangeQuery(Rect(*spec["rect"]), query_id=spec["query_id"])
    if spec["type"] == "knn":
        cx, cy = spec["center"]
        return KNNQuery(
            Point(cx, cy), spec["k"],
            order_sensitive=spec["order_sensitive"],
            query_id=spec["query_id"],
        )
    raise ValueError(f"unknown query type in snapshot: {spec['type']!r}")
