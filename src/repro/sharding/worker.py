"""Worker-process hosting of one :class:`~repro.sharding.backend.ShardBackend`.

Each shard runs in its own ``multiprocessing`` process, escaping the
GIL so per-shard compute genuinely overlaps on multi-core hosts.  The
coordinator talks to it over one duplex pipe with a tiny message
vocabulary:

* parent → child: ``("op", name, args)``, ``("close",)``, and
  ``("probe_result", ok, value)`` answering an in-flight probe;
* child → parent: ``("probe", oid)`` — the shard needs an exact
  position, which only the coordinator's oracle can supply — then
  ``("done", payload)`` or ``("exc", type_name, message)``.

Probes are the only mid-op upcall: the paper's probe channel terminates
at the position oracle, which lives with the coordinator (in the
simulator it charges costs and synchronises the client).  Shard busy
time is process CPU time, so the pipe wait inside a probe round trip
is never billed as shard compute.

Workers are daemonic: an abandoned coordinator cannot leak processes.
"""

from __future__ import annotations

import multiprocessing as mp
import time as _time

from repro.core.server import ServerConfig
from repro.faults import ProbeTimeout


def _spawn_context():
    """Prefer fork (cheap, inherits the import graph); fall back safely."""
    try:
        return mp.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX hosts
        return mp.get_context("spawn")


def worker_main(conn, shard_id: int, config: ServerConfig,
                metrics_enabled: bool) -> None:
    """Child entry point: serve ops until ``close`` or EOF."""
    from repro.obs import MetricsRegistry
    from repro.sharding.backend import ShardBackend

    def probe(oid):
        conn.send(("probe", oid))
        kind, *rest = conn.recv()
        if kind != "probe_result":
            raise RuntimeError(f"protocol error: expected probe_result, got {kind}")
        ok, value = rest
        if ok:
            return value
        if value == "timeout":
            raise ProbeTimeout(oid)
        raise RuntimeError(f"probe for {oid!r} failed: {value}")

    registry = MetricsRegistry() if metrics_enabled else None
    backend = ShardBackend(shard_id, config, probe, metrics=registry)
    while True:
        try:
            message = conn.recv()
        except EOFError:
            return
        if message[0] == "close":
            conn.send(("done", None))
            return
        if message[0] != "op":
            conn.send(("exc", "RuntimeError",
                       f"protocol error: {message[0]!r}"))
            continue
        _, name, args = message
        try:
            if name == "restore":
                backend.restore(args[0], probe)
                result = None
            else:
                result = getattr(backend, name)(*args)
        except Exception as exc:  # marshalled to the coordinator
            conn.send(("exc", type(exc).__name__, str(exc)))
            continue
        if isinstance(result, dict) and "busy" in result:
            result["busy"] = backend.busy_seconds
        conn.send(("done", result))


class WorkerShard:
    """Parent-side handle driving one worker process."""

    def __init__(self, shard_id: int, config: ServerConfig, oracle,
                 metrics_enabled: bool = False) -> None:
        self.shard_id = shard_id
        self._oracle = oracle
        ctx = _spawn_context()
        self.conn, child_conn = ctx.Pipe()
        self.process = ctx.Process(
            target=worker_main,
            args=(child_conn, shard_id, config, metrics_enabled),
            daemon=True,
            name=f"repro-shard-{shard_id}",
        )
        self.process.start()
        child_conn.close()
        self.alive = True

    # -- plumbing ------------------------------------------------------
    def send_op(self, name: str, *args) -> None:
        self.conn.send(("op", name, args))

    def service(self) -> tuple | None:
        """Handle one child message; return the op result when done.

        Answers probe upcalls from the coordinator-held oracle inline;
        returns ``("done", payload)`` / raises on ``exc`` frames.
        """
        message = self.conn.recv()
        kind = message[0]
        if kind == "probe":
            oid = message[1]
            try:
                position = self._oracle(oid)
            except ProbeTimeout:
                self.conn.send(("probe_result", False, "timeout"))
            except Exception as exc:  # pragma: no cover - oracle bug
                self.conn.send(("probe_result", False, repr(exc)))
            else:
                self.conn.send(("probe_result", True, position))
            return None
        if kind == "exc":
            _, type_name, text = message
            if type_name == "KeyError":
                raise KeyError(text)
            raise RuntimeError(f"shard {self.shard_id} {type_name}: {text}")
        if kind == "done":
            return message
        raise RuntimeError(f"protocol error from shard: {kind!r}")

    def call(self, name: str, *args):
        """Synchronous op round trip (probes serviced inline)."""
        self.send_op(name, *args)
        while True:
            done = self.service()
            if done is not None:
                return done[1]

    def kill(self) -> None:
        """Hard-stop the worker — the failure-drill primitive."""
        if not self.alive:
            return
        self.alive = False
        self.process.kill()
        self.process.join(timeout=5.0)
        self.conn.close()

    def close(self) -> None:
        """Graceful shutdown."""
        if not self.alive:
            return
        self.alive = False
        try:
            self.conn.send(("close",))
            self.conn.recv()
        except (BrokenPipeError, EOFError, OSError):
            pass
        self.process.join(timeout=5.0)
        if self.process.is_alive():  # pragma: no cover - hung worker
            self.process.kill()
            self.process.join(timeout=5.0)
        self.conn.close()
