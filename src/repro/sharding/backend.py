"""One shard's server plus the operation surface the coordinator drives.

A shard is a complete :class:`~repro.core.server.DatabaseServer` over
the *full* workspace geometry (same ``grid_m``, same space) that happens
to hold only the objects homed to its cells and copies of the queries
whose quarantine areas overlap its territory.  Safe regions are clipped
to one grid cell and cells are atomically owned, so the shard has every
fact it needs to maintain its local results — "dumb shards, smart
router" (docs/SHARDING.md).

:class:`ShardBackend` implements the op vocabulary once; the in-process
mode calls it directly and the ``multiprocessing`` worker
(:mod:`repro.sharding.worker`) hosts one behind a pipe.  Keeping a
single implementation is what makes the two modes behave identically
per shard.
"""

from __future__ import annotations

import time as _time
from typing import Hashable

from repro.core.queries import KNNQuery, Query, RangeQuery
from repro.core.server import DatabaseServer, ServerConfig
from repro.geometry.point import Point
from repro.geometry.rect import Rect

ObjectId = Hashable


def query_spec(query: Query) -> dict:
    """A picklable description of ``query`` for cross-process registration.

    Only the built-in query types ship across shard boundaries; an
    extension query would need its own spec round-trip.
    """
    if isinstance(query, RangeQuery):
        return {
            "type": "range",
            "query_id": query.query_id,
            "rect": (
                query.rect.min_x, query.rect.min_y,
                query.rect.max_x, query.rect.max_y,
            ),
        }
    if isinstance(query, KNNQuery):
        return {
            "type": "knn",
            "query_id": query.query_id,
            "center": (query.center.x, query.center.y),
            "k": query.k,
            "order_sensitive": query.order_sensitive,
        }
    raise TypeError(
        f"sharded mode cannot route query type {type(query).__name__}"
    )


def query_from_spec(spec: dict) -> Query:
    """A fresh (empty-result) query built from :func:`query_spec` output."""
    if spec["type"] == "range":
        return RangeQuery(Rect(*spec["rect"]), query_id=spec["query_id"])
    if spec["type"] == "knn":
        cx, cy = spec["center"]
        return KNNQuery(
            Point(cx, cy), spec["k"],
            order_sensitive=spec["order_sensitive"],
            query_id=spec["query_id"],
        )
    raise TypeError(f"unknown query spec type {spec['type']!r}")


class ShardBackend:
    """The per-shard op surface (see module docstring)."""

    def __init__(
        self,
        shard_id: int,
        config: ServerConfig,
        probe,
        metrics=None,
        events=None,
    ) -> None:
        self.shard_id = shard_id
        self.registry = metrics
        self.server = DatabaseServer(
            probe, config, metrics=metrics, events=events
        )
        self._queries: dict[str, Query] = {}
        #: CPU seconds spent inside ops (``time.process_time``) — the
        #: shard's share of the critical path in the scaling model.
        #: Process CPU time is immune to timesharing with sibling
        #: workers and accrues ~nothing while blocked on a probe round
        #: trip, so no pipe-wait correction is needed.
        self.busy_seconds = 0.0

    # -- op surface ----------------------------------------------------
    def load(
        self, pairs: list[tuple[ObjectId, tuple[float, float]]], time: float
    ) -> dict:
        start = _time.process_time()
        regions = self.server.load_objects(
            [(oid, Point(x, y)) for oid, (x, y) in pairs], time
        )
        self.busy_seconds += _time.process_time() - start
        return {"regions": regions}

    def register(self, spec: dict, time: float) -> dict:
        start = _time.process_time()
        query = query_from_spec(spec)
        outcome = self.server.register_query(query, time)
        self._queries[query.query_id] = query
        # Evaluation probes can flip *other* local queries (a probe may
        # catch an object outside its safe region); their partials must
        # reach the coordinator too, or the merged views go stale.
        touched = set(outcome.probed) | set(outcome.missed)
        partials = self._affected_partials(touched, [outcome])
        partial = partials.pop(query.query_id, None)
        if partial is None:
            partial = self._partial(query)
        self.busy_seconds += _time.process_time() - start
        return {"outcome": outcome, "partial": partial, "partials": partials}

    def deregister(self, query_id: str) -> None:
        query = self._queries.pop(query_id, None)
        if query is not None:
            self.server.deregister_query(query)

    def batch(self, ops: list[tuple], time: float) -> dict:
        """Run a sequence of update/add/evict ops, in the given order.

        Returns per-op outcomes (in order), the refreshed partials of
        every query the ops may have touched, and the compute seconds
        the batch cost this shard.

        The stream's location updates are pre-planned through the
        server's tick planner (``DatabaseServer.planned_tick``): their
        predictable kernel work is gathered and dispatched in one
        columnar pass up front, and each per-op call consumes its
        verdicts where still valid.  The coordinator needs per-op
        outcomes, so the ops themselves still run one by one — results
        are bit-identical either way (the shard-equivalence pin in
        ``benchmarks/test_shards_bench.py`` holds the proof).
        """
        start = _time.process_time()
        outcomes = []
        touched: set[ObjectId] = set()
        updates = [
            (op[1], Point(*op[2])) for op in ops if op[0] == "update"
        ]
        # One profiled tick per batch op: the plan's gather/dispatch and
        # every per-op phase nest under it (per-op auto-roots defer to
        # the open tick).
        profiler = self.server.profiler
        owns_tick = profiler.enabled and profiler.tick_begin()
        try:
            with self.server.planned_tick(updates, time):
                for op in ops:
                    kind, oid = op[0], op[1]
                    if kind == "update":
                        outcome = self.server.handle_location_update(
                            oid, Point(*op[2]), time
                        )
                    elif kind == "add":
                        outcome = self.server.add_object(
                            oid, Point(*op[2]), time
                        )
                    elif kind == "evict":
                        outcome = self.server.evict_object(oid, time)
                    else:
                        raise ValueError(f"unknown shard op {kind!r}")
                    outcomes.append(outcome)
                    touched.add(oid)
                    touched.update(outcome.probed)
                    touched.update(outcome.missed)
        finally:
            if owns_tick:
                # Updates and adds are both location reports (a migrated
                # report arrives as evict-on-old + add-on-new), so the
                # profiled report count reconciles with the
                # coordinator's ``location_updates`` sum.
                profiler.tick_end(
                    sum(1 for op in ops if op[0] in ("update", "add"))
                )
        partials = self._affected_partials(touched, outcomes)
        self.busy_seconds += _time.process_time() - start
        return {
            "outcomes": outcomes,
            "partials": partials,
            "busy": self.busy_seconds,
        }

    def residents(self, cells: list[tuple]) -> dict:
        """``(oid, x, y)`` rows of the objects resident in ``cells``.

        The migration work-list of an elastic topology change: the
        coordinator asks the old owner which of its objects sit in the
        moved cells, then replays them as evict+add pairs.  Reads the
        position store's cell residency — one dict probe per cell, no
        scan — and returns rows in (cell, object id) order so the
        migration op stream is deterministic.
        """
        store = self.server.positions
        rows: list[tuple] = []
        for cell in cells:
            cell = tuple(cell)
            for oid in sorted(store.cell_ids(cell), key=repr):
                x, y = store.get(oid)
                rows.append((oid, x, y))
        return {"rows": rows}

    def query_partials(self, query_ids: list[str]) -> dict:
        return {
            qid: self._partial(self._queries[qid])
            for qid in query_ids
            if qid in self._queries
        }

    def stats(self):
        return self.server.stats

    def metrics_snapshot(self) -> dict | None:
        if self.registry is None:
            return None
        return self.registry.to_dict()

    def info(self) -> dict:
        return {
            "objects": self.server.object_count,
            "queries": self.server.query_count,
            "clock": self.server.clock,
            "busy": self.busy_seconds,
            "oids": sorted(self.server._objects, key=repr),
            "degraded": self.server.degraded_objects(),
        }

    def safe_region(self, oid: ObjectId) -> Rect:
        return self.server.safe_region_of(oid)

    def snapshot(self) -> dict:
        from repro.core.snapshot import snapshot_server

        return snapshot_server(self.server)

    def restore(self, payload: dict, probe) -> None:
        from repro.core.snapshot import restore_server

        self.server = restore_server(payload, probe)
        self._queries = {q.query_id: q for q in self.server.queries()}

    def validate(self) -> None:
        self.server.validate()

    def refresh_index_gauges(self) -> None:
        self.server.refresh_index_gauges()

    def profile_start(self, max_ticks: int | None = None) -> None:
        """Attach a fresh tick-phase profiler to this shard's server.

        Reached through the generic op dispatch, so the pipe protocol
        needs no new message kinds — ``profile_start`` / a later
        ``profile_snapshot`` are ordinary ops.
        """
        from repro.obs import TickProfiler

        self.server.attach_profiler(TickProfiler(max_ticks=max_ticks))

    def profile_stop(self) -> None:
        """Detach the profiler (the shared no-op goes back in)."""
        from repro.obs import NULL_PROFILER

        self.server.attach_profiler(NULL_PROFILER)

    def profile_snapshot(self, top_k: int = 10) -> dict:
        """This shard's picklable phase/hotspot summary."""
        return self.server.profile_snapshot(top_k)

    # -- partial extraction --------------------------------------------
    def _affected_partials(self, touched: set[ObjectId], outcomes) -> dict:
        """Partials of every query the ops may have changed.

        Membership scans — not the reevaluation log alone — because an
        order-insensitive kNN member moving *within* the quarantine
        circle changes no result yet moves the row position the
        cross-shard merge ranks by.
        """
        affected: set[str] = set()
        for outcome in outcomes:
            for change in outcome.changes:
                affected.add(change.query_id)
        for query in self._queries.values():
            if any(oid in query.results for oid in touched):
                affected.add(query.query_id)
        return self.query_partials(sorted(affected))

    def _partial(self, query: Query) -> dict:
        """This shard's contribution to the query's merged result."""
        server = self.server
        degraded = sorted(
            (oid for oid in query.results if server.is_degraded(oid)),
            key=repr,
        )
        if isinstance(query, KNNQuery):
            rows = []
            for oid in query.results:
                x, y = server.positions.get(oid)
                region = server.safe_region_of(oid)
                # ``max_dist`` is the merge's conservative ranking bound;
                # ``min_dist`` tells the coordinator which candidates a
                # refresh probe could still move into or out of the true
                # top-k (docs/SHARDING.md "Refresh probes").
                rows.append((
                    oid, x, y,
                    region.max_dist_to_point(query.center),
                    region.min_dist_to_point(query.center),
                ))
            return {
                "kind": "knn",
                "rows": rows,
                "radius": query.radius,
                "degraded": degraded,
            }
        return {
            "kind": "range",
            "results": sorted(query.results, key=repr),
            "degraded": degraded,
        }
