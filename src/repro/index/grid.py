"""The grid-based in-memory query index (Section 3.3 of the paper).

The workspace is partitioned into ``M x M`` uniform cells.  Each cell's
bucket holds the queries whose quarantine area overlaps the cell.  Upon a
location update from point ``p_lst`` to ``p``, only the queries in the two
buckets containing those points can be affected.  The same buckets give the
*relevant queries* when computing an object's safe region (Section 5).

Hot-path acceleration (docs/PERFORMANCE.md): every cell carries a
*generation* counter, bumped whenever a query registers into or leaves the
cell.  Lookups are served from a per-cell cache — the bucket frozen into a
frozenset plus the deterministically sorted relevant-query tuple the
location manager consumes — validated against the generation, so the
common no-churn lookup costs two dict probes instead of a set copy and a
sort.  The generations are also the server's invalidation signal for its
lazy safe-region recomputation (``ObjectState.sr_stamp``).
"""

from __future__ import annotations

from typing import Hashable, Iterable, Protocol

from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.obs import COUNT_BUCKETS, NULL_EVENT_LOG, NULL_REGISTRY

CellId = tuple[int, int]

_EMPTY_BUCKET: frozenset = frozenset()
_EMPTY_SORTED: tuple = ()


class GridIndexable(Protocol):
    """What the grid needs from a query: precise quarantine overlap tests."""

    def quarantine_bounding_rect(self) -> Rect:
        """Bounding rectangle of the quarantine area."""
        ...

    def quarantine_overlaps(self, rect: Rect) -> bool:
        """Whether the quarantine area intersects ``rect``."""
        ...

    def __hash__(self) -> int: ...


class GridIndex:
    """A sparse ``M x M`` uniform grid over registered queries."""

    def __init__(
        self,
        m: int,
        space: Rect | None = None,
        metrics=None,
        enable_cache: bool = True,
        kernels=None,
        events=None,
    ) -> None:
        if m < 1:
            raise ValueError("grid resolution must be positive")
        self.m = m
        self.space = space if space is not None else Rect(0.0, 0.0, 1.0, 1.0)
        if self.space.is_degenerate:
            raise ValueError("grid space must have positive area")
        self._cell_w = self.space.width / m
        self._cell_h = self.space.height / m
        self._buckets: dict[CellId, set] = {}
        self._cells_of: dict[Hashable, frozenset[CellId]] = {}
        self.enable_cache = enable_cache
        #: Per-cell membership generation; bumped whenever a query starts
        #: or stops overlapping the cell.  Absent cells are generation 0.
        self._generations: dict[CellId, int] = {}
        #: Per-cell lookup cache: cell -> (generation, frozenset bucket,
        #: relevant-query tuple sorted by query_id).  Entries are validated
        #: lazily against the cell generation.
        self._cache: dict[CellId, tuple[int, frozenset, tuple]] = {}
        #: Interned cell rectangles (cache-enabled mode only).
        self._cell_rects: dict[CellId, Rect] = {}
        self._total_slots = 0
        self.kernels = kernels
        self.events = NULL_EVENT_LOG if events is None else events
        self.metrics = NULL_REGISTRY if metrics is None else metrics
        self._m_lookups = self.metrics.counter("grid.lookups")
        self._m_hits = self.metrics.counter("grid.cache.hits")
        self._m_misses = self.metrics.counter("grid.cache.misses")
        self._m_candidates = self.metrics.histogram(
            "grid.candidates", COUNT_BUCKETS
        )
        self._m_cell_scans = self.metrics.histogram(
            "grid.covered_cells", COUNT_BUCKETS
        )
        self._g_occupied = self.metrics.gauge("grid.occupied_cells")
        self._g_occ_mean = self.metrics.gauge("grid.cell_occupancy.mean")
        self._g_occ_peak = self.metrics.gauge("grid.cell_occupancy.peak")
        self._g_cells_indexed = self.metrics.gauge("grid.cells_indexed")
        self._occ_peak = 0  # watermark backing the peak gauge

    def __len__(self) -> int:
        return len(self._cells_of)

    def __contains__(self, query) -> bool:
        return query in self._cells_of

    # ------------------------------------------------------------------
    # Cell arithmetic
    # ------------------------------------------------------------------
    def cell_of(self, p: Point) -> CellId:
        """The (column, row) cell containing ``p`` (clamped to the space)."""
        i = int((p.x - self.space.min_x) / self._cell_w)
        j = int((p.y - self.space.min_y) / self._cell_h)
        hi = self.m - 1
        if i < 0:
            i = 0
        elif i > hi:
            i = hi
        if j < 0:
            j = 0
        elif j > hi:
            j = hi
        return (i, j)

    def cell_rect(self, cell: CellId) -> Rect:
        """The rectangle covered by ``cell`` (interned when caches are on)."""
        if self.enable_cache:
            rect = self._cell_rects.get(cell)
            if rect is not None:
                return rect
        i, j = cell
        if not (0 <= i < self.m and 0 <= j < self.m):
            raise IndexError(f"cell {cell} outside {self.m}x{self.m} grid")
        rect = Rect(
            self.space.min_x + i * self._cell_w,
            self.space.min_y + j * self._cell_h,
            self.space.min_x + (i + 1) * self._cell_w,
            self.space.min_y + (j + 1) * self._cell_h,
        )
        if self.enable_cache:
            self._cell_rects[cell] = rect
        return rect

    def cell_rect_of_point(self, p: Point) -> Rect:
        """The rectangle of the cell containing ``p``."""
        return self.cell_rect(self.cell_of(p))

    def bind_position_store(self, store, metrics=None) -> None:
        """Make ``store`` cell-resident over this grid's geometry.

        Hands the store the exact :meth:`cell_of` arithmetic (offset,
        cell extents, clamp bound), so ``store.cell_of(oid)`` is always
        ``self.cell_of(stored position)`` — the hot paths then read an
        object's current cell as one dict probe instead of recomputing
        it from coordinates (docs/PERFORMANCE.md "Resident columns").
        """
        store.bind_grid(
            self.space.min_x,
            self.space.min_y,
            self._cell_w,
            self._cell_h,
            self.m,
            metrics=metrics,
        )

    def cells_of_points(self, points: list[Point]) -> list[CellId]:
        """Batch :meth:`cell_of` over a list of points.

        With kernels attached the whole batch runs as one array pass
        (``Kernels.cells_of`` truncates and clamps exactly like the
        scalar arithmetic above); otherwise it falls back to a per-point
        loop.
        """
        if self.kernels is not None:
            return self.kernels.cells_of(
                [p.x for p in points],
                [p.y for p in points],
                self.space.min_x,
                self.space.min_y,
                self._cell_w,
                self._cell_h,
                self.m,
            )
        return [self.cell_of(p) for p in points]

    def cells_overlapping(self, rect: Rect) -> Iterable[CellId]:
        """All cell ids whose rectangle intersects ``rect``."""
        lo_i = int((rect.min_x - self.space.min_x) / self._cell_w)
        hi_i = int((rect.max_x - self.space.min_x) / self._cell_w)
        lo_j = int((rect.min_y - self.space.min_y) / self._cell_h)
        hi_j = int((rect.max_y - self.space.min_y) / self._cell_h)
        lo_i = min(max(lo_i, 0), self.m - 1)
        hi_i = min(max(hi_i, 0), self.m - 1)
        lo_j = min(max(lo_j, 0), self.m - 1)
        hi_j = min(max(hi_j, 0), self.m - 1)
        for i in range(lo_i, hi_i + 1):
            for j in range(lo_j, hi_j + 1):
                yield (i, j)

    # ------------------------------------------------------------------
    # Generations
    # ------------------------------------------------------------------
    def cell_generation(self, cell: CellId) -> int:
        """Membership generation of ``cell`` (0 until first touched).

        The generation advances exactly when a query starts or stops
        overlapping the cell, so ``(cell, generation)`` identifies one
        immutable snapshot of the cell's relevant-query set.
        """
        return self._generations.get(cell, 0)

    def has_queries_in_cell(self, cell: CellId) -> bool:
        """Whether any query's quarantine area overlaps ``cell`` (O(1))."""
        return cell in self._buckets

    def _bump(self, cells: Iterable[CellId]) -> None:
        generations = self._generations
        emit = self.events.enabled
        for cell in cells:
            generation = generations.get(cell, 0) + 1
            generations[cell] = generation
            if emit:
                # Each bump invalidates the cell's cached views and any
                # lazy safe-region certificate stamped with an older
                # generation (docs/PERFORMANCE.md).
                self.events.emit(
                    "cache_invalidation",
                    cell=list(cell), generation=generation,
                )

    def _refresh_occupancy(self) -> None:
        occupied = len(self._buckets)
        self._g_occupied.set(occupied)
        mean = self._total_slots / occupied if occupied else 0.0
        self._g_occ_mean.set(mean)
        # Total (query, cell) slots — the index's logical size.
        self._g_cells_indexed.set(self._total_slots)

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def insert(self, query: GridIndexable) -> None:
        """Register a query under every cell its quarantine area overlaps."""
        if query in self._cells_of:
            raise KeyError(f"query {query!r} already registered")
        cells = self._covered_cells(query)
        peak = 0
        for cell in cells:
            bucket = self._buckets.setdefault(cell, set())
            bucket.add(query)
            if len(bucket) > peak:
                peak = len(bucket)
        self._cells_of[query] = cells
        self._bump(cells)
        self._total_slots += len(cells)
        self._refresh_occupancy()
        if peak > self._occ_peak:
            self._occ_peak = peak
            self._g_occ_peak.set(peak)

    def remove(self, query: GridIndexable) -> None:
        """Deregister a query.  Raises ``KeyError`` when absent."""
        cells = self._cells_of.pop(query)
        for cell in cells:
            bucket = self._buckets[cell]
            bucket.discard(query)
            if not bucket:
                del self._buckets[cell]
        self._bump(cells)
        self._total_slots -= len(cells)
        self._refresh_occupancy()

    def update(self, query: GridIndexable) -> None:
        """Refresh a query's buckets after its quarantine area changed."""
        old = self._cells_of.get(query)
        if old is None:
            raise KeyError(f"query {query!r} not registered")
        new = self._covered_cells(query)
        if new == old:
            return
        left = old - new
        entered = new - old
        for cell in left:
            bucket = self._buckets[cell]
            bucket.discard(query)
            if not bucket:
                del self._buckets[cell]
        peak = 0
        for cell in entered:
            bucket = self._buckets.setdefault(cell, set())
            bucket.add(query)
            if len(bucket) > peak:
                peak = len(bucket)
        self._cells_of[query] = new
        self._bump(left)
        self._bump(entered)
        self._total_slots += len(new) - len(old)
        self._refresh_occupancy()
        if peak > self._occ_peak:
            self._occ_peak = peak
            self._g_occ_peak.set(peak)

    def _covered_cells(self, query: GridIndexable) -> frozenset[CellId]:
        bounding = query.quarantine_bounding_rect()
        covered = frozenset(
            cell
            for cell in self.cells_overlapping(bounding)
            if query.quarantine_overlaps(self.cell_rect(cell))
        )
        self._m_cell_scans.observe(len(covered))
        return covered

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def _cached_views(self, cell: CellId, bucket: set) -> tuple[frozenset, tuple]:
        """Generation-validated (frozenset, sorted tuple) views of a bucket.

        The sorted tuple is ordered by ``query_id`` — exactly the order
        the server's location manager iterates relevant queries in, so a
        cache hit removes both the set copy and the sort from the hot
        path.
        """
        generation = self._generations.get(cell, 0)
        cached = self._cache.get(cell)
        if cached is not None and cached[0] == generation:
            self._m_hits.inc()
            return cached[1], cached[2]
        self._m_misses.inc()
        frozen = frozenset(bucket)
        ordered = tuple(sorted(bucket, key=_query_order))
        self._cache[cell] = (generation, frozen, ordered)
        return frozen, ordered

    def queries_in_cell(self, cell: CellId) -> frozenset:
        """Queries whose quarantine area overlaps ``cell``."""
        bucket = self._buckets.get(cell)
        if bucket is None:
            return _EMPTY_BUCKET
        if not self.enable_cache:
            return frozenset(bucket)
        return self._cached_views(cell, bucket)[0]

    def queries_at(self, p: Point) -> frozenset:
        """Queries whose quarantine area overlaps the cell containing ``p``.

        These are the *relevant queries* of the paper for an object at
        ``p`` — candidates for being affected by an update at ``p`` and the
        only queries that can constrain ``p``'s safe region.
        """
        return self.queries_in_cell(self.cell_of(p))

    def relevant_queries(self, cell: CellId) -> tuple:
        """The cell's relevant queries sorted by ``query_id``.

        With the cache enabled this is served from the generation-stamped
        per-cell cache; disabled, it is rebuilt per call (the seed
        behaviour, kept as the benchmark ablation baseline).
        """
        bucket = self._buckets.get(cell)
        if bucket is None:
            return _EMPTY_SORTED
        if not self.enable_cache:
            return tuple(sorted(bucket, key=_query_order))
        return self._cached_views(cell, bucket)[1]

    def candidate_queries(self, p: Point, p_lst: Point | None) -> frozenset:
        """Queries to check on an update from ``p_lst`` to ``p`` (Section 3.3)."""
        if p_lst is None:
            candidates = self.queries_at(p)
        else:
            cell_new = self.cell_of(p)
            cell_old = self.cell_of(p_lst)
            if cell_new == cell_old:
                candidates = self.queries_in_cell(cell_new)
            else:
                candidates = (
                    self.queries_in_cell(cell_new)
                    | self.queries_in_cell(cell_old)
                )
        self._m_lookups.inc()
        self._m_candidates.observe(len(candidates))
        return candidates

    def candidate_queries_ordered(self, p: Point, p_lst: Point | None) -> tuple:
        """:meth:`candidate_queries` as a ``query_id``-sorted tuple.

        Exactly the set ``candidate_queries`` returns, in exactly the
        order ``sorted(candidates, key=lambda q: q.query_id)`` produces —
        but served by merging the two cells' cached ordered views instead
        of re-sorting per update.  Metrics (``grid.lookups`` and the
        candidate-size histogram) match ``candidate_queries`` call for
        call, so the two entry points are interchangeable.
        """
        if p_lst is None:
            ordered = self.relevant_queries(self.cell_of(p))
        else:
            cell_new = self.cell_of(p)
            cell_old = self.cell_of(p_lst)
            if cell_new == cell_old:
                ordered = self.relevant_queries(cell_new)
            else:
                a = self.relevant_queries(cell_new)
                b = self.relevant_queries(cell_old)
                if not a:
                    ordered = b
                elif not b:
                    ordered = a
                else:
                    ordered = _merge_ordered(a, b)
        self._m_lookups.inc()
        self._m_candidates.observe(len(ordered))
        return ordered

    def all_queries(self) -> frozenset:
        """Every registered query."""
        return frozenset(self._cells_of)

    def approximate_size_bytes(self) -> int:
        """Rough in-memory footprint of the index (pointer accounting).

        Mirrors the paper's report of the query-index size (≈ 300 KB at
        W = 1000, M = 50): each bucket slot is counted as one 8-byte
        pointer plus fixed per-cell overhead.  The acceleration-layer
        structures are included too — interned cell rectangles, the
        generation map, and the per-cell cached views (a frozenset and a
        sorted tuple over the bucket) — so the memory gauge reflects what
        the cache actually holds rather than under-reporting it.
        """
        pointer_bytes = 8
        per_cell_overhead = 64
        rect_bytes = 80  # Rect object: 4 float slots + object header
        generation_entry_bytes = 32  # dict slot + small-int value
        total = 0
        for bucket in self._buckets.values():
            total += per_cell_overhead + pointer_bytes * len(bucket)
        total += rect_bytes * len(self._cell_rects)
        total += generation_entry_bytes * len(self._generations)
        for _, frozen, ordered in self._cache.values():
            # Cache entry: dict slot + 3-tuple, a frozenset and a tuple
            # view each holding one pointer per member.
            total += per_cell_overhead + pointer_bytes * (
                len(frozen) + len(ordered)
            )
        return total


def _query_order(query) -> str:
    return query.query_id


def _merge_ordered(a: tuple, b: tuple) -> tuple:
    """Deduplicating two-pointer merge of ``query_id``-sorted tuples."""
    out: list = []
    i = j = 0
    na, nb = len(a), len(b)
    while i < na and j < nb:
        qa, qb = a[i], b[j]
        if qa is qb:
            out.append(qa)
            i += 1
            j += 1
        elif qa.query_id <= qb.query_id:
            out.append(qa)
            i += 1
        else:
            out.append(qb)
            j += 1
    out.extend(a[i:])
    out.extend(b[j:])
    return tuple(out)
