"""A dynamic R*-tree with bottom-up update support.

This is the paper's *object index* (Section 3.2): it stores the current
safe region of every moving object.  The insertion strategy follows the
R*-tree (Beckmann, Kriegel, Schneider, Seeger — SIGMOD 1990): choose-subtree
by overlap/area enlargement, forced reinsertion on first overflow per level,
and the margin-driven topological split.  Frequent location updates go
through :meth:`RStarTree.update`, which applies the bottom-up technique of
Lee et al. (VLDB 2003): when the new rectangle still fits in the leaf's
parent entry, the leaf entry is patched in place without any root-to-leaf
descent or MBR propagation.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Callable, Iterable, Iterator

from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.index.node import Entry, Node, ObjectId


class RStarTree:
    """An in-memory R*-tree over ``(object id, rectangle)`` pairs.

    Each object id appears at most once.  Rectangles may be degenerate
    (points).  The tree keeps a direct-access table from object id to the
    leaf holding it, enabling O(1)-descent updates and deletions.
    """

    def __init__(
        self,
        max_entries: int = 32,
        min_fill: float = 0.4,
        reinsert_fraction: float = 0.3,
        kernels=None,
    ) -> None:
        if max_entries < 4:
            raise ValueError("max_entries must be at least 4")
        if not 0.0 < min_fill <= 0.5:
            raise ValueError("min_fill must be in (0, 0.5]")
        self.max_entries = max_entries
        self.min_entries = max(2, int(math.floor(max_entries * min_fill)))
        self.reinsert_count = max(1, int(max_entries * reinsert_fraction))
        self.kernels = kernels
        self.root: Node = Node(is_leaf=True, level=0)
        self._leaf_of: dict[ObjectId, Node] = {}
        self._rect_of: dict[ObjectId, Rect] = {}
        # Direct pointer to the live leaf Entry of each object: entries
        # survive splits, reinsertion, and condensation by identity, so
        # the table only changes on insert/delete.  It turns the
        # bottom-up update patch into a single attribute store.
        self._entry_of: dict[ObjectId, Entry] = {}

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._rect_of)

    def __contains__(self, oid: ObjectId) -> bool:
        return oid in self._rect_of

    @property
    def height(self) -> int:
        """Number of levels (a single leaf root has height 1)."""
        return self.root.level + 1

    def count_nodes(self) -> int:
        """Total node count (root included) — feeds the ``rstar.nodes`` gauge."""
        total = 0
        stack = [self.root]
        while stack:
            node = stack.pop()
            total += 1
            if not node.is_leaf:
                stack.extend(entry.child for entry in node.entries)
        return total

    def rect_of(self, oid: ObjectId) -> Rect:
        """Current rectangle stored for ``oid`` (KeyError when absent)."""
        return self._rect_of[oid]

    def insert(self, oid: ObjectId, rect: Rect) -> None:
        """Insert a new object.  Raises ``KeyError`` if already present."""
        if oid in self._rect_of:
            raise KeyError(f"object {oid!r} already indexed")
        self._rect_of[oid] = rect
        entry = Entry(rect, oid=oid)
        self._entry_of[oid] = entry
        self._insert_entry(entry, level=0)

    def delete(self, oid: ObjectId) -> None:
        """Remove an object.  Raises ``KeyError`` when absent."""
        leaf = self._leaf_of.pop(oid)
        del self._rect_of[oid]
        entry = self._entry_of.pop(oid)
        try:
            leaf.entries.remove(entry)
        except ValueError:  # pragma: no cover — table desynchronised
            raise RuntimeError("leaf table inconsistent with tree") from None
        self._condense(leaf)

    def update(self, oid: ObjectId, rect: Rect) -> bool:
        """Move ``oid`` to a new rectangle.

        Returns ``True`` when the new rectangle fit inside the leaf's
        recorded MBR so only the leaf entry was patched, ``False`` when
        ancestor MBRs had to be enlarged.  Either way the update is
        bottom-up (Lee et al.): the entry is patched in place and MBRs
        only grow — no delete + reinsert, no choose-subtree descent.
        Movement is local in this workload (a safe region stays inside
        one grid cell), so the enlargement converges on the union of the
        cells a leaf's objects visit; splits and condensation recompute
        tight MBRs whenever membership actually changes.
        """
        leaf = self._leaf_of[oid]
        self._entry_of[oid].rect = rect
        self._rect_of[oid] = rect
        parent_entry = leaf.parent_entry
        if parent_entry is None or parent_entry.rect.contains_rect(rect):
            return True
        self._extend_upward(leaf, rect)
        return False

    def search(self, rect: Rect) -> list[ObjectId]:
        """Ids of all objects whose rectangle intersects ``rect``."""
        return [oid for oid, _ in self.search_entries(rect)]

    def search_entries(self, rect: Rect) -> Iterator[tuple[ObjectId, Rect]]:
        """Yield ``(oid, stored rect)`` for rectangles intersecting ``rect``."""
        if not self.root.entries:
            return
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                for entry in node.entries:
                    if entry.rect.intersects(rect):
                        yield entry.oid, entry.rect
            else:
                for entry in node.entries:
                    if entry.rect.intersects(rect):
                        stack.append(entry.child)

    def nearest_iter(
        self,
        q: Point,
        exclude: Callable[[ObjectId], bool] | None = None,
    ) -> Iterator[tuple[ObjectId, Rect, float]]:
        """Incremental best-first nearest-neighbour iterator.

        Yields ``(oid, rect, delta(q, rect))`` in non-decreasing order of
        minimum distance to ``q`` (Hjaltason & Samet distance browsing).
        ``exclude`` filters objects (used when reevaluation must skip the
        current result set, Section 4.3 case 1).
        """
        if not self.root.entries:
            return
        counter = itertools.count()
        heap: list[tuple[float, int, Node | Entry]] = [
            (0.0, next(counter), self.root)
        ]
        while heap:
            dist, _, item = heapq.heappop(heap)
            if isinstance(item, Node):
                for entry in item.entries:
                    d = entry.rect.min_dist_to_point(q)
                    target = entry if item.is_leaf else entry.child
                    heapq.heappush(heap, (d, next(counter), target))
            else:
                if exclude is not None and exclude(item.oid):
                    continue
                yield item.oid, item.rect, dist

    def all_entries(self) -> Iterator[tuple[ObjectId, Rect]]:
        """Yield every ``(oid, rect)`` pair in the tree."""
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                for entry in node.entries:
                    yield entry.oid, entry.rect
            else:
                stack.extend(entry.child for entry in node.entries)

    # ------------------------------------------------------------------
    # Insertion machinery
    # ------------------------------------------------------------------
    def _insert_entry(self, entry: Entry, level: int) -> None:
        """Insert ``entry`` at ``level``, with one forced-reinsert pass."""
        self._insert_at(entry, level, reinserted_levels=set())

    def _insert_at(
        self, entry: Entry, level: int, reinserted_levels: set[int]
    ) -> None:
        node = self._choose_subtree(entry.rect, level)
        node.entries.append(entry)
        if entry.child is not None:
            entry.child.parent = node
            entry.child.parent_entry = entry
        elif node.is_leaf:
            self._leaf_of[entry.oid] = node
        self._extend_upward(node, entry.rect)
        if len(node.entries) > self.max_entries:
            self._overflow(node, reinserted_levels)

    def _choose_subtree(self, rect: Rect, level: int) -> Node:
        """Descend from the root to the best node at ``level``."""
        node = self.root
        while node.level > level:
            if node.level == level + 1 and node.entries[0].child.is_leaf:
                best = self._pick_min_overlap_child(node, rect)
            else:
                best = self._pick_min_enlargement_child(node, rect)
            node = best.child
        return node

    @staticmethod
    def _pick_min_enlargement_child(node: Node, rect: Rect) -> Entry:
        """Child whose MBR needs least area enlargement (ties: least area)."""
        best = None
        best_key = (math.inf, math.inf)
        for entry in node.entries:
            key = (entry.rect.enlargement(rect), entry.rect.area)
            if key < best_key:
                best_key = key
                best = entry
        return best

    def _pick_min_overlap_child(self, node: Node, rect: Rect) -> Entry:
        """Child needing least overlap enlargement (R* leaf-parent rule).

        The selection rule is the textbook one — least ``(overlap
        enlargement, area enlargement, area)`` — but the quadratic scan is
        dominated by entries that cannot win: a child whose MBR already
        contains ``rect`` has the exact key ``(0, 0, area)`` with no
        pairwise overlap work, and any partial overlap sum that exceeds
        the best seen so far can abort early because its per-sibling terms
        are non-negative.  Both cuts preserve the chosen child.

        With kernels attached, the whole scan runs as one batch pass over
        the entry MBR columns (``Kernels.min_overlap_child`` reproduces
        this loop's selection bit for bit, pruning included).
        """
        entries = node.entries
        if self.kernels is not None and len(entries) >= 2:
            row = self.kernels.min_overlap_child(
                [e.rect.min_x for e in entries],
                [e.rect.min_y for e in entries],
                [e.rect.max_x for e in entries],
                [e.rect.max_y for e in entries],
                rect,
            )
            return entries[row]
        best = None
        best_key = (math.inf, math.inf, math.inf)
        for entry in entries:
            enlarged = entry.rect.union(rect)
            if enlarged == entry.rect:
                # Containment: overlap and area enlargements are exactly 0.
                key = (0.0, 0.0, entry.rect.area)
                if key < best_key:
                    best_key = key
                    best = entry
                continue
            overlap_delta = 0.0
            aborted = False
            best_delta = best_key[0]
            for other in entries:
                if other is entry:
                    continue
                grown = (
                    enlarged.overlap_area(other.rect)
                    - entry.rect.overlap_area(other.rect)
                )
                if grown > 0.0:
                    overlap_delta += grown
                    if overlap_delta > best_delta:
                        aborted = True
                        break
            if aborted:
                continue
            key = (overlap_delta, entry.rect.enlargement(rect), entry.rect.area)
            if key < best_key:
                best_key = key
                best = entry
        return best

    def _overflow(self, node: Node, reinserted_levels: set[int]) -> None:
        """R* overflow treatment: forced reinsert once per level, else split."""
        if node is not self.root and node.level not in reinserted_levels:
            reinserted_levels.add(node.level)
            self._forced_reinsert(node, reinserted_levels)
        else:
            self._split(node, reinserted_levels)

    def _forced_reinsert(self, node: Node, reinserted_levels: set[int]) -> None:
        """Remove the farthest entries and re-insert them (R* §4.3)."""
        center = node.mbr().center
        node.entries.sort(
            key=lambda e: e.rect.center.squared_distance_to(center),
            reverse=True,
        )
        evicted = node.entries[: self.reinsert_count]
        node.entries = node.entries[self.reinsert_count :]
        self._shrink_upward(node)
        # Close reinsert: the entry nearest the old centre goes back first.
        for entry in reversed(evicted):
            if entry.child is None and node.is_leaf:
                # Drop stale table entry; re-registration happens on insert.
                self._leaf_of.pop(entry.oid, None)
            self._insert_at(entry, node.level, reinserted_levels)

    def _split(self, node: Node, reinserted_levels: set[int]) -> None:
        """Split an overflowing node with the R* topological split."""
        group_a, group_b = self._choose_split(node.entries)
        node.entries = group_a
        sibling = Node(is_leaf=node.is_leaf, level=node.level)
        sibling.entries = group_b
        self._adopt_entries(sibling)
        self._adopt_entries(node)

        if node is self.root:
            new_root = Node(is_leaf=False, level=node.level + 1)
            node_entry = Entry(node.mbr(), child=node)
            sibling_entry = Entry(sibling.mbr(), child=sibling)
            new_root.entries.append(node_entry)
            new_root.entries.append(sibling_entry)
            node.parent = new_root
            node.parent_entry = node_entry
            sibling.parent = new_root
            sibling.parent_entry = sibling_entry
            self.root = new_root
            return

        parent = node.parent
        node.parent_entry.rect = node.mbr()
        sibling_entry = Entry(sibling.mbr(), child=sibling)
        parent.entries.append(sibling_entry)
        sibling.parent = parent
        sibling.parent_entry = sibling_entry
        self._shrink_upward(parent)
        if len(parent.entries) > self.max_entries:
            self._overflow(parent, reinserted_levels)

    def _choose_split(
        self, entries: list[Entry]
    ) -> tuple[list[Entry], list[Entry]]:
        """R* split: axis by minimum margin sum, index by overlap/area."""
        m = self.min_entries
        best_axis_entries = None
        best_margin = math.inf
        for axis_sorts in (
            sorted(entries, key=lambda e: (e.rect.min_x, e.rect.max_x)),
            sorted(entries, key=lambda e: (e.rect.min_y, e.rect.max_y)),
        ):
            margin_sum = 0.0
            for k in range(m, len(axis_sorts) - m + 1):
                left = _mbr_of(axis_sorts[:k])
                right = _mbr_of(axis_sorts[k:])
                margin_sum += left.margin + right.margin
            if margin_sum < best_margin:
                best_margin = margin_sum
                best_axis_entries = axis_sorts

        best_key = (math.inf, math.inf)
        best_k = m
        for k in range(m, len(best_axis_entries) - m + 1):
            left = _mbr_of(best_axis_entries[:k])
            right = _mbr_of(best_axis_entries[k:])
            key = (left.overlap_area(right), left.area + right.area)
            if key < best_key:
                best_key = key
                best_k = k
        return best_axis_entries[:best_k], list(best_axis_entries[best_k:])

    def _adopt_entries(self, node: Node) -> None:
        """Point children / leaf-table entries of ``node`` back at it."""
        if node.is_leaf:
            for entry in node.entries:
                self._leaf_of[entry.oid] = node
        else:
            for entry in node.entries:
                entry.child.parent = node
                entry.child.parent_entry = entry

    # ------------------------------------------------------------------
    # Deletion machinery
    # ------------------------------------------------------------------
    def _condense(self, node: Node) -> None:
        """Handle a possibly-underflowing node after an entry removal."""
        orphans: list[tuple[Entry, int]] = []
        while node is not self.root:
            parent = node.parent
            if len(node.entries) < self.min_entries:
                parent.entries.remove(node.parent_entry)
                level = node.level
                orphans.extend((entry, level) for entry in node.entries)
                if node.is_leaf:
                    for entry in node.entries:
                        self._leaf_of.pop(entry.oid, None)
            else:
                node.parent_entry.rect = node.mbr()
            node = parent
        # Shrink the root when it lost all but one child.
        if not self.root.is_leaf and len(self.root.entries) == 1:
            self.root = self.root.entries[0].child
            self.root.parent = None
            self.root.parent_entry = None
        if not self.root.entries and not self.root.is_leaf:  # pragma: no cover
            self.root = Node(is_leaf=True, level=0)
        for entry, level in orphans:
            self._insert_at(entry, level, reinserted_levels=set())

    # ------------------------------------------------------------------
    # MBR maintenance
    # ------------------------------------------------------------------
    def _leaf_bound(self, leaf: Node) -> Rect | None:
        """The rectangle recorded for ``leaf`` in its parent (None for root)."""
        entry = leaf.parent_entry
        return None if entry is None else entry.rect

    def _extend_upward(self, node: Node, rect: Rect) -> None:
        """Grow ancestor entry MBRs so they cover a newly added ``rect``."""
        while node is not None:
            entry = node.parent_entry
            if entry is None or entry.rect.contains_rect(rect):
                return
            entry.rect = entry.rect.union(rect)
            node = node.parent

    def _shrink_upward(self, node: Node) -> None:
        """Recompute ancestor entry MBRs after entries were removed."""
        entry = node.parent_entry
        while entry is not None:
            mbr = node.mbr()
            if entry.rect == mbr:
                break
            entry.rect = mbr
            entry = node.parent.parent_entry
            node = node.parent

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check structural invariants; raises ``AssertionError`` on damage.

        Intended for tests: containment of child MBRs, level consistency,
        fill factors, parent pointers, and direct-access table coherence.
        """
        seen: dict[ObjectId, Rect] = {}
        assert self.root.parent_entry is None, "root has a parent entry"
        self._validate_node(self.root, None, seen)
        assert seen == self._rect_of, "rect table out of sync with tree"
        for oid, leaf in self._leaf_of.items():
            assert any(
                entry.oid == oid for entry in leaf.entries
            ), f"leaf table points {oid!r} at the wrong leaf"
            assert self._entry_of[oid] in leaf.entries, (
                f"entry table points {oid!r} at a dead entry"
            )
        assert set(self._leaf_of) == set(self._rect_of)
        assert set(self._entry_of) == set(self._rect_of)

    def _validate_node(
        self, node: Node, bound: Rect | None, seen: dict[ObjectId, Rect]
    ) -> None:
        assert len(node.entries) <= self.max_entries
        if node is not self.root:
            assert len(node.entries) >= self.min_entries, "underfull node"
        if node.is_leaf:
            assert node.level == 0
            for entry in node.entries:
                assert entry.child is None
                assert entry.oid not in seen, "duplicate object"
                seen[entry.oid] = entry.rect
                if bound is not None:
                    assert bound.contains_rect(entry.rect), "MBR violation"
        else:
            assert node.entries, "empty internal node"
            for entry in node.entries:
                child = entry.child
                assert child is not None and entry.oid is None
                assert child.parent is node, "broken parent pointer"
                assert child.parent_entry is entry, "broken parent entry"
                assert child.level == node.level - 1, "level skew"
                assert entry.rect.contains_rect(child.mbr()), "loose child MBR"
                self._validate_node(child, entry.rect, seen)


def _mbr_of(entries: Iterable[Entry]) -> Rect:
    """MBR of a non-empty collection of entries."""
    it = iter(entries)
    rect = next(it).rect
    for entry in it:
        rect = rect.union(entry.rect)
    return rect
