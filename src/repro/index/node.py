"""Nodes and entries of the R*-tree."""

from __future__ import annotations

from typing import Hashable, Optional

from repro.geometry.rect import Rect

ObjectId = Hashable


class Entry:
    """A single slot of an R-tree node.

    In a leaf node, ``child`` is ``None`` and ``oid`` identifies the object
    whose bounding rectangle (safe region in the paper) is ``rect``.  In an
    internal node, ``child`` points to the covered node and ``oid`` is
    ``None``.
    """

    __slots__ = ("rect", "oid", "child")

    def __init__(
        self,
        rect: Rect,
        oid: ObjectId = None,
        child: Optional["Node"] = None,
    ) -> None:
        self.rect = rect
        self.oid = oid
        self.child = child

    @property
    def is_leaf_entry(self) -> bool:
        return self.child is None

    def __repr__(self) -> str:  # pragma: no cover — debugging aid
        kind = f"oid={self.oid!r}" if self.child is None else "child"
        return f"Entry({kind}, rect={self.rect.as_tuple()})"


class Node:
    """An R-tree node holding up to ``max_entries`` entries.

    ``parent_entry`` is the entry of ``parent`` that points back at this
    node (``None`` for the root) — a direct pointer maintained alongside
    ``parent`` so MBR propagation never scans the parent's entry list.
    """

    __slots__ = ("entries", "is_leaf", "parent", "parent_entry", "level")

    def __init__(
        self,
        is_leaf: bool,
        level: int,
        parent: Optional["Node"] = None,
    ) -> None:
        self.entries: list[Entry] = []
        self.is_leaf = is_leaf
        self.parent = parent
        self.parent_entry: Optional[Entry] = None
        # Leaf nodes are level 0; the root has the greatest level.
        self.level = level

    def mbr(self) -> Rect:
        """Minimum bounding rectangle of all entries.

        Must not be called on an empty node (only the empty root is ever
        empty, and callers special-case it).
        """
        entries = self.entries
        rect = entries[0].rect
        min_x, min_y, max_x, max_y = rect.min_x, rect.min_y, rect.max_x, rect.max_y
        for entry in entries[1:]:
            r = entry.rect
            if r.min_x < min_x:
                min_x = r.min_x
            if r.min_y < min_y:
                min_y = r.min_y
            if r.max_x > max_x:
                max_x = r.max_x
            if r.max_y > max_y:
                max_y = r.max_y
        return Rect(min_x, min_y, max_x, max_y)

    def entry_for_child(self, child: "Node") -> Entry:
        """The entry of this node that points at ``child``."""
        for entry in self.entries:
            if entry.child is child:
                return entry
        raise KeyError("child entry not found — tree corrupted")

    def __len__(self) -> int:
        return len(self.entries)

    def __repr__(self) -> str:  # pragma: no cover — debugging aid
        kind = "leaf" if self.is_leaf else "inner"
        return f"Node({kind}, level={self.level}, n={len(self.entries)})"
