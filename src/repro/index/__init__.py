"""Spatial index substrates.

* :mod:`repro.index.rstar` — a dynamic R*-tree (Beckmann et al., SIGMOD 1990)
  with bottom-up update support (Lee et al., VLDB 2003), the paper's object
  index (Section 3.2).
* :mod:`repro.index.bulk` — Sort-Tile-Recursive bulk loading.
* :mod:`repro.index.grid` — the grid-based in-memory query index
  (Section 3.3).
* :mod:`repro.index.brute` — a brute-force reference index used as the
  oracle in tests and by the PRD / OPT baselines at small scale.
"""

from repro.index.brute import BruteForceIndex
from repro.index.grid import GridIndex
from repro.index.rstar import RStarTree

__all__ = ["RStarTree", "GridIndex", "BruteForceIndex"]
