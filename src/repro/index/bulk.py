"""Sort-Tile-Recursive (STR) bulk loading for the R*-tree.

The simulator (re)builds object indexes over up to ~100k rectangles; STR
packing (Leutenegger et al., ICDE 1997) builds a near-optimal tree in
O(n log n) instead of n individual inserts.  The PRD baseline also uses it,
since periodic monitoring rebuilds its object index at every update instant.
"""

from __future__ import annotations

import math
from typing import Iterable

from repro.geometry.rect import Rect
from repro.index.node import Entry, Node, ObjectId
from repro.index.rstar import RStarTree


def bulk_load(
    items: Iterable[tuple[ObjectId, Rect]],
    max_entries: int = 32,
    min_fill: float = 0.4,
    fill: float = 0.9,
    kernels=None,
) -> RStarTree:
    """Build an :class:`RStarTree` from ``(oid, rect)`` pairs with STR.

    ``fill`` is the target node occupancy (fraction of ``max_entries``);
    leaving headroom keeps the first post-load inserts cheap.
    """
    tree = RStarTree(max_entries=max_entries, min_fill=min_fill, kernels=kernels)
    pairs = list(items)
    if not pairs:
        return tree
    seen: set[ObjectId] = set()
    for oid, _ in pairs:
        if oid in seen:
            raise KeyError(f"duplicate object {oid!r} in bulk load")
        seen.add(oid)

    capacity = max(tree.min_entries + 1, int(max_entries * fill))
    entries = [Entry(rect, oid=oid) for oid, rect in pairs]
    level = 0
    nodes = _pack_level(entries, capacity, tree.min_entries, level, is_leaf=True)
    while len(nodes) > 1:
        level += 1
        parent_entries = [Entry(node.mbr(), child=node) for node in nodes]
        nodes = _pack_level(
            parent_entries, capacity, tree.min_entries, level, is_leaf=False
        )

    root = nodes[0]
    tree.root = root
    _wire_parents(tree, root)
    tree._rect_of = {oid: rect for oid, rect in pairs}
    return tree


def _pack_level(
    entries: list[Entry],
    capacity: int,
    min_entries: int,
    level: int,
    is_leaf: bool,
) -> list[Node]:
    """Tile one level of entries into nodes of at most ``capacity``.

    A trailing node that would fall below ``min_entries`` steals entries
    from its predecessor so the R*-tree fill invariant holds everywhere.
    """
    n = len(entries)
    if n <= capacity:
        node = Node(is_leaf=is_leaf, level=level)
        node.entries = list(entries)
        return [node]

    node_count = math.ceil(n / capacity)
    slice_count = math.ceil(math.sqrt(node_count))
    slice_size = slice_count * capacity

    entries = sorted(entries, key=lambda e: e.rect.center.x)
    nodes: list[Node] = []
    for i in range(0, n, slice_size):
        strip = sorted(
            entries[i : i + slice_size], key=lambda e: e.rect.center.y
        )
        for j in range(0, len(strip), capacity):
            node = Node(is_leaf=is_leaf, level=level)
            node.entries = strip[j : j + capacity]
            nodes.append(node)

    for i in range(1, len(nodes)):
        short = min_entries - len(nodes[i].entries)
        if short > 0:
            donor = nodes[i - 1]
            nodes[i].entries = donor.entries[-short:] + nodes[i].entries
            donor.entries = donor.entries[:-short]
    return nodes


def _wire_parents(tree: RStarTree, node: Node) -> None:
    """Set parent pointers and the direct-access tables recursively."""
    if node.is_leaf:
        for entry in node.entries:
            tree._leaf_of[entry.oid] = node
            tree._entry_of[entry.oid] = entry
        return
    for entry in node.entries:
        entry.child.parent = node
        entry.child.parent_entry = entry
        _wire_parents(tree, entry.child)
