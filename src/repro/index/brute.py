"""A brute-force spatial index with the same API surface as the R*-tree.

Used as the correctness oracle in tests and for the baseline schemes at
small scale, where asymptotics do not matter but trustworthiness does.
"""

from __future__ import annotations

from typing import Callable, Iterator

from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.index.node import ObjectId


class BruteForceIndex:
    """Dictionary-backed stand-in for :class:`~repro.index.rstar.RStarTree`."""

    def __init__(self) -> None:
        self._rects: dict[ObjectId, Rect] = {}

    def __len__(self) -> int:
        return len(self._rects)

    def __contains__(self, oid: ObjectId) -> bool:
        return oid in self._rects

    def rect_of(self, oid: ObjectId) -> Rect:
        return self._rects[oid]

    def insert(self, oid: ObjectId, rect: Rect) -> None:
        if oid in self._rects:
            raise KeyError(f"object {oid!r} already indexed")
        self._rects[oid] = rect

    def delete(self, oid: ObjectId) -> None:
        del self._rects[oid]

    def update(self, oid: ObjectId, rect: Rect) -> bool:
        if oid not in self._rects:
            raise KeyError(f"object {oid!r} not indexed")
        self._rects[oid] = rect
        return True

    def search(self, rect: Rect) -> list[ObjectId]:
        return [oid for oid, _ in self.search_entries(rect)]

    def search_entries(self, rect: Rect) -> Iterator[tuple[ObjectId, Rect]]:
        for oid, stored in self._rects.items():
            if stored.intersects(rect):
                yield oid, stored

    def nearest_iter(
        self,
        q: Point,
        exclude: Callable[[ObjectId], bool] | None = None,
    ) -> Iterator[tuple[ObjectId, Rect, float]]:
        ranked = sorted(
            (
                (rect.min_dist_to_point(q), oid, rect)
                for oid, rect in self._rects.items()
                if exclude is None or not exclude(oid)
            ),
            key=lambda item: item[0],
        )
        for dist, oid, rect in ranked:
            yield oid, rect, dist

    def all_entries(self) -> Iterator[tuple[ObjectId, Rect]]:
        yield from self._rects.items()

    def validate(self) -> None:
        """No structure to validate; present for API parity."""
