"""A brute-force spatial index with the same API surface as the R*-tree.

Used as the correctness oracle in tests and for the baseline schemes at
small scale, where asymptotics do not matter but trustworthiness does.
"""

from __future__ import annotations

from typing import Callable, Iterator

from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.index.node import ObjectId


class BruteForceIndex:
    """Dictionary-backed stand-in for :class:`~repro.index.rstar.RStarTree`.

    With ``kernels`` attached, range filtering runs as one batch
    intersection pass over lazily rebuilt MBR columns (rebuilt on the
    first search after any mutation) instead of a per-entry scan; the
    mask is applied in dict insertion order, so results are identical to
    the scalar loop.
    """

    def __init__(self, kernels=None) -> None:
        self._rects: dict[ObjectId, Rect] = {}
        self.kernels = kernels
        self._columns: tuple | None = None

    def __len__(self) -> int:
        return len(self._rects)

    def __contains__(self, oid: ObjectId) -> bool:
        return oid in self._rects

    def rect_of(self, oid: ObjectId) -> Rect:
        return self._rects[oid]

    def insert(self, oid: ObjectId, rect: Rect) -> None:
        if oid in self._rects:
            raise KeyError(f"object {oid!r} already indexed")
        self._rects[oid] = rect
        self._columns = None

    def delete(self, oid: ObjectId) -> None:
        del self._rects[oid]
        self._columns = None

    def update(self, oid: ObjectId, rect: Rect) -> bool:
        if oid not in self._rects:
            raise KeyError(f"object {oid!r} not indexed")
        self._rects[oid] = rect
        self._columns = None
        return True

    def search(self, rect: Rect) -> list[ObjectId]:
        return [oid for oid, _ in self.search_entries(rect)]

    def search_entries(self, rect: Rect) -> Iterator[tuple[ObjectId, Rect]]:
        if self.kernels is not None and self._rects:
            if self._columns is None:
                rects = self._rects.values()
                self._columns = (
                    [r.min_x for r in rects],
                    [r.min_y for r in rects],
                    [r.max_x for r in rects],
                    [r.max_y for r in rects],
                )
            mask = self.kernels.rects_intersecting(*self._columns, rect)
            for keep, (oid, stored) in zip(mask, self._rects.items()):
                if keep:
                    yield oid, stored
            return
        for oid, stored in self._rects.items():
            if stored.intersects(rect):
                yield oid, stored

    def nearest_iter(
        self,
        q: Point,
        exclude: Callable[[ObjectId], bool] | None = None,
    ) -> Iterator[tuple[ObjectId, Rect, float]]:
        ranked = sorted(
            (
                (rect.min_dist_to_point(q), oid, rect)
                for oid, rect in self._rects.items()
                if exclude is None or not exclude(oid)
            ),
            key=lambda item: item[0],
        )
        for dist, oid, rect in ranked:
            yield oid, rect, dist

    def all_entries(self) -> Iterator[tuple[ObjectId, Rect]]:
        yield from self._rects.items()

    def validate(self) -> None:
        """No structure to validate; present for API parity."""
