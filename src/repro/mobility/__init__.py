"""Mobility substrate: the random waypoint model and client-side logic."""

from repro.mobility.client import MobileClient
from repro.mobility.waypoint import RandomWaypointModel, Segment, Trajectory

__all__ = ["RandomWaypointModel", "Trajectory", "Segment", "MobileClient"]
