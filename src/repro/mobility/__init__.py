"""Mobility substrate: the random waypoint model and client-side logic."""

from repro.mobility.waypoint import RandomWaypointModel, Trajectory, Segment
from repro.mobility.client import MobileClient

__all__ = ["RandomWaypointModel", "Trajectory", "Segment", "MobileClient"]
