"""The random waypoint mobility model (Section 7.1).

Each object repeatedly chooses a uniform destination in the workspace and
moves towards it at a speed drawn from ``U(0, 2 v_mean)``; it re-plans upon
arrival or when its *constant movement period* (drawn from
``U(0, 2 t_v_mean)``) expires.  Trajectories are piecewise linear, generated
lazily and deterministically from a per-object seed, so the exact position
at any time — and the exact moment a safe region is exited — can be
computed analytically.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.geometry.point import Point
from repro.geometry.rect import Rect

_MIN_SEGMENT = 1e-9


@dataclass(frozen=True, slots=True)
class Segment:
    """One linear leg of a trajectory: valid for ``start_time <= t <= end_time``."""

    start_time: float
    end_time: float
    start: Point
    velocity_x: float
    velocity_y: float

    def position_at(self, t: float) -> Point:
        dt = min(max(t, self.start_time), self.end_time) - self.start_time
        return Point(
            self.start.x + self.velocity_x * dt,
            self.start.y + self.velocity_y * dt,
        )

    @property
    def speed(self) -> float:
        return math.hypot(self.velocity_x, self.velocity_y)


class Trajectory:
    """Lazily generated piecewise-linear random-waypoint trajectory."""

    def __init__(
        self,
        start: Point,
        mean_speed: float,
        mean_period: float,
        space: Rect,
        rng: np.random.Generator,
    ) -> None:
        if mean_speed <= 0:
            raise ValueError("mean speed must be positive")
        if mean_period <= 0:
            raise ValueError("mean movement period must be positive")
        self._mean_speed = mean_speed
        self._mean_period = mean_period
        self._space = space
        self._rng = rng
        self._segments: list[Segment] = []
        self._cursor = start
        self._cursor_time = 0.0
        self._search_from = 0

    @property
    def max_speed(self) -> float:
        """Upper bound on this trajectory's speed (``2 v_mean``)."""
        return 2.0 * self._mean_speed

    def _extend_to(self, t: float) -> None:
        while self._cursor_time <= t:
            self._segments.append(self._next_segment())

    def _next_segment(self) -> Segment:
        """Draw the next waypoint leg from the per-object RNG."""
        origin = self._cursor
        destination = Point(
            self._rng.uniform(self._space.min_x, self._space.max_x),
            self._rng.uniform(self._space.min_y, self._space.max_y),
        )
        speed = self._rng.uniform(0.0, 2.0 * self._mean_speed)
        period = self._rng.uniform(0.0, 2.0 * self._mean_period)
        period = max(period, _MIN_SEGMENT)

        distance = origin.distance_to(destination)
        if speed <= 0.0 or distance == 0.0:
            duration = period
            vx = vy = 0.0
        else:
            travel_time = distance / speed
            duration = min(travel_time, period)
            vx = (destination.x - origin.x) / distance * speed
            vy = (destination.y - origin.y) / distance * speed

        start_time = self._cursor_time
        end_time = start_time + duration
        segment = Segment(start_time, end_time, origin, vx, vy)
        self._cursor = segment.position_at(end_time)
        self._cursor_time = end_time
        return segment

    def segment_at(self, t: float) -> Segment:
        """The segment active at time ``t`` (generated on demand)."""
        if t < 0:
            raise ValueError(f"time must be non-negative: {t}")
        self._extend_to(t)
        # Segments are visited in (almost always) increasing time order;
        # remember the last hit to amortise the scan.
        i = self._search_from
        segments = self._segments
        if segments[i].start_time > t:
            i = 0
        while segments[i].end_time < t:
            i += 1
        self._search_from = i
        return segments[i]

    def position_at(self, t: float) -> Point:
        """Exact position at time ``t``."""
        return self.segment_at(t).position_at(t)

    def distance_travelled(self, t0: float, t1: float) -> float:
        """Path length covered between ``t0`` and ``t1``."""
        if t1 <= t0:
            return 0.0
        self._extend_to(t1)
        total = 0.0
        for segment in self._segments:
            if segment.end_time <= t0:
                continue
            if segment.start_time >= t1:
                break
            overlap = min(segment.end_time, t1) - max(segment.start_time, t0)
            total += segment.speed * overlap
        return total

    def exit_time_from_rect(self, rect: Rect, t: float, horizon: float) -> float:
        """First time in ``[t, horizon]`` the trajectory leaves ``rect``.

        Walks segments from ``t`` forward, solving each leg analytically.
        Returns ``inf`` when the object stays inside until ``horizon``.
        """
        current = t
        while current <= horizon:
            segment = self.segment_at(current)
            position = segment.position_at(current)
            if not rect.contains_point(position, eps=1e-12):
                return current
            if segment.velocity_x != 0.0 or segment.velocity_y != 0.0:
                exit_at = current + _segment_exit(position, segment, rect)
                if exit_at <= segment.end_time:
                    return exit_at if exit_at <= horizon else math.inf
            # Hop just past the segment boundary so the successor is picked.
            current = math.nextafter(max(segment.end_time, current), math.inf)
        return math.inf


def _segment_exit(position: Point, segment: Segment, rect: Rect) -> float:
    """Time (relative) until a segment's motion leaves ``rect``."""
    t_exit = math.inf
    vx, vy = segment.velocity_x, segment.velocity_y
    if vx > 0.0:
        t_exit = min(t_exit, (rect.max_x - position.x) / vx)
    elif vx < 0.0:
        t_exit = min(t_exit, (rect.min_x - position.x) / vx)
    if vy > 0.0:
        t_exit = min(t_exit, (rect.max_y - position.y) / vy)
    elif vy < 0.0:
        t_exit = min(t_exit, (rect.min_y - position.y) / vy)
    return max(t_exit, 0.0)


class RandomWaypointModel:
    """Factory producing deterministic per-object trajectories."""

    def __init__(
        self,
        mean_speed: float,
        mean_period: float,
        space: Rect | None = None,
        seed: int = 0,
    ) -> None:
        self.mean_speed = mean_speed
        self.mean_period = mean_period
        self.space = space if space is not None else Rect(0.0, 0.0, 1.0, 1.0)
        self._seed = seed

    def create(self, oid: int) -> Trajectory:
        """Trajectory for object ``oid`` (reproducible per (seed, oid))."""
        rng = np.random.default_rng((self._seed, int(oid)))
        start = Point(
            rng.uniform(self.space.min_x, self.space.max_x),
            rng.uniform(self.space.min_y, self.space.max_y),
        )
        return Trajectory(
            start, self.mean_speed, self.mean_period, self.space, rng
        )
