"""Client-side logic of the SRB scheme.

A mobile client is deliberately simple (one of the paper's selling points):
it knows one rectangle — its current safe region — and sends a location
update exactly when it steps outside.  Between sending an update and
receiving the server's response it is *awaiting* and stays silent; on
receiving a safe region that it has already left (possible under
communication delay), it immediately reports again.
"""

from __future__ import annotations

from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.mobility.waypoint import Trajectory


class MobileClient:
    """A moving object participating in safe-region monitoring."""

    __slots__ = ("oid", "trajectory", "safe_region", "awaiting", "epoch")

    def __init__(self, oid, trajectory: Trajectory) -> None:
        self.oid = oid
        self.trajectory = trajectory
        self.safe_region: Rect | None = None
        #: True between sending an update and installing the response.
        self.awaiting = False
        #: Version counter invalidating stale scheduled boundary-crossing
        #: events after a newer safe region arrives.
        self.epoch = 0

    def position_at(self, t: float) -> Point:
        """Exact position at time ``t`` (GPS reading)."""
        return self.trajectory.position_at(t)

    def install_safe_region(self, region: Rect, t: float) -> bool:
        """Accept a safe region from the server at time ``t``.

        Returns ``True`` when the client is (still) inside the region —
        the normal case — and ``False`` when it has already left, in which
        case the caller must send a fresh location update immediately.
        """
        self.epoch += 1
        self.awaiting = False
        self.safe_region = region
        return region.contains_point(self.position_at(t), eps=1e-12)

    def begin_update(self) -> None:
        """Mark an update as sent; the client mutes until the response."""
        self.awaiting = True
        self.epoch += 1
        self.safe_region = None

    def next_exit_time(self, t: float, horizon: float) -> float:
        """When the client will leave its current safe region.

        ``inf`` when it stays inside until ``horizon`` (or has no region).
        """
        if self.safe_region is None:
            return float("inf")
        return self.trajectory.exit_time_from_rect(self.safe_region, t, horizon)
