"""Invariant checking and anomaly detection over recorded event streams.

:func:`diagnose` replays a stream recorded by
:class:`~repro.obs.events.EventLog` (live objects or a JSONL file read
back via :func:`~repro.obs.events.read_events`) and produces a
:class:`DiagnosticsReport` with two classes of findings:

**Violations** — breaches of invariants the construction guarantees
(DESIGN.md maps each to the paper's result it operationalises):

* ``containment`` — every installed safe region and every shrink push
  must contain the position it was computed for (the quarantine
  soundness underlying Propositions 5.2–5.5: a safe region is an
  inscribed rectangle of the intersection of quarantine constraints,
  which by construction covers the object's last reported location).
  Regions flagged ``degraded`` are exempt: a degraded region is widened
  around a *stale* position precisely because the true one is unknown
  (docs/ROBUSTNESS.md), so last-report containment is not its contract.
* ``monotonic_time`` — event timestamps must never decrease along the
  stream; the :class:`~repro.obs.events.EventLog` clock clamps
  regressions, so a decreasing ``t`` means the recorder is corrupt.
* ``reshard_consistency`` — every elastic topology change
  (``shard_added`` / ``shard_removed`` events) must complete with a
  consistent home table: each object's coordinator-side home matches
  the shard that actually holds it.  A ``consistent: false`` flag means
  a migration tore mid-move — the same split-home state a snapshot
  taken between an evict and its add would capture, which
  ``restore_shards`` refuses for the same reason.
* ``ground_truth`` — with ``check_ground_truth=True``, every ``sample``
  event must report all queries matching the exact results (only sound
  when the run had zero communication delay; with ``tau > 0`` transient
  mismatches are expected and the check must stay off).

**Anomalies** — legal but pathological behaviour worth a look:

* ``probe_cascade`` — one root event (an update or a registration)
  transitively caused more than ``probe_cascade_threshold`` probes.
* ``shrink_storm`` — more than ``shrink_storm_threshold`` shrink pushes
  landed within one ``shrink_storm_window`` of simulated time (the
  §6.1 downlink-budget failure mode the anti-storm relief exists for).
* ``retry_storm`` — more than ``retry_storm_threshold`` probe retries
  within one ``retry_storm_window`` of simulated time: the retry
  machinery is amplifying an outage instead of riding it out.
* ``stuck_degraded`` — an object entered degraded mode and never left
  it for more than ``stuck_degraded_timeout`` before the stream ended;
  conservative answers are still correct but uselessly wide.
* ``time_regression`` — the stream records clamped backwards-time
  updates (reordered reports); legal, but worth knowing about.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(slots=True)
class Finding:
    """One diagnostic finding anchored to the event stream."""

    check: str
    severity: str  # "violation" | "anomaly"
    t: float | None
    seq: int | None
    detail: str

    def row(self) -> dict:
        return {
            "severity": self.severity,
            "check": self.check,
            "t": "-" if self.t is None else f"{self.t:g}",
            "seq": "-" if self.seq is None else self.seq,
            "detail": self.detail,
        }


@dataclass(slots=True)
class DiagnosticsReport:
    """Everything one diagnostics pass concluded."""

    events_seen: int
    checks: tuple[str, ...]
    findings: list[Finding] = field(default_factory=list)

    @property
    def violations(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == "violation"]

    @property
    def anomalies(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == "anomaly"]

    @property
    def ok(self) -> bool:
        """True when no *invariant* was violated (anomalies may exist)."""
        return not self.violations

    def render(self) -> str:
        head = (
            f"== diagnostics: {self.events_seen} events, "
            f"checks: {', '.join(self.checks)}"
        )
        if not self.findings:
            return head + "\nno findings: all invariants hold"
        lines = [head]
        for finding in self.findings:
            row = finding.row()
            lines.append(
                f"{row['severity']:<9} {row['check']:<14} "
                f"t={row['t']:<10} seq={row['seq']:<8} {row['detail']}"
            )
        return "\n".join(lines)


def _contains(region, x: float, y: float, eps: float) -> bool:
    min_x, min_y, max_x, max_y = region
    return (
        min_x - eps <= x <= max_x + eps
        and min_y - eps <= y <= max_y + eps
    )


def diagnose(
    events: list,
    probe_cascade_threshold: int = 10,
    shrink_storm_threshold: int = 25,
    shrink_storm_window: float = 1.0,
    retry_storm_threshold: int = 30,
    retry_storm_window: float = 1.0,
    stuck_degraded_timeout: float = 5.0,
    check_ground_truth: bool = False,
    eps: float = 1e-9,
) -> DiagnosticsReport:
    """Run every diagnostic over ``events`` (dicts or ``Event`` objects)."""
    rows = [
        event if isinstance(event, dict) else event.to_dict()
        for event in events
    ]
    checks = [
        "containment", "monotonic_time", "probe_cascade", "shrink_storm",
        "retry_storm", "stuck_degraded", "time_regression",
        "reshard_consistency",
    ]
    if check_ground_truth:
        checks.append("ground_truth")
    report = DiagnosticsReport(events_seen=len(rows), checks=tuple(checks))

    _check_containment(rows, report, eps)
    _check_monotonic_time(rows, report)
    _check_probe_cascades(rows, report, probe_cascade_threshold)
    _check_shrink_storms(
        rows, report, shrink_storm_threshold, shrink_storm_window
    )
    _check_retry_storms(
        rows, report, retry_storm_threshold, retry_storm_window
    )
    _check_stuck_degraded(rows, report, stuck_degraded_timeout)
    _check_time_regressions(rows, report)
    _check_reshard_consistency(rows, report)
    if check_ground_truth:
        _check_ground_truth(rows, report)
    report.findings.sort(
        key=lambda f: (f.severity != "violation", f.seq or 0)
    )
    return report


def _check_containment(rows, report, eps) -> None:
    """Installed regions and shrink pushes contain their own positions."""
    for event in rows:
        if event.get("kind") not in ("safe_region", "shrink_push"):
            continue
        if event.get("degraded"):
            # Degraded regions are widened around a *stale* position —
            # the true one is unreachable — so this invariant does not
            # apply to them (docs/ROBUSTNESS.md).
            continue
        region = event.get("region")
        pos = event.get("pos")
        if region is None or pos is None:
            continue
        if not _contains(region, pos[0], pos[1], eps):
            report.findings.append(Finding(
                check="containment",
                severity="violation",
                t=event.get("t"),
                seq=event.get("seq"),
                detail=(
                    f"{event['kind']} for oid={event.get('oid')!r} lost its "
                    f"own location: pos={pos} outside region={region}"
                ),
            ))


def _root_of(seq: int, parents: dict) -> int:
    seen = set()
    while seq in parents and parents[seq] is not None and seq not in seen:
        seen.add(seq)
        seq = parents[seq]
    return seq


def _check_probe_cascades(rows, report, threshold) -> None:
    """No root event may transitively trigger a probe avalanche."""
    parents = {e["seq"]: e.get("cause") for e in rows if "seq" in e}
    first: dict[int, dict] = {}
    counts: dict[int, int] = {}
    for event in rows:
        if event.get("kind") != "probe":
            continue
        root = _root_of(event["seq"], parents)
        counts[root] = counts.get(root, 0) + 1
        first.setdefault(root, event)
    for root, count in sorted(counts.items()):
        if count > threshold:
            probe = first[root]
            report.findings.append(Finding(
                check="probe_cascade",
                severity="anomaly",
                t=probe.get("t"),
                seq=root,
                detail=(
                    f"{count} probes share root event #{root} "
                    f"(threshold {threshold}); inspect with "
                    f"'repro events FILE --chain {root}'"
                ),
            ))


def _check_shrink_storms(rows, report, threshold, window) -> None:
    """Shrink pushes must not saturate the downlink within one window."""
    if window <= 0:
        raise ValueError("shrink_storm_window must be positive")
    buckets: dict[int, list[dict]] = {}
    for event in rows:
        if event.get("kind") != "shrink_push":
            continue
        buckets.setdefault(int(event.get("t", 0.0) / window), []).append(event)
    for slot, pushes in sorted(buckets.items()):
        if len(pushes) > threshold:
            report.findings.append(Finding(
                check="shrink_storm",
                severity="anomaly",
                t=slot * window,
                seq=pushes[0].get("seq"),
                detail=(
                    f"{len(pushes)} shrink pushes within window "
                    f"[{slot * window:g}, {(slot + 1) * window:g}) "
                    f"(threshold {threshold})"
                ),
            ))


def _check_monotonic_time(rows, report) -> None:
    """Recorded timestamps never decrease along the stream.

    The :class:`~repro.obs.events.EventLog` clock clamps backwards time
    at emission, so a decreasing ``t`` in a recorded stream means the
    recorder itself is corrupt (or rows were reordered after the fact).
    """
    prev_t = None
    prev_seq = None
    for event in rows:
        t = event.get("t")
        if t is None:
            continue
        if prev_t is not None and t < prev_t:
            report.findings.append(Finding(
                check="monotonic_time",
                severity="violation",
                t=t,
                seq=event.get("seq"),
                detail=(
                    f"timestamp went backwards: t={t:g} after t={prev_t:g} "
                    f"(seq #{prev_seq})"
                ),
            ))
        prev_t = t
        prev_seq = event.get("seq")


def _check_retry_storms(rows, report, threshold, window) -> None:
    """Probe retries must not saturate the probe channel in one window."""
    if window <= 0:
        raise ValueError("retry_storm_window must be positive")
    buckets: dict[int, list[dict]] = {}
    for event in rows:
        if event.get("kind") != "probe_retry":
            continue
        buckets.setdefault(int(event.get("t", 0.0) / window), []).append(event)
    for slot, retries in sorted(buckets.items()):
        if len(retries) > threshold:
            report.findings.append(Finding(
                check="retry_storm",
                severity="anomaly",
                t=slot * window,
                seq=retries[0].get("seq"),
                detail=(
                    f"{len(retries)} probe retries within window "
                    f"[{slot * window:g}, {(slot + 1) * window:g}) "
                    f"(threshold {threshold}); the retry machinery is "
                    f"amplifying an outage"
                ),
            ))


def _check_stuck_degraded(rows, report, timeout) -> None:
    """No object may stay degraded for longer than ``timeout``.

    Conservative answers remain correct while degraded, but a region
    widened for that long covers so much space it is useless; a stuck
    episode usually means the probe channel is dead or the object left.
    """
    if timeout <= 0:
        raise ValueError("stuck_degraded_timeout must be positive")
    open_episodes: dict[str, dict] = {}
    end_t = 0.0
    for event in rows:
        end_t = max(end_t, event.get("t", 0.0))
        kind = event.get("kind")
        if kind == "degraded_enter":
            open_episodes[str(event.get("oid"))] = event
        elif kind in ("degraded_exit", "update"):
            # A fresh source report ends the episode just like a
            # successful probe does.
            open_episodes.pop(str(event.get("oid")), None)
    for oid, enter in sorted(open_episodes.items()):
        duration = end_t - enter.get("t", 0.0)
        if duration > timeout:
            report.findings.append(Finding(
                check="stuck_degraded",
                severity="anomaly",
                t=enter.get("t"),
                seq=enter.get("seq"),
                detail=(
                    f"oid={oid} degraded for {duration:g} without recovery "
                    f"by stream end (timeout {timeout:g})"
                ),
            ))


def _check_time_regressions(rows, report) -> None:
    """Surface clamped backwards-time updates as one aggregate anomaly."""
    regressions = [e for e in rows if e.get("kind") == "time_regression"]
    if regressions:
        first = regressions[0]
        report.findings.append(Finding(
            check="time_regression",
            severity="anomaly",
            t=first.get("t"),
            seq=first.get("seq"),
            detail=(
                f"{len(regressions)} update(s) carried a time earlier than "
                f"the server clock and were clamped (reordered reports)"
            ),
        ))


def _check_reshard_consistency(rows, report) -> None:
    """Every elastic topology change left a consistent home table.

    ``shard_added`` / ``shard_removed`` events carry the coordinator's
    post-migration audit: ``consistent`` is ``true`` iff every live
    shard's object table matches the home table.  ``false`` is a torn
    migration — some object's evict and add did not both land.
    """
    for event in rows:
        if event.get("kind") not in ("shard_added", "shard_removed"):
            continue
        if event.get("consistent", True):
            continue
        action = (
            "grow" if event["kind"] == "shard_added" else "shrink"
        )
        report.findings.append(Finding(
            check="reshard_consistency",
            severity="violation",
            t=event.get("t"),
            seq=event.get("seq"),
            detail=(
                f"elastic {action} of shard {event.get('shard')} left a "
                f"split home table (moved_cells="
                f"{event.get('moved_cells')}, moved_objects="
                f"{event.get('moved_objects')})"
            ),
        ))


def _check_ground_truth(rows, report) -> None:
    """Every accuracy checkpoint matched the exact results."""
    for event in rows:
        if event.get("kind") != "sample":
            continue
        matches = event.get("matches")
        comparisons = event.get("comparisons")
        if matches is None or comparisons is None:
            continue
        if matches < comparisons:
            report.findings.append(Finding(
                check="ground_truth",
                severity="violation",
                t=event.get("t"),
                seq=event.get("seq"),
                detail=(
                    f"{comparisons - matches}/{comparisons} queries "
                    f"diverged from ground truth at the checkpoint"
                ),
            ))
