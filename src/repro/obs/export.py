"""Exporters: JSON documents, JSON-lines sinks, human-readable tables.

Three shapes move through here:

* a *registry snapshot* — ``MetricsRegistry.to_dict()``:
  ``{"counters": ..., "gauges": ..., "histograms": ...}``;
* a *metrics document* — ``{"schemes": {name: snapshot}}`` plus free-form
  top-level fields, the shape ``--metrics-out`` and the benchmark
  artifact ``bench_metrics.json`` write;
* *JSON lines* — one instrument per line, for appending sinks.

``repro stats`` accepts any of the three and renders tables.
"""

from __future__ import annotations

import json
from pathlib import Path


def write_json(snapshot: dict, path: str | Path) -> None:
    """Write a snapshot or metrics document as one indented JSON file."""
    Path(path).write_text(json.dumps(snapshot, indent=2, sort_keys=True) + "\n")


def write_jsonl(registry, path: str | Path, append: bool = False) -> int:
    """Write one JSON line per instrument; returns the line count.

    With ``append=True`` the same instrument accumulates one line per
    call; :func:`load_metrics` folds duplicates back with last-write-wins
    semantics, so an appending sink reads back as the latest snapshot.
    """
    snapshot = registry.to_dict()
    lines = []
    # ``.get``: a registry that recorded nothing of a kind (a shard
    # worker that processed zero updates) may omit the whole section.
    for name, value in sorted(snapshot.get("counters", {}).items()):
        lines.append({"kind": "counter", "name": name, "value": value})
    for name, value in sorted(snapshot.get("gauges", {}).items()):
        lines.append({"kind": "gauge", "name": name, "value": value})
    for name, data in sorted(snapshot.get("histograms", {}).items()):
        lines.append(data)
    mode = "a" if append else "w"
    with open(path, mode) as sink:
        for line in lines:
            sink.write(json.dumps(line, sort_keys=True) + "\n")
    return len(lines)


def load_metrics(path: str | Path) -> dict:
    """Load a metrics file written by any exporter into document shape.

    Returns ``{"schemes": {name: snapshot}}``; a bare registry snapshot
    is wrapped under the scheme name ``"run"``, and JSON-lines files are
    folded back into one snapshot.  An appending JSONL sink repeats
    instrument names across snapshots; the fold deduplicates them with
    last-write-wins, so the result is the *latest* recorded state.
    """
    text = Path(path).read_text()
    try:
        data = json.loads(text)
    except json.JSONDecodeError:
        data = None
    else:
        # A one-line JSONL file *is* valid JSON, but an instrument line
        # is not a snapshot/document — route it through the fold rather
        # than wrapping it as a bogus scheme.
        if isinstance(data, dict) and "kind" in data and "name" in data:
            data = None
    if data is None:
        data = _fold_jsonl(text)
    if "schemes" in data:
        return data
    return {"schemes": {"run": data}}


def _fold_jsonl(text: str) -> dict:
    snapshot = {"counters": {}, "gauges": {}, "histograms": {}}
    for raw in text.splitlines():
        raw = raw.strip()
        if not raw:
            continue
        entry = json.loads(raw)
        kind = entry.get("kind")
        name = entry.get("name")
        if name is None:
            continue  # not an instrument line; tolerate foreign sinks
        # Plain dict assignment keyed by name: a later line for the same
        # instrument (an appended snapshot) replaces the earlier one.
        if kind == "counter":
            snapshot["counters"][name] = entry.get("value", 0)
        elif kind == "gauge":
            snapshot["gauges"][name] = entry.get("value", 0.0)
        elif kind == "histogram":
            snapshot["histograms"][name] = entry
    return snapshot


def histogram_quantile(data: dict, q: float) -> float | None:
    """Estimate the ``q``-quantile of an exported histogram.

    Fixed-bucket histograms only retain bucket counts, so the estimate
    is the **upper bound of the bucket** the quantile falls in, clamped
    to the exact observed ``[min, max]`` — resolution is limited to the
    bucket boundaries (one decade for ``TIME_BUCKETS``).  A quantile
    landing in the overflow bucket reports the exact ``max``.  Returns
    ``None`` for an empty histogram.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError("quantile must be within [0, 1]")
    count = data.get("count", 0)
    if not count:
        return None
    target = q * count
    cumulative = 0
    estimate = None
    bounds = sorted(
        (float(key[3:]), n) for key, n in data.get("buckets", {}).items()
    )
    for bound, n in bounds:
        cumulative += n
        if cumulative >= target and cumulative > 0:
            estimate = bound
            break
    if estimate is None:
        estimate = data.get("max")  # quantile sits in the overflow bucket
    minimum, maximum = data.get("min"), data.get("max")
    if maximum is not None and estimate is not None:
        estimate = min(estimate, maximum)
    if minimum is not None and estimate is not None:
        estimate = max(estimate, minimum)
    return estimate


def render_snapshot(snapshot: dict, title: str = "metrics") -> str:
    """One registry snapshot as aligned text tables."""
    sections = []
    spans, histograms = [], []
    for name, data in sorted(snapshot.get("histograms", {}).items()):
        row = {
            "name": name,
            "count": data.get("count", 0),
            "total": _fmt(data.get("sum", 0.0)),
            "mean": _fmt(_mean(data)),
            # Bucket-resolution estimates (see histogram_quantile): the
            # value is the bucket's upper bound clamped to [min, max].
            "p50": _fmt(histogram_quantile(data, 0.50)),
            "p95": _fmt(histogram_quantile(data, 0.95)),
            "p99": _fmt(histogram_quantile(data, 0.99)),
            "max": _fmt(data.get("max")),
        }
        (spans if name.startswith("span.") else histograms).append(row)
    if spans:
        sections.append(_table("spans", spans))
    if histograms:
        sections.append(_table("histograms", histograms))
    counters = [
        {"name": name, "value": value}
        for name, value in sorted(snapshot.get("counters", {}).items())
    ]
    if counters:
        sections.append(_table("counters", counters))
    gauges = [
        {"name": name, "value": value}
        for name, value in sorted(snapshot.get("gauges", {}).items())
    ]
    if gauges:
        sections.append(_table("gauges", gauges))
    series_rows = [
        {
            "name": name,
            "points": len(series.get("t", ())),
            "first": _fmt(series["v"][0]) if series.get("v") else "-",
            "last": _fmt(series["v"][-1]) if series.get("v") else "-",
            "peak": _fmt(max(series["v"])) if series.get("v") else "-",
        }
        for name, series in sorted(snapshot.get("timeseries", {}).items())
    ]
    if series_rows:
        sections.append(_table("timeseries", series_rows))
    if not sections:
        sections.append("(no metrics recorded)")
    return f"== {title}\n" + "\n\n".join(sections)


def render_document(document: dict) -> str:
    """A whole metrics document (one section per scheme) as text."""
    parts = []
    for scheme, snapshot in document.get("schemes", {}).items():
        parts.append(render_snapshot(snapshot, title=scheme))
        # Sharded runs nest one registry snapshot per shard
        # (docs/SHARDING.md); render each as its own section.
        for shard, shard_snapshot in sorted(
            snapshot.get("shards", {}).items()
        ):
            parts.append(
                render_snapshot(shard_snapshot, title=f"{scheme} / {shard}")
            )
    if not parts:
        return "(no schemes in metrics document)"
    return "\n\n".join(parts)


def _mean(data: dict) -> float:
    count = data.get("count", 0)
    return (data.get("sum", 0.0) / count) if count else 0.0


def _fmt(value) -> str:
    if value is None:
        return "-"
    return f"{value:.6g}"


def _table(title: str, rows: list[dict]) -> str:
    columns = list(rows[0])
    widths = {
        c: max(len(c), *(len(str(r[c])) for r in rows)) for c in columns
    }
    header = " | ".join(c.ljust(widths[c]) for c in columns)
    rule = "-+-".join("-" * widths[c] for c in columns)
    body = [
        " | ".join(str(r[c]).ljust(widths[c]) for c in columns)
        for r in rows
    ]
    return "\n".join([f"[{title}]", header, rule, *body])
