"""Exporters: JSON documents, JSON-lines sinks, human-readable tables.

Three shapes move through here:

* a *registry snapshot* — ``MetricsRegistry.to_dict()``:
  ``{"counters": ..., "gauges": ..., "histograms": ...}``;
* a *metrics document* — ``{"schemes": {name: snapshot}}`` plus free-form
  top-level fields, the shape ``--metrics-out`` and the benchmark
  artifact ``bench_metrics.json`` write;
* *JSON lines* — one instrument per line, for appending sinks.

``repro stats`` accepts any of the three and renders tables.
"""

from __future__ import annotations

import json
from pathlib import Path


def write_json(snapshot: dict, path: str | Path) -> None:
    """Write a snapshot or metrics document as one indented JSON file."""
    Path(path).write_text(json.dumps(snapshot, indent=2, sort_keys=True) + "\n")


def write_jsonl(registry, path: str | Path, append: bool = False) -> int:
    """Write one JSON line per instrument; returns the line count."""
    snapshot = registry.to_dict()
    lines = []
    for name, value in sorted(snapshot["counters"].items()):
        lines.append({"kind": "counter", "name": name, "value": value})
    for name, value in sorted(snapshot["gauges"].items()):
        lines.append({"kind": "gauge", "name": name, "value": value})
    for name, data in sorted(snapshot["histograms"].items()):
        lines.append(data)
    mode = "a" if append else "w"
    with open(path, mode) as sink:
        for line in lines:
            sink.write(json.dumps(line, sort_keys=True) + "\n")
    return len(lines)


def load_metrics(path: str | Path) -> dict:
    """Load a metrics file written by any exporter into document shape.

    Returns ``{"schemes": {name: snapshot}}``; a bare registry snapshot
    is wrapped under the scheme name ``"run"``, and JSON-lines files are
    folded back into one snapshot.
    """
    text = Path(path).read_text()
    try:
        data = json.loads(text)
    except json.JSONDecodeError:
        data = _fold_jsonl(text)
    if "schemes" in data:
        return data
    return {"schemes": {"run": data}}


def _fold_jsonl(text: str) -> dict:
    snapshot = {"counters": {}, "gauges": {}, "histograms": {}}
    for raw in text.splitlines():
        raw = raw.strip()
        if not raw:
            continue
        entry = json.loads(raw)
        kind = entry.get("kind")
        if kind == "counter":
            snapshot["counters"][entry["name"]] = entry["value"]
        elif kind == "gauge":
            snapshot["gauges"][entry["name"]] = entry["value"]
        elif kind == "histogram":
            snapshot["histograms"][entry["name"]] = entry
    return snapshot


def render_snapshot(snapshot: dict, title: str = "metrics") -> str:
    """One registry snapshot as aligned text tables."""
    sections = []
    spans, histograms = [], []
    for name, data in sorted(snapshot.get("histograms", {}).items()):
        row = {
            "name": name,
            "count": data.get("count", 0),
            "total": _fmt(data.get("sum", 0.0)),
            "mean": _fmt(_mean(data)),
            "max": _fmt(data.get("max")),
        }
        (spans if name.startswith("span.") else histograms).append(row)
    if spans:
        sections.append(_table("spans", spans))
    if histograms:
        sections.append(_table("histograms", histograms))
    counters = [
        {"name": name, "value": value}
        for name, value in sorted(snapshot.get("counters", {}).items())
    ]
    if counters:
        sections.append(_table("counters", counters))
    gauges = [
        {"name": name, "value": value}
        for name, value in sorted(snapshot.get("gauges", {}).items())
    ]
    if gauges:
        sections.append(_table("gauges", gauges))
    if not sections:
        sections.append("(no metrics recorded)")
    return f"== {title}\n" + "\n\n".join(sections)


def render_document(document: dict) -> str:
    """A whole metrics document (one section per scheme) as text."""
    parts = []
    for scheme, snapshot in document.get("schemes", {}).items():
        parts.append(render_snapshot(snapshot, title=scheme))
    if not parts:
        return "(no schemes in metrics document)"
    return "\n\n".join(parts)


def _mean(data: dict) -> float:
    count = data.get("count", 0)
    return (data.get("sum", 0.0) / count) if count else 0.0


def _fmt(value) -> str:
    if value is None:
        return "-"
    return f"{value:.6g}"


def _table(title: str, rows: list[dict]) -> str:
    columns = list(rows[0])
    widths = {
        c: max(len(c), *(len(str(r[c])) for r in rows)) for c in columns
    }
    header = " | ".join(c.ljust(widths[c]) for c in columns)
    rule = "-+-".join("-" * widths[c] for c in columns)
    body = [
        " | ".join(str(r[c]).ljust(widths[c]) for c in columns)
        for r in rows
    ]
    return "\n".join([f"[{title}]", header, rule, *body])
