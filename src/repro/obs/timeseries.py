"""Per-tick time series over registry instruments.

End-of-run snapshots hide everything that happens *inside* a run: a
probe cascade at tick 512 and a quiet steady state average out to the
same counter totals.  A :class:`TimeSeriesSampler` closes that gap by
sampling selected counters and gauges at a configurable cadence —
the simulator calls :meth:`~TimeSeriesSampler.sample` at every accuracy
checkpoint — producing compact parallel-array series that export
alongside the snapshot document (under the ``"timeseries"`` key of a
scheme's snapshot) and render via ``repro stats``.

Counters are cumulative; consumers that want per-interval activity
difference adjacent samples (:meth:`TimeSeries.deltas`).
"""

from __future__ import annotations

#: Instruments sampled when the caller does not choose their own set.
DEFAULT_SERIES: tuple[str, ...] = (
    "server.location_updates",
    "server.probes",
    "server.safe_region_pushes",
    "server.update.fastpath",
    "server.sr_recompute.skipped",
    "grid.lookups",
    "grid.cache.hits",
    "grid.cache.misses",
    "kernels.batch_calls",
    "kernels.fallback_calls",
    "kernels.fallback_rows",
    "kernels.planner.plans",
    "kernels.planner.rows_gathered",
    "grid.occupied_cells",
    "rstar.height",
    "rstar.nodes",
)


class TimeSeries:
    """One named series as two parallel arrays (timestamps, values)."""

    __slots__ = ("name", "ts", "vs")

    def __init__(self, name: str) -> None:
        self.name = name
        self.ts: list[float] = []
        self.vs: list[float] = []

    def append(self, t: float, value: float) -> None:
        self.ts.append(t)
        self.vs.append(value)

    def __len__(self) -> int:
        return len(self.ts)

    def deltas(self) -> list[float]:
        """Per-interval increments (first sample measured from zero).

        The natural reading for cumulative counters; meaningless for
        gauges, which should be read from ``vs`` directly.
        """
        out = []
        previous = 0.0
        for value in self.vs:
            out.append(value - previous)
            previous = value
        return out

    def to_dict(self) -> dict:
        return {"t": list(self.ts), "v": list(self.vs)}


class TimeSeriesSampler:
    """Samples registry instruments into :class:`TimeSeries`.

    * ``registry`` — the :class:`~repro.obs.registry.MetricsRegistry`
      to read (instruments that don't exist yet are skipped until they
      appear, so series never invent zeros for phases that predate the
      instrument).
    * ``names`` — instrument names to track (:data:`DEFAULT_SERIES`).
    * ``cadence`` — keep every ``cadence``-th call to :meth:`sample`;
      the knob that trades resolution for memory on long runs.
    """

    def __init__(self, registry, names=None, cadence: int = 1) -> None:
        if cadence < 1:
            raise ValueError("cadence must be a positive sample stride")
        self.registry = registry
        self.names = tuple(names) if names is not None else DEFAULT_SERIES
        self.cadence = cadence
        self._calls = 0
        self._series: dict[str, TimeSeries] = {}

    def sample(self, t: float) -> None:
        """Record the current value of every tracked instrument at ``t``."""
        self._calls += 1
        if (self._calls - 1) % self.cadence:
            return
        value_of = self.registry.value_of
        for name in self.names:
            value = value_of(name)
            if value is None:
                continue
            series = self._series.get(name)
            if series is None:
                series = self._series[name] = TimeSeries(name)
            series.append(t, value)

    @property
    def series(self) -> dict[str, TimeSeries]:
        return dict(self._series)

    def to_dict(self) -> dict:
        """``{name: {"t": [...], "v": [...]}}`` — the export shape."""
        return {
            name: series.to_dict()
            for name, series in sorted(self._series.items())
        }
