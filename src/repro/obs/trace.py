"""Span tracing: nested wall-time per pipeline phase.

A :class:`Tracer` hands out ``span(name)`` context managers.  Spans nest:
entering ``span("ingest")`` inside ``span("server.update")`` produces the
dotted path ``server.update.ingest``, and every exit records the span's
wall time into the tracer's registry as a ``span.<path>.seconds``
histogram.  Root spans (depth 0) additionally accumulate into
``Tracer.cpu_seconds`` — the single source the server's CPU accounting is
derived from.

The disabled path is engineered to cost what the pre-observability code
paid: with a :class:`~repro.obs.registry.NullRegistry` attached, root
spans still time themselves (two ``perf_counter`` calls, exactly the old
hand-rolled accounting) but child spans are a shared no-op object and
record nothing.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter

from repro.obs.registry import NULL_REGISTRY, TIME_BUCKETS, Histogram


@dataclass(slots=True)
class SpanRecord:
    """One completed span in a flat trace log."""

    name: str
    path: str
    depth: int
    start: float
    duration: float

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "path": self.path,
            "depth": self.depth,
            "start": self.start,
            "duration": self.duration,
        }


class _NoopSpan:
    """Shared no-op for child spans under a disabled registry."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        pass


_NOOP_SPAN = _NoopSpan()


class _RootTick:
    """Times a depth-0 span with a disabled registry.

    One instance per tracer; safe because a single-threaded tracer has at
    most one depth-0 span open at a time.
    """

    __slots__ = ("_tracer", "_start")

    def __init__(self, tracer: "Tracer") -> None:
        self._tracer = tracer
        self._start = 0.0

    def __enter__(self) -> "_RootTick":
        self._tracer._depth += 1
        self._start = perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self._tracer.cpu_seconds += perf_counter() - self._start
        self._tracer._depth -= 1


class _Span:
    """A live span under an enabled registry."""

    __slots__ = ("_tracer", "name", "path", "depth", "_start")

    def __init__(self, tracer: "Tracer", name: str) -> None:
        self._tracer = tracer
        self.name = name
        self.path = name
        self.depth = 0
        self._start = 0.0

    def __enter__(self) -> "_Span":
        tracer = self._tracer
        stack = tracer._stack
        if stack:
            self.path = f"{stack[-1].path}.{self.name}"
        self.depth = len(stack)
        stack.append(self)
        tracer._depth += 1
        self._start = perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        duration = perf_counter() - self._start
        tracer = self._tracer
        tracer._stack.pop()
        tracer._depth -= 1
        if self.depth == 0:
            tracer.cpu_seconds += duration
        tracer._histogram_for(self.path).observe(duration)
        if tracer._records is not None:
            tracer._records.append(
                SpanRecord(self.name, self.path, self.depth,
                           self._start, duration)
            )


class Tracer:
    """Produces nested spans and aggregates them into a registry.

    * ``registry`` — where span timings land (``span.<path>.seconds``
      histograms).  The default :data:`~repro.obs.registry.NULL_REGISTRY`
      keeps only root-span wall time (``cpu_seconds``).
    * ``keep_records`` — also retain a flat trace log of every completed
      span (:attr:`records`), exportable as JSON lines.
    """

    def __init__(self, registry=NULL_REGISTRY, keep_records: bool = False):
        self.registry = registry
        self.cpu_seconds = 0.0
        self._depth = 0
        self._stack: list[_Span] = []
        self._span_histograms: dict[str, Histogram] = {}
        self._records: list[SpanRecord] | None = [] if keep_records else None
        self._root_tick = _RootTick(self)

    # ------------------------------------------------------------------
    def span(self, name: str):
        """A context manager timing one phase; nests into dotted paths."""
        if not self.registry.enabled:
            if self._depth:
                return _NOOP_SPAN
            return self._root_tick
        return _Span(self, name)

    def noop_spans(self) -> bool:
        """True when :meth:`span` would return the shared no-op span.

        Per-report hot paths consult this to skip the span scaffolding
        entirely (one call instead of the context-manager protocol) —
        behaviourally identical, because the span they skip does nothing.
        """
        return self._depth > 0 and not self.registry.enabled

    def traced(self, name: str):
        """Decorator form of :meth:`span`."""

        def decorate(fn):
            def wrapper(*args, **kwargs):
                with self.span(name):
                    return fn(*args, **kwargs)

            wrapper.__name__ = fn.__name__
            wrapper.__doc__ = fn.__doc__
            return wrapper

        return decorate

    # ------------------------------------------------------------------
    @property
    def records(self) -> list[SpanRecord]:
        """The flat trace log (empty unless ``keep_records=True``)."""
        return list(self._records or ())

    def _histogram_for(self, path: str) -> Histogram:
        histogram = self._span_histograms.get(path)
        if histogram is None:
            histogram = self.registry.histogram(
                f"span.{path}.seconds", TIME_BUCKETS
            )
            self._span_histograms[path] = histogram
        return histogram
