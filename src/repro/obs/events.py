"""Typed structured-event stream and bounded flight recorder.

Where the metrics registry answers *how much* (counters, histograms),
the event stream answers *why*: every update, probe, shrink push,
reevaluation, cache invalidation, and kernel fallback is emitted as one
:class:`Event` carrying the simulation time, the object/query ids
involved, and a ``cause`` link — the sequence number of the event that
triggered it.  Following the cause links reconstructs full causal
chains (triggering update → affected query's reevaluation → probe →
result change), which is what ``repro events --chain`` renders and what
:mod:`repro.obs.diagnose` mines for probe cascades.

An :class:`EventLog` keeps the last ``capacity`` events in a ring
buffer (the **flight recorder**): after a failure or anomaly the recent
history is always reconstructable via :meth:`EventLog.dump`, no matter
how long the run was.  An optional ``sink`` additionally streams every
event through to a JSONL file as it happens (``--events-out``).

The zero-overhead contract of ``repro.obs`` holds: all instrumented
code receives :data:`NULL_EVENT_LOG` by default, whose ``enabled`` flag
is ``False``; hot paths guard emission with one attribute check and pay
nothing else.

Event vocabulary (``docs/OBSERVABILITY.md`` documents each field):

=================== ====================================================
kind                emitted when
=================== ====================================================
update              the server processes a source-initiated update
fastpath            that update was elided by the zero-churn fast path
probe               the server probes an object's exact position
probe_timeout       a probe attempt timed out (or hit the probe budget)
probe_retry         a timed-out probe is retried (with backoff)
shrink_push         a §6.1 reachability shrink is installed and pushed
reevaluation        one affected query is incrementally reevaluated
result_change       a reevaluation changed a query's result set
safe_region         a safe region is computed and installed
sr_skip             a recomputation is skipped via a valid ``sr_stamp``
cache_invalidation  a grid cell's membership generation is bumped
kernel_fallback     a kernel call is served by the scalar path
query_registered    a query enters monitoring
sample              the simulator takes an accuracy checkpoint
degraded_enter      an unreachable object enters degraded mode
degraded_exit       a fresh position ends an object's degraded episode
unknown_update      a report for an unknown object id was dropped
time_regression     an update carried a time earlier than the clock
shard_killed        the failure drill hard-stopped a shard
shard_added         an elastic grow migrated cells onto a new shard
shard_removed       an elastic shrink retired a shard, live
rebalance           the occupancy policy triggered a topology change
=================== ====================================================
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass
from pathlib import Path

#: Every event kind the framework emits.
EVENT_KINDS = frozenset({
    "update",
    "fastpath",
    "probe",
    "shrink_push",
    "reevaluation",
    "result_change",
    "safe_region",
    "sr_skip",
    "cache_invalidation",
    "kernel_fallback",
    "query_registered",
    "sample",
    "probe_timeout",
    "probe_retry",
    "degraded_enter",
    "degraded_exit",
    "unknown_update",
    "time_regression",
    "shard_killed",
    "shard_added",
    "shard_removed",
    "rebalance",
})


@dataclass(slots=True)
class Event:
    """One structured event.

    ``seq`` is unique and ascending within a log; ``cause`` is the
    ``seq`` of the triggering event (``None`` for root events such as a
    source-initiated update).  ``data`` holds the kind-specific fields
    (``oid``, ``query``, ``pos``, ``region``, …) and must stay
    JSON-serialisable.
    """

    seq: int
    t: float
    kind: str
    cause: int | None
    data: dict

    def to_dict(self) -> dict:
        return {"seq": self.seq, "t": self.t, "kind": self.kind,
                "cause": self.cause, **self.data}


class EventLog:
    """Bounded ring-buffer flight recorder with optional JSONL streaming.

    * ``capacity`` — how many recent events the ring retains
      (:meth:`events` / :meth:`dump` expose them).
    * ``sink`` — a path; when given, *every* event is also appended to
      it as one JSON line at emission time, so a crash loses nothing.

    The log carries its own clock (:meth:`set_time`): emitters that
    know the simulation time set it, emitters that don't (grid, kernel
    internals) inherit the last value.
    """

    enabled = True

    def __init__(self, capacity: int = 4096, sink: str | Path | None = None):
        if capacity < 1:
            raise ValueError("flight recorder capacity must be positive")
        self.capacity = capacity
        self.now = 0.0
        self.time_regressions = 0
        self._seq = 0
        self._ring: deque[Event] = deque(maxlen=capacity)
        self._sink = open(sink, "w") if sink is not None else None

    # ------------------------------------------------------------------
    def set_time(self, t: float) -> None:
        """Advance the log clock; subsequent events default to ``t``.

        The clock is monotone: an earlier ``t`` (a reordered report) is
        rejected so ``timeline()`` bucketing and per-tick sampling stay
        ordered.  Rejections are counted in ``time_regressions``; the
        server additionally emits a ``time_regression`` event so
        :func:`repro.obs.diagnose.diagnose` can surface them.
        """
        if t < self.now:
            self.time_regressions += 1
            return
        self.now = t

    def emit(self, kind: str, cause: int | None = None, **data) -> int:
        """Record one event; returns its sequence number (a cause handle)."""
        self._seq += 1
        event = Event(self._seq, self.now, kind, cause, data)
        self._ring.append(event)
        if self._sink is not None:
            self._sink.write(json.dumps(event.to_dict()) + "\n")
        return self._seq

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._ring)

    @property
    def total_emitted(self) -> int:
        """Events emitted over the log's lifetime (≥ ``len(log)``)."""
        return self._seq

    def events(self) -> list[Event]:
        """The retained events, oldest first."""
        return list(self._ring)

    def dump(self, path: str | Path) -> int:
        """Spill the ring buffer (the last ``capacity`` events) as JSONL.

        This is the flight-recorder export: call it after a failure or
        at run end to persist the recent history.  Returns the number
        of lines written.
        """
        with open(path, "w") as out:
            for event in self._ring:
                out.write(json.dumps(event.to_dict()) + "\n")
        return len(self._ring)

    def close(self) -> None:
        if self._sink is not None:
            self._sink.close()
            self._sink = None


class NullEventLog:
    """The zero-overhead default: emission is a no-op behind one flag."""

    enabled = False
    now = 0.0
    time_regressions = 0

    def set_time(self, t: float) -> None:
        pass

    def emit(self, kind: str, cause: int | None = None, **data) -> int:
        return 0

    def __len__(self) -> int:
        return 0

    @property
    def total_emitted(self) -> int:
        return 0

    def events(self) -> list:
        return []

    def dump(self, path) -> int:
        return 0

    def close(self) -> None:
        pass


#: Shared no-op event log; the default everywhere events are wired.
NULL_EVENT_LOG = NullEventLog()


# ----------------------------------------------------------------------
# Reading and analysing recorded streams
# ----------------------------------------------------------------------
def read_events(path: str | Path) -> list[dict]:
    """Load a JSONL event file (``--events-out`` or a flight-recorder
    spill) back into a list of event dicts, in file order."""
    events = []
    for raw in Path(path).read_text().splitlines():
        raw = raw.strip()
        if raw:
            events.append(json.loads(raw))
    return events


def filter_events(
    events: list[dict],
    kind: str | None = None,
    oid=None,
    query: str | None = None,
    t_min: float | None = None,
    t_max: float | None = None,
) -> list[dict]:
    """Subset of ``events`` matching every given criterion.

    ``oid`` matches the ``oid`` field; ``query`` the ``query`` field.
    Object ids read back from JSON are whatever JSON made of them, so
    ``oid`` is compared both raw and stringified (an ``oid`` of ``7``
    matches a filter of ``"7"``).
    """
    out = []
    for event in events:
        if kind is not None and event.get("kind") != kind:
            continue
        if oid is not None:
            have = event.get("oid")
            if have != oid and str(have) != str(oid):
                continue
        if query is not None and event.get("query") != query:
            continue
        t = event.get("t", 0.0)
        if t_min is not None and t < t_min:
            continue
        if t_max is not None and t > t_max:
            continue
        out.append(event)
    return out


def causal_chain(events: list[dict], seq: int) -> list[dict]:
    """All events causally connected to ``seq``, ordered by sequence.

    Walks ``cause`` links up to the root event, then collects the whole
    causal subtree below that root — e.g. the chain of one probe is its
    triggering update, every reevaluation that update started, the
    probes those issued, and the result changes they produced.  Events
    outside the retained window simply don't appear (ring truncation).
    """
    by_seq = {event["seq"]: event for event in events}
    node = by_seq.get(seq)
    if node is None:
        return []
    # Ascend to the root of this chain.
    root = node
    seen = set()
    while root.get("cause") is not None and root["cause"] in by_seq:
        if root["seq"] in seen:  # defensive: corrupt logs could cycle
            break
        seen.add(root["seq"])
        root = by_seq[root["cause"]]
    # Collect the subtree under the root.
    children: dict[int, list[dict]] = {}
    for event in events:
        cause = event.get("cause")
        if cause is not None:
            children.setdefault(cause, []).append(event)
    chain = []
    stack = [root]
    visited = set()
    while stack:
        current = stack.pop()
        if current["seq"] in visited:
            continue
        visited.add(current["seq"])
        chain.append(current)
        stack.extend(children.get(current["seq"], ()))
    chain.sort(key=lambda event: event["seq"])
    return chain


#: Event kinds surfaced as timeline columns, in display order.
TIMELINE_KINDS = (
    "update", "fastpath", "probe", "reevaluation", "result_change",
    "shrink_push", "safe_region", "cache_invalidation",
)


def timeline(events: list[dict], interval: float = 1.0) -> list[dict]:
    """Aggregate an event stream into per-interval count rows.

    Rows are keyed by the interval start time ``t0`` and carry one
    count column per :data:`TIMELINE_KINDS` entry — the shape ``repro
    monitor`` renders as an aligned table.  Only intervals containing
    at least one event appear.
    """
    if interval <= 0:
        raise ValueError("interval must be positive")
    buckets: dict[int, dict] = {}
    for event in events:
        slot = int(event.get("t", 0.0) / interval)
        row = buckets.get(slot)
        if row is None:
            row = buckets[slot] = {kind: 0 for kind in TIMELINE_KINDS}
        kind = event.get("kind")
        if kind in row:
            row[kind] += 1
    return [
        {"t0": round(slot * interval, 9), **buckets[slot]}
        for slot in sorted(buckets)
    ]
