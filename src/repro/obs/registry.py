"""Process-local metric registry: counters, gauges, fixed-bucket histograms.

The registry is the single vocabulary for everything the framework
measures — wireless messages, grid-filter effectiveness, per-phase CPU
time.  It is deliberately dependency-free and cheap: instruments are
plain objects with ``__slots__``, histogram buckets are fixed at
creation, and the default registry handed to library code is a shared
no-op (:data:`NULL_REGISTRY`) whose instruments discard every
observation, so un-instrumented callers pay almost nothing.

Metric names are dotted lowercase paths (``server.probes``,
``grid.candidates``); span timings recorded through
:class:`repro.obs.trace.Tracer` use the reserved ``span.<path>.seconds``
namespace.  docs/OBSERVABILITY.md lists every name the framework emits.
"""

from __future__ import annotations

from bisect import bisect_left

#: Default histogram buckets for durations in seconds (1 µs … 10 s).
TIME_BUCKETS: tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0
)

#: Default histogram buckets for small cardinalities (candidate sets,
#: covered cells, probe fan-outs).
COUNT_BUCKETS: tuple[float, ...] = (
    0.0, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 1000.0
)


class Counter:
    """A monotonically increasing value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int | float = 1) -> None:
        self.value += amount

    def to_dict(self) -> dict:
        return {"kind": "counter", "name": self.name, "value": self.value}


class Gauge:
    """A value that can move both ways (index sizes, queue depths)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def add(self, delta: float) -> None:
        self.value += delta

    def to_dict(self) -> dict:
        return {"kind": "gauge", "name": self.name, "value": self.value}


class Histogram:
    """A fixed-bucket histogram with sum / count / min / max.

    ``buckets`` are inclusive upper bounds in ascending order; a final
    implicit overflow bucket catches everything above the last bound.
    """

    __slots__ = ("name", "buckets", "counts", "overflow",
                 "sum", "count", "min", "max")

    def __init__(self, name: str, buckets: tuple[float, ...]) -> None:
        if not buckets:
            raise ValueError("histogram needs at least one bucket bound")
        if list(buckets) != sorted(buckets):
            raise ValueError("bucket bounds must be ascending")
        self.name = name
        self.buckets = tuple(float(b) for b in buckets)
        self.counts = [0] * len(buckets)
        self.overflow = 0
        self.sum = 0.0
        self.count = 0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        i = bisect_left(self.buckets, value)
        if i == len(self.buckets):
            self.overflow += 1
        else:
            self.counts[i] += 1
        self.sum += value
        self.count += 1
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def to_dict(self) -> dict:
        return {
            "kind": "histogram",
            "name": self.name,
            "count": self.count,
            "sum": self.sum,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "buckets": {
                f"le_{bound:g}": n
                for bound, n in zip(self.buckets, self.counts)
            },
            "overflow": self.overflow,
        }


class MetricsRegistry:
    """A process-local registry of named instruments.

    Instruments are created on first use and shared afterwards, so hot
    paths can cache the instrument object and skip the name lookup.
    """

    enabled = True

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(
        self, name: str, buckets: tuple[float, ...] = TIME_BUCKETS
    ) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(name, buckets)
        return instrument

    def value_of(self, name: str) -> float | int | None:
        """Current value of a counter or gauge, ``None`` when absent.

        The read-only lookup backing
        :class:`~repro.obs.timeseries.TimeSeriesSampler` — unlike
        :meth:`counter` / :meth:`gauge` it never creates instruments, so
        sampling a name the run doesn't emit stays side-effect-free.
        """
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._gauges.get(name)
        return None if instrument is None else instrument.value

    def to_dict(self) -> dict:
        """Flat, JSON-serialisable snapshot of every instrument."""
        return {
            "counters": {
                name: c.value for name, c in sorted(self._counters.items())
            },
            "gauges": {
                name: g.value for name, g in sorted(self._gauges.items())
            },
            "histograms": {
                name: h.to_dict() for name, h in sorted(self._histograms.items())
            },
        }


class _NullCounter:
    __slots__ = ()

    def inc(self, amount: int | float = 1) -> None:
        pass

    def to_dict(self) -> dict:
        return {"kind": "counter", "name": "<null>", "value": 0}


class _NullGauge:
    __slots__ = ()

    def set(self, value: float) -> None:
        pass

    def add(self, delta: float) -> None:
        pass

    def to_dict(self) -> dict:
        return {"kind": "gauge", "name": "<null>", "value": 0.0}


class _NullHistogram:
    __slots__ = ()
    mean = 0.0

    def observe(self, value: float) -> None:
        pass

    def to_dict(self) -> dict:
        return {"kind": "histogram", "name": "<null>", "count": 0}


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()


class NullRegistry:
    """The zero-overhead default: every instrument is a shared no-op."""

    enabled = False

    def counter(self, name: str) -> _NullCounter:
        return _NULL_COUNTER

    def gauge(self, name: str) -> _NullGauge:
        return _NULL_GAUGE

    def histogram(
        self, name: str, buckets: tuple[float, ...] = TIME_BUCKETS
    ) -> _NullHistogram:
        return _NULL_HISTOGRAM

    def value_of(self, name: str) -> None:
        return None

    def to_dict(self) -> dict:
        return {"counters": {}, "gauges": {}, "histograms": {}}


#: Shared no-op registry; the default everywhere instrumentation is wired.
NULL_REGISTRY = NullRegistry()
