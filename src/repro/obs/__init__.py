"""Structured observability: metrics, events, time series, diagnostics.

The cost model of the paper (wireless messages vs. server CPU time,
Section 7.1) is this package's reason to exist: every pipeline phase of
the monitoring server, the grid index, the event-driven simulator, and
the baselines reports into one :class:`MetricsRegistry` through
:class:`Tracer` spans and counters, so a run can answer *where the
cycles and messages went* without ad-hoc ``perf_counter`` plumbing.

Beyond the aggregate layer, :class:`EventLog` records a typed
structured-event stream (flight recorder + JSONL spill),
:class:`TimeSeriesSampler` resolves counters over simulated time, and
:func:`diagnose` replays a stream against the framework's invariants —
together they answer *why* a run was expensive, not just that it was.

By default all instrumented code receives :data:`NULL_REGISTRY` and
:data:`NULL_EVENT_LOG`, shared no-ops whose cost is one attribute check
— benchmarks and the CLI opt into real instances (``--metrics-out``,
``--events-out``).  See docs/OBSERVABILITY.md for the metric and event
vocabularies.
"""

from repro.obs.diagnose import DiagnosticsReport, Finding, diagnose
from repro.obs.events import (
    EVENT_KINDS,
    NULL_EVENT_LOG,
    Event,
    EventLog,
    NullEventLog,
    causal_chain,
    filter_events,
    read_events,
    timeline,
)
from repro.obs.export import (
    histogram_quantile,
    load_metrics,
    render_document,
    render_snapshot,
    write_json,
    write_jsonl,
)
from repro.obs.profile import (
    NULL_PROFILER,
    NullProfiler,
    TickProfiler,
    empty_profile,
    folded_lines,
    merge_profiles,
    occupancy_summary,
    phase_budget,
    render_profile,
)
from repro.obs.registry import (
    COUNT_BUCKETS,
    NULL_REGISTRY,
    TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
)
from repro.obs.timeseries import DEFAULT_SERIES, TimeSeries, TimeSeriesSampler
from repro.obs.trace import SpanRecord, Tracer

__all__ = [
    "COUNT_BUCKETS",
    "DEFAULT_SERIES",
    "EVENT_KINDS",
    "NULL_EVENT_LOG",
    "NULL_PROFILER",
    "NULL_REGISTRY",
    "TIME_BUCKETS",
    "Counter",
    "DiagnosticsReport",
    "Event",
    "EventLog",
    "Finding",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullEventLog",
    "NullProfiler",
    "NullRegistry",
    "SpanRecord",
    "TickProfiler",
    "TimeSeries",
    "TimeSeriesSampler",
    "Tracer",
    "causal_chain",
    "diagnose",
    "empty_profile",
    "filter_events",
    "folded_lines",
    "histogram_quantile",
    "load_metrics",
    "merge_profiles",
    "occupancy_summary",
    "phase_budget",
    "read_events",
    "render_document",
    "render_profile",
    "render_snapshot",
    "timeline",
    "write_json",
    "write_jsonl",
]
