"""Structured observability: metrics registry, span tracing, exporters.

The cost model of the paper (wireless messages vs. server CPU time,
Section 7.1) is this package's reason to exist: every pipeline phase of
the monitoring server, the grid index, the event-driven simulator, and
the baselines reports into one :class:`MetricsRegistry` through
:class:`Tracer` spans and counters, so a run can answer *where the
cycles and messages went* without ad-hoc ``perf_counter`` plumbing.

By default all instrumented code receives :data:`NULL_REGISTRY`, a
shared no-op whose cost is a method call — benchmarks and the CLI opt
into a real registry (``--metrics-out``).  See docs/OBSERVABILITY.md for
the metric vocabulary and span hierarchy.
"""

from repro.obs.export import (
    load_metrics,
    render_document,
    render_snapshot,
    write_json,
    write_jsonl,
)
from repro.obs.registry import (
    COUNT_BUCKETS,
    NULL_REGISTRY,
    TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
)
from repro.obs.trace import SpanRecord, Tracer

__all__ = [
    "COUNT_BUCKETS",
    "NULL_REGISTRY",
    "TIME_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "SpanRecord",
    "Tracer",
    "load_metrics",
    "render_document",
    "render_snapshot",
    "write_json",
    "write_jsonl",
]
