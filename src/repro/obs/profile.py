"""Tick-phase profiling: where each update tick's time actually goes.

The metrics registry answers *how much* work each subsystem did; spans
answer *how long* named phases took when metrics are on.  This module
closes the remaining gap — attributed cost — with three pieces:

* :class:`TickProfiler` — a self-time stack accountant.  The server
  opens one *tick* per ``handle_location_updates`` batch and pushes a
  named phase (``plan.gather``, ``kernel.dispatch``,
  ``index.maintenance``, …) around each per-tick stage.  A child phase
  pauses its parent's clock, so *the phase times sum to the tick wall
  time by construction*; the root's own self-time is the orchestration
  residual (per-report dict bookkeeping, fast-path commits) that no
  child claims.  The four per-*report* phases (``ingest``,
  ``reevaluate``, ``report.scatter``, ``safe_region``) bypass the stack
  entirely: the server accrues their ``perf_counter`` deltas into flat
  accumulator attributes and ``tick_end`` folds the totals into the
  same self-time table — identical arithmetic, a fraction of the
  per-call cost on paths entered tens of thousands of times per run.
* Hotspot tables — per-query, per-cell, and per-object attribution
  (reevaluation count, kernel rows, attributed seconds) plus a
  cell-occupancy skew summary reusing the ``shard.objects.imbalance``
  formula, so the rebalancing roadmap item reads the same signal here.
* Renderers — a flamegraph-folded text export (semicolon paths,
  integer microseconds) and a JSON phase-budget report, merged across
  shard workers by :func:`merge_profiles`.

The zero-overhead contract matches ``Tracer.noop_spans``: instrumented
code holds :data:`NULL_PROFILER` by default and every hook site checks
one ``profiler.enabled`` attribute before doing any work, so the
disabled path costs a single attribute test and no ``perf_counter``
calls.  A ``max_ticks`` budget turns a profiler into a sampling
session: after N completed ticks it disables itself, freezing the
capture.
"""

from __future__ import annotations

from time import perf_counter, process_time

#: Cap on hotspot rows shipped per shard summary — enough for any sane
#: ``--top-k`` after a cross-shard merge, small enough to pickle cheaply.
_SHIP_K = 64


class NullProfiler:
    """Shared do-nothing profiler; the default everywhere.

    Mirrors :class:`~repro.obs.registry.NullRegistry`: one instance,
    ``enabled`` is False, and every method is an inert stub so call
    sites that skip the ``enabled`` check still cannot crash.
    """

    __slots__ = ()
    enabled = False

    tick_open = False
    in_ingest = False

    def tick_begin(self) -> bool:
        return False

    def tick_end(self, reports: int = 0) -> None:
        pass

    def push(self, name: str) -> None:
        pass

    def pop(self) -> None:
        pass

    def note_query(self, qid, seconds: float, reevals: int = 1) -> None:
        pass

    def note_cell(self, cell, rows: int = 0, reports: int = 0) -> None:
        pass

    def note_object(self, oid, reports: int = 1) -> None:
        pass

    def note_report(self, oid, cell, rows: int, affected: int) -> None:
        pass

    def to_dict(self, top_k: int = 10) -> dict:
        return empty_profile()


NULL_PROFILER = NullProfiler()


class TickProfiler:
    """Self-time accountant for server ticks.

    Phase paths are semicolon-joined from the root (``tick;reevaluate``)
    so the accumulated wall table doubles as collapsed-stack output.
    ``push``/``pop`` outside an open tick record nothing — bootstrap
    work (object loads, query registration) never skews a tick budget.
    """

    __slots__ = (
        "enabled", "max_ticks", "ticks", "reports",
        "wall_seconds", "cpu_seconds", "phase_wall",
        "query_seconds", "query_reevals", "cell_rows", "cell_reports",
        "object_reports", "_stack", "_tick_start", "_cpu_start",
        "tick_open", "in_ingest", "acc_ingest", "acc_reev_in",
        "acc_reev_out", "acc_scatter", "acc_sr",
    )

    def __init__(self, max_ticks: int | None = None) -> None:
        self.enabled = True
        self.max_ticks = max_ticks
        self.ticks = 0
        self.reports = 0
        self.wall_seconds = 0.0
        self.cpu_seconds = 0.0
        #: path -> accumulated *self* time (children excluded).
        self.phase_wall: dict[str, float] = {}
        self.query_seconds: dict[str, float] = {}
        self.query_reevals: dict[str, int] = {}
        self.cell_rows: dict = {}
        self.cell_reports: dict = {}
        self.object_reports: dict = {}
        self._stack: list[list] = []  # [path, self-segment start]
        self._tick_start = 0.0
        self._cpu_start = 0.0
        #: Inline segment clocks for the four hottest per-report phases
        #: (ingest, reevaluate, report.scatter, safe_region).  The
        #: server accrues ``perf_counter`` deltas straight into these
        #: attributes — no method call, no stack frame — and
        #: ``tick_end`` folds the totals into :attr:`phase_wall` with
        #: the containment layout fixed by the server's call graph
        #: (reevaluate under ingest or under scatter via
        #: :attr:`in_ingest`; safe_region always under scatter).  The
        #: generic push/pop stack still serves the per-tick phases
        #: (plan.gather, kernel.dispatch, index.maintenance).
        self.tick_open = False
        self.in_ingest = False
        self.acc_ingest = 0.0
        self.acc_reev_in = 0.0
        self.acc_reev_out = 0.0
        self.acc_scatter = 0.0
        self.acc_sr = 0.0

    # -- tick lifecycle ------------------------------------------------
    def tick_begin(self) -> bool:
        """Open a tick; returns False (no-op) if one is already open.

        The boolean is the ownership token: only the caller that opened
        the tick closes it, so an outer batch wrapper and an inner
        per-update auto-root cannot double-count.
        """
        if not self.enabled or self._stack:
            return False
        now = perf_counter()
        self._tick_start = now
        self._cpu_start = process_time()
        self._stack.append(["tick", now])
        self.tick_open = True
        self.in_ingest = False
        self.acc_ingest = 0.0
        self.acc_reev_in = 0.0
        self.acc_reev_out = 0.0
        self.acc_scatter = 0.0
        self.acc_sr = 0.0
        return True

    def tick_end(self, reports: int = 0) -> None:
        """Close the tick, folding any still-open phases into the total."""
        stack = self._stack
        if not stack:
            return
        now = perf_counter()
        wall = self.phase_wall
        # Exception safety: close unpopped phases too.  Only the
        # innermost frame was running — every ancestor's self-clock was
        # paused when its child was pushed — so the unaccounted tail
        # belongs to the top frame alone.
        path, start = stack.pop()
        wall[path] = wall.get(path, 0.0) + (now - start)
        while stack:
            path, _ = stack.pop()
            wall.setdefault(path, 0.0)
        # Fold the inline segment clocks.  They accrued while the root
        # frame's self-clock was running (the per-report phases never
        # overlap a stack child), so their totals are carved out of the
        # root's self-time — the phase sum stays exactly the tick wall.
        ingest = self.acc_ingest
        scatter = self.acc_scatter
        if ingest or scatter:
            wall["tick"] = wall.get("tick", 0.0) - ingest - scatter
            if ingest:
                reev = self.acc_reev_in
                wall["tick;ingest"] = (
                    wall.get("tick;ingest", 0.0) + ingest - reev
                )
                if reev:
                    wall["tick;ingest;reevaluate"] = (
                        wall.get("tick;ingest;reevaluate", 0.0) + reev
                    )
            if scatter:
                sr = self.acc_sr
                reev = self.acc_reev_out
                wall["tick;report.scatter"] = (
                    wall.get("tick;report.scatter", 0.0)
                    + scatter - sr - reev
                )
                if sr:
                    wall["tick;report.scatter;safe_region"] = (
                        wall.get("tick;report.scatter;safe_region", 0.0)
                        + sr
                    )
                if reev:
                    wall["tick;report.scatter;reevaluate"] = (
                        wall.get("tick;report.scatter;reevaluate", 0.0)
                        + reev
                    )
        self.tick_open = False
        self.wall_seconds += now - self._tick_start
        self.cpu_seconds += process_time() - self._cpu_start
        self.ticks += 1
        self.reports += reports
        if self.max_ticks is not None and self.ticks >= self.max_ticks:
            self.enabled = False  # sampling session complete

    # -- phase hooks ---------------------------------------------------
    def push(self, name: str) -> None:
        """Enter a phase: pause the parent's self-clock, start ours."""
        stack = self._stack
        if not stack:
            return
        now = perf_counter()
        top = stack[-1]
        path = top[0]
        # try/except accumulate: after the first tick every hot path key
        # exists, so the common case is one dict store, no ``.get``.
        try:
            self.phase_wall[path] += now - top[1]
        except KeyError:
            self.phase_wall[path] = now - top[1]
        # Reset the parent's segment clock: its pending self-time is now
        # zero, so an exception-unwound ``tick_end`` fold cannot bill
        # the child's duration to the parent twice.
        top[1] = now
        stack.append([path + ";" + name, now])

    def pop(self) -> None:
        """Leave the current phase and restart the parent's self-clock."""
        stack = self._stack
        if len(stack) < 2:  # the root is only closed by tick_end
            return
        now = perf_counter()
        path, start = stack.pop()
        try:
            self.phase_wall[path] += now - start
        except KeyError:
            self.phase_wall[path] = now - start
        stack[-1][1] = now

    # -- hotspot attribution -------------------------------------------
    def note_query(self, qid, seconds: float, reevals: int = 1) -> None:
        try:
            self.query_seconds[qid] += seconds
        except KeyError:
            self.query_seconds[qid] = seconds
        try:
            self.query_reevals[qid] += reevals
        except KeyError:
            self.query_reevals[qid] = reevals

    def note_cell(self, cell, rows: int = 0, reports: int = 0) -> None:
        if rows:
            try:
                self.cell_rows[cell] += rows
            except KeyError:
                self.cell_rows[cell] = rows
        if reports:
            try:
                self.cell_reports[cell] += reports
            except KeyError:
                self.cell_reports[cell] = reports

    def note_object(self, oid, reports: int = 1) -> None:
        try:
            self.object_reports[oid] += reports
        except KeyError:
            self.object_reports[oid] = reports

    def note_report(self, oid, cell, rows: int, affected: int) -> None:
        """One fused attribution call for the per-report hot path.

        Equivalent to ``note_object(oid, affected or 1)`` +
        ``note_cell(cell, rows, 1)`` with a single method dispatch —
        the difference is measurable at tens of thousands of reports
        per profiled run.
        """
        weight = affected or 1
        try:
            self.object_reports[oid] += weight
        except KeyError:
            self.object_reports[oid] = weight
        if rows:
            try:
                self.cell_rows[cell] += rows
            except KeyError:
                self.cell_rows[cell] = rows
        try:
            self.cell_reports[cell] += 1
        except KeyError:
            self.cell_reports[cell] = 1

    # -- export --------------------------------------------------------
    def to_dict(self, top_k: int = 10) -> dict:
        """Picklable summary: phases, hotspot top-k, tick totals."""
        k = max(top_k, _SHIP_K)
        queries = [
            {
                "id": qid,
                "seconds": seconds,
                "reevaluations": self.query_reevals.get(qid, 0),
            }
            for qid, seconds in sorted(
                self.query_seconds.items(), key=lambda kv: -kv[1]
            )[:k]
        ]
        cells = {}
        for cell, rows in self.cell_rows.items():
            cells[cell] = [rows, 0]
        for cell, reports in self.cell_reports.items():
            cells.setdefault(cell, [0, 0])[1] = reports
        cell_rows = [
            {"id": _cell_key(cell), "rows": rows, "reports": reports}
            for cell, (rows, reports) in sorted(
                cells.items(), key=lambda kv: (-kv[1][0], -kv[1][1])
            )[:k]
        ]
        objects = [
            {"id": oid, "reports": reports}
            for oid, reports in sorted(
                self.object_reports.items(), key=lambda kv: -kv[1]
            )[:k]
        ]
        return {
            "ticks": self.ticks,
            "reports": self.reports,
            "wall_seconds": self.wall_seconds,
            "cpu_seconds": self.cpu_seconds,
            "phases": dict(self.phase_wall),
            "hotspots": {
                "queries": queries,
                "cells": cell_rows,
                "objects": objects,
            },
        }


def _cell_key(cell) -> str:
    """A JSON-safe cell identifier (grid cells are coordinate tuples)."""
    if isinstance(cell, tuple):
        return ",".join(str(part) for part in cell)
    return str(cell)


def empty_profile() -> dict:
    """The shape :meth:`TickProfiler.to_dict` returns with no data."""
    return {
        "ticks": 0,
        "reports": 0,
        "wall_seconds": 0.0,
        "cpu_seconds": 0.0,
        "phases": {},
        "hotspots": {"queries": [], "cells": [], "objects": []},
    }


def occupancy_summary(counts) -> dict:
    """Cell-occupancy skew from a per-cell object-count iterable.

    ``imbalance`` is ``max * cells / objects`` — the exact
    ``shard.objects.imbalance`` gauge formula, so a profile's skew
    reading and the sharding rebalance signal cannot disagree.  1.0 is
    perfectly even; N means the fullest cell holds N× its fair share.
    """
    counts = [int(c) for c in counts if c]
    if not counts:
        return {
            "cells": 0, "objects": 0, "max": 0,
            "mean": 0.0, "imbalance": 0.0, "histogram": {},
        }
    total = sum(counts)
    top = max(counts)
    histogram: dict[str, int] = {}
    for count in counts:
        bound = 1
        while bound < count:
            bound *= 2
        key = f"le_{bound}"
        histogram[key] = histogram.get(key, 0) + 1
    histogram = dict(
        sorted(histogram.items(), key=lambda kv: int(kv[0][3:]))
    )
    return {
        "cells": len(counts),
        "objects": total,
        "max": top,
        "mean": total / len(counts),
        "imbalance": top * len(counts) / total,
        "histogram": histogram,
    }


def merge_profiles(summaries) -> dict:
    """Merge per-shard profile summaries into one cluster-wide view.

    Additive fields sum; hotspot rows merge by id then re-rank; the
    occupancy skew recombines exactly (cells partition across shards,
    so the global max/total are the max/sum of the shard figures).
    """
    merged = empty_profile()
    phases: dict[str, float] = {}
    queries: dict = {}
    cells: dict = {}
    objects: dict = {}
    occupancy: dict | None = None
    for summary in summaries:
        if not summary:
            continue
        merged["ticks"] += summary.get("ticks", 0)
        merged["reports"] += summary.get("reports", 0)
        merged["wall_seconds"] += summary.get("wall_seconds", 0.0)
        merged["cpu_seconds"] += summary.get("cpu_seconds", 0.0)
        for path, seconds in summary.get("phases", {}).items():
            phases[path] = phases.get(path, 0.0) + seconds
        hotspots = summary.get("hotspots", {})
        for row in hotspots.get("queries", ()):
            slot = queries.setdefault(
                row["id"], {"id": row["id"], "seconds": 0.0,
                            "reevaluations": 0}
            )
            slot["seconds"] += row["seconds"]
            slot["reevaluations"] += row["reevaluations"]
        for row in hotspots.get("cells", ()):
            slot = cells.setdefault(
                row["id"], {"id": row["id"], "rows": 0, "reports": 0}
            )
            slot["rows"] += row["rows"]
            slot["reports"] += row["reports"]
        for row in hotspots.get("objects", ()):
            slot = objects.setdefault(
                row["id"], {"id": row["id"], "reports": 0}
            )
            slot["reports"] += row["reports"]
        skew = summary.get("occupancy")
        if skew and skew.get("cells"):
            if occupancy is None:
                occupancy = {
                    "cells": 0, "objects": 0, "max": 0,
                    "mean": 0.0, "imbalance": 0.0, "histogram": {},
                }
            occupancy["cells"] += skew["cells"]
            occupancy["objects"] += skew["objects"]
            occupancy["max"] = max(occupancy["max"], skew["max"])
            for key, count in skew.get("histogram", {}).items():
                occupancy["histogram"][key] = (
                    occupancy["histogram"].get(key, 0) + count
                )
    merged["phases"] = phases
    merged["hotspots"] = {
        "queries": sorted(
            queries.values(), key=lambda r: -r["seconds"]
        )[:_SHIP_K],
        "cells": sorted(
            cells.values(), key=lambda r: (-r["rows"], -r["reports"])
        )[:_SHIP_K],
        "objects": sorted(
            objects.values(), key=lambda r: -r["reports"]
        )[:_SHIP_K],
    }
    if occupancy is not None:
        occupancy["mean"] = occupancy["objects"] / occupancy["cells"]
        occupancy["imbalance"] = (
            occupancy["max"] * occupancy["cells"] / occupancy["objects"]
            if occupancy["objects"] else 0.0
        )
        occupancy["histogram"] = dict(
            sorted(occupancy["histogram"].items(),
                   key=lambda kv: int(kv[0][3:]))
        )
        merged["occupancy"] = occupancy
    return merged


# ---------------------------------------------------------------------------
# Rendering


def _phase_label(path: str) -> str:
    """Human label for a phase path; the root's self-time is the residual."""
    if path == "tick":
        return "orchestration"
    return path.partition(";")[2]


def phase_budget(summary: dict) -> list[tuple[str, float, float]]:
    """``(label, seconds, share)`` rows, largest first.

    Shares are fractions of the summed phase time, which equals the
    captured tick wall time up to float error (self-time accounting).
    """
    phases = summary.get("phases", {})
    total = sum(phases.values()) or 1.0
    rows = [
        (_phase_label(path), seconds, seconds / total)
        for path, seconds in phases.items()
    ]
    rows.sort(key=lambda row: -row[1])
    return rows


def folded_lines(summary: dict) -> list[str]:
    """Collapsed-stack lines (``path value``), flamegraph.pl compatible.

    Values are integer microseconds of *self* time, the convention
    folded-stack consumers expect.
    """
    lines = []
    for path, seconds in sorted(summary.get("phases", {}).items()):
        lines.append(f"{path} {max(round(seconds * 1e6), 0)}")
    return lines


def render_profile(summary: dict, top_k: int = 10) -> str:
    """The ``repro profile`` report: phase budget + hotspot tables."""
    out = []
    ticks = summary.get("ticks", 0)
    wall = summary.get("wall_seconds", 0.0)
    cpu = summary.get("cpu_seconds", 0.0)
    out.append(
        f"profile: {ticks} ticks, {summary.get('reports', 0)} reports, "
        f"wall {wall:.6f}s, cpu {cpu:.6f}s"
    )
    out.append("")
    out.append("phase budget (self time):")
    out.append(f"  {'phase':<28} {'seconds':>12} {'share':>8}")
    for label, seconds, share in phase_budget(summary):
        out.append(f"  {label:<28} {seconds:>12.6f} {share:>7.1%}")
    hotspots = summary.get("hotspots", {})
    rows = hotspots.get("queries", [])[:top_k]
    if rows:
        out.append("")
        out.append(f"top queries by attributed time (k={top_k}):")
        out.append(
            f"  {'query':<16} {'seconds':>12} {'reevaluations':>14}"
        )
        for row in rows:
            out.append(
                f"  {str(row['id']):<16} {row['seconds']:>12.6f} "
                f"{row['reevaluations']:>14}"
            )
    rows = hotspots.get("cells", [])[:top_k]
    if rows:
        out.append("")
        out.append(f"top cells by kernel rows (k={top_k}):")
        out.append(f"  {'cell':<16} {'rows':>10} {'reports':>10}")
        for row in rows:
            out.append(
                f"  {str(row['id']):<16} {row['rows']:>10} "
                f"{row['reports']:>10}"
            )
    rows = hotspots.get("objects", [])[:top_k]
    if rows:
        out.append("")
        out.append(f"top objects by reports (k={top_k}):")
        out.append(f"  {'object':<16} {'reports':>10}")
        for row in rows:
            out.append(f"  {str(row['id']):<16} {row['reports']:>10}")
    occupancy = summary.get("occupancy")
    if occupancy and occupancy.get("cells"):
        out.append("")
        out.append(
            f"cell occupancy: {occupancy['objects']} objects in "
            f"{occupancy['cells']} cells, max {occupancy['max']}, "
            f"mean {occupancy['mean']:.2f}, "
            f"imbalance {occupancy['imbalance']:.2f}"
        )
        for key, count in occupancy.get("histogram", {}).items():
            out.append(f"  <= {key[3:]:>6} objects: {count} cells")
    return "\n".join(out)
