"""The Q-index baseline (Prabhakar et al., IEEE ToC 2002).

The paper's related work: periodic monitoring where the *queries* are
indexed instead of the objects.  Every period each moved object's new
position is probed against an R-tree over the query rectangles, flipping
memberships incrementally — cheaper than PRD's rebuild-everything server
when objects outnumber queries.  Q-index supports range queries only; for
the mixed workload the kNN queries are evaluated per period against an
*incrementally maintained* object index (no per-period rebuild), which is
the natural extension and keeps the comparison fair.

Communication behaviour is identical to PRD (synchronised client updates
every ``t_prd``), so accuracy matches PRD's; the scheme exists to compare
server CPU profiles (Figures 7.2 / 7.3).
"""

from __future__ import annotations

from typing import Hashable

from repro.core.queries import KNNQuery, Query, RangeQuery
from repro.geometry.rect import Rect
from repro.index.bulk import bulk_load
from repro.mobility.waypoint import RandomWaypointModel
from repro.obs import NULL_REGISTRY, Tracer
from repro.simulation.metrics import (
    AccuracyAccumulator,
    CommunicationCosts,
    SchemeReport,
)
from repro.simulation.scenario import Scenario
from repro.simulation.truth import GroundTruth, Snapshot
from repro.workloads.generator import generate_queries

ObjectId = Hashable


class QIndexSimulation:
    """Periodic monitoring against an index over the queries."""

    def __init__(
        self,
        scenario: Scenario,
        t_prd: float,
        queries: list[Query] | None = None,
        truth: GroundTruth | None = None,
        metrics=None,
    ) -> None:
        if t_prd <= 0:
            raise ValueError("t_prd must be positive")
        self.scenario = scenario
        self.t_prd = t_prd
        self.metrics = NULL_REGISTRY if metrics is None else metrics
        self._trace = Tracer(self.metrics)
        if truth is not None:
            self.trajectories = truth.trajectories()
            self.queries = queries if queries is not None else truth.queries
            self.truth = truth
        else:
            model = RandomWaypointModel(
                scenario.mean_speed,
                scenario.mean_period,
                scenario.space,
                seed=scenario.seed,
            )
            self.trajectories = {
                oid: model.create(oid) for oid in range(scenario.num_objects)
            }
            if queries is None:
                queries = generate_queries(
                    scenario.workload(), seed=scenario.seed
                )
            self.queries = queries
            self.truth = GroundTruth(self.trajectories, queries)
        self.range_queries = [
            q for q in self.queries if isinstance(q, RangeQuery)
        ]
        self.knn_queries = [
            q for q in self.queries if isinstance(q, KNNQuery)
        ]
        self.costs = CommunicationCosts()
        self.accuracy = AccuracyAccumulator()
        self.cpu_seconds = 0.0

    # ------------------------------------------------------------------
    def run(self) -> SchemeReport:
        scenario = self.scenario
        # One-off setup: the query R-tree and the initial object index.
        query_index = bulk_load(
            (q.query_id, q.rect) for q in self.range_queries
        )
        by_id = {q.query_id: q for q in self.range_queries}
        positions = {
            oid: tr.position_at(0.0) for oid, tr in self.trajectories.items()
        }
        object_index = bulk_load(
            (oid, Rect.from_point(p)) for oid, p in positions.items()
        )
        memberships: dict[str, set[ObjectId]] = {
            q.query_id: set() for q in self.range_queries
        }
        for oid, p in positions.items():
            for qid in query_index.search(Rect.from_point(p)):
                memberships[qid].add(oid)

        events: list[tuple[float, int, float | None]] = []
        t = 0.0
        while t <= scenario.duration:
            events.append((t, 0, t))
            t = round(t + self.t_prd, 9)
        for s in scenario.sample_times():
            events.append((s, 1, None))
        events.sort()

        visible: dict[str, Snapshot] | None = None
        pending: list[tuple[float, dict[str, Snapshot]]] = []
        for when, kind, batch_time in events:
            if kind == 0:
                self.costs.updates += scenario.num_objects
                results = self._evaluate_batch(
                    batch_time, positions, object_index, query_index,
                    by_id, memberships,
                )
                pending.append((batch_time + scenario.delay, results))
            else:
                while pending and pending[0][0] <= when:
                    visible = pending.pop(0)[1]
                self._sample(when, visible)

        total_distance = sum(
            tr.distance_travelled(0.0, scenario.duration)
            for tr in self.trajectories.values()
        )
        return SchemeReport(
            scheme=f"QIDX({self.t_prd:g})",
            num_objects=scenario.num_objects,
            num_queries=len(self.queries),
            duration=scenario.duration,
            accuracy=self.accuracy.value,
            costs=self.costs,
            cpu_seconds=self.cpu_seconds,
            total_distance=total_distance,
            metrics=self.metrics.to_dict() if self.metrics.enabled else {},
        )

    def _evaluate_batch(
        self, t, positions, object_index, query_index, by_id, memberships
    ) -> dict[str, Snapshot]:
        new_positions = {
            oid: self.trajectories[oid].position_at(t)
            for oid in self.trajectories
        }
        with self._trace.span("qidx.evaluate_batch"):
            # Range queries: probe each *moved* object against the query
            # index.
            with self._trace.span("probe_moved"):
                for oid, new in new_positions.items():
                    old = positions[oid]
                    if new == old:
                        continue
                    affected = set(query_index.search(Rect.from_point(old)))
                    affected |= set(query_index.search(Rect.from_point(new)))
                    for qid in affected:
                        if by_id[qid].rect.contains_point(new):
                            memberships[qid].add(oid)
                        else:
                            memberships[qid].discard(oid)
                    # The object index is maintained incrementally (no
                    # rebuild).
                    object_index.update(oid, Rect.from_point(new))
                    positions[oid] = new

            results: dict[str, Snapshot] = {
                qid: frozenset(members) for qid, members in memberships.items()
            }
            # kNN queries: best-first over the incrementally updated index.
            with self._trace.span("reevaluate"):
                for query in self.knn_queries:
                    nearest = []
                    for oid, _, _ in object_index.nearest_iter(query.center):
                        nearest.append(oid)
                        if len(nearest) == query.k:
                            break
                    if query.order_sensitive:
                        results[query.query_id] = tuple(nearest)
                    else:
                        results[query.query_id] = frozenset(nearest)
        self.cpu_seconds = self._trace.cpu_seconds
        return results

    def _sample(self, t: float, visible: dict[str, Snapshot] | None) -> None:
        true_results = self.truth.evaluate_at(t)
        for query in self.queries:
            monitored = None if visible is None else visible.get(query.query_id)
            self.accuracy.record(monitored == true_results[query.query_id])
