"""The OPT scheme: clairvoyant optimal monitoring (Section 7).

OPT clients have perfect knowledge of all queries and all other objects;
each sends an update exactly when its own movement changes some query's
result.  OPT is infeasible in practice but provides (a) the ground-truth
result series against which accuracy is measured and (b) a lower bound on
the number of location updates.
"""

from __future__ import annotations

from repro.core.queries import Query
from repro.mobility.waypoint import RandomWaypointModel
from repro.simulation.metrics import CommunicationCosts, SchemeReport
from repro.simulation.scenario import Scenario
from repro.simulation.truth import GroundTruth, opt_update_count
from repro.workloads.generator import generate_queries


def optimal_report(
    scenario: Scenario,
    queries: list[Query] | None = None,
    truth: GroundTruth | None = None,
) -> SchemeReport:
    """Simulate OPT by replaying the exact result series.

    Communication cost counts one source-initiated update per true result
    change (see :func:`~repro.simulation.truth.opt_update_count`); accuracy
    is 1 by definition — OPT *is* the yardstick.
    """
    if truth is None:
        model = RandomWaypointModel(
            scenario.mean_speed,
            scenario.mean_period,
            scenario.space,
            seed=scenario.seed,
        )
        trajectories = {
            oid: model.create(oid) for oid in range(scenario.num_objects)
        }
        if queries is None:
            queries = generate_queries(scenario.workload(), seed=scenario.seed)
        truth = GroundTruth(trajectories, queries)
    elif queries is None:
        queries = truth.queries

    costs = CommunicationCosts()
    previous = None
    for t in scenario.opt_sample_times():
        current = truth.evaluate_at(t)
        costs.updates += opt_update_count(previous, current, queries)
        previous = current

    total_distance = 0.0
    return SchemeReport(
        scheme="OPT",
        num_objects=scenario.num_objects,
        num_queries=len(queries),
        duration=scenario.duration,
        accuracy=1.0,
        costs=costs,
        cpu_seconds=0.0,
        total_distance=total_distance,
    )
