"""Comparison schemes of Section 7 and related work.

* :class:`~repro.baselines.periodic.PRDSimulation` — the paper's periodic
  monitoring baseline (rebuild + reevaluate everything each period).
* :func:`~repro.baselines.optimal.optimal_report` — the clairvoyant
  optimum (exact result series, one update per true change event).
* :class:`~repro.baselines.qindex.QIndexSimulation` — the Q-index scheme
  from the paper's related work (index the queries, probe moved objects).
"""

from repro.baselines.optimal import optimal_report
from repro.baselines.periodic import PRDSimulation
from repro.baselines.qindex import QIndexSimulation

__all__ = ["PRDSimulation", "optimal_report", "QIndexSimulation"]
