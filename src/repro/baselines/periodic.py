"""The periodic monitoring baseline PRD (Section 7).

Every ``t_prd`` time units all clients simultaneously send their current
positions; the server rebuilds its object index over the received points
and reevaluates every registered query from scratch.  The results become
visible ``tau`` after the synchronised send (communication delay), so the
monitored answer is always somewhat stale — the accuracy cost the paper
quantifies in Figure 7.1(a).
"""

from __future__ import annotations

from typing import Hashable

from repro.core.queries import KNNQuery, Query, RangeQuery
from repro.geometry.rect import Rect
from repro.index.bulk import bulk_load
from repro.mobility.waypoint import RandomWaypointModel
from repro.obs import NULL_REGISTRY, Tracer
from repro.simulation.metrics import (
    AccuracyAccumulator,
    CommunicationCosts,
    SchemeReport,
)
from repro.simulation.scenario import Scenario
from repro.simulation.truth import GroundTruth, Snapshot
from repro.workloads.generator import generate_queries

ObjectId = Hashable


class PRDSimulation:
    """One run of periodic monitoring with period ``t_prd``."""

    def __init__(
        self,
        scenario: Scenario,
        t_prd: float,
        queries: list[Query] | None = None,
        truth: GroundTruth | None = None,
        metrics=None,
    ) -> None:
        if t_prd <= 0:
            raise ValueError("t_prd must be positive")
        self.scenario = scenario
        self.t_prd = t_prd
        self.metrics = NULL_REGISTRY if metrics is None else metrics
        self._trace = Tracer(self.metrics)
        if truth is not None:
            self.trajectories = truth.trajectories()
            self.queries = queries if queries is not None else truth.queries
            self.truth = truth
        else:
            model = RandomWaypointModel(
                scenario.mean_speed,
                scenario.mean_period,
                scenario.space,
                seed=scenario.seed,
            )
            self.trajectories = {
                oid: model.create(oid) for oid in range(scenario.num_objects)
            }
            if queries is None:
                queries = generate_queries(
                    scenario.workload(), seed=scenario.seed
                )
            self.queries = queries
            self.truth = GroundTruth(self.trajectories, queries)
        self.costs = CommunicationCosts()
        self.accuracy = AccuracyAccumulator()
        self.cpu_seconds = 0.0

    def run(self) -> SchemeReport:
        """Execute the scenario and return the report."""
        scenario = self.scenario
        events: list[tuple[float, int, float | None]] = []
        t = 0.0
        while t <= scenario.duration:
            events.append((t, 0, t))  # synchronised batch update at t
            t = round(t + self.t_prd, 9)
        for s in scenario.sample_times():
            events.append((s, 1, None))
        events.sort()

        visible: dict[str, Snapshot] | None = None
        pending: list[tuple[float, dict[str, Snapshot]]] = []
        for when, kind, batch_time in events:
            if kind == 0:
                self.costs.updates += scenario.num_objects
                results = self._evaluate_batch(batch_time)
                pending.append((batch_time + scenario.delay, results))
            else:
                while pending and pending[0][0] <= when:
                    visible = pending.pop(0)[1]
                self._sample(when, visible)

        total_distance = sum(
            tr.distance_travelled(0.0, scenario.duration)
            for tr in self.trajectories.values()
        )
        return SchemeReport(
            scheme=f"PRD({self.t_prd:g})",
            num_objects=scenario.num_objects,
            num_queries=len(self.queries),
            duration=scenario.duration,
            accuracy=self.accuracy.value,
            costs=self.costs,
            cpu_seconds=self.cpu_seconds,
            total_distance=total_distance,
            metrics=self.metrics.to_dict() if self.metrics.enabled else {},
        )

    def _evaluate_batch(self, t: float) -> dict[str, Snapshot]:
        """Rebuild the object index and reevaluate every query at time ``t``.

        Mirrors the paper's PRD server: a fresh R*-tree over the reported
        points per update instant, then a from-scratch evaluation of each
        query against it.  Wall time is charged to the scheme's CPU cost.
        """
        positions = {
            oid: self.trajectories[oid].position_at(t)
            for oid in self.trajectories
        }
        with self._trace.span("prd.evaluate_batch"):
            with self._trace.span("rebuild_index"):
                index = bulk_load(
                    (oid, Rect.from_point(p)) for oid, p in positions.items()
                )
            results: dict[str, Snapshot] = {}
            with self._trace.span("reevaluate"):
                for query in self.queries:
                    if isinstance(query, RangeQuery):
                        results[query.query_id] = frozenset(
                            index.search(query.rect)
                        )
                    elif isinstance(query, KNNQuery):
                        nearest = []
                        for oid, _, _ in index.nearest_iter(query.center):
                            nearest.append(oid)
                            if len(nearest) == query.k:
                                break
                        if query.order_sensitive:
                            results[query.query_id] = tuple(nearest)
                        else:
                            results[query.query_id] = frozenset(nearest)
                    else:  # pragma: no cover
                        raise TypeError(
                            f"unsupported query: {type(query).__name__}"
                        )
        self.cpu_seconds = self._trace.cpu_seconds
        return results

    def _sample(self, t: float, visible: dict[str, Snapshot] | None) -> None:
        true_results = self.truth.evaluate_at(t)
        for query in self.queries:
            monitored = None if visible is None else visible.get(query.query_id)
            self.accuracy.record(monitored == true_results[query.query_id])
