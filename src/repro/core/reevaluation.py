"""Incremental reevaluation of affected queries (Section 4.3).

Range queries flip the updated object's membership directly.  An
order-sensitive kNN query distinguishes three cases by where the updated
location ``p`` and the previously reported location ``p_lst`` fall with
respect to the quarantine circle; each case needs at most one probe.
Order-insensitive kNN queries are reevaluated from scratch (no strict
ordering exists to patch incrementally).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Hashable

from repro.core.evaluation import (
    ConstrainFn,
    EvaluationResult,
    ProbeFn,
    evaluate_knn,
)
from repro.core.queries import KNNQuery, RangeQuery
from repro.geometry.distances import Delta, delta
from repro.geometry.point import Point
from repro.geometry.rect import Rect

ObjectId = Hashable
SrLookup = Callable[[ObjectId], Rect]


@dataclass(slots=True)
class ReevaluationOutcome:
    """What one query's incremental reevaluation did."""

    changed: bool
    probed: dict[ObjectId, Point] = field(default_factory=dict)
    shrunk: dict[ObjectId, Rect] = field(default_factory=dict)
    #: Whether the quarantine area changed (the grid index must be updated).
    quarantine_changed: bool = False
    #: Which reevaluation path ran (paper's Section 4.3 case analysis);
    #: recorded on ``result_change`` events for post-hoc diagnosis.
    case: str = ""


def reevaluate_range(
    query: RangeQuery, oid: ObjectId, p: Point,
    inside: bool | None = None,
) -> ReevaluationOutcome:
    """Flip membership of ``oid`` in a range query after its update to ``p``.

    ``inside`` is an optional precomputed containment verdict for ``p``
    against ``query.rect`` — the tick planner scatters it out of the
    batched ``affected_rows`` dispatch, whose comparisons are exactly
    ``Rect.contains_point``'s, so passing it changes nothing but the
    redundant check.
    """
    if inside is None:
        inside = query.rect.contains_point(p)
    if inside and oid not in query.results:
        query.results.add(oid)
        return ReevaluationOutcome(changed=True, case="range_enter")
    if not inside and oid in query.results:
        query.results.discard(oid)
        return ReevaluationOutcome(changed=True, case="range_leave")
    return ReevaluationOutcome(changed=False, case="range_noop")


def reevaluate_knn(
    query: KNNQuery,
    oid: ObjectId,
    p: Point,
    p_lst: Point | None,
    index,
    probe: ProbeFn,
    sr_of: SrLookup,
    constrain: ConstrainFn | None = None,
    kernels=None,
    gates: tuple[bool, bool] | None = None,
) -> ReevaluationOutcome:
    """Incrementally reevaluate a kNN query for an update of ``oid`` to ``p``.

    The updated object's entry in ``index`` must already be its exact
    point (the server collapses the safe region on receipt of the update),
    so ``sr_of(oid)`` is point-sized and distance bounds are exact.

    ``kernels`` is forwarded to the fresh :func:`evaluate_knn` runs the
    cases fall back on (case 1's replacement search and the unordered
    full reevaluation); the incremental cases 2/3 are a handful of exact
    circle distances and stay scalar.

    ``gates`` is an optional precomputed ``(in_new, in_old)`` pair of
    quarantine-circle memberships, produced by the tick planner's
    ``knn_gate_rows`` dispatch with the same arithmetic as
    ``quarantine_contains`` — when given, the two scalar circle tests
    are skipped.  The caller guarantees it was computed against the
    query's *current* radius.
    """
    if not query.order_sensitive:
        return _reevaluate_unordered(query, index, probe, constrain, kernels)

    if gates is not None:
        in_new, in_old = gates
    else:
        in_new = query.quarantine_contains(p)
        in_old = p_lst is not None and query.quarantine_contains(p_lst)
    was_result = oid in query.results

    if was_result and not in_new:
        return _case_leaves(query, oid, index, probe, constrain, kernels)
    if in_new and not was_result:
        return _case_enters(query, oid, p, probe, sr_of, constrain)
    if in_new and was_result:
        return _case_moves_within(query, oid, p, probe, sr_of, constrain)
    # p and p_lst both outside and oid is not a result: nothing to do
    # (possible when the grid buckets over-approximate the affected set).
    return ReevaluationOutcome(changed=False, case="knn_noop")


def _case_leaves(
    query: KNNQuery,
    oid: ObjectId,
    index,
    probe: ProbeFn,
    constrain: ConstrainFn | None,
    kernels=None,
) -> ReevaluationOutcome:
    """Case 1: a result left the quarantine area; find the new k-th NN.

    A 1NN search excluding the *remaining* results fills the freed slot;
    the leaver itself stays searchable — it may still be the k-th NN when
    the quarantine circle was conservative.
    """
    old_snapshot = query.result_snapshot()
    remaining = [other for other in query.results if other != oid]
    remaining_set = set(remaining)
    replacement: EvaluationResult = evaluate_knn(
        index,
        query.center,
        1,
        probe,
        order_sensitive=True,
        exclude=lambda candidate: candidate in remaining_set,
        constrain=constrain,
        kernels=kernels,
    )
    query.results = remaining + replacement.results
    query.radius = replacement.radius
    return ReevaluationOutcome(
        changed=query.result_snapshot() != old_snapshot,
        probed=replacement.probed,
        shrunk=replacement.shrunk,
        quarantine_changed=True,
        case="knn_leaves",
    )


def _case_enters(
    query: KNNQuery,
    oid: ObjectId,
    p: Point,
    probe: ProbeFn,
    sr_of: SrLookup,
    constrain: ConstrainFn | None,
) -> ReevaluationOutcome:
    """Case 2: a non-result entered the quarantine area.

    Its exact distance is located within the strictly ordered interval
    sequence of the current results, probing at most one of them; the old
    k-th NN is dropped when the newcomer takes a slot.  When the newcomer
    lands beyond the old k-th NN it stays a non-result and the quarantine
    shrinks to keep it outside.
    """
    old_snapshot = query.result_snapshot()
    outcome = ReevaluationOutcome(
        changed=False, quarantine_changed=True, case="knn_enters"
    )
    rank = _locate_rank(query, oid, p, probe, sr_of, constrain, outcome)
    d = query.center.distance_to(p)

    if len(query.results) < query.k:
        # Data underflow: every object in range is a result; the workspace-
        # wide quarantine radius stays as it is.
        query.results.insert(rank, oid)
        outcome.changed = query.result_snapshot() != old_snapshot
        outcome.quarantine_changed = False
        return outcome

    if rank >= len(query.results):
        # Beyond every current result: shrink the quarantine circle so the
        # non-result invariant (objects outside) is restored.
        kth_max = _max_dist(query, query.results[-1], sr_of, outcome)
        query.radius = (kth_max + max(d, kth_max)) / 2.0
        outcome.changed = False
        return outcome

    dropped = query.results[-1]
    query.results = (
        query.results[:rank] + [oid] + query.results[rank:-1]
    )
    new_kth_max = _max_dist(query, query.results[-1], sr_of, outcome)
    dropped_min = _min_dist(query, dropped, sr_of, outcome)
    query.radius = (new_kth_max + max(dropped_min, new_kth_max)) / 2.0
    outcome.changed = query.result_snapshot() != old_snapshot
    return outcome


def _case_moves_within(
    query: KNNQuery,
    oid: ObjectId,
    p: Point,
    probe: ProbeFn,
    sr_of: SrLookup,
    constrain: ConstrainFn | None,
) -> ReevaluationOutcome:
    """Case 3: a result moved within the quarantine area (rank may change).

    The object is pulled out of the ordered sequence and re-located as in
    case 2; nobody is dropped and the quarantine radius is unchanged.
    """
    old_snapshot = query.result_snapshot()
    outcome = ReevaluationOutcome(changed=False, case="knn_moves_within")
    query.results = [other for other in query.results if other != oid]
    rank = _locate_rank(query, oid, p, probe, sr_of, constrain, outcome)
    query.results.insert(rank, oid)
    outcome.changed = query.result_snapshot() != old_snapshot
    return outcome


def _locate_rank(
    query: KNNQuery,
    oid: ObjectId,
    p: Point,
    probe: ProbeFn,
    sr_of: SrLookup,
    constrain: ConstrainFn | None,
    outcome: ReevaluationOutcome,
) -> int:
    """Index at which ``oid`` (at exact distance ``d(q, p)``) ranks.

    Walks the strictly ordered distance intervals of the current results;
    when ``d`` falls inside some interval ``[delta_i, Delta_i]`` the owner
    is probed (after the optional reachability tightening) to break the
    tie — at most one probe, because intervals are pairwise disjoint.
    """
    q = query.center
    d = q.distance_to(p)
    for rank, other in enumerate(query.results):
        region = sr_of(other)
        lo = delta(q, region)
        hi = Delta(q, region)
        if constrain is not None and lo <= d <= hi:
            tightened = constrain(other, region)
            if tightened != region:
                outcome.shrunk[other] = tightened
                region = tightened
                lo = delta(q, region)
                hi = Delta(q, region)
        if d < lo:
            return rank
        if d <= hi:
            position = probe(other)
            outcome.probed[other] = position
            outcome.shrunk.pop(other, None)
            if d < q.distance_to(position):
                return rank
    return len(query.results)


def _reevaluate_unordered(
    query: KNNQuery,
    index,
    probe: ProbeFn,
    constrain: ConstrainFn | None,
    kernels=None,
) -> ReevaluationOutcome:
    """Order-insensitive kNN queries are reevaluated as new (Section 4.3)."""
    old_snapshot = query.result_snapshot()
    fresh = evaluate_knn(
        index,
        query.center,
        query.k,
        probe,
        order_sensitive=False,
        constrain=constrain,
        kernels=kernels,
    )
    query.results = fresh.results
    query.radius = fresh.radius
    return ReevaluationOutcome(
        changed=query.result_snapshot() != old_snapshot,
        probed=fresh.probed,
        shrunk=fresh.shrunk,
        quarantine_changed=True,
        case="knn_unordered",
    )


def relieve_tight_safe_region(
    query: KNNQuery,
    oid: ObjectId,
    p: Point,
    index,
    probe: ProbeFn,
    already_probed: frozenset[ObjectId] = frozenset(),
    min_gain: float = 0.0,
) -> ReevaluationOutcome:
    """Restore slack around ``oid`` when its safe region came out tiny.

    Quarantine areas of kNN queries are circles; inscribed safe-region
    rectangles degenerate as an object approaches a circle, and an object
    sliding *along* a circle (without crossing it) would otherwise get a
    zero-room safe region after every update — an update storm the paper's
    construction does not guard against.  Called by the server when a
    freshly computed safe region has (near-)zero interior margin, this
    relief restores whatever slack legally exists:

    * adjacent neighbours in the ranking whose safe regions are still
      rectangles are probed — their distance intervals collapse to exact
      points, widening the object's ring;
    * the quarantine radius (a free parameter anywhere between
      ``Delta(q, o_k)`` and ``delta(q, o_{k+1})``) is re-centred at the
      midpoint of its legal interval.

    All adjustments preserve the quarantine invariants.  When no slack
    exists (two objects at genuinely equal distance), the outcome is a
    no-op and the caller lives with a tight region.
    """
    outcome = ReevaluationOutcome(changed=False, case="sr_relief")
    if not query.results or query.radius <= 0.0:
        return outcome
    q = query.center
    d = q.distance_to(p)

    def probe_if_region(target: ObjectId) -> None:
        # Probe at most once per server update cycle, and only when the
        # target's distance interval is *loose* — collapsing a stale wide
        # interval recovers real slack, whereas probing a neighbour whose
        # interval is already as tight as the true distance gap gains
        # nothing and just burns uplink messages.
        if target in already_probed:
            return
        region = index.rect_of(target)
        spread = Delta(q, region) - delta(q, region)
        if spread > min_gain:
            outcome.probed[target] = probe(target)

    min_gain = max(min_gain, 0.1 * query.radius / max(query.k, 1))

    def kth_max_dist() -> float:
        return max(
            Delta(q, _region_of(other, index.rect_of, outcome))
            for other in query.results
        )

    if oid not in query.results:
        # Hugging the circle from outside: probe the farthest result and
        # shrink the radius to the midpoint of the legal interval.
        farthest = max(
            query.results,
            key=lambda other: Delta(q, index.rect_of(other)),
        )
        probe_if_region(farthest)
        kth_max = kth_max_dist()
        if d > kth_max:
            new_radius = (kth_max + d) / 2.0
            if new_radius != query.radius:
                query.radius = new_radius
                outcome.quarantine_changed = True
        return outcome

    if query.order_sensitive:
        rank = query.results.index(oid)
        if rank > 0:
            probe_if_region(query.results[rank - 1])
        if rank < len(query.results) - 1:
            probe_if_region(query.results[rank + 1])
        is_last = rank == len(query.results) - 1
    else:
        is_last = True

    if is_last:
        # Re-centre the radius between the k-th NN and the next candidate.
        members = set(query.results)
        followers = index.nearest_iter(q, exclude=lambda c: c in members)
        follower = next(followers, None)
        kth_max = max(kth_max_dist(), d)
        if follower is None:
            new_radius = max(query.radius, 2.0 * kth_max + 1e-9)
        else:
            follower_oid, follower_rect, follower_min = follower
            boxed_in = follower_min - kth_max < 0.05 * query.radius
            spread = Delta(q, follower_rect) - follower_min
            if (
                boxed_in
                and follower_oid not in already_probed
                and spread > min_gain
            ):
                # The follower's safe region itself hugs the circle from
                # outside, leaving the radius no legal room; its exact
                # position is usually much deeper inside the region.
                position = probe(follower_oid)
                outcome.probed[follower_oid] = position
                follower_min = q.distance_to(position)
                # The enlarged circle must still exclude every *other*
                # non-result's safe region, not only the probed follower.
                second = next(followers, None)
                if second is not None:
                    follower_min = min(follower_min, second[2])
            if follower_min < kth_max:
                return outcome  # genuinely adjacent: no slack exists
            new_radius = (kth_max + follower_min) / 2.0
        if new_radius != query.radius:
            query.radius = new_radius
            outcome.quarantine_changed = True
    return outcome


def _region_of(
    oid: ObjectId, sr_of: SrLookup, outcome: ReevaluationOutcome
) -> Rect:
    """Freshest region known for ``oid``: probe > shrink > stored region.

    Probes made during this reevaluation are not yet reflected in the
    object index (the server applies them afterwards), so distance bounds
    must consult the outcome first.
    """
    position = outcome.probed.get(oid)
    if position is not None:
        return Rect.from_point(position)
    return outcome.shrunk.get(oid, sr_of(oid))


def _max_dist(
    query: KNNQuery, oid: ObjectId, sr_of: SrLookup, outcome: ReevaluationOutcome
) -> float:
    return Delta(query.center, _region_of(oid, sr_of, outcome))


def _min_dist(
    query: KNNQuery, oid: ObjectId, sr_of: SrLookup, outcome: ReevaluationOutcome
) -> float:
    return delta(query.center, _region_of(oid, sr_of, outcome))
