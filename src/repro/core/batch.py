"""Safe region for a batch of range queries (Section 5.3).

Given the object location ``p``, its grid cell, and the rectangles of all
relevant range queries whose quarantine areas do *not* contain ``p``, the
algorithm finds a large rectangle inside the cell containing ``p`` and
avoiding every query rectangle:

1. With ``p`` as the origin, each of the four quadrants of the cell is
   processed independently.  Proposition 5.6 yields the *component
   rectangles* — the maximal axis-aligned rectangles anchored at ``p``
   avoiding all (clipped) query rectangles — via the staircase of
   non-dominated obstacle corners.
2. A four-step greedy pass combines one component rectangle per quadrant
   into the final rectangular union: starting from the quadrant holding the
   globally longest component and proceeding clockwise, each chosen
   component's opposite corner trims the running union.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.core.irlp import interior_margin
from repro.geometry.point import Point
from repro.geometry.rect import Rect

Objective = Callable[[Rect], float]

#: Quadrant sign pairs in clockwise order starting from the upper-right.
_QUADRANTS: tuple[tuple[float, float], ...] = (
    (1.0, 1.0),
    (1.0, -1.0),
    (-1.0, -1.0),
    (-1.0, 1.0),
)


def batch_range_safe_region(
    p: Point,
    cell: Rect,
    obstacles: Sequence[Rect],
    objective: Objective | None = None,
    kernels=None,
) -> Rect:
    """Largest-perimeter rectangle in ``cell`` around ``p`` avoiding obstacles.

    ``p`` must lie inside ``cell`` and inside no *open* obstacle (an
    object's location is never strictly inside the quarantine area of a
    range query it is not a result of).  Obstacles may extend beyond the
    cell; only their part inside the cell matters.  The returned rectangle
    contains ``p`` (possibly on its boundary) and overlaps no open
    obstacle.

    With ``kernels``, the per-obstacle corner localisation runs as one
    batch pass per quadrant over obstacle columns built once per call
    (``Kernels.quadrant_corners`` mirrors ``_local_min_corner`` exactly,
    signed zeros included); the staircase and the greedy combination stay
    scalar — they are sequential over a handful of corners.  Obstacle
    sets below ``kernels.min_rows`` skip the column build entirely and
    run the scalar corner localisation in place — same arithmetic,
    without a round trip through the dispatcher's row-count gate.
    """
    columns = None
    if kernels is not None and len(obstacles) >= kernels.min_rows:
        columns = (
            [r.min_x for r in obstacles],
            [r.min_y for r in obstacles],
            [r.max_x for r in obstacles],
            [r.max_y for r in obstacles],
        )
    component_sets = [
        _component_corners(p, cell, obstacles, sx, sy, kernels, columns)
        for sx, sy in _QUADRANTS
    ]
    return combine_components(p, cell, component_sets, objective)


def quadrant_extents(p: Point, cell: Rect) -> list[tuple[float, float]]:
    """``(width, height)`` of each quadrant of ``cell`` around ``p``.

    In ``_QUADRANTS`` order, clamped at zero — the local coordinate
    extents used by corner localisation (kernel and scalar alike).
    """
    out = []
    for sx, sy in _QUADRANTS:
        width = (cell.max_x - p.x) if sx > 0 else (p.x - cell.min_x)
        height = (cell.max_y - p.y) if sy > 0 else (p.y - cell.min_y)
        out.append((max(width, 0.0), max(height, 0.0)))
    return out


def staircase_corners(
    blockers: list[tuple[float, float]], width: float, height: float
) -> list[tuple[float, float]]:
    """Proposition 5.6 staircase from localised blocker corners.

    ``blockers`` holds quadrant-local obstacle corners (any order — they
    are sorted here, so the result depends only on the corner multiset);
    the returned list is the opposite corners of the quadrant's maximal
    component rectangles.  Shared verbatim by the per-call path and the
    tick planner's scatter phase, which is what keeps the two
    bit-identical by construction.
    """
    blockers.sort()
    corners: list[tuple[float, float]] = []
    y_cap = height
    for ax, ay in blockers:
        if ay >= y_cap:
            continue  # adds no new constraint; its corner is dominated
        if not corners or corners[-1][0] != ax:
            corners.append((ax, y_cap))
        y_cap = ay
    corners.append((width, y_cap))
    return corners


def combine_components(
    p: Point,
    cell: Rect,
    component_sets: Sequence[list[tuple[float, float]]],
    objective: Objective | None = None,
) -> Rect:
    """Greedy four-step union of one component per quadrant (Section 5.3)."""
    if objective is None:
        # Scalar fast path for the default perimeter objective: the same
        # greedy walk without minting a Rect per candidate.  Every
        # comparison reproduces the generic path's arithmetic term for
        # term (widths via ``(p +/- c) - p`` differences, perimeter as
        # ``2.0 * (w + h)``, first-maximum tie-breaks), so the chosen
        # rectangle is bit-identical to the generic path's.
        px, py = p.x, p.y

        start = 0
        best_val = float("-inf")
        for idx in range(4):
            sx, sy = _QUADRANTS[idx]
            q_best = float("-inf")
            for cx, cy in component_sets[idx]:
                gx = px + sx * cx
                gy = py + sy * cy
                w = gx - px if gx >= px else px - gx
                h = gy - py if gy >= py else py - gy
                v = 2.0 * (w + h)
                if v > q_best:
                    q_best = v
            if q_best > best_val:
                best_val = q_best
                start = idx

        ux0, uy0 = cell.min_x, cell.min_y
        ux1, uy1 = cell.max_x, cell.max_y
        for step in range(4):
            idx = (start + step) % 4
            corners = component_sets[idx]
            if not corners:
                continue
            sx, sy = _QUADRANTS[idx]
            best_key = None
            best_bounds = None
            for cx, cy in corners:
                gx = px + sx * cx
                gy = py + sy * cy
                if sx > 0:
                    tx0, tx1 = ux0, (ux1 if ux1 <= gx else gx)
                else:
                    tx0, tx1 = (ux0 if ux0 >= gx else gx), ux1
                if sy > 0:
                    ty0, ty1 = uy0, (uy1 if uy1 <= gy else gy)
                else:
                    ty0, ty1 = (uy0 if uy0 >= gy else gy), uy1
                if tx1 < tx0:
                    tx0, tx1 = tx1, tx0
                if ty1 < ty0:
                    ty0, ty1 = ty1, ty0
                margin = px - tx0
                m = tx1 - px
                if m < margin:
                    margin = m
                m = py - ty0
                if m < margin:
                    margin = m
                m = ty1 - py
                if m < margin:
                    margin = m
                key = (margin > 1e-9, 2.0 * ((tx1 - tx0) + (ty1 - ty0)))
                if best_key is None or key > best_key:
                    best_key = key
                    best_bounds = (tx0, ty0, tx1, ty1)
            ux0, uy0, ux1, uy1 = best_bounds
        return Rect(ux0, uy0, ux1, uy1)

    score = objective

    # Greedy start: the quadrant owning the longest-perimeter component.
    start = max(
        range(4),
        key=lambda idx: max(
            (score(_component_rect(p, t, *_QUADRANTS[idx])) for t in component_sets[idx]),
            default=float("-inf"),
        ),
    )

    union = cell
    for step in range(4):
        idx = (start + step) % 4
        sx, sy = _QUADRANTS[idx]
        corners = component_sets[idx]
        if not corners:
            continue
        best = max(
            corners,
            key=lambda t: _trim_rank(_trim(union, p, t, sx, sy), p, score),
        )
        union = _trim(union, p, best, sx, sy)
    return union


def _trim_rank(rect: Rect, p: Point, score: Objective) -> tuple[bool, float]:
    """Rank a trimmed union: strict containment of ``p`` first, then score.

    A trim that leaves ``p`` exactly on the union's boundary would have
    the object exit its safe region immediately (update storm); any trim
    keeping ``p`` strictly interior is preferred regardless of perimeter.
    """
    return (interior_margin(rect, p) > 1e-9, score(rect))


def _perimeter(rect: Rect) -> float:
    return rect.perimeter


def _component_corners(
    p: Point,
    cell: Rect,
    obstacles: Sequence[Rect],
    sx: float,
    sy: float,
    kernels=None,
    columns=None,
) -> list[tuple[float, float]]:
    """Opposite corners of the component rectangles in one quadrant.

    Works in quadrant-local coordinates (``p`` at the origin, the quadrant
    mapped onto the first): a component rectangle ``[0, X] x [0, Y]``
    avoids an obstacle with local lower-left corner ``(ax, ay)`` iff
    ``X <= ax`` or ``Y <= ay``.  The maximal ``(X, Y)`` pairs form the
    staircase of Proposition 5.6.
    """
    width = (cell.max_x - p.x) if sx > 0 else (p.x - cell.min_x)
    height = (cell.max_y - p.y) if sy > 0 else (p.y - cell.min_y)
    width = max(width, 0.0)
    height = max(height, 0.0)

    if kernels is not None and columns is not None:
        blockers = kernels.quadrant_corners(
            p.x, p.y, *columns, sx, sy, width, height
        )
    else:
        blockers = []
        for obstacle in obstacles:
            corner = _local_min_corner(p, obstacle, sx, sy, width, height)
            if corner is not None:
                blockers.append(corner)
    return staircase_corners(blockers, width, height)


def _local_min_corner(
    p: Point, obstacle: Rect, sx: float, sy: float, width: float, height: float
) -> tuple[float, float] | None:
    """Obstacle's lower-left corner in quadrant-local coordinates.

    Returns ``None`` when the obstacle cannot constrain any component
    rectangle of this quadrant (no positive-area overlap with it).
    """
    if sx > 0:
        lx1, lx2 = obstacle.min_x - p.x, obstacle.max_x - p.x
    else:
        lx1, lx2 = p.x - obstacle.max_x, p.x - obstacle.min_x
    if sy > 0:
        ly1, ly2 = obstacle.min_y - p.y, obstacle.max_y - p.y
    else:
        ly1, ly2 = p.y - obstacle.max_y, p.y - obstacle.min_y

    if lx2 <= 0.0 or ly2 <= 0.0 or lx1 >= width or ly1 >= height:
        return None
    return (max(lx1, 0.0), max(ly1, 0.0))


def _component_rect(
    p: Point, corner: tuple[float, float], sx: float, sy: float
) -> Rect:
    """Global-coordinate rectangle of a component given its local corner."""
    xs = sorted((p.x, p.x + sx * corner[0]))
    ys = sorted((p.y, p.y + sy * corner[1]))
    return Rect(xs[0], ys[0], xs[1], ys[1])


def _trim(
    union: Rect, p: Point, corner: tuple[float, float], sx: float, sy: float
) -> Rect:
    """Trim ``union`` by the lines through a component's opposite corner."""
    gx = p.x + sx * corner[0]
    gy = p.y + sy * corner[1]
    if sx > 0:
        min_x, max_x = union.min_x, min(union.max_x, gx)
    else:
        min_x, max_x = max(union.min_x, gx), union.max_x
    if sy > 0:
        min_y, max_y = union.min_y, min(union.max_y, gy)
    else:
        min_y, max_y = max(union.min_y, gy), union.max_y
    return Rect(min(min_x, max_x), min(min_y, max_y), max(min_x, max_x), max(min_y, max_y))
