"""Snapshot / restore of the monitoring server's state.

A monitoring server is long-running; being able to persist its view —
object safe regions, query results, quarantine radii — and resume after a
restart without re-probing the whole fleet is table stakes for a real
deployment.  The snapshot is plain JSON: every value it stores is either
a primitive, a point, or a rectangle.

Restoring reconstructs the object index (bulk-loaded over the stored safe
regions), the grid query index, and the per-object state; the restored
server continues exactly where the old one stopped, as the round-trip
tests assert.

Only the built-in query types (:class:`RangeQuery`, :class:`KNNQuery`)
are serialised; extension queries should be re-registered by the
application after restore (they may hold application references).

Format history:

* **1** — objects, queries, core config.
* **2** — adds the server clock, the degraded-object set, and the
  fault-handling config fields (``probe_timeout`` / ``probe_retries`` /
  ``probe_budget`` / ``on_unknown_object`` / ``degraded_max_speed``).
  Version-1 snapshots still load: the new fields default to a healthy,
  faults-off server.

For crash recovery, :func:`replay_updates` feeds a flight-recorder
JSONL tail (``update`` events after the snapshot time) back through
``handle_location_update``, catching the restored server up to the
moment of the crash (docs/ROBUSTNESS.md).
"""

from __future__ import annotations

import json
from typing import IO, Hashable

from repro.core.queries import KNNQuery, RangeQuery
from repro.core.server import DatabaseServer, ObjectState, ServerConfig
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.index.bulk import bulk_load

ObjectId = Hashable

FORMAT_VERSION = 2


def _rect_to_list(rect: Rect) -> list[float]:
    return [rect.min_x, rect.min_y, rect.max_x, rect.max_y]


def _rect_from_list(values) -> Rect:
    return Rect(*values)


def snapshot_server(server: DatabaseServer) -> dict:
    """Serialise a server's complete monitoring state to a JSON-able dict."""
    queries = []
    for query in sorted(server.queries(), key=lambda q: q.query_id):
        if isinstance(query, RangeQuery):
            queries.append(
                {
                    "type": "range",
                    "query_id": query.query_id,
                    "rect": _rect_to_list(query.rect),
                    "results": sorted(query.results, key=repr),
                }
            )
        elif isinstance(query, KNNQuery):
            queries.append(
                {
                    "type": "knn",
                    "query_id": query.query_id,
                    "center": [query.center.x, query.center.y],
                    "k": query.k,
                    "order_sensitive": query.order_sensitive,
                    "results": list(query.results),
                    "radius": query.radius,
                }
            )
        else:
            raise TypeError(
                f"cannot snapshot extension query {type(query).__name__}; "
                "re-register it after restore"
            )
    objects = {}
    for oid in sorted(server._objects, key=repr):
        state = server._objects[oid]
        objects[json.dumps(oid)] = {
            "safe_region": _rect_to_list(state.safe_region),
            "p_lst": [state.p_lst.x, state.p_lst.y],
            "last_update_time": state.last_update_time,
        }
    degraded = {
        json.dumps(oid): entered
        for oid, entered in sorted(
            server.degraded_objects().items(), key=lambda kv: repr(kv[0])
        )
    }
    return {
        "version": FORMAT_VERSION,
        "time": server.clock,
        "config": {
            "grid_m": server.config.grid_m,
            "space": _rect_to_list(server.config.space),
            "max_speed": server.config.max_speed,
            "reachability_pushes": server.config.reachability_pushes,
            "steadiness": server.config.steadiness,
            "index_max_entries": server.config.index_max_entries,
            "batch_range_regions": server.config.batch_range_regions,
            "anti_storm_relief": server.config.anti_storm_relief,
            "kernel_backend": server.config.kernel_backend,
            "kernel_min_rows": server.config.kernel_min_rows,
            "probe_timeout": server.config.probe_timeout,
            "probe_retries": server.config.probe_retries,
            "probe_budget": server.config.probe_budget,
            "on_unknown_object": server.config.on_unknown_object,
            "degraded_max_speed": server.config.degraded_max_speed,
        },
        "queries": queries,
        "objects": objects,
        "degraded": degraded,
    }


def config_from_payload(config_data: dict) -> ServerConfig:
    """Rebuild a :class:`ServerConfig` from a snapshot's ``config`` block.

    Shared by the single-server and sharded (``repro.sharding.snapshot``)
    restore paths so version-compat defaults never fork.
    """
    config_data = dict(config_data)
    if not isinstance(config_data["space"], Rect):
        config_data["space"] = _rect_from_list(config_data["space"])
    # Snapshots written before the kernels subsystem carry no backend;
    # version-1 snapshots predate the fault-handling fields entirely.
    config_data.setdefault("kernel_backend", "numpy")
    config_data.setdefault("kernel_min_rows", 8)
    config_data.setdefault("probe_timeout", 0.05)
    config_data.setdefault("probe_retries", 2)
    config_data.setdefault("probe_budget", None)
    config_data.setdefault("on_unknown_object", "raise")
    config_data.setdefault("degraded_max_speed", None)
    return ServerConfig(**config_data)


def restore_server(payload: dict, position_oracle) -> DatabaseServer:
    """Rebuild a server from a snapshot dict and a fresh probe channel."""
    version = payload.get("version")
    if version not in (1, FORMAT_VERSION):
        raise ValueError(f"unsupported snapshot version: {version!r}")
    server = DatabaseServer(
        position_oracle=position_oracle,
        config=config_from_payload(payload["config"]),
    )

    pairs = []
    for key, data in payload["objects"].items():
        oid = json.loads(key)
        region = _rect_from_list(data["safe_region"])
        state = ObjectState(
            safe_region=region,
            p_lst=Point(*data["p_lst"]),
            last_update_time=data["last_update_time"],
        )
        server._objects[oid] = state
        server.positions.set(oid, state.p_lst)
        pairs.append((oid, region))
    server.object_index = bulk_load(
        pairs,
        max_entries=server.config.index_max_entries,
        kernels=server.kernels,
    )

    for entry in payload["queries"]:
        if entry["type"] == "range":
            query = RangeQuery(
                _rect_from_list(entry["rect"]), query_id=entry["query_id"]
            )
            query.results = set(entry["results"])
        elif entry["type"] == "knn":
            query = KNNQuery(
                Point(*entry["center"]),
                entry["k"],
                order_sensitive=entry["order_sensitive"],
                query_id=entry["query_id"],
            )
            query.results = list(entry["results"])
            query.radius = entry["radius"]
        else:
            raise ValueError(f"unknown query type {entry['type']!r}")
        server.query_index.insert(query)

    server._clock = payload.get("time", 0.0)
    for key, entered in payload.get("degraded", {}).items():
        oid = json.loads(key)
        if oid in server._objects:
            server._degraded[oid] = entered
    if server._degraded:
        server._g_degraded.set(len(server._degraded))
    return server


def replay_updates(
    server: DatabaseServer, events: list, after: float | None = None
) -> tuple[int, int]:
    """Catch a restored server up from a flight-recorder tail.

    Feeds every ``update`` event in ``events`` (dicts, as read by
    :func:`repro.obs.events.read_events`) with ``t >= after`` back
    through ``handle_location_update``; ``after`` defaults to the
    restored server's snapshot clock, so the natural call is
    ``replay_updates(server, read_events(recorder_path))``.

    Returns ``(replayed, skipped)``; a replayed stream may legitimately
    skip events — objects deregistered after the snapshot, or oids the
    snapshot never knew (registered and dropped inside the tail).
    JSON round-tripping turns tuple oids into lists, so list oids are
    converted back to tuples before lookup.
    """
    cutoff = server.clock if after is None else after
    replayed = 0
    skipped = 0
    for event in events:
        if event.get("kind") != "update":
            continue
        t = event.get("t", 0.0)
        if t < cutoff:
            continue
        oid = event.get("oid")
        if isinstance(oid, list):
            oid = tuple(oid)
        pos = event.get("pos")
        if pos is None or oid not in server._objects:
            skipped += 1
            continue
        server.handle_location_update(oid, Point(pos[0], pos[1]), t)
        replayed += 1
    return replayed, skipped


def dump_server(server: DatabaseServer, handle: IO[str]) -> None:
    """Write a snapshot as JSON to an open text handle."""
    json.dump(snapshot_server(server), handle)


def load_server(handle: IO[str], position_oracle) -> DatabaseServer:
    """Read a snapshot from an open text handle and rebuild the server."""
    return restore_server(json.load(handle), position_oracle)
