"""The paper's primary contribution: safe-region-based query monitoring.

Public surface:

* :class:`~repro.core.queries.RangeQuery` and
  :class:`~repro.core.queries.KNNQuery` — continuous queries with their
  quarantine areas (Section 3.3).
* :class:`~repro.core.server.DatabaseServer` — Algorithm 1: query
  registration, incremental reevaluation on location updates, probes, and
  safe-region maintenance.
* :mod:`~repro.core.irlp` / :mod:`~repro.core.batch` — the geometric
  optimisation of safe regions (Section 5).
* :mod:`~repro.core.enhancements` — the reachability-circle and
  steady-movement enhancements (Section 6).
"""

from repro.core.extensions import (
    CircleRangeQuery,
    MovingKNNQuery,
    ProximityPairQuery,
    ThresholdRangeQuery,
)
from repro.core.queries import KNNQuery, Query, RangeQuery
from repro.core.results import ResultChange, UpdateOutcome
from repro.core.server import DatabaseServer, ServerConfig

__all__ = [
    "Query",
    "RangeQuery",
    "KNNQuery",
    "ResultChange",
    "UpdateOutcome",
    "DatabaseServer",
    "ServerConfig",
    "CircleRangeQuery",
    "ThresholdRangeQuery",
    "ProximityPairQuery",
    "MovingKNNQuery",
]
