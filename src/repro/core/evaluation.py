"""Evaluation of new queries over safe regions (Section 4, Algorithm 2).

Objects are represented by their safe regions, so exact results may be
undecidable without asking some objects for their exact positions.  The
*lazy probe* technique defers every probe until the evaluation cannot
continue, which makes each issued probe mandatory.

The optional ``constrain`` hook implements the maximum-speed enhancement
(Section 6.1): before a probe is issued, the candidate's region is
intersected with the bounding box of its reachability circle, hopefully
resolving the ambiguity for free.  Whenever a constrained region is used
to *decide* something, the tightened rectangle is recorded in ``shrunk``
so the server can install it as the object's stored safe region (keeping
the quarantine invariants exact) and push it to the client on the cheap
downlink.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass, field
from math import hypot
from typing import Callable, Hashable, Iterator

from repro.geometry.point import Point
from repro.geometry.rect import Rect

ObjectId = Hashable
ProbeFn = Callable[[ObjectId], Point]
ConstrainFn = Callable[[ObjectId, Rect], Rect]

#: Result geometry: the object's region, or its exact point after a probe.
Geometry = Rect | Point

_WORKSPACE_DIAMETER = math.sqrt(2.0)


@dataclass(slots=True)
class EvaluationResult:
    """Outcome of evaluating one query over safe regions."""

    #: Result object ids; in ascending distance order for kNN queries.
    results: list[ObjectId]
    #: Quarantine-circle radius (kNN only; 0.0 for range queries).
    radius: float = 0.0
    #: Objects probed during evaluation and their exact positions.
    probed: dict[ObjectId, Point] = field(default_factory=dict)
    #: Objects whose stored safe region must shrink to the recorded
    #: rectangle because a reachability-constrained region was decisive.
    shrunk: dict[ObjectId, Rect] = field(default_factory=dict)


# ---------------------------------------------------------------------------
# Range queries (Section 4.1)
# ---------------------------------------------------------------------------
def evaluate_range(
    index,
    rect: Rect,
    probe: ProbeFn,
    constrain: ConstrainFn | None = None,
    kernels=None,
) -> EvaluationResult:
    """Evaluate a new range query over safe regions.

    A safe region fully inside the query rectangle makes its object a
    result outright; a partial overlap requires a probe (possibly avoided
    by the reachability constraint).

    With ``kernels``, the candidate entries are materialized once and the
    containment test (result outright vs. needs a closer look) runs as a
    single batch pass over the region columns; the per-object probe /
    constrain logic is untouched.  Safe because probes never mutate the
    index mid-evaluation — the server applies probe results afterwards.
    """
    outcome = EvaluationResult(results=[])
    if kernels is not None:
        entries = list(index.search_entries(rect))
        if not entries:
            return outcome
        contained = kernels.rects_contained_in(
            [region.min_x for _, region in entries],
            [region.min_y for _, region in entries],
            [region.max_x for _, region in entries],
            [region.max_y for _, region in entries],
            rect,
        )
        for (oid, region), inside in zip(entries, contained):
            if inside:
                outcome.results.append(oid)
            else:
                _resolve_partial_overlap(
                    rect, oid, region, probe, constrain, outcome
                )
        return outcome
    for oid, region in index.search_entries(rect):
        if rect.contains_rect(region):
            outcome.results.append(oid)
        else:
            _resolve_partial_overlap(rect, oid, region, probe, constrain, outcome)
    return outcome


def _resolve_partial_overlap(
    rect: Rect,
    oid: ObjectId,
    region: Rect,
    probe: ProbeFn,
    constrain: ConstrainFn | None,
    outcome: EvaluationResult,
) -> None:
    """Decide one partially-overlapping candidate: constrain, else probe."""
    if constrain is not None:
        tightened = constrain(oid, region)
        if tightened != region:
            if rect.contains_rect(tightened):
                outcome.results.append(oid)
                outcome.shrunk[oid] = tightened
                return
            if not rect.intersects(tightened):
                outcome.shrunk[oid] = tightened
                return
    position = probe(oid)
    outcome.probed[oid] = position
    if rect.contains_point(position):
        outcome.results.append(oid)


# ---------------------------------------------------------------------------
# kNN queries (Section 4.2, Algorithm 2)
# ---------------------------------------------------------------------------
class _Candidate:
    """A queue element: an object known by region or by exact point.

    One instance per queue element on the kNN hot path, so the bounds
    and the point/region flag are computed once here rather than behind
    property or method calls (``hypot`` matches ``Point.distance_to``
    bit-for-bit — same call, no dispatch).
    """

    __slots__ = (
        "oid", "geometry", "min_dist", "max_dist", "constrained", "is_point",
    )

    def __init__(
        self, oid: ObjectId, geometry: Geometry, q: Point, constrained: bool
    ) -> None:
        self.oid = oid
        self.geometry = geometry
        self.constrained = constrained
        is_point = isinstance(geometry, Point)
        self.is_point = is_point
        if is_point:
            d = hypot(q.x - geometry.x, q.y - geometry.y)
            self.min_dist = d
            self.max_dist = d
        else:
            self.min_dist = geometry.min_dist_to_point(q)
            self.max_dist = geometry.max_dist_to_point(q)


class _MergedQueue:
    """Min-queue merging the index's best-first stream with re-pushed items."""

    def __init__(self, stream: Iterator[tuple[ObjectId, Rect, float]], q: Point):
        self._stream = stream
        self._q = q
        self._heap: list[tuple[float, int, _Candidate]] = []
        self._counter = itertools.count()
        self._buffered: _Candidate | None = None
        self._advance_stream()

    def _advance_stream(self) -> None:
        nxt = next(self._stream, None)
        if nxt is None:
            self._buffered = None
        else:
            oid, rect, _ = nxt
            self._buffered = _Candidate(oid, rect, self._q, constrained=False)

    def push(self, candidate: _Candidate) -> None:
        heapq.heappush(
            self._heap, (candidate.min_dist, next(self._counter), candidate)
        )

    def pop(self) -> _Candidate | None:
        """Pop the global minimum-``min_dist`` candidate, or ``None``."""
        if self._buffered is None and not self._heap:
            return None
        take_stream = self._buffered is not None and (
            not self._heap or self._buffered.min_dist <= self._heap[0][0]
        )
        if take_stream:
            candidate = self._buffered
            self._advance_stream()
            return candidate
        return heapq.heappop(self._heap)[2]


def evaluate_knn(
    index,
    q: Point,
    k: int,
    probe: ProbeFn,
    order_sensitive: bool = True,
    exclude: Callable[[ObjectId], bool] | None = None,
    constrain: ConstrainFn | None = None,
    kernels=None,
) -> EvaluationResult:
    """Evaluate a new kNN query over safe regions (Algorithm 2).

    Returns the k nearest objects (strictly ordered for the
    order-sensitive variant), the quarantine radius — the midpoint of
    ``Delta(q, o_k)`` and ``delta(q, o_{k+1})`` over the geometries the
    evaluation ended with — and the probes issued.  ``exclude`` omits
    objects from the search (used by reevaluation case 1).

    ``kernels`` only accelerates the unordered variant's held-set
    partition (a pure comparison mask, so exactness is trivial); the
    ordered variant is inherently sequential — every queue pop depends on
    the previous decision — and ignores it.
    """
    if k < 1:
        raise ValueError(f"k must be positive, got {k}")
    if order_sensitive:
        return _evaluate_knn_ordered(index, q, k, probe, exclude, constrain)
    return _evaluate_knn_unordered(index, q, k, probe, exclude, constrain, kernels)


def _evaluate_knn_ordered(
    index,
    q: Point,
    k: int,
    probe: ProbeFn,
    exclude: Callable[[ObjectId], bool] | None,
    constrain: ConstrainFn | None,
) -> EvaluationResult:
    queue = _MergedQueue(index.nearest_iter(q, exclude=exclude), q)
    outcome = EvaluationResult(results=[])
    confirmed: list[_Candidate] = []
    held: _Candidate | None = None
    next_min_dist: float | None = None

    while len(confirmed) < k:
        current = queue.pop()
        if current is None:
            break
        if held is not None:
            if held.max_dist > current.min_dist and constrain is not None:
                # Maximum-speed enhancement: tighten before probing.
                if not held.constrained and not held.is_point:
                    held = _constrain_candidate(held, q, constrain, outcome)
                if (
                    held.max_dist > current.min_dist
                    and not current.constrained
                    and not current.is_point
                ):
                    tightened = _constrain_candidate(current, q, constrain, outcome)
                    if tightened.min_dist > current.min_dist + 1e-15:
                        # Its lower bound rose: re-queue under the new key.
                        queue.push(tightened)
                        continue
                    current = tightened
            if held.max_dist > current.min_dist:
                # Still ambiguous: probe the held object (lazy probe) and
                # feed both contenders back through the queue.
                position = probe(held.oid)
                outcome.probed[held.oid] = position
                outcome.shrunk.pop(held.oid, None)
                queue.push(_Candidate(held.oid, position, q, constrained=True))
                queue.push(current)
                held = None
                continue
            confirmed.append(held)
            held = None
            if len(confirmed) == k:
                next_min_dist = current.min_dist
                break
        if current.is_point:
            confirmed.append(current)
        else:
            held = current

    if len(confirmed) < k and held is not None:
        # Queue exhausted: the held object is the only candidate left.
        confirmed.append(held)
        held = None

    outcome.results = [candidate.oid for candidate in confirmed]
    outcome.radius = _quarantine_radius(
        confirmed, held, queue, next_min_dist, k
    )
    return outcome


def _constrain_candidate(
    candidate: _Candidate,
    q: Point,
    constrain: ConstrainFn,
    outcome: EvaluationResult,
) -> _Candidate:
    tightened_rect = constrain(candidate.oid, candidate.geometry)
    if tightened_rect == candidate.geometry:
        candidate.constrained = True
        return candidate
    outcome.shrunk[candidate.oid] = tightened_rect
    return _Candidate(candidate.oid, tightened_rect, q, constrained=True)


def _quarantine_radius(
    confirmed: list[_Candidate],
    held: _Candidate | None,
    queue: _MergedQueue,
    next_min_dist: float | None,
    k: int,
) -> float:
    """Midpoint radius between the k-th NN and the next candidate.

    When fewer than ``k`` objects exist the quarantine area covers the
    whole workspace so that any newly appearing candidate is noticed.
    """
    if not confirmed:
        return _WORKSPACE_DIAMETER
    if len(confirmed) < k:
        return _WORKSPACE_DIAMETER
    kth_max = confirmed[-1].max_dist
    if next_min_dist is None:
        if held is not None:
            next_min_dist = held.min_dist
        else:
            follower = queue.pop()
            next_min_dist = follower.min_dist if follower is not None else None
    if next_min_dist is None:
        return kth_max
    return (kth_max + max(next_min_dist, kth_max)) / 2.0


def _evaluate_knn_unordered(
    index,
    q: Point,
    k: int,
    probe: ProbeFn,
    exclude: Callable[[ObjectId], bool] | None,
    constrain: ConstrainFn | None,
    kernels=None,
) -> EvaluationResult:
    """Order-insensitive variant: up to ``k`` objects may be held at once.

    Soundness rests on the invariant ``|confirmed| + |held| <= k``: a held
    candidate ``c`` with ``Delta(q, c) <= delta(q, incoming)`` is then
    surely a member of the k-nearest *set* — at most ``k - 1`` other
    candidates (the rest of confirmed + held) can possibly beat it, and
    everything still queued is provably no closer.  When the invariant
    would be violated by holding one more candidate, the first held object
    is probed (after the optional reachability tightening) — fewer probes
    than the order-sensitive variant, which must also fix the ordering.
    """
    queue = _MergedQueue(index.nearest_iter(q, exclude=exclude), q)
    outcome = EvaluationResult(results=[])
    confirmed: list[_Candidate] = []
    held: list[_Candidate] = []

    while len(confirmed) < k:
        current = queue.pop()
        if current is None:
            break
        still_held = []
        if kernels is not None and len(held) >= kernels.min_rows:
            # Batch the distance comparisons; the capacity check
            # (``len(confirmed) < k``) stays in-loop because each
            # confirmation changes it.  Below the cutoff the comparison
            # runs inline instead of through the dispatcher: a held set
            # bounded by ``k`` can never batch, so routing it through
            # ``mask_leq`` would only pay call overhead and pollute the
            # fallback counters with intrinsically scalar rows.
            resolvable = kernels.mask_leq(
                [candidate.max_dist for candidate in held], current.min_dist
            )
        else:
            resolvable = None
        for position_in_held, candidate in enumerate(held):
            done = (
                resolvable[position_in_held]
                if resolvable is not None
                else candidate.max_dist <= current.min_dist
            )
            if len(confirmed) < k and done:
                confirmed.append(candidate)
            else:
                still_held.append(candidate)
        held = still_held
        if len(confirmed) == k:
            queue.push(current)
            break
        if len(confirmed) + len(held) < k:
            if current.is_point:
                confirmed.append(current)
            else:
                held.append(current)
            continue
        # No room to hold ``current``: resolve the first held candidate.
        first = held[0]
        if constrain is not None and not first.constrained:
            held[0] = _constrain_candidate(first, q, constrain, outcome)
            queue.push(current)
            continue
        position = probe(first.oid)
        outcome.probed[first.oid] = position
        outcome.shrunk.pop(first.oid, None)
        queue.push(_Candidate(first.oid, position, q, constrained=True))
        queue.push(current)
        held.pop(0)

    # Queue exhausted: remaining held candidates are the only options.
    while held and len(confirmed) < k:
        confirmed.append(held.pop(0))

    confirmed.sort(key=lambda c: c.max_dist)
    outcome.results = [candidate.oid for candidate in confirmed]
    if len(confirmed) < k:
        outcome.radius = _WORKSPACE_DIAMETER
    else:
        kth_max = confirmed[-1].max_dist
        follower = queue.pop()
        if follower is None:
            outcome.radius = kth_max
        else:
            outcome.radius = (kth_max + max(follower.min_dist, kth_max)) / 2.0
    return outcome
