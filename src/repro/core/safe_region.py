"""Safe-region computation (Section 5).

The safe region ``p.sr`` of an object at location ``p`` is the intersection
of per-query safe regions ``p.sr_Q`` over all *relevant* queries (those
whose quarantine area overlaps the grid cell containing ``p``), further
constrained to that cell.  Per Theorem 5.1 the expected update rate of an
object moving in a random direction is inversely proportional to the safe
region's perimeter, so every constituent maximises perimeter (or the
weighted perimeter of Section 6.2 when a movement direction is known).
"""

from __future__ import annotations

from typing import Callable, Hashable, Iterable

from repro.core.batch import batch_range_safe_region
from repro.core.irlp import (
    Objective,
    interior_margin,
    irlp_circle,
    irlp_circle_complement,
    irlp_ring,
)
from repro.core.queries import KNNQuery, Query, RangeQuery
from repro.geometry.distances import Delta, delta
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.geometry.ring import Ring

ObjectId = Hashable
SrLookup = Callable[[ObjectId], Rect]


def range_safe_region(
    query: RangeQuery,
    p: Point,
    cell: Rect,
    objective: Objective | None = None,
) -> Rect:
    """Safe region of one range query for an object at ``p`` (Section 5.1).

    Inside the quarantine area the best region is the query rectangle
    itself (clipped to the cell).  Outside, four candidate rectangles each
    share one side with the cell; the one containing ``p`` with the best
    score wins.
    """
    score = objective if objective is not None else _perimeter
    clipped = query.clipped_to(cell)
    if clipped is None:
        return cell
    if query.rect.contains_point(p):
        return clipped

    candidates = [
        Rect(cell.min_x, cell.min_y, clipped.min_x, cell.max_y),  # left
        Rect(clipped.max_x, cell.min_y, cell.max_x, cell.max_y),  # right
        Rect(cell.min_x, cell.min_y, cell.max_x, clipped.min_y),  # bottom
        Rect(cell.min_x, clipped.max_y, cell.max_x, cell.max_y),  # top
    ]
    valid = [rect for rect in candidates if rect.contains_point(p)]
    if not valid:  # p on the quarantine boundary, numerically inside
        return Rect.from_point(p)
    # Prefer strips holding p strictly inside: a strip with p exactly on
    # its face would trigger an immediate next update (update storm).
    return max(
        valid,
        key=lambda rect: (interior_margin(rect, p) > 1e-9, score(rect)),
    )


def knn_safe_region(
    query: KNNQuery,
    oid: ObjectId,
    p: Point,
    cell: Rect,
    sr_of: SrLookup,
    objective: Objective | None = None,
) -> Rect:
    """Safe region of one kNN query for an object at ``p`` (Section 5.2).

    * Non-result objects must stay outside the quarantine circle — Ir-lp
      of the circle's complement within the cell.
    * Results of an order-insensitive query must stay inside the circle —
      Ir-lp of the circle.
    * The i-th result of an order-sensitive query must additionally keep
      its rank — Ir-lp of the ring between its neighbours' distance
      bounds (the quarantine radius when ``i == k``).  A neighbour known
      by a *region* contributes its raw bound (``Delta`` below /
      ``delta`` above): the tightest sound constraint, and the region
      already claimed only its fair share of the gap.  A neighbour known
      by an exact *point* (it just updated or was probed) contributes the
      midpoint of the two exact distances — the paper's midpoint rule —
      splitting the gap fairly so neither object ends up pinned against
      the other's boundary (mutual zero-slack anchoring storms updates).
    """
    circle = query.quarantine_circle()
    results = query.results
    # Membership test before ``index``: most callers are non-results, and
    # raising ValueError on every one of them is measurably slower than a
    # second scan over the (short) result list for the members.
    rank = results.index(oid) if oid in results else -1

    if rank < 0:
        return irlp_circle_complement(circle, p, cell, objective)
    if not query.order_sensitive:
        region = irlp_circle(circle, p, objective)
        return _clip_to_cell(region, cell, p)

    q = query.center
    d_p = q.distance_to(p)

    if rank == 0:
        inner = 0.0
    else:
        inner = _separating_bound(
            q, d_p, sr_of(query.results[rank - 1]), below=True
        )
    if rank == query.k - 1 or rank == len(query.results) - 1:
        outer = query.radius
    else:
        outer = _separating_bound(
            q, d_p, sr_of(query.results[rank + 1]), below=False
        )

    # Numerical guards: the ring must be well-formed and contain p.
    inner = min(inner, d_p)
    outer = max(outer, inner, d_p)
    region = irlp_ring(Ring(q, inner, outer), p, cell, objective)
    return _clip_to_cell(region, cell, p)


_POINT_SPREAD = 1e-12


def _separating_bound(
    q: Point, d_p: float, neighbour_region: Rect, below: bool
) -> float:
    """Ring bound against a ranked neighbour (see ``knn_safe_region``)."""
    lo = delta(q, neighbour_region)
    hi = Delta(q, neighbour_region)
    if hi - lo <= _POINT_SPREAD:
        return (d_p + hi) / 2.0
    return hi if below else lo


def collect_range_obstacles(
    p: Point, relevant_queries: Iterable[Query]
) -> list[Rect]:
    """The obstacle rects ``compute_safe_region`` would batch for ``p``.

    Exactly the rectangles the ``use_batch`` branch of
    :func:`compute_safe_region` accumulates, in the same order: range
    queries without a custom ``safe_region_for`` whose quarantine areas
    exclude ``p``.  The tick planner uses this at gather time; the
    obstacle count doubles as the validity token when the precomputed
    staircase is consumed (see ``batch_region`` below).
    """
    obstacles: list[Rect] = []
    for query in relevant_queries:
        if type(query) is RangeQuery:
            # Exact type: slots-based, cannot carry ``safe_region_for``.
            if not query.rect.contains_point(p):
                obstacles.append(query.rect)
        elif (
            not hasattr(query, "safe_region_for")
            and isinstance(query, RangeQuery)
            and not query.rect.contains_point(p)
        ):
            obstacles.append(query.rect)
    return obstacles


def compute_safe_region(
    oid: ObjectId,
    p: Point,
    relevant_queries: Iterable[Query],
    cell: Rect,
    sr_of: SrLookup,
    objective: Objective | None = None,
    use_batch: bool = True,
    kernels=None,
    batch_region: tuple[int, Rect] | None = None,
) -> Rect:
    """Full safe region of object ``oid`` at ``p`` (intersection over queries).

    Range queries whose quarantine areas exclude ``p`` are handled in one
    batch (Section 5.3) when ``use_batch`` is set — the paper argues the
    four greedy decisions beat intersecting per-query strips — otherwise
    each contributes its individual strip (Section 5.1, the ablation
    baseline).  Every other relevant query contributes its individual
    ``p.sr_Q``.  The result is contained in ``cell`` and contains ``p`` —
    every constituent does.

    ``batch_region`` is an optional tick-planner precompute of the
    Section 5.3 staircase union: ``(n_obstacles, region)``.  It is used
    in place of :func:`batch_range_safe_region` only when the obstacle
    count collected here matches ``n_obstacles`` (the planner gathered
    from the same query set), and it is intersected last, exactly where
    the inline computation would be — so consuming it cannot reorder
    the degenerate-intersection fallbacks.
    """
    sr = cell
    obstacles: list[Rect] = []
    for query in relevant_queries:
        # Exact-type fast paths: the built-in query classes use
        # ``__slots__``, so a plain RangeQuery/KNNQuery instance can never
        # carry a ``safe_region_for`` attribute and the hasattr probe
        # below (an exception-driven miss) is pure overhead for them.
        tq = type(query)
        if tq is RangeQuery:
            if query.rect.contains_point(p):
                clipped = query.clipped_to(cell)
                if clipped is not None:
                    sr = _intersect(sr, clipped, p)
            elif use_batch:
                obstacles.append(query.rect)
            else:
                piece = range_safe_region(query, p, cell, objective)
                sr = _intersect(sr, piece, p)
            continue
        if tq is KNNQuery:
            region = knn_safe_region(
                query, oid, p, cell, sr_of, objective
            )
            sr = _intersect(sr, region, p)
            continue
        if hasattr(query, "safe_region_for"):
            # Extension query types bring their own contribution.
            sr = _intersect(sr, query.safe_region_for(oid, p, cell, objective), p)
        elif isinstance(query, RangeQuery):
            if query.rect.contains_point(p):
                clipped = query.clipped_to(cell)
                if clipped is not None:
                    sr = _intersect(sr, clipped, p)
            elif use_batch:
                obstacles.append(query.rect)
            else:
                piece = range_safe_region(query, p, cell, objective)
                sr = _intersect(sr, piece, p)
        elif isinstance(query, KNNQuery):
            region = knn_safe_region(
                query, oid, p, cell, sr_of, objective
            )
            sr = _intersect(sr, region, p)
        else:  # pragma: no cover — future query types plug in here
            raise TypeError(f"unsupported query type: {type(query).__name__}")

    if obstacles:
        if batch_region is not None and batch_region[0] == len(obstacles):
            batch = batch_region[1]
        else:
            batch = batch_range_safe_region(
                p, cell, obstacles, objective, kernels=kernels
            )
        sr = _intersect(sr, batch, p)
    return sr


def _perimeter(rect: Rect) -> float:
    return rect.perimeter


def _intersect(a: Rect, b: Rect, p: Point) -> Rect:
    """Intersection of two regions that both (nearly) contain ``p``."""
    result = a.intersection(b)
    if result is None:  # disjoint only through numerical jitter at p
        return Rect.from_point(a.clamp_point(p))
    return result


def _clip_to_cell(region: Rect, cell: Rect, p: Point) -> Rect:
    clipped = region.intersection(cell)
    if clipped is None:
        return Rect.from_point(cell.clamp_point(p))
    return clipped
