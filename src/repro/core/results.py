"""Result-change records reported to application servers (step 3, Fig 3.1)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable

from repro.geometry.rect import Rect

ObjectId = Hashable


@dataclass(frozen=True, slots=True)
class ResultChange:
    """A delta of one query's result produced by one update or registration.

    ``old`` / ``new`` are the query's ``result_snapshot()`` values before
    and after the triggering event; application servers receive these.

    ``degraded`` flags result members whose positions the server could
    not refresh (probe timeouts / budget exhaustion, docs/ROBUSTNESS.md):
    their membership is based on a stale position widened to the
    reachability circle, so consumers must treat them as *possibly*
    in the result rather than confirmed — flagged, never silently wrong.
    """

    query_id: str
    old: object
    new: object
    degraded: tuple = ()

    @property
    def changed(self) -> bool:
        return self.old != self.new


@dataclass(slots=True)
class UpdateOutcome:
    """Everything the server did in response to one location update.

    * ``safe_region`` — the new safe region sent back to the updater
      (step 5 of Figure 3.1); ``None`` for a deregistration-only call.
    * ``probed`` — exact-position probes issued during reevaluation
      (server-initiated updates), mapped to the fresh safe regions sent to
      those objects.
    * ``changes`` — per-query result deltas to push to application servers.
    * ``missed`` — objects the server tried to probe but could not reach
      (timeouts past the retry budget); they entered degraded mode and
      have no deliverable safe region this round (docs/ROBUSTNESS.md).
    * ``queries_checked`` / ``queries_reevaluated`` — bookkeeping used by
      the experiments (grid-index filtering effectiveness).
    """

    safe_region: Rect | None = None
    probed: dict[ObjectId, Rect] = field(default_factory=dict)
    changes: list[ResultChange] = field(default_factory=list)
    missed: list[ObjectId] = field(default_factory=list)
    queries_checked: int = 0
    queries_reevaluated: int = 0

    @property
    def probe_count(self) -> int:
        return len(self.probed)

    def changed_queries(self) -> list[ResultChange]:
        """Only the deltas whose result actually differs."""
        return [change for change in self.changes if change.changed]


@dataclass(slots=True)
class BatchOutcome:
    """Merged view of a same-tick batch of updates (``handle_location_updates``).

    * ``regions`` — the final safe region to deliver to each contacted
      object (reporters and probed objects alike).  Reports are processed
      sequentially, so a later report in the batch may supersede an
      earlier delivery; the dict keeps only the last region per object —
      exactly what a dispatcher coalescing same-tick downlink messages
      would send.
    * ``changes`` — concatenated per-query result deltas, in processing
      order.
    * ``queries_checked`` / ``queries_reevaluated`` — summed bookkeeping.
    """

    regions: dict[ObjectId, Rect] = field(default_factory=dict)
    changes: list[ResultChange] = field(default_factory=list)
    missed: list[ObjectId] = field(default_factory=list)
    queries_checked: int = 0
    queries_reevaluated: int = 0

    def merge(self, oid: ObjectId, outcome: UpdateOutcome) -> None:
        """Fold one report's ``UpdateOutcome`` into the batch view."""
        if outcome.safe_region is not None:
            self.regions[oid] = outcome.safe_region
        self.regions.update(outcome.probed)
        self.changes.extend(outcome.changes)
        if self.missed:
            # A later report or successful probe supersedes an earlier
            # miss — the object is reachable again.
            reached = {oid, *outcome.probed}
            self.missed = [t for t in self.missed if t not in reached]
        for target in outcome.missed:
            if target not in self.missed:
                self.missed.append(target)
            # An unreachable object has no deliverable region: a stale
            # one from an earlier report in the batch must not ship.
            self.regions.pop(target, None)
        self.queries_checked += outcome.queries_checked
        self.queries_reevaluated += outcome.queries_reevaluated
