"""Additional query types plugged into the generic framework.

The paper's framework claims genericity: a new continuous query type only
needs (1) a quarantine area with the grid-index interface, (2) an
evaluation routine over safe regions with lazy probes, (3) an incremental
reevaluation rule, and (4) a per-query safe-region contribution.  This
module adds one such type end to end:

* :class:`CircleRangeQuery` — report all objects within distance ``radius``
  of a fixed point ("everything within 500 m of the stadium").  Its
  quarantine area is the circle itself; member safe regions are inscribed
  rectangles of the circle (Proposition 5.2) and non-member regions avoid
  it (Proposition 5.4) — the same Ir-lp geometry kNN queries use.

The server dispatches on the :class:`~repro.core.queries.Query` interface
plus two optional hooks (``evaluate_over`` / ``reevaluate_for`` /
``safe_region_for``), so extension types live outside the core modules.
"""

from __future__ import annotations

import math
from typing import Hashable

from repro.core.evaluation import ConstrainFn, EvaluationResult, ProbeFn
from repro.core.irlp import Objective, irlp_circle, irlp_circle_complement
from repro.core.queries import Query
from repro.core.reevaluation import ReevaluationOutcome
from repro.geometry.circle import Circle
from repro.geometry.point import Point
from repro.geometry.rect import Rect

ObjectId = Hashable


class CircleRangeQuery(Query):
    """A continuous circular range query: objects within ``radius`` of ``center``."""

    __slots__ = ("center", "radius", "results")

    def __init__(
        self, center: Point, radius: float, query_id: str | None = None
    ) -> None:
        if radius <= 0:
            raise ValueError(f"radius must be positive, got {radius}")
        super().__init__(query_id)
        self.center = center
        self.radius = radius
        #: Current result set, maintained by the server.
        self.results: set[ObjectId] = set()

    # -- quarantine interface (Section 3.3) --------------------------------
    def circle(self) -> Circle:
        return Circle(self.center, self.radius)

    def quarantine_bounding_rect(self) -> Rect:
        return self.circle().bounding_rect()

    def quarantine_overlaps(self, rect: Rect) -> bool:
        return self.circle().intersects_rect(rect)

    def quarantine_contains(self, p: Point) -> bool:
        return self.circle().contains_point(p)

    def is_affected_by(self, p: Point, p_lst: Point | None) -> bool:
        inside_new = self.quarantine_contains(p)
        inside_old = p_lst is not None and self.quarantine_contains(p_lst)
        return inside_new != inside_old

    def result_snapshot(self) -> frozenset[ObjectId]:
        return frozenset(self.results)

    # -- framework hooks ----------------------------------------------------
    def evaluate_over(
        self,
        index,
        probe: ProbeFn,
        constrain: ConstrainFn | None = None,
    ) -> EvaluationResult:
        """Evaluate from scratch over safe regions (lazy probes).

        A region fully inside the circle makes its object a member; one
        fully outside makes it a non-member; overlapping regions are
        tightened by the reachability constraint and probed if still
        ambiguous — the same lazy-probe discipline as rectangles.
        """
        circle = self.circle()
        outcome = EvaluationResult(results=[])
        for oid, region in index.search_entries(self.quarantine_bounding_rect()):
            if circle.contains_rect(region):
                outcome.results.append(oid)
                continue
            if circle.excludes_rect(region):
                continue
            if constrain is not None:
                tightened = constrain(oid, region)
                if tightened != region:
                    if circle.contains_rect(tightened):
                        outcome.results.append(oid)
                        outcome.shrunk[oid] = tightened
                        continue
                    if circle.excludes_rect(tightened):
                        outcome.shrunk[oid] = tightened
                        continue
            position = probe(oid)
            outcome.probed[oid] = position
            if circle.contains_point(position):
                outcome.results.append(oid)
        return outcome

    def reevaluate_for(
        self,
        oid: ObjectId,
        p: Point,
        index=None,
        probe: ProbeFn | None = None,
        constrain: ConstrainFn | None = None,
    ) -> ReevaluationOutcome:
        """Flip membership of ``oid`` after its update to ``p`` (no probes)."""
        inside = self.quarantine_contains(p)
        if inside and oid not in self.results:
            self.results.add(oid)
            return ReevaluationOutcome(changed=True)
        if not inside and oid in self.results:
            self.results.discard(oid)
            return ReevaluationOutcome(changed=True)
        return ReevaluationOutcome(changed=False)

    def safe_region_for(
        self,
        oid: ObjectId,
        p: Point,
        cell: Rect,
        objective: Objective | None = None,
    ) -> Rect:
        """Per-query safe region: inside the circle for members, outside it
        for non-members (Section 5.2 geometry)."""
        if oid in self.results:
            region = irlp_circle(self.circle(), p, objective)
            clipped = region.intersection(cell)
            if clipped is None or not clipped.contains_point(p, eps=1e-9):
                return Rect.from_point(cell.clamp_point(p))
            return clipped
        return irlp_circle_complement(self.circle(), p, cell, objective)


class ThresholdRangeQuery(Query):
    """An aggregate query: alert when at least ``threshold`` objects are
    inside ``rect`` (the paper's Section 8 "aggregate queries").

    Internally maintains the exact membership set — the safe-region
    machinery must still detect every boundary crossing to keep the count
    right — but the *reported* result (and hence what application servers
    see change) is the boolean alert state plus the count.
    """

    __slots__ = ("rect", "threshold", "members")

    def __init__(
        self, rect: Rect, threshold: int, query_id: str | None = None
    ) -> None:
        if threshold < 1:
            raise ValueError(f"threshold must be positive, got {threshold}")
        super().__init__(query_id)
        self.rect = rect
        self.threshold = threshold
        self.members: set[ObjectId] = set()

    # ``results`` mirrors the membership set so generic server code that
    # stores evaluation output keeps working.
    @property
    def results(self):
        return self.members

    @results.setter
    def results(self, value) -> None:
        self.members = set(value)

    @property
    def count(self) -> int:
        return len(self.members)

    @property
    def alerting(self) -> bool:
        return self.count >= self.threshold

    # -- quarantine interface (identical to a range query) -----------------
    def quarantine_bounding_rect(self) -> Rect:
        return self.rect

    def quarantine_overlaps(self, rect: Rect) -> bool:
        return self.rect.intersects(rect)

    def quarantine_contains(self, p: Point) -> bool:
        return self.rect.contains_point(p)

    def is_affected_by(self, p: Point, p_lst: Point | None) -> bool:
        inside_new = self.rect.contains_point(p)
        inside_old = p_lst is not None and self.rect.contains_point(p_lst)
        return inside_new != inside_old

    def result_snapshot(self) -> tuple[bool, int]:
        """What application servers monitor: (alert state, count)."""
        return (self.alerting, self.count)

    # -- framework hooks ----------------------------------------------------
    def evaluate_over(
        self,
        index,
        probe: ProbeFn,
        constrain: ConstrainFn | None = None,
    ) -> EvaluationResult:
        """Same lazy-probe evaluation as a rectangle range query."""
        from repro.core.evaluation import evaluate_range

        return evaluate_range(index, self.rect, probe, constrain)

    def reevaluate_for(
        self,
        oid: ObjectId,
        p: Point,
        index=None,
        probe: ProbeFn | None = None,
        constrain: ConstrainFn | None = None,
    ) -> ReevaluationOutcome:
        inside = self.rect.contains_point(p)
        if inside and oid not in self.members:
            self.members.add(oid)
            return ReevaluationOutcome(changed=True)
        if not inside and oid in self.members:
            self.members.discard(oid)
            return ReevaluationOutcome(changed=True)
        return ReevaluationOutcome(changed=False)

    def safe_region_for(
        self,
        oid: ObjectId,
        p: Point,
        cell: Rect,
        objective: Objective | None = None,
    ) -> Rect:
        """Identical geometry to a rectangle range query (Section 5.1)."""
        from repro.core.safe_region import range_safe_region

        proxy = _RangeProxy(self.rect)
        return range_safe_region(proxy, p, cell, objective)


class _RangeProxy:
    """Minimal stand-in accepted by ``range_safe_region``."""

    __slots__ = ("rect",)

    def __init__(self, rect: Rect) -> None:
        self.rect = rect

    def clipped_to(self, cell: Rect) -> Rect | None:
        # Unmemoised: the proxy lives for a single computation.
        return self.rect.intersection(cell)


class ProximityPairQuery(Query):
    """Continuous proximity monitoring around a *moving* focal object.

    The paper's Section 8 names "spatial joins" as future work; this is
    the distance-join primitive: report every object within ``radius`` of
    the focal object ``focal`` — "which vehicles are within 200 m of the
    ambulance", continuously, while the ambulance itself moves.

    The machinery follows the framework exactly, with the twist that the
    query anchor is itself known only by a safe region:

    * The quarantine area is the focal's safe region expanded by
      ``radius`` (a moving rectangle refreshed whenever the focal's
      region changes — ``quarantine_changed`` drives the grid update).
    * A pair (focal, o) is decidedly *in* when ``Delta(o, F.sr) <= r``
      and decidedly *out* when ``delta(o, F.sr) >= r``; anything between
      probes the focal (at most one probe per reevaluation).
    * Safe regions use conservative disks: a member must stay inside
      ``disk(F.sr.center, r - halfdiag(F.sr))``; a nearby non-member
      outside ``disk(F.sr.center, r + halfdiag(F.sr))``; and the focal's
      own region must maintain every pair, so it intersects one such
      piece per nearby object.
    """

    __slots__ = ("focal", "radius", "results", "_focal_region")

    def __init__(
        self,
        focal: ObjectId,
        radius: float,
        query_id: str | None = None,
    ) -> None:
        if radius <= 0:
            raise ValueError(f"radius must be positive, got {radius}")
        super().__init__(query_id)
        self.focal = focal
        self.radius = radius
        #: Objects currently within ``radius`` of the focal (never the
        #: focal itself).
        self.results: set[ObjectId] = set()
        #: Last known focal safe region (point rect right after updates).
        self._focal_region: Rect | None = None

    # -- helpers -------------------------------------------------------------
    @staticmethod
    def _half_diagonal(region: Rect) -> float:
        return region.center.distance_to(
            Point(region.max_x, region.max_y)
        )

    def _inner_disk(self) -> Circle:
        """Members must stay inside this disk (conservative)."""
        region = self._focal_region
        radius = max(self.radius - self._half_diagonal(region), 0.0)
        return Circle(region.center, radius)

    def _outer_disk(self) -> Circle:
        """Non-members must stay outside this disk (conservative)."""
        region = self._focal_region
        return Circle(
            region.center, self.radius + self._half_diagonal(region)
        )

    # -- quarantine interface -------------------------------------------------
    def quarantine_bounding_rect(self) -> Rect:
        if self._focal_region is None:
            return Rect(0.0, 0.0, 0.0, 0.0)
        # The focal's granted region can grow to a radius/4 box between
        # grid refreshes (see _tight_focal_box); the extra half radius of
        # slack keeps the grid buckets conservative throughout.
        return self._focal_region.expanded(1.5 * self.radius)

    def quarantine_overlaps(self, rect: Rect) -> bool:
        return self.quarantine_bounding_rect().intersects(rect)

    def quarantine_contains(self, p: Point) -> bool:
        return self.quarantine_bounding_rect().contains_point(p)

    def is_affected_by(self, p: Point, p_lst: Point | None) -> bool:
        inside_new = self.quarantine_contains(p)
        inside_old = p_lst is not None and self.quarantine_contains(p_lst)
        return inside_new or inside_old

    def result_snapshot(self) -> frozenset[ObjectId]:
        return frozenset(self.results)

    # -- framework hooks -------------------------------------------------------
    def evaluate_over(
        self,
        index,
        probe: ProbeFn,
        constrain: ConstrainFn | None = None,
    ) -> EvaluationResult:
        """Probe the focal, then run a circular range around its position."""
        outcome = EvaluationResult(results=[])
        focal_position = probe(self.focal)
        outcome.probed[self.focal] = focal_position
        self._focal_region = Rect.from_point(focal_position)
        circle = Circle(focal_position, self.radius)
        for oid, region in index.search_entries(circle.bounding_rect()):
            if oid == self.focal:
                continue
            if circle.contains_rect(region):
                outcome.results.append(oid)
                continue
            if circle.excludes_rect(region):
                continue
            position = probe(oid)
            outcome.probed[oid] = position
            if circle.contains_point(position):
                outcome.results.append(oid)
        return outcome

    def reevaluate_for(
        self,
        oid: ObjectId,
        p: Point,
        index=None,
        probe: ProbeFn | None = None,
        constrain: ConstrainFn | None = None,
    ) -> ReevaluationOutcome:
        if oid == self.focal:
            return self._reevaluate_focal(p, index, probe)
        return self._reevaluate_other(oid, p, index, probe)

    def _reevaluate_focal(self, p: Point, index, probe) -> ReevaluationOutcome:
        """The anchor moved: recompute the pair set around its new point."""
        outcome = ReevaluationOutcome(changed=False, quarantine_changed=True)
        self._focal_region = Rect.from_point(p)
        before = frozenset(self.results)
        circle = Circle(p, self.radius)
        members: set[ObjectId] = set()
        for oid, region in index.search_entries(circle.bounding_rect()):
            if oid == self.focal:
                continue
            if circle.contains_rect(region):
                members.add(oid)
            elif not circle.excludes_rect(region):
                position = probe(oid)
                outcome.probed[oid] = position
                if circle.contains_point(position):
                    members.add(oid)
        self.results = members
        outcome.changed = frozenset(members) != before
        return outcome

    def _reevaluate_other(self, oid, p: Point, index, probe) -> ReevaluationOutcome:
        """Another object moved: decide its pairing against the focal."""
        outcome = ReevaluationOutcome(changed=False)
        focal_region = index.rect_of(self.focal)
        self._focal_region = focal_region
        lo = focal_region.min_dist_to_point(p)
        hi = focal_region.max_dist_to_point(p)
        if hi <= self.radius:
            member = True
        elif lo > self.radius:
            member = False
        else:
            focal_position = probe(self.focal)
            outcome.probed[self.focal] = focal_position
            self._focal_region = Rect.from_point(focal_position)
            outcome.quarantine_changed = True
            member = p.distance_to(focal_position) <= self.radius
        if member and oid not in self.results:
            self.results.add(oid)
            outcome.changed = True
        elif not member and oid in self.results:
            self.results.discard(oid)
            outcome.changed = True
        return outcome

    def safe_region_for(
        self,
        oid: ObjectId,
        p: Point,
        cell: Rect,
        objective: Objective | None = None,
    ) -> Rect:
        if self._focal_region is None:
            return cell
        if oid == self.focal:
            return self._focal_safe_region(p, cell, objective)
        if oid in self.results:
            disk = self._inner_disk()
            if disk.radius <= 0.0 or not disk.contains_point(p, eps=1e-9):
                return Rect.from_point(cell.clamp_point(p))
            region = irlp_circle(disk, p, objective)
            clipped = region.intersection(cell)
            if clipped is None or not clipped.contains_point(p, eps=1e-9):
                return Rect.from_point(cell.clamp_point(p))
            return clipped
        return irlp_circle_complement(self._outer_disk(), p, cell, objective)

    def _focal_safe_region(
        self, p: Point, cell: Rect, objective: Objective | None
    ) -> Rect:
        """The focal's own region must preserve every pair relationship.

        Conservative per-object pieces intersected into one rectangle.
        Needs the *other* objects' safe regions; the focal's region is
        recomputed by the server right after its own update, when this
        query holds the freshest focal point, so the piece disks are
        anchored at the current stored regions via the quarantine rect.
        """
        region = self._tight_focal_box(p, cell)
        clipped = region.intersection(cell)
        if clipped is None or not clipped.contains_point(p, eps=1e-9):
            clipped = Rect.from_point(cell.clamp_point(p))
        # Record the *granted* box: every disk handed to the other
        # objects is anchored at this rectangle, and the server installs
        # a subset of it (the intersection with the other queries'
        # pieces), so the recording stays conservative.
        self._focal_region = clipped
        return clipped

    def _tight_focal_box(self, p: Point, cell: Rect) -> Rect:
        """A box around the focal sized by its pairing slack.

        The focal may move until some pair flips: at most
        ``radius / 4`` in any direction keeps every conservative disk
        decision valid between its own updates (members sit within
        ``r``, non-members beyond ``r``; a quarter-radius box shifts any
        distance by at most ``r/4``·sqrt(2) < r/2, leaving the
        reevaluation probes to resolve the rest).  Simple, sound, and
        refreshed on every focal update.
        """
        slack = self.radius / 4.0
        return Rect(
            p.x - slack, p.y - slack, p.x + slack, p.y + slack
        )


class MovingKNNQuery(Query):
    """Continuous kNN anchored at a *moving* focal object.

    "The three nearest units to the ambulance, continuously, while the
    ambulance drives."  Complements :class:`ProximityPairQuery` with
    nearest-neighbour semantics; results are maintained as an unordered
    set (order around a moving anchor churns too fast to be useful to an
    application, and the paper's order-insensitive semantics apply).

    The maintenance strategy is conservative and probe-light:

    * The query keeps a quarantine circle around the focal's last exact
      position, sized like the static kNN quarantine (midway between the
      k-th neighbour and the follower) *minus* the focal's own slack.
    * Safe regions: members stay inside the inner disk, nearby
      non-members outside the outer disk, and the focal inside a slack
      box — all anchored at the focal's recorded region, exactly like
      :class:`ProximityPairQuery` but with the radius maintained
      dynamically instead of fixed.
    * Any report that lands in the uncertainty band triggers a focal
      probe and a fresh evaluation around the exact anchor point.
    """

    __slots__ = ("focal", "k", "results", "radius", "_band", "_focal_region")

    def __init__(
        self, focal: ObjectId, k: int, query_id: str | None = None
    ) -> None:
        if k < 1:
            raise ValueError(f"k must be positive, got {k}")
        super().__init__(query_id)
        self.focal = focal
        self.k = k
        self.results: set[ObjectId] = set()
        #: Current quarantine radius around the focal's recorded region.
        self.radius: float = 0.0
        #: Separation band at the last refresh: the distance gap between
        #: the k-th member and the nearest non-member.  The focal's slack
        #: box and the conservative disks are sized so that any placement
        #: within them keeps members within ``radius`` of the focal and
        #: non-members beyond it, *independent of the order in which the
        #: server recomputes the individual safe regions*.
        self._band: float = 0.0
        self._focal_region: Rect | None = None

    # -- helpers -------------------------------------------------------------
    @staticmethod
    def _half_diagonal(region: Rect) -> float:
        return region.center.distance_to(Point(region.max_x, region.max_y))

    def _refresh(self, focal_position: Point, index, probe) -> set[ObjectId]:
        """Exact evaluation around a known focal point; resets the radius."""
        ranked: list[tuple[float, ObjectId]] = []
        follower_distance = None
        for oid, region, _ in index.nearest_iter(focal_position):
            if oid == self.focal:
                continue
            if len(ranked) < self.k:
                position = probe(oid) if region.width or region.height else region.center
                ranked.append((focal_position.distance_to(position), oid))
                ranked.sort()
            else:
                follower_distance = region.min_dist_to_point(focal_position)
                break
        members = {oid for _, oid in ranked}
        if ranked:
            kth = ranked[-1][0]
            if follower_distance is None or follower_distance < kth:
                follower_distance = kth
            self.radius = (kth + follower_distance) / 2.0
            self._band = max(follower_distance - kth, 0.0)
        else:
            self.radius = 0.0
            self._band = 0.0
        self._focal_region = Rect.from_point(focal_position)
        return members

    # -- quarantine interface --------------------------------------------------
    def quarantine_bounding_rect(self) -> Rect:
        if self._focal_region is None:
            return Rect(0.0, 0.0, 0.0, 0.0)
        return self._focal_region.expanded(1.5 * max(self.radius, 1e-9))

    def quarantine_overlaps(self, rect: Rect) -> bool:
        return self.quarantine_bounding_rect().intersects(rect)

    def quarantine_contains(self, p: Point) -> bool:
        return self.quarantine_bounding_rect().contains_point(p)

    def is_affected_by(self, p: Point, p_lst: Point | None) -> bool:
        inside_new = self.quarantine_contains(p)
        inside_old = p_lst is not None and self.quarantine_contains(p_lst)
        return inside_new or inside_old

    def result_snapshot(self) -> frozenset[ObjectId]:
        return frozenset(self.results)

    # -- framework hooks ---------------------------------------------------------
    def evaluate_over(
        self,
        index,
        probe: ProbeFn,
        constrain: ConstrainFn | None = None,
    ) -> EvaluationResult:
        outcome = EvaluationResult(results=[])
        focal_position = probe(self.focal)
        outcome.probed[self.focal] = focal_position

        def counting_probe(target):
            position = probe(target)
            outcome.probed[target] = position
            return position

        members = self._refresh(focal_position, index, counting_probe)
        outcome.results = list(members)
        outcome.radius = self.radius
        return outcome

    def reevaluate_for(
        self,
        oid: ObjectId,
        p: Point,
        index=None,
        probe: ProbeFn | None = None,
        constrain: ConstrainFn | None = None,
    ) -> ReevaluationOutcome:
        outcome = ReevaluationOutcome(changed=False, quarantine_changed=True)
        before = frozenset(self.results)
        if oid == self.focal:
            focal_position = p
        else:
            # Could the report change the set?  Decide against the
            # conservative disks; only band landings probe the focal.
            inner = max(self.radius - self._band / 4.0, 0.0)
            outer = self.radius + self._band / 4.0
            d_lo = self._focal_region.min_dist_to_point(p)
            d_hi = self._focal_region.max_dist_to_point(p)
            if oid in self.results and d_hi <= inner:
                outcome.quarantine_changed = False
                return outcome  # member, still surely inside
            if oid not in self.results and d_lo >= outer:
                outcome.quarantine_changed = False
                return outcome  # non-member, still surely outside
            focal_position = probe(self.focal)
            outcome.probed[self.focal] = focal_position

        def counting_probe(target):
            position = probe(target)
            outcome.probed[target] = position
            return position

        self.results = self._refresh(focal_position, index, counting_probe)
        outcome.changed = frozenset(self.results) != before
        return outcome

    def safe_region_for(
        self,
        oid: ObjectId,
        p: Point,
        cell: Rect,
        objective: Objective | None = None,
    ) -> Rect:
        if self._focal_region is None or self.radius <= 0.0:
            return cell
        center = self._focal_region.center
        margin = self._band / 4.0
        if oid == self.focal:
            # Half-diagonal of the slack box equals ``margin`` exactly, so
            # the disks below stay valid for any focal placement in it.
            slack = margin / math.sqrt(2.0)
            box = Rect(p.x - slack, p.y - slack, p.x + slack, p.y + slack)
            clipped = box.intersection(cell)
            if clipped is None or not clipped.contains_point(p, eps=1e-9):
                clipped = Rect.from_point(cell.clamp_point(p))
            self._focal_region = clipped
            return clipped
        if oid in self.results:
            disk = Circle(center, max(self.radius - margin, 0.0))
            if disk.radius <= 0.0 or not disk.contains_point(p, eps=1e-9):
                return Rect.from_point(cell.clamp_point(p))
            region = irlp_circle(disk, p, objective)
            clipped = region.intersection(cell)
            if clipped is None or not clipped.contains_point(p, eps=1e-9):
                return Rect.from_point(cell.clamp_point(p))
            return clipped
        return irlp_circle_complement(
            Circle(center, self.radius + margin), p, cell, objective
        )
