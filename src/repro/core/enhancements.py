"""Mobility-assumption enhancements (Section 6).

* **Maximum speed / reachability circle** (Section 6.1): the object cannot
  be farther from its last reported position ``p_lst`` than ``V (t - T)``;
  intersecting safe regions with the circle's bounding box before probing
  can resolve query ambiguity without communication.
* **Steady movement / weighted perimeter** (Section 6.2): when objects tend
  to keep their direction, the safe region should extend farther ahead of
  the movement; the perimeter objective is replaced by a weighted one that
  overweights the half plane in front of the object.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.irlp import Objective
from repro.geometry.circle import Circle
from repro.geometry.point import Point
from repro.geometry.rect import Rect


@dataclass(frozen=True, slots=True)
class ReachabilityModel:
    """The ever-expanding reachability circle of Section 6.1.

    The circle is centred at the last reported location and grows at the
    maximum speed ``max_speed``; at time ``t`` an object last heard from at
    time ``T`` must be inside radius ``max_speed * (t - T)``.
    """

    max_speed: float

    def __post_init__(self) -> None:
        if self.max_speed <= 0.0:
            raise ValueError("maximum speed must be positive")

    def circle(self, p_lst: Point, last_update_time: float, now: float) -> Circle:
        """Reachability circle at time ``now``."""
        elapsed = max(now - last_update_time, 0.0)
        return Circle(p_lst, self.max_speed * elapsed)

    def constrain(
        self, region: Rect, p_lst: Point, last_update_time: float, now: float
    ) -> Rect:
        """Intersect ``region`` with the circle's bounding box.

        The bounding box over-approximates the circle, so the result still
        contains the object — query evaluation stays conservative while the
        distance bounds tighten (fewer probes).
        """
        bbox = self.circle(p_lst, last_update_time, now).bounding_rect()
        constrained = region.intersection(bbox)
        if constrained is None:
            # The object reported from p_lst inside ``region``; an empty
            # intersection can only come from clock skew.  Fall back to the
            # last known point.
            return Rect.from_point(region.clamp_point(p_lst))
        return constrained


def weighted_perimeter(
    rect: Rect, p: Point, p_lst: Point, steadiness: float
) -> float:
    """The weighted perimeter ``lambda_w`` of Section 6.2.

    The movement direction is ``p_lst -> p``; the front half plane (within
    90 degrees of the direction) is weighted ``1 + D`` and the back half
    ``1 - D``.  The paper's fast approximation replaces the rectangle with
    the circle of equal perimeter centred at the rectangle's centre ``o``:

    ``lambda_w = (1 + D) * lambda - (2 D lambda / pi) *
    arccos(2 pi d cos(beta) / lambda)``

    where ``lambda`` is the ordinary perimeter, ``d = |p o|`` and ``beta``
    is the angle between ``p -> o`` and the movement direction.
    """
    if not 0.0 <= steadiness <= 1.0:
        raise ValueError(f"steadiness must be within [0, 1]: {steadiness}")
    lam = rect.perimeter
    if lam == 0.0:
        return 0.0
    if steadiness == 0.0:
        return lam

    dir_x = p.x - p_lst.x
    dir_y = p.y - p_lst.y
    dir_len = math.hypot(dir_x, dir_y)
    if dir_len == 0.0:  # no movement direction known — unweighted
        return lam

    center = rect.center
    to_center_x = center.x - p.x
    to_center_y = center.y - p.y
    d = math.hypot(to_center_x, to_center_y)
    if d == 0.0:
        d_cos_beta = 0.0
    else:
        d_cos_beta = (to_center_x * dir_x + to_center_y * dir_y) / dir_len

    ratio = 2.0 * math.pi * d_cos_beta / lam
    ratio = min(max(ratio, -1.0), 1.0)
    return (1.0 + steadiness) * lam - (
        2.0 * steadiness * lam / math.pi
    ) * math.acos(ratio)


def weighted_perimeter_objective(
    p: Point, p_lst: Point | None, steadiness: float
) -> Objective | None:
    """An Ir-lp objective scoring rectangles by weighted perimeter.

    Returns ``None`` (meaning: use the ordinary perimeter and its closed
    forms) when steadiness is zero or no movement direction is available,
    so callers can skip the slower search path entirely.
    """
    if steadiness == 0.0 or p_lst is None or p_lst == p:
        return None

    def objective(rect: Rect) -> float:
        return weighted_perimeter(rect, p, p_lst, steadiness)

    return objective
