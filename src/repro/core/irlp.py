"""Inscribed rectangles with the longest perimeter (*Ir-lp*, Section 5.2).

The safe region of an object with respect to a kNN query is the inscribed
rectangle with the longest perimeter (*Ir-lp*) of a disk, of the complement
of a disk within the object's grid cell, or of a ring — always required to
contain the object's current location ``p``.

Deviations from the paper, both documented in DESIGN.md:

* Proposition 5.4 (complement of a circle) states the perimeter
  ``2(a - r sin θ) + 2(b - r cos θ)`` "has a maximum at π/4"; analytically
  it has a *minimum* there (``sin θ + cos θ`` peaks at π/4), so the optimum
  lies at a boundary of the valid θ range.  We evaluate both endpoints and
  keep the longer perimeter, which also subsumes the paper's special
  positions ① and ②.
* Proposition 5.5 (ring) assumes an Ir-lp tangent to the inner circle with
  two corners on the outer circle.  When ``p`` sits in the diagonal "corner
  shadow" of the inner circle (|p.x - q.x| < r and |p.y - q.y| < r) neither
  tangent layout can contain ``p``; we add a corner-anchored candidate
  (near corner on the inner circle, far corner on the outer circle) so a
  valid rectangle always exists.

All functions accept an optional ``objective`` (a ``Rect -> float`` score,
by default the perimeter).  With a custom objective — the weighted
perimeter of Section 6.2 — the optimal θ has no closed form, and the
paper's three-point elimination search is used instead.
"""

from __future__ import annotations

import math
from typing import Callable

from repro.geometry.circle import Circle
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.geometry.ring import Ring

Objective = Callable[[Rect], float]

#: Angle (from the y-axis) maximising ``4R sin θ + 2R cos θ`` (ring layout I).
THETA_RING_HORIZONTAL = math.atan(2.0)
#: Angle maximising ``2R sin θ + 4R cos θ`` (ring layout II).
THETA_RING_VERTICAL = math.atan(0.5)

_SEARCH_STEPS = 24


def _perimeter(rect: Rect) -> float:
    return rect.perimeter


def _clamp(value: float, lo: float, hi: float) -> float:
    return min(max(value, lo), hi)


def _clamped_asin(x: float) -> float:
    return math.asin(_clamp(x, -1.0, 1.0))


def _clamped_acos(x: float) -> float:
    return math.acos(_clamp(x, -1.0, 1.0))


def maximize_theta(
    build: Callable[[float], Rect],
    lo: float,
    hi: float,
    objective: Objective,
    steps: int = _SEARCH_STEPS,
) -> Rect:
    """The paper's three-point elimination search for a sub-optimal θ.

    Keeps a range ``[θ_b, θ_e]``; each step evaluates the objective at the
    endpoints and the midpoint and drops whichever of the three scores
    worst (Section 6.2).  Terminates early when the midpoint is the worst,
    i.e. when the range cannot be narrowed further.
    """
    if hi < lo:
        lo = hi
    best_rect = build(lo)
    best_score = objective(best_rect)
    b, e = lo, hi
    for _ in range(steps):
        c = (b + e) / 2.0
        scored = []
        for theta in (b, c, e):
            rect = build(theta)
            score = objective(rect)
            scored.append((score, theta, rect))
            if score > best_score:
                best_score = score
                best_rect = rect
        worst_theta = min(scored, key=lambda item: item[0])[1]
        if worst_theta == b:
            b = c
        elif worst_theta == e:
            e = c
        else:
            break
        if e - b < 1e-9:
            break
    return best_rect


#: Fraction of the valid θ range kept as margin on both sides.  The
#: containment bounds of every Ir-lp family put the object exactly *on* a
#: face of the rectangle when the optimal θ clamps to them — the object
#: would step out immediately and trigger another update, and since the
#: ring geometry does not change from such a hairline move, the scheme
#: would storm updates.  Nudging θ strictly inside the valid range trades
#: at most a few percent of perimeter for strictly-interior placement.
_INTERIOR_MARGIN = 0.05


def _nudged_bounds(lo: float, hi: float) -> tuple[float, float]:
    """Shrink ``[lo, hi]`` symmetrically by the interior margin."""
    span = hi - lo
    if span <= 0.0:
        return lo, lo
    pad = _INTERIOR_MARGIN * span
    return lo + pad, hi - pad


_INTERIOR_EPS = 1e-9


def interior_margin(rect: Rect, p: Point) -> float:
    """Distance from ``p`` to the nearest face of ``rect`` (< 0: outside).

    A safe region whose margin is zero has the object sitting exactly on
    its boundary: the very next movement step can leave it, and when the
    recomputed region pins the object again, the scheme storms updates.
    Candidate selection therefore prefers any positive-margin rectangle
    over every zero-margin one, regardless of perimeter.
    """
    return min(
        p.x - rect.min_x,
        rect.max_x - p.x,
        p.y - rect.min_y,
        rect.max_y - p.y,
    )


def _pick_best(candidates: list[Rect], objective: Objective, p: Point) -> Rect:
    """Best-scoring candidate, preferring ones containing ``p`` strictly.

    Unrolled first-maximum scan (ties keep the earliest candidate, like
    ``max`` does) — this runs a handful of times per kNN safe region and
    the ``max``-with-lambda form showed up in tick profiles.
    """
    best = None
    best_margin = False
    best_score = 0.0
    for rect in candidates:
        margin = interior_margin(rect, p) > _INTERIOR_EPS
        score = objective(rect)
        if (
            best is None
            or (margin and not best_margin)
            or (margin == best_margin and score > best_score)
        ):
            best = rect
            best_margin = margin
            best_score = score
    return best


# ---------------------------------------------------------------------------
# Ir-lp of a circle (Proposition 5.2)
# ---------------------------------------------------------------------------
def irlp_circle(
    circle: Circle, p: Point, objective: Objective | None = None
) -> Rect:
    """Longest-perimeter inscribed rectangle of a disk containing ``p``.

    The rectangle is ``[q.x ± r sin θ] x [q.y ± r cos θ]`` with θ the angle
    between the corner radius and the y-axis.  Containment of ``p`` bounds
    θ to ``[arcsin(|dx|/r), arccos(|dy|/r)]``; the perimeter
    ``4r (sin θ + cos θ)`` peaks at π/4, so the optimum is π/4 clamped into
    the valid range (Proposition 5.2).

    ``p`` must lie inside the (closed) disk; tiny numerical overshoot is
    tolerated by clamping.
    """
    q, r = circle.center, circle.radius
    if r <= 0.0:
        return Rect.from_point(q)
    dx = min(abs(p.x - q.x), r)
    dy = min(abs(p.y - q.y), r)
    theta_x = _clamped_asin(dx / r)
    theta_y = _clamped_acos(dy / r)
    if theta_y < theta_x:  # p numerically on/over the boundary
        theta_y = theta_x
    lo, hi = _nudged_bounds(theta_x, theta_y)

    def build(theta: float) -> Rect:
        return Rect.from_center(q, r * math.sin(theta), r * math.cos(theta))

    if objective is None:
        return build(_clamp(math.pi / 4.0, lo, hi))
    return maximize_theta(build, lo, hi, objective)


# ---------------------------------------------------------------------------
# Ir-lp of the complement of a circle within a cell (Proposition 5.4)
# ---------------------------------------------------------------------------
def irlp_circle_complement(
    circle: Circle,
    p: Point,
    cell: Rect,
    objective: Objective | None = None,
) -> Rect:
    """Longest-perimeter rectangle inside ``cell`` avoiding the open disk.

    ``p`` must be inside ``cell`` and outside the (open) disk.  Following
    Lemma 5.3, one corner of the optimum is the cell corner of the quadrant
    (relative to the disk centre) containing ``p``; the opposite corner
    lies on the quarter circle at ``(r sin θ, r cos θ)`` in quadrant-local
    coordinates.  The cell is enlarged by the caller to fully contain the
    disk (Section 5.2).

    The perimeter decreases towards θ = π/4 (see the module docstring), so
    both endpoints of the valid θ range are evaluated.

    The default-objective case below is a flattened scalar rewrite of
    :func:`_irlp_circle_complement_generic` — no intermediate rectangles,
    closures, or helper calls — kept bit-identical to it (every ``min`` /
    swap / tie is replicated; the generic θ clamps are identities here
    because the containment ratios already lie in ``[0, 1]``).  This is
    the hottest Ir-lp family (every non-result object of every kNN query
    lands here) and intrinsically scalar work, so it is tuned inline
    rather than routed through the kernel dispatcher (docs/PERFORMANCE.md).
    """
    if objective is not None:
        return _irlp_circle_complement_generic(circle, p, cell, objective)
    q, r = circle.center, circle.radius
    if r <= 0.0:
        return cell
    px, py = p.x, p.y
    qx, qy = q.x, q.y
    # Quadrant signs and enlarged-cell extents: the union with the disk's
    # bounding rectangle is only ever read through ``a`` and ``b``.
    if px >= qx:
        dx = px - qx
        edge = qx + r
        m = cell.max_x
        a = (m if m >= edge else edge) - qx
        x_pos = True
    else:
        dx = qx - px
        edge = qx - r
        m = cell.min_x
        a = qx - (m if m <= edge else edge)
        x_pos = False
    if py >= qy:
        dy = py - qy
        edge = qy + r
        m = cell.max_y
        b = (m if m >= edge else edge) - qy
        y_pos = True
    else:
        dy = qy - py
        edge = qy - r
        m = cell.min_y
        b = qy - (m if m <= edge else edge)
        y_pos = False

    theta_lo = math.acos((dy if dy <= r else r) / r)
    theta_hi = math.asin((dx if dx <= r else r) / r)
    if theta_hi < theta_lo:  # p numerically inside the disk
        theta_hi = theta_lo
    span = theta_hi - theta_lo
    if span > 0.0:
        pad = _INTERIOR_MARGIN * span
        theta_lo += pad
        theta_hi -= pad

    # Candidate θ values: both range endpoints plus the radial direction.
    # A collapsed range contributes one endpoint — the duplicate can never
    # win a strictly-greater comparison, so dropping it changes nothing.
    d = math.hypot(dx, dy)
    if theta_hi > theta_lo:
        if d > 0.0:
            thetas = (theta_lo, theta_hi, math.atan2(dx, dy))
        else:
            thetas = (theta_lo, theta_hi)
    elif d > 0.0:
        thetas = (theta_lo, math.atan2(dx, dy))
    else:
        thetas = (theta_lo,)

    best = None
    best_margin = False
    best_score = 0.0
    for theta in thetas:
        x1 = r * math.sin(theta)
        if dx < x1:
            x1 = dx
        if a < x1:
            x1 = a
        y1 = r * math.cos(theta)
        if dy < y1:
            y1 = dy
        if b < y1:
            y1 = b
        if x_pos:
            cx_lo = qx + x1
            cx_hi = qx + a
        else:
            cx_lo = qx - a
            cx_hi = qx - x1
        if y_pos:
            cy_lo = qy + y1
            cy_hi = qy + b
        else:
            cy_lo = qy - b
            cy_hi = qy - y1
        margin = px - cx_lo
        t = cx_hi - px
        if t < margin:
            margin = t
        t = py - cy_lo
        if t < margin:
            margin = t
        t = cy_hi - py
        if t < margin:
            margin = t
        margin_ok = margin > _INTERIOR_EPS
        score = 2.0 * ((cx_hi - cx_lo) + (cy_hi - cy_lo))
        if (
            best is None
            or (margin_ok and not best_margin)
            or (margin_ok == best_margin and score > best_score)
        ):
            best = (cx_lo, cy_lo, cx_hi, cy_hi)
            best_margin = margin_ok
            best_score = score

    # Clip the winner into the original cell (``_shrink_into_cell``).
    cx_lo, cy_lo, cx_hi, cy_hi = best
    m = cell.min_x
    if cx_lo < m:
        cx_lo = m
    m = cell.min_y
    if cy_lo < m:
        cy_lo = m
    m = cell.max_x
    if cx_hi > m:
        cx_hi = m
    m = cell.max_y
    if cy_hi > m:
        cy_hi = m
    if cx_lo > cx_hi or cy_lo > cy_hi:
        return Rect.from_point(cell.clamp_point(p))
    return Rect(cx_lo, cy_lo, cx_hi, cy_hi)


def _irlp_circle_complement_generic(
    circle: Circle,
    p: Point,
    cell: Rect,
    objective: Objective | None = None,
) -> Rect:
    """Reference form of :func:`irlp_circle_complement` (any objective)."""
    q, r = circle.center, circle.radius
    original_cell = cell
    cell = cell.union(circle.bounding_rect())
    if r <= 0.0:
        return original_cell

    sx = 1.0 if p.x >= q.x else -1.0
    sy = 1.0 if p.y >= q.y else -1.0
    dx = abs(p.x - q.x)
    dy = abs(p.y - q.y)
    a = (cell.max_x - q.x) if sx > 0 else (q.x - cell.min_x)
    b = (cell.max_y - q.y) if sy > 0 else (q.y - cell.min_y)

    # Valid θ range for p's containment (endpoints are the candidates).
    theta_lo = _clamped_acos(min(dy, r) / r)
    theta_hi = _clamped_asin(min(dx, r) / r)
    if theta_hi < theta_lo:  # p numerically inside the disk
        theta_hi = theta_lo
    theta_lo, theta_hi = _nudged_bounds(theta_lo, theta_hi)

    def build(theta: float) -> Rect:
        x1 = min(r * math.sin(theta), dx, a)
        y1 = min(r * math.cos(theta), dy, b)
        bx1, bx2 = q.x + sx * x1, q.x + sx * a
        if bx2 < bx1:
            bx1, bx2 = bx2, bx1
        by1, by2 = q.y + sy * y1, q.y + sy * b
        if by2 < by1:
            by1, by2 = by2, by1
        return Rect(bx1, by1, bx2, by2)

    if objective is None:
        candidates = [build(theta_lo), build(theta_hi)]
    else:
        candidates = [maximize_theta(build, theta_lo, theta_hi, objective)]
    # Radial candidate: the quarter-circle point along p's own direction.
    # Its margins around p grow with p's clearance from the disk, avoiding
    # sliver rectangles for mid-clearance objects.
    d = math.hypot(dx, dy)
    if d > 0.0:
        candidates.append(build(math.atan2(dx, dy)))
    best = _pick_best(candidates, objective or _perimeter, p)
    return _shrink_into_cell(best, original_cell, p)


# ---------------------------------------------------------------------------
# Ir-lp of a ring (Proposition 5.5 + corner-anchored fallback)
# ---------------------------------------------------------------------------
def irlp_ring(
    ring: Ring,
    p: Point,
    cell: Rect,
    objective: Objective | None = None,
) -> Rect:
    """Longest-perimeter rectangle inside a ring (and ``cell``) containing ``p``.

    Degenerate rings dispatch to the disk / disk-complement cases.  The
    general case evaluates the paper's two tangent layouts (Proposition
    5.5) plus a corner-anchored candidate covering the inner circle's
    corner shadow; the best-scoring valid candidate wins, with a
    point-degenerate rectangle at ``p`` as the last resort.
    """
    if ring.is_disk_complement:
        return irlp_circle_complement(ring.inner_circle(), p, cell, objective)
    if ring.is_disk:
        return irlp_circle(ring.outer_circle(), p, objective)

    score = objective if objective is not None else _perimeter
    q, r, big_r = ring.center, ring.inner, ring.outer
    dx = abs(p.x - q.x)
    dy = abs(p.y - q.y)
    sx = 1.0 if p.x >= q.x else -1.0
    sy = 1.0 if p.y >= q.y else -1.0

    theta_x = _clamped_asin(min(dx, big_r) / big_r)
    theta_y = _clamped_acos(min(dy, big_r) / big_r)
    if theta_y < theta_x:  # p numerically on/over the outer boundary
        theta_y = theta_x

    candidates: list[Rect] = []

    # Layout I: side tangent to the inner circle horizontally, on p's side.
    # Local frame: x symmetric in [-R sin θ, R sin θ], y in [r, R cos θ].
    if dy >= r:
        def build_horizontal(theta: float) -> Rect:
            half_w = big_r * math.sin(theta)
            top = max(big_r * math.cos(theta), min(dy, big_r))
            ys = sorted((q.y + sy * r, q.y + sy * top))
            return Rect(q.x - half_w, ys[0], q.x + half_w, ys[1])

        lo = theta_x
        hi = min(theta_y, _clamped_acos(r / big_r))
        hi = max(hi, lo)
        lo, hi = _nudged_bounds(lo, hi)
        if objective is None:
            candidates.append(
                build_horizontal(_clamp(THETA_RING_HORIZONTAL, lo, hi))
            )
        else:
            candidates.append(maximize_theta(build_horizontal, lo, hi, objective))

    # Layout II: side tangent to the inner circle vertically, on p's side.
    if dx >= r:
        def build_vertical(theta: float) -> Rect:
            half_h = big_r * math.cos(theta)
            right = max(big_r * math.sin(theta), min(dx, big_r))
            xs = sorted((q.x + sx * r, q.x + sx * right))
            return Rect(xs[0], q.y - half_h, xs[1], q.y + half_h)

        lo = max(theta_x, _clamped_asin(r / big_r))
        hi = max(theta_y, lo)
        lo, hi = _nudged_bounds(lo, hi)
        if objective is None:
            candidates.append(
                build_vertical(_clamp(THETA_RING_VERTICAL, lo, hi))
            )
        else:
            candidates.append(maximize_theta(build_vertical, lo, hi, objective))

    # Corner-anchored candidate: near corner on the inner circle, far
    # corner on the outer circle, inside p's quadrant.  Always applicable;
    # essential when dx < r and dy < r (the corner shadow).
    alpha_lo = _clamped_acos(min(dy, r) / r)
    alpha_hi = _clamped_asin(min(dx, r) / r)
    if alpha_hi < alpha_lo:
        alpha_hi = alpha_lo
    alpha_lo, alpha_hi = _nudged_bounds(alpha_lo, alpha_hi)
    phi_lo, phi_hi = _nudged_bounds(theta_x, theta_y)
    phi = _clamp(math.pi / 4.0, phi_lo, phi_hi)
    far_x = max(big_r * math.sin(phi), min(dx, big_r))
    far_y = max(big_r * math.cos(phi), min(dy, big_r))

    def build_corner(alpha: float) -> Rect:
        x1 = min(r * math.sin(alpha), dx)
        y1 = min(r * math.cos(alpha), dy)
        xs = sorted((q.x + sx * x1, q.x + sx * max(far_x, x1)))
        ys = sorted((q.y + sy * y1, q.y + sy * max(far_y, y1)))
        return Rect(xs[0], ys[0], xs[1], ys[1])

    if objective is None:
        candidates.append(build_corner(alpha_lo))
        candidates.append(build_corner(alpha_hi))
    else:
        candidates.append(maximize_theta(build_corner, alpha_lo, alpha_hi, objective))

    # Radial box: near and far corners on the two circles along p's own
    # direction from q.  Always valid for p strictly inside the ring, with
    # interior margins proportional to the radial slack on both sides —
    # the tangent layouts and the corner family can all degenerate to
    # slivers for mid-ring diagonal positions, this candidate cannot.
    d = math.hypot(dx, dy)
    if d > 0.0:
        sin_g = dx / d
        cos_g = dy / d
        xs = sorted((q.x + sx * r * sin_g, q.x + sx * big_r * sin_g))
        ys = sorted((q.y + sy * r * cos_g, q.y + sy * big_r * cos_g))
        candidates.append(Rect(xs[0], ys[0], xs[1], ys[1]))

    eps = 1e-9
    valid = [
        rect
        for rect in candidates
        if rect.contains_point(p, eps=eps) and _rect_in_ring(rect, ring, eps)
    ]
    valid = [_shrink_into_cell(rect, cell, p) for rect in valid]
    valid.append(Rect.from_point(p))
    return _pick_best(valid, score, p)


def _rect_in_ring(rect: Rect, ring: Ring, eps: float) -> bool:
    """Whether ``rect`` lies in the closed ring, with tolerance ``eps``."""
    if rect.max_dist_to_point(ring.center) > ring.outer + eps:
        return False
    return rect.min_dist_to_point(ring.center) >= ring.inner - eps


def _shrink_into_cell(rect: Rect, cell: Rect, p: Point) -> Rect:
    """Clip ``rect`` to ``cell``; ``p`` (inside both) stays contained."""
    clipped = rect.intersection(cell)
    if clipped is None:  # numerically possible only when p is on an edge
        return Rect.from_point(cell.clamp_point(p))
    return clipped
