"""The database server of the monitoring framework (Section 3, Algorithm 1).

The server owns four components (Figure 3.1): the object index over safe
regions (an R*-tree), the in-memory grid index over query quarantine
areas, the query processor (evaluation / incremental reevaluation with
lazy probes), and the location manager (safe-region computation).

Exact object positions are obtained through ``position_oracle`` — the
server-initiated probe channel.  In the simulator this callback charges
the probe communication cost and synchronises the client; in standalone
library use it is any function resolving an object id to its current
position.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from time import perf_counter
from typing import Callable, Hashable, Iterable

from repro.core.enhancements import ReachabilityModel, weighted_perimeter_objective
from repro.core.evaluation import evaluate_knn, evaluate_range
from repro.core.irlp import interior_margin
from repro.core.queries import KNNQuery, Query, RangeQuery
from repro.core.reevaluation import (
    reevaluate_knn,
    reevaluate_range,
    relieve_tight_safe_region,
)
from repro.core.batch import quadrant_extents
from repro.core.results import BatchOutcome, ResultChange, UpdateOutcome
from repro.core.safe_region import (
    collect_range_obstacles,
    compute_safe_region,
    knn_safe_region,
)
from repro.faults import ProbeTimeout
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.index.bulk import bulk_load
from repro.index.grid import GridIndex
from repro.index.rstar import RStarTree
from repro.kernels import KERNEL_BACKENDS, Kernels, PositionStore, TickPlanner
from repro.obs import (
    COUNT_BUCKETS,
    NULL_EVENT_LOG,
    NULL_PROFILER,
    NULL_REGISTRY,
    Tracer,
    occupancy_summary,
)

ObjectId = Hashable
PositionOracle = Callable[[ObjectId], Point]

UNIT_SPACE = Rect(0.0, 0.0, 1.0, 1.0)


@dataclass(frozen=True, slots=True)
class ServerConfig:
    """Tunables of the database server.

    * ``grid_m`` — resolution of the M x M query grid index (Section 3.3).
    * ``space`` — the workspace; the paper uses the unit square.
    * ``max_speed`` — enables the reachability-circle enhancement
      (Section 6.1) when set to the objects' maximum speed.
    * ``reachability_pushes`` — when True (default), every safe region
      tightened by the reachability constraint during a *decision* is
      installed and pushed to the client (downlink cost 0.5), keeping the
      quarantine invariants exact.  When False the constraint is used the
      way the paper describes — decide, don't install — which reproduces
      the paper's 20-40% savings but silently allows stale results
      whenever an object outruns a decision made on its constrained
      region (EXPERIMENTS.md quantifies the accuracy cost).
    * ``steadiness`` — the D parameter of the weighted-perimeter
      enhancement (Section 6.2); 0 disables it.
    * ``index_max_entries`` — R*-tree node capacity.
    * ``enable_caches`` — the hot-path acceleration layer
      (docs/PERFORMANCE.md): generation-stamped per-cell candidate caches
      in the grid index and lazy safe-region recomputation keyed on cell
      generations.  On by default; disabling it restores the seed's
      recompute-everything behaviour (``repro compare --no-caches``) so
      perf regressions are bisectable.  Results and message counts are
      identical either way — only CPU cost changes.
    """

    grid_m: int = 50
    space: Rect = UNIT_SPACE
    max_speed: float | None = None
    reachability_pushes: bool = True
    steadiness: float = 0.0
    index_max_entries: int = 32
    enable_caches: bool = True
    #: Batch-geometry backend (``repro.kernels``): ``"numpy"`` runs the
    #: hot-path geometry as columnar array passes, ``"python"`` the
    #: bit-identical scalar fallbacks.  Results are identical either way
    #: (``tests/test_kernel_equivalence.py``); only CPU cost changes.
    #: ``"numpy"`` silently degrades to ``"python"`` when NumPy is absent.
    kernel_backend: str = "numpy"
    #: Batch-size cutoff below which kernel dispatches take the scalar
    #: path even on the NumPy backend (array set-up costs more than it
    #: saves on tiny batches).  Inclusive: a batch of exactly this many
    #: rows vectorises.  Must be at least 1.
    kernel_min_rows: int = 8
    #: Ablation switch: compute the safe region for a batch of range
    #: queries with the Section 5.3 algorithm (True) or by intersecting
    #: per-query strips (False).
    batch_range_regions: bool = True
    #: The anti-storm relief pass (DESIGN.md §6).  Off by default: with
    #: interior-preferring Ir-lp candidates, fair gap splitting, and
    #: poll-paced clients, the residual pinch episodes cost less than the
    #: relief's probes (see benchmarks/test_ablations.py).  Enable for
    #: deployments with very fine position polling and no probe budget.
    anti_storm_relief: bool = False
    #: Robustness knobs (docs/ROBUSTNESS.md).  A probe attempt that the
    #: channel reports as lost (``repro.faults.ProbeTimeout``) is retried
    #: up to ``probe_retries`` times with exponential backoff starting at
    #: ``probe_timeout`` time units; ``probe_budget`` caps the probe
    #: attempts any single update or registration may spend (``None`` =
    #: unlimited).  When an object stays unreachable it enters *degraded
    #: mode*: its effective region widens to the §6.1 reachability circle
    #: so query answers stay conservative, and results referencing it are
    #: flagged rather than silently wrong.
    probe_timeout: float = 0.05
    probe_retries: int = 2
    probe_budget: int | None = None
    #: What ``handle_location_update`` does with a report for an id it
    #: does not know (delayed/duplicated report after deregistration):
    #: ``"raise"`` (strict, the default) or ``"drop"`` (count + event).
    on_unknown_object: str = "raise"
    #: Speed bound used *only* to widen degraded objects' regions when
    #: ``max_speed`` (which also enables the §6.1 shrink machinery) is
    #: unset.  ``None`` with ``max_speed`` unset degrades to the whole
    #: workspace — the only conservative region without a speed bound.
    degraded_max_speed: float | None = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.steadiness <= 1.0:
            raise ValueError("steadiness must be within [0, 1]")
        if self.max_speed is not None and self.max_speed <= 0:
            raise ValueError("max_speed must be positive when set")
        if self.kernel_backend not in KERNEL_BACKENDS:
            raise ValueError(
                f"kernel_backend must be one of {KERNEL_BACKENDS}, "
                f"got {self.kernel_backend!r}"
            )
        if self.kernel_min_rows < 1:
            raise ValueError("kernel_min_rows must be at least 1")
        if self.probe_timeout <= 0:
            raise ValueError("probe_timeout must be positive")
        if self.probe_retries < 0:
            raise ValueError("probe_retries must be non-negative")
        if self.probe_budget is not None and self.probe_budget < 1:
            raise ValueError("probe_budget must be positive when set")
        if self.on_unknown_object not in ("raise", "drop"):
            raise ValueError(
                "on_unknown_object must be 'raise' or 'drop', "
                f"got {self.on_unknown_object!r}"
            )
        if self.degraded_max_speed is not None and self.degraded_max_speed <= 0:
            raise ValueError("degraded_max_speed must be positive when set")


@dataclass(slots=True)
class ObjectState:
    """Per-object view maintained by the server.

    ``sr_stamp`` is the lazy-recomputation certificate (docs/PERFORMANCE.md):
    ``(cell id, cell generation)`` recorded when the installed safe region
    is the full rectangle of a query-free grid cell.  While the grid still
    reports the same generation for that cell, recomputing the region would
    provably return the identical rectangle, so the server may skip the
    work.  ``None`` whenever no such certificate holds (caches disabled,
    region constrained by queries, or tightened by a reachability shrink).

    ``sr_cert`` is the delta certificate for query-covered cells:
    ``(cell id, cell generation, ((knn query, clearance), ...))``
    recorded when the installed region was computed with the object
    outside every relevant kNN quarantine circle and only built-in query
    types in the cell.  Each *clearance* is the region's minimum
    distance to that query's centre — the largest quarantine radius the
    region provably avoids.  The safe-region property then makes a
    report a provable no-op while (1) the cell's relevant-query set kept
    its generation, (2) no recorded quarantine radius grew past its
    clearance (a circle no larger than the clearance cannot reach the
    region), and (3) the reported position stays strictly interior to
    the installed region — range rects are immutable and member regions
    are contained in their rects, so no verdict can flip and the
    installed region remains valid.  ``None`` whenever any relevant
    query is a kNN whose quarantine holds the object or the region
    (rank changes are invisible to the clearance check), a custom
    extension type, or when the region was degraded or
    shrink-tightened.  Unlike ``sr_stamp`` it is *not* gated on the
    cache switch — it is a policy applied identically in cached and
    uncached runs (cache transparency).
    """

    safe_region: Rect
    p_lst: Point
    last_update_time: float
    sr_stamp: tuple[tuple[int, int], int] | None = None
    sr_cert: tuple | None = None


@dataclass(slots=True)
class ServerStats:
    """Operation counters and CPU accounting."""

    location_updates: int = 0
    probes: int = 0
    safe_region_pushes: int = 0
    queries_registered: int = 0
    queries_checked: int = 0
    queries_reevaluated: int = 0
    result_changes: int = 0
    cpu_seconds: float = 0.0
    # Robustness counters (docs/ROBUSTNESS.md).  ``probes`` counts only
    # answered probes (they are the billable messages); timed-out
    # attempts and their retries are tallied separately.
    probe_timeouts: int = 0
    probe_retries: int = 0
    unknown_updates: int = 0
    time_regressions: int = 0
    degraded_entries: int = 0


class DatabaseServer:
    """Safe-region-based monitoring server (the paper's SRB scheme)."""

    def __init__(
        self,
        position_oracle: PositionOracle,
        config: ServerConfig | None = None,
        metrics=None,
        events=None,
    ) -> None:
        self.config = config or ServerConfig()
        self._oracle = position_oracle
        self._reachability = (
            ReachabilityModel(self.config.max_speed)
            if self.config.max_speed is not None
            else None
        )
        self.metrics = NULL_REGISTRY if metrics is None else metrics
        #: Structured-event stream (repro.obs.events); the shared no-op
        #: by default, so emission costs one attribute check.
        self.events = NULL_EVENT_LOG if events is None else events
        #: Sequence number of the event causally above whatever the
        #: server is currently doing (the root update/registration, or
        #: the reevaluation in progress); threads ``cause`` links
        #: through probes, shrink pushes, and region installs.
        self._cause: int | None = None
        self._trace = Tracer(self.metrics)
        #: Tick-phase profiler (repro.obs.profile): the shared no-op by
        #: default, so every hook costs one attribute check.  A capture
        #: session swaps in a live :class:`TickProfiler` via
        #: :meth:`attach_profiler`.
        self.profiler = NULL_PROFILER
        self._m_probes = self.metrics.counter("server.probes")
        self._m_pushes = self.metrics.counter("server.safe_region_pushes")
        self._m_updates = self.metrics.counter("server.location_updates")
        self._m_checked = self.metrics.histogram(
            "server.queries_checked_per_report", COUNT_BUCKETS
        )
        self._m_sr_skipped = self.metrics.counter("server.sr_recompute.skipped")
        self._m_fastpath = self.metrics.counter("server.update.fastpath")
        self._m_certified = self.metrics.counter("server.update.certified")
        self._m_probe_timeouts = self.metrics.counter("server.probes.timeouts")
        self._m_probe_retries = self.metrics.counter("server.probes.retries")
        self._m_unknown = self.metrics.counter("server.updates.unknown_object")
        self._m_time_regressions = self.metrics.counter(
            "server.updates.time_regression"
        )
        self._g_degraded = self.metrics.gauge("server.objects.degraded")
        self._caches_on = self.config.enable_caches
        self.kernels = Kernels(
            self.config.kernel_backend, metrics=self.metrics,
            min_rows=self.config.kernel_min_rows, events=self.events,
        )
        #: Columnar mirror of every object's last reported position,
        #: maintained at each register / update / deregister alongside
        #: ``ObjectState.p_lst``.
        self.positions = PositionStore()
        #: Tick-wide kernel work planner (docs/PERFORMANCE.md): batch
        #: update handling gathers the predictable per-report kernel work
        #: into columns, dispatches it in bulk, and the per-report paths
        #: consume the scattered verdicts through ``self._tick_plan``.
        self.planner = TickPlanner(self.kernels, metrics=self.metrics)
        self._tick_plan = None
        self._g_rstar_height = self.metrics.gauge("rstar.height")
        self._g_rstar_nodes = self.metrics.gauge("rstar.nodes")
        self.object_index = RStarTree(
            max_entries=self.config.index_max_entries, kernels=self.kernels
        )
        self.query_index = GridIndex(
            self.config.grid_m,
            self.config.space,
            metrics=self.metrics,
            enable_cache=self.config.enable_caches,
            kernels=self.kernels,
            events=self.events,
        )
        # Cell residency: the store buckets every object into its grid
        # cell with the grid's own arithmetic, so the hot paths read
        # ``positions.cell_of(oid)`` instead of recomputing cells.
        self.query_index.bind_position_store(
            self.positions, metrics=self.metrics
        )
        self._objects: dict[ObjectId, ObjectState] = {}
        #: Unreachable objects (docs/ROBUSTNESS.md): oid -> time the
        #: object entered degraded mode.  While degraded, the installed
        #: region is the §6.1 reachability circle's bounding box around
        #: the last report — conservative by construction — and query
        #: results referencing the object carry a ``degraded`` flag.
        self._degraded: dict[ObjectId, float] = {}
        degraded_speed = (
            self.config.max_speed
            if self.config.max_speed is not None
            else self.config.degraded_max_speed
        )
        self._degraded_model = (
            ReachabilityModel(degraded_speed)
            if degraded_speed is not None
            else None
        )
        #: Server-side monotonic clock: the latest update time processed.
        #: Reports carrying an earlier time (reordered channel) are
        #: clamped to it and counted (``server.updates.time_regression``).
        self._clock = 0.0
        # Per-operation probe accounting: attempts spent against
        # ``probe_budget`` and targets whose probes failed this round.
        self._probe_spent = 0
        self._failed_probes: set[ObjectId] = set()
        #: Deferred slow-path pointify: ``(oid, position)`` of an updater
        #: whose R*-tree entry has not been collapsed to its exact point
        #: yet.  The collapse is only observable through an index read
        #: between ingestion and the location manager's reinstall, so it
        #: runs lazily — just before the first reevaluation that can read
        #: the index — and is skipped entirely for reports that affect
        #: nothing (the reinstall overwrites the entry anyway).
        self._pending_pointify: tuple | None = None
        self.stats = ServerStats()
        # Safe regions whose interior margin falls below this floor
        # trigger the anti-storm relief (see relieve_tight_safe_region).
        cell_extent = min(
            self.config.space.width, self.config.space.height
        ) / self.config.grid_m
        self._margin_floor = 0.0005 * cell_extent

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __contains__(self, oid: ObjectId) -> bool:
        return oid in self._objects

    @property
    def object_count(self) -> int:
        return len(self._objects)

    @property
    def query_count(self) -> int:
        return len(self.query_index)

    def safe_region_of(self, oid: ObjectId) -> Rect:
        """The safe region currently installed for ``oid``."""
        return self._objects[oid].safe_region

    def queries(self) -> frozenset[Query]:
        """All registered queries."""
        return self.query_index.all_queries()

    @property
    def clock(self) -> float:
        """The server's monotonic time: the latest update time processed."""
        return self._clock

    def degraded_objects(self) -> dict[ObjectId, float]:
        """Currently unreachable objects, mapped to degraded-entry time."""
        return dict(self._degraded)

    def is_degraded(self, oid: ObjectId) -> bool:
        return oid in self._degraded

    def validate(self) -> None:
        """Check server-wide invariants (tests); see also ``RStarTree.validate``."""
        self.object_index.validate()
        assert len(self.positions) == len(
            self._objects
        ), "position store out of sync with object table"
        for oid, state in self._objects.items():
            indexed = self.object_index.rect_of(oid)
            assert indexed == state.safe_region, f"index desync for {oid!r}"
            assert state.safe_region.contains_point(
                state.p_lst, eps=1e-9
            ), f"safe region of {oid!r} lost its own location"
            assert self.positions.get(oid) == (
                state.p_lst.x,
                state.p_lst.y,
            ), f"position store desync for {oid!r}"

    def refresh_index_gauges(self) -> None:
        """Publish index-shape gauges (``rstar.height``, ``rstar.nodes``).

        Sampled at bulk load, query registration, and batch boundaries —
        the node-count walk is cheap but pointless per-report.  The grid's
        own gauges (``grid.cells_indexed`` et al.) refresh on mutation.
        """
        profiler = self.profiler
        if profiler.enabled:
            profiler.push("index.maintenance")
            try:
                if self.metrics.enabled:
                    self._g_rstar_height.set(self.object_index.height)
                    self._g_rstar_nodes.set(self.object_index.count_nodes())
            finally:
                profiler.pop()
            return
        if not self.metrics.enabled:
            return
        self._g_rstar_height.set(self.object_index.height)
        self._g_rstar_nodes.set(self.object_index.count_nodes())

    def attach_profiler(self, profiler) -> None:
        """Install a tick-phase profiler (``NULL_PROFILER`` detaches).

        The planner shares the instance so kernel dispatch and scatter
        attribute into the same tick's budget.
        """
        self.profiler = profiler
        self.planner.profiler = profiler

    def profile_start(self, max_ticks: int | None = None) -> None:
        """Begin a profiling session (same surface as ``ShardedServer``)."""
        from repro.obs import TickProfiler

        self.attach_profiler(TickProfiler(max_ticks=max_ticks))

    def profile_stop(self) -> None:
        """End the session; the shared no-op profiler goes back in."""
        self.attach_profiler(NULL_PROFILER)

    def profile_snapshot(self, top_k: int = 10) -> dict:
        """The attached profiler's summary + current cell-occupancy skew.

        The occupancy section is computed from the resident position
        store at snapshot time (it is state, not a per-tick cost) and
        reuses the ``shard.objects.imbalance`` formula.
        """
        summary = self.profiler.to_dict(top_k)
        summary["occupancy"] = occupancy_summary(
            self.positions.cell_occupancy().values()
        )
        return summary

    # ------------------------------------------------------------------
    # Columnar position queries (repro.kernels)
    # ------------------------------------------------------------------
    def known_positions_in(self, rect: Rect) -> list[ObjectId]:
        """Objects whose *last reported* position lies in ``rect``, by id.

        A diagnostic / analysis helper over the columnar store — one batch
        containment pass instead of N point tests.  This is the server's
        knowledge, not ground truth: an object may have drifted within its
        safe region without reporting.
        """
        xs, ys = self.positions.columns()
        mask = self.kernels.points_in_rect(xs, ys, rect)
        return sorted(
            oid for oid, inside in zip(self.positions.ids, mask) if inside
        )

    def nearest_known(self, q: Point, k: int) -> list[ObjectId]:
        """The ``k`` objects whose last reported positions are nearest ``q``.

        Distance ties break deterministically by object id.  Same caveat
        as :meth:`known_positions_in`: last *reported* positions, not
        ground truth.
        """
        ids = self.positions.ids
        if k <= 0 or not ids:
            return []
        # Row order depends on deregistration history (swap-remove), so
        # rank ties by id, not row: sort the id order once and scan
        # columns through it.
        order = sorted(range(len(ids)), key=lambda row: ids[row])
        xs, ys = self.positions.columns()
        sx = [xs[row] for row in order]
        sy = [ys[row] for row in order]
        top = self.kernels.top_k_rows(sx, sy, q.x, q.y, k)
        return [ids[order[row]] for row in top]

    # ------------------------------------------------------------------
    # Object population
    # ------------------------------------------------------------------
    def load_objects(
        self, positions: Iterable[tuple[ObjectId, Point]], time: float = 0.0
    ) -> dict[ObjectId, Rect]:
        """Bulk-register objects before any query exists.

        With no registered queries, every object's safe region is its full
        grid cell — the largest region the framework ever grants.  Returns
        the safe regions to hand to the clients.
        """
        if self.query_count:
            raise RuntimeError("load_objects must run before query registration")
        with self._trace.span("server.load_objects"):
            grid = self.query_index
            pairs = []
            for oid, position in positions:
                if oid in self._objects:
                    raise KeyError(f"object {oid!r} already loaded")
                cell_id = grid.cell_of(position)
                cell = grid.cell_rect(cell_id)
                state = ObjectState(cell, position, time)
                if self._caches_on:
                    # No queries exist yet, so every cell is query-free
                    # and every region is certifiably the full cell.
                    state.sr_stamp = (cell_id, grid.cell_generation(cell_id))
                self._objects[oid] = state
                self.positions.set(oid, position)
                pairs.append((oid, cell))
            self.object_index = bulk_load(
                pairs,
                max_entries=self.config.index_max_entries,
                kernels=self.kernels,
            )
        self.refresh_index_gauges()
        self.stats.cpu_seconds = self._trace.cpu_seconds
        return {oid: rect for oid, rect in pairs}

    def add_object(
        self, oid: ObjectId, position: Point, time: float = 0.0
    ) -> UpdateOutcome:
        """Register one object dynamically, reevaluating affected queries."""
        if oid in self._objects:
            raise KeyError(f"object {oid!r} already loaded")
        self._objects[oid] = ObjectState(Rect.from_point(position), position, time)
        self.positions.set(oid, position)
        self.object_index.insert(oid, Rect.from_point(position))
        return self._process_update(oid, position, None, time)

    def remove_object(self, oid: ObjectId) -> None:
        """Drop an object (its query memberships are *not* reevaluated)."""
        del self._objects[oid]
        self.positions.discard(oid)
        self.object_index.delete(oid)
        if self._degraded.pop(oid, None) is not None:
            self._g_degraded.set(len(self._degraded))

    def evict_object(self, oid: ObjectId, time: float = 0.0) -> UpdateOutcome:
        """Remove ``oid`` and repair every query result referencing it.

        Unlike :meth:`remove_object` (a pure teardown), eviction keeps
        registered query results correct: range results drop the member,
        kNN results that held it are re-evaluated from scratch over the
        remaining objects, and every object probed during the refill gets
        a fresh safe region through the usual ingest / location-manager
        machinery.  This is the migration primitive of the sharded
        deployment (``repro.sharding``): the object keeps existing, but
        on another shard, so this shard must stop answering for it.
        """
        state = self._objects.get(oid)
        if state is None:
            raise KeyError(f"cannot evict unknown object {oid!r}")
        with self._trace.span("server.evict_object"):
            self._probe_spent = 0
            self._failed_probes.clear()
            self._clock = max(self._clock, time)
            self._refresh_degraded(self._clock)
            if self.events.enabled:
                self.events.set_time(self._clock)
                self._cause = self.events.emit(
                    "evict", oid=oid, pos=(state.p_lst.x, state.p_lst.y)
                )
            try:
                outcome = self._evict_object(oid, self._clock)
            finally:
                self._cause = None
        self.refresh_index_gauges()
        self.stats.cpu_seconds = self._trace.cpu_seconds
        return outcome

    def _evict_object(self, oid: ObjectId, time: float) -> UpdateOutcome:
        probed: dict[ObjectId, Point] = {}
        shrunk_only: dict[ObjectId, Rect] = {}
        previous_positions: dict[ObjectId, Point] = {}
        probe = self._make_probe(probed, time)
        constrain = self._make_constrain(time)
        outcome = UpdateOutcome()

        # Take the object out of the indexes *first*: the kNN refills
        # below evaluate over the object index and must not resurrect it.
        self.remove_object(oid)

        # Membership, not geometry, decides which queries need repair: a
        # result member may sit anywhere inside the quarantine area, so
        # scanning the registered queries is the only sound filter.
        referencing = sorted(
            (q for q in self.query_index.all_queries() if oid in q.results),
            key=lambda q: q.query_id,
        )
        events = self.events
        for query in referencing:
            before = _snapshot(query)
            probes_before = set(probed)
            parent_cause = self._cause
            if events.enabled:
                self._cause = events.emit(
                    "reevaluation", cause=parent_cause,
                    query=query.query_id, oid=oid,
                )
            try:
                if isinstance(query, RangeQuery):
                    query.results.discard(oid)
                    shrunk: dict[ObjectId, Rect] = {}
                    quarantine_changed = False
                elif isinstance(query, KNNQuery):
                    evaluation = evaluate_knn(
                        self.object_index,
                        query.center,
                        query.k,
                        probe,
                        order_sensitive=query.order_sensitive,
                        constrain=constrain,
                        kernels=self.kernels,
                    )
                    query.results = list(evaluation.results)
                    query.radius = evaluation.radius
                    shrunk = evaluation.shrunk
                    quarantine_changed = True
                else:
                    # Extension queries own their membership semantics; a
                    # set-style discard is the only generic repair.
                    query.results.discard(oid)
                    shrunk = {}
                    quarantine_changed = False
                fresh = {
                    target: pos
                    for target, pos in probed.items()
                    if target not in probes_before
                }
                previous_positions.update(self._apply_probes(fresh, time))
                shrunk_only.update(self._apply_shrinks(shrunk, probed))
                if quarantine_changed:
                    self.query_index.update(query)
                after = _snapshot(query)
                degraded_members: tuple = ()
                if self._degraded or self._failed_probes:
                    unreachable = self._failed_probes | set(self._degraded)
                    degraded_members = tuple(sorted(
                        (o for o in query.results if o in unreachable),
                        key=repr,
                    ))
                outcome.changes.append(
                    ResultChange(
                        query.query_id, before, after,
                        degraded=degraded_members,
                    )
                )
                if before != after:
                    self.stats.result_changes += 1
                    if events.enabled:
                        events.emit(
                            "result_change", cause=self._cause,
                            query=query.query_id, case="evict",
                            before=_event_snapshot(before),
                            after=_event_snapshot(after),
                            **(
                                {"degraded": list(degraded_members)}
                                if degraded_members else {}
                            ),
                        )
                self.stats.queries_reevaluated += 1
            finally:
                self._cause = parent_cause
        outcome.queries_reevaluated = len(outcome.changes)

        self._ingest_reports(
            list(probed.items()), probe, probed, previous_positions,
            shrunk_only, constrain, outcome, time,
        )
        self._location_manager_phase(
            list(probed), {}, probe, probed, previous_positions,
            shrunk_only, constrain, outcome, time, updater=None,
        )
        return outcome

    # ------------------------------------------------------------------
    # Query registration (Algorithm 1, lines 2-7)
    # ------------------------------------------------------------------
    def register_query(self, query: Query, time: float = 0.0) -> UpdateOutcome:
        """Evaluate a new query from scratch and start monitoring it.

        Every object probed during evaluation is treated as having sent a
        location report: its exact position may contradict *other*
        registered queries (probes can catch an object that has drifted
        past its safe region under finite client polling or message
        delay), so those queries are reevaluated too.  All probed objects
        then receive freshly recomputed safe regions.
        """
        with self._trace.span("server.register_query"):
            self._probe_spent = 0
            self._failed_probes.clear()
            self._clock = max(self._clock, time)
            self._refresh_degraded(self._clock)
            if self.events.enabled:
                self.events.set_time(time)
                self._cause = self.events.emit(
                    "query_registered", query=query.query_id
                )
            try:
                outcome = self._register_query(query, time)
            finally:
                self._cause = None
        self.refresh_index_gauges()
        self.stats.cpu_seconds = self._trace.cpu_seconds
        return outcome

    def _register_query(self, query: Query, time: float) -> UpdateOutcome:
        probed: dict[ObjectId, Point] = {}
        shrunk_only: dict[ObjectId, Rect] = {}
        previous_positions: dict[ObjectId, Point] = {}
        probe = self._make_probe(probed, time)
        constrain = self._make_constrain(time)

        if hasattr(query, "evaluate_over"):
            # Extension query types (repro.core.extensions) bring their own
            # evaluation routine over safe regions.
            evaluation = query.evaluate_over(self.object_index, probe, constrain)
            query.results = set(evaluation.results)
        elif isinstance(query, RangeQuery):
            evaluation = evaluate_range(
                self.object_index, query.rect, probe, constrain,
                kernels=self.kernels,
            )
            query.results = set(evaluation.results)
        elif isinstance(query, KNNQuery):
            evaluation = evaluate_knn(
                self.object_index,
                query.center,
                query.k,
                probe,
                order_sensitive=query.order_sensitive,
                constrain=constrain,
                kernels=self.kernels,
            )
            query.results = list(evaluation.results)
            query.radius = evaluation.radius
        else:
            raise TypeError(f"unsupported query type: {type(query).__name__}")

        previous_positions.update(self._apply_probes(probed, time))
        shrunk_only.update(self._apply_shrinks(evaluation.shrunk, probed))
        self.query_index.insert(query)
        self.stats.queries_registered += 1

        outcome = UpdateOutcome()
        outcome.changes.append(
            ResultChange(query.query_id, None, _snapshot(query))
        )
        self._ingest_reports(
            list(probed.items()), probe, probed, previous_positions,
            shrunk_only, constrain, outcome, time,
        )
        self._location_manager_phase(
            list(probed), {}, probe, probed, previous_positions,
            shrunk_only, constrain, outcome, time, updater=None,
        )
        return outcome

    def deregister_query(self, query: Query) -> None:
        """Stop monitoring ``query`` (Algorithm 1, lines 6-7).

        Safe regions computed while the query was registered remain valid
        (they are conservative), so no object needs to be contacted.
        """
        self.query_index.remove(query)

    # ------------------------------------------------------------------
    # Location updates (Algorithm 1, lines 8-15)
    # ------------------------------------------------------------------
    def handle_location_update(
        self, oid: ObjectId, position: Point, time: float = 0.0
    ) -> UpdateOutcome:
        """Process a source-initiated location update from ``oid``.

        Returns the new safe region for the updater (``safe_region``), new
        safe regions for every probed object (``probed``), and the result
        deltas to push to application servers (``changes``).

        A report for an unknown id — what a delayed or duplicated message
        produces after a deregistration — follows
        ``ServerConfig.on_unknown_object``: ``"raise"`` (strict default)
        or ``"drop"`` (counted, evented, returns an empty outcome).
        """
        state = self._objects.get(oid)
        if state is None:
            return self._handle_unknown_update(oid, position, time)
        previous = state.p_lst
        return self._process_update(oid, position, previous, time)

    def _handle_unknown_update(
        self, oid: ObjectId, position: Point, time: float
    ) -> UpdateOutcome:
        if self.config.on_unknown_object == "raise":
            raise KeyError(
                f"location update for unknown object {oid!r} "
                "(set ServerConfig.on_unknown_object='drop' to tolerate "
                "late reports for deregistered objects)"
            )
        self.stats.unknown_updates += 1
        self._m_unknown.inc()
        if self.events.enabled:
            self.events.set_time(max(time, self._clock))
            self.events.emit(
                "unknown_update", oid=oid, pos=(position.x, position.y)
            )
        return UpdateOutcome()

    def handle_location_updates(
        self, reports: Iterable[tuple[ObjectId, Point]], time: float = 0.0
    ) -> BatchOutcome:
        """Process a batch of same-tick location reports, grouped by cell.

        Reports are handled strictly sequentially — the semantics are
        identical to calling ``handle_location_update`` per report — but
        in a deterministic cell-grouped order: updates landing in the same
        grid cell run back to back, so the per-cell candidate caches, the
        interned cell rectangles, and the memoised per-query geometry stay
        hot across co-located objects.  The order depends only on the
        reports themselves (destination cell, then submission order), not
        on any cache state, so batched runs are reproducible with caches
        on or off.

        A batch holding several reports for the *same* object (duplicated
        or retransmitted messages) disables the cell grouping: sorting
        such reports by destination cell could run them out of submission
        order and land the object on the wrong final position, so the
        whole batch falls back to plain submission order — the documented
        sequential contract holds either way.

        When the batch is cleanly orderable (unique ids, monotone time,
        no event stream, no degraded objects), processing runs through
        the tick-wide planner pipeline (docs/PERFORMANCE.md): the
        predictable kernel work of every report — range-affected flips
        and Section 5.3 corner candidates — is gathered into columns and
        dispatched in bulk before the sequential walk, and the certified
        no-op fast path runs inline without per-report span/outcome
        scaffolding.  Results, messages, and ``ServerStats`` are
        bit-identical to the sequential contract; only CPU cost changes.
        """
        reports = list(reports)
        oids = [oid for oid, _ in reports]
        batch = BatchOutcome()
        profiler = self.profiler
        # The ownership token: an outer wrapper (a shard batch op) may
        # already hold the tick — then this batch nests inside it.
        owns_tick = profiler.enabled and profiler.tick_begin()
        try:
            if not reports:
                self.refresh_index_gauges()
                return batch
            if len(set(oids)) != len(oids):
                for i in range(len(reports)):
                    oid, position = reports[i]
                    outcome = self.handle_location_update(oid, position, time)
                    batch.merge(oid, outcome)
                self.refresh_index_gauges()
                return batch
            # One columnar pass computes every destination cell (identical
            # to per-report ``grid.cell_of``); the sort key is unchanged.
            cells = self.query_index.cells_of_points(
                [position for _, position in reports]
            )
            # Stable sort over the already index-ordered range: equal cells
            # keep submission order, so the key collapses to the cell alone.
            ordered = sorted(range(len(reports)), key=cells.__getitem__)
            if (
                not self.events.enabled
                and not self._degraded
                and time >= self._clock
            ):
                self._bulk_updates(reports, ordered, cells, time, batch)
            else:
                for i in ordered:
                    oid, position = reports[i]
                    outcome = self.handle_location_update(oid, position, time)
                    batch.merge(oid, outcome)
            self.refresh_index_gauges()
            return batch
        finally:
            if owns_tick:
                profiler.tick_end(len(reports))

    @contextmanager
    def planned_tick(
        self, reports: Iterable[tuple[ObjectId, Point]], time: float = 0.0
    ):
        """Pre-plan a tick's kernel work for per-report processing.

        Callers that must drive same-tick reports through
        ``handle_location_update`` individually — a shard replaying an
        op stream with adds and evictions interleaved, say — wrap the
        run in this context to get the tick-wide gather/dispatch
        batching of ``handle_location_updates``.  Every plan entry
        revalidates at consume time (position identity and cell
        generations), so a report invalidated by an interleaved
        operation simply falls back to the scalar path: results are
        bit-identical with or without the plan.

        The gate mirrors ``handle_location_updates``: duplicate object
        ids, an enabled event stream, degraded objects, or a
        non-monotone timestamp skip planning entirely.
        """
        reports = list(reports)
        oids = [oid for oid, _ in reports]
        if (
            not reports
            or len(set(oids)) != len(oids)
            or self.events.enabled
            or self._degraded
            or time < self._clock
        ):
            yield
            return
        cells = self.query_index.cells_of_points(
            [position for _, position in reports]
        )
        ordered = sorted(range(len(reports)), key=cells.__getitem__)
        objects = self._objects
        prev_pts = [
            state.p_lst if state is not None else None
            for state in (objects.get(oid) for oid in oids)
        ]
        self._tick_plan = self._plan_tick(reports, ordered, cells, prev_pts)
        try:
            yield
        finally:
            self._tick_plan = None

    def _plan_tick(self, reports, ordered, cells, prev_pts):
        """Gather the batch's predictable kernel work and dispatch it.

        Walks the reports in processing order, skips those certified for
        the fast path (their buckets are provably empty — nothing to
        plan), and gathers the rest's range-affected rows, kNN quarantine
        gates, and safe-region obstacle rows by *extending* the planner's
        columns with cell-resident column slices (cached per cell pair
        and generation).  Old cells come from the resident position
        store — one dict probe, always equal to ``grid.cell_of(p_lst)``.
        Returns the scattered :class:`~repro.kernels.planner.TickPlan`,
        or ``None`` when no report had plannable work.
        """
        grid = self.query_index
        objects = self._objects
        planner = self.planner
        planner.begin()
        profiler = self.profiler
        if profiler.enabled:
            profiler.push("plan.gather")
        caches_on = self._caches_on
        plan_regions = (
            self.config.batch_range_regions and self.config.steadiness == 0.0
        )
        # Bound-method / bound-dict locals: ``_generations`` and
        # ``_buckets`` are mutated in place but never rebound, so the
        # hoisted accessors stay live across the loop.
        generation_of = grid._generations.get
        has_queries_in_cell = grid._buckets.__contains__
        candidate_queries_ordered = grid.candidate_queries_ordered
        resident_cell_of = self.positions.cell_of
        add_affected = planner.add_affected
        obstacle_columns = planner.obstacle_columns
        add_region = planner.add_region
        any_work = False
        for i in ordered:
            previous = prev_pts[i]
            if previous is None:
                continue  # unknown object: the scalar path decides
            oid, position = reports[i]
            state = objects[oid]
            cell_old = resident_cell_of(oid)
            cell_new = cells[i]
            stamp = state.sr_stamp
            if (
                caches_on
                and stamp is not None
                and stamp[0] == cell_old
                and stamp[1] == generation_of(cell_old, 0)
                and (
                    cell_new == cell_old
                    or not has_queries_in_cell(cell_new)
                )
            ):
                continue  # certified fast path: no reevaluation happens
            cert = state.sr_cert
            if cert is not None and cell_new == cell_old \
                    and cert[0] == cell_old:
                # Plan-time preview of the delta certificate: a report
                # the sequential loop will certify has nothing to plan.
                # Mid-tick radius growth can still fail the authoritative
                # consume-time check — that report then runs unplanned,
                # which is slower but identical in outcome.
                region = state.safe_region
                if (
                    region.min_x < position.x < region.max_x
                    and region.min_y < position.y < region.max_y
                    and cert[1] == generation_of(cell_old, 0)
                ):
                    for q, r in cert[2]:
                        if q.radius > r:
                            break
                    else:
                        continue
            candidates = candidate_queries_ordered(position, previous)
            if cell_new == cell_old:
                cell_pair = (cell_new,)
                generations = (generation_of(cell_new, 0),)
            else:
                cell_pair = (cell_new, cell_old)
                generations = (
                    generation_of(cell_new, 0), generation_of(cell_old, 0)
                )
            add_affected(
                oid, position, previous, candidates, cell_pair, generations,
            )
            any_work = True
            if plan_regions:
                obstacles = obstacle_columns(
                    cell_new, generations[0], grid.relevant_queries(cell_new)
                )
                if obstacles is not None:
                    cell = grid.cell_rect(cell_new)
                    add_region(
                        oid, position, cell_new, cell,
                        quadrant_extents(position, cell), obstacles,
                    )
        # ``finish`` runs inside the gather phase; the planner opens its
        # own ``kernel.dispatch`` / ``report.scatter`` child phases.
        try:
            return planner.finish() if any_work else None
        finally:
            if profiler.enabled:
                profiler.pop()

    def _bulk_updates(self, reports, ordered, cells, time, batch) -> None:
        """Planner-backed batch processing (see ``handle_location_updates``).

        Strictly sequential semantics: each report either takes the
        inline certified fast path — the exact commits of
        ``_fastpath_update`` without the per-report span and
        ``UpdateOutcome`` scaffolding — or runs the full
        ``handle_location_update`` path, which consumes the tick plan
        through ``self._tick_plan`` where its entries are still valid.
        """
        grid = self.query_index
        objects = self._objects
        positions = self.positions
        object_index = self.object_index
        caches_on = self._caches_on
        metrics_on = self.metrics.enabled
        # Previous positions in one pass; their cells are resident in
        # the position store (``positions.cell_of`` — no recompute).
        prev_pts = []
        for i, (oid, _) in enumerate(reports):
            state = objects.get(oid)
            prev_pts.append(state.p_lst if state is not None else None)
        self._tick_plan = self._plan_tick(reports, ordered, cells, prev_pts)
        # The first sequential report would advance the clock to
        # ``time`` (monotonicity was checked by the caller); committing
        # it up front keeps inline-fastpath timestamps identical.
        self._clock = time
        fast_n = 0
        cert_n = 0
        objects_get = objects.get
        positions_move = positions.move
        resident_cell_of = positions.cell_of
        # Never rebound, only mutated — see the same hoists in _plan_tick.
        generation_of = grid._generations.get
        has_queries_in_cell = grid._buckets.__contains__
        try:
            for i in ordered:
                oid, position = reports[i]
                state = objects_get(oid)
                fast = False
                if (
                    state is not None
                    and not self._degraded
                ):
                    # ``sr_stamp`` is only ever set with caches on; the
                    # delta certificate applies in either mode.
                    previous = state.p_lst
                    if previous is not None:
                        # ``previous`` is always the stored position
                        # (every ``p_lst`` write pairs with
                        # ``positions.set``), so its cell is resident.
                        cell_old = resident_cell_of(oid)
                        if cell_old is None:
                            cell_old = grid.cell_of(previous)
                        stamp = state.sr_stamp
                        if (
                            stamp is not None
                            and stamp[0] == cell_old
                            and stamp[1] == generation_of(cell_old, 0)
                        ):
                            cell_new = cells[i]
                            if cell_new == cell_old or not (
                                has_queries_in_cell(cell_new)
                            ):
                                # Inline fast path: the exact state
                                # commits of ``_fastpath_update``.
                                state.p_lst = position
                                positions_move(
                                    oid, position.x, position.y, cell_new
                                )
                                state.last_update_time = time
                                if cell_new != cell_old:
                                    region = grid.cell_rect(cell_new)
                                    state.safe_region = region
                                    object_index.update(oid, region)
                                    state.sr_stamp = (
                                        cell_new,
                                        generation_of(cell_new, 0),
                                    )
                                    state.sr_cert = None
                                fast = True
                        elif cells[i] == cell_old:
                            # Inline ``_certified_update``: a delta-
                            # certified no-op inside a query-covered
                            # cell (strict interior of the installed
                            # region, generation and radii unchanged).
                            cert = state.sr_cert
                            if cert is not None and cert[0] == cell_old:
                                region = state.safe_region
                                x = position.x
                                y = position.y
                                if (
                                    region.min_x < x < region.max_x
                                    and region.min_y < y < region.max_y
                                    and cert[1] == generation_of(
                                        cell_old, 0
                                    )
                                ):
                                    for q, r in cert[2]:
                                        if q.radius > r:
                                            break
                                    else:
                                        state.p_lst = position
                                        positions_move(oid, x, y, cell_old)
                                        state.last_update_time = time
                                        fast = True
                                        cert_n += 1
                if fast:
                    fast_n += 1
                    # Inline ``BatchOutcome.merge`` of an outcome whose
                    # only payload is the (unchanged) safe region.
                    batch.regions[oid] = state.safe_region
                    if batch.missed:
                        batch.missed = [
                            t for t in batch.missed if t != oid
                        ]
                    if metrics_on:
                        self._m_checked.observe(0)
                    continue
                outcome = self.handle_location_update(oid, position, time)
                batch.merge(oid, outcome)
        finally:
            self._tick_plan = None
        if fast_n:
            self.stats.location_updates += fast_n
            if metrics_on:
                self._m_updates.inc(fast_n)
                self._m_fastpath.inc(fast_n)
                if cert_n:
                    self._m_certified.inc(cert_n)
            self.stats.cpu_seconds = self._trace.cpu_seconds

    def _process_update(
        self,
        oid: ObjectId,
        position: Point,
        previous: Point | None,
        time: float,
    ) -> UpdateOutcome:
        profiler = self.profiler
        # Auto-root: an update arriving outside a batch (the simulator's
        # per-event path) is its own one-report tick; inside a batch the
        # open tick wins (tick_begin returns False).
        owns_tick = profiler.enabled and profiler.tick_begin()
        try:
            return self._process_update_traced(oid, position, previous, time)
        finally:
            if owns_tick:
                profiler.tick_end(1)

    def _process_update_traced(
        self,
        oid: ObjectId,
        position: Point,
        previous: Point | None,
        time: float,
    ) -> UpdateOutcome:
        with self._trace.span("server.update"):
            self.stats.location_updates += 1
            self._m_updates.inc()
            self._probe_spent = 0
            self._failed_probes.clear()
            time = self._advance_clock(oid, time)
            self._refresh_degraded(time)
            events = self.events
            if events.enabled:
                events.set_time(time)
                self._cause = events.emit(
                    "update",
                    oid=oid,
                    pos=(position.x, position.y),
                    prev=(
                        (previous.x, previous.y)
                        if previous is not None else None
                    ),
                )
            if self._degraded and oid in self._degraded:
                # The object reported: it is reachable again.
                self._exit_degraded(oid, time)
            try:
                outcome = None
                if previous is not None:
                    # With caches off ``sr_stamp`` is never set, so this
                    # reduces to the (cache-independent) delta
                    # certificate check.
                    outcome = self._fastpath_update(
                        oid, position, previous, time
                    )
                    if outcome is not None and events.enabled:
                        events.emit("fastpath", cause=self._cause, oid=oid)
                if outcome is None:
                    outcome = self._slowpath_update(
                        oid, position, previous, time
                    )
            finally:
                self._cause = None
        self.stats.cpu_seconds = self._trace.cpu_seconds
        return outcome

    def _fastpath_update(
        self,
        oid: ObjectId,
        position: Point,
        previous: Point,
        time: float,
    ) -> UpdateOutcome | None:
        """Zero-churn handling of an update that provably changes nothing.

        Applies when the updater's ``sr_stamp`` certifies that its region
        is the full rectangle of a query-free cell and the destination
        cell is query-free too.  Both candidate buckets are then empty, so
        there is no reevaluation and no probe, and the recomputed safe
        region of a query-free cell is exactly that cell's rectangle — the
        full path's pointify-then-recompute R*-tree churn (two tree
        updates) collapses to zero (same cell) or one (cell crossing).
        Returns ``None`` when the preconditions fail; the full path runs.
        """
        grid = self.query_index
        state = self._objects[oid]
        stamp = state.sr_stamp
        if previous is state.p_lst:
            # The stored position's cell is resident in the store.
            cell_old = self.positions.cell_of(oid)
            if cell_old is None:
                cell_old = grid.cell_of(previous)
        else:
            cell_old = grid.cell_of(previous)
        if (
            stamp is None
            or stamp[0] != cell_old
            or stamp[1] != grid.cell_generation(cell_old)
        ):
            return self._certified_update(oid, state, position, cell_old, time)
        cell_new = grid.cell_of(position)
        if cell_new != cell_old and grid.has_queries_in_cell(cell_new):
            return None
        # Commit the reported position before any region install so the
        # ``safe_region`` event (and its containment invariant) sees the
        # position the region was granted for.
        state.p_lst = position
        self.positions.move(oid, position.x, position.y, cell_new)
        state.last_update_time = time
        if cell_new != cell_old:
            region = grid.cell_rect(cell_new)
            self._install_safe_region(oid, region)
            state.sr_stamp = (cell_new, grid.cell_generation(cell_new))
            state.sr_cert = None
        self._m_fastpath.inc()
        self._m_checked.observe(0)
        outcome = UpdateOutcome()
        outcome.safe_region = state.safe_region
        return outcome

    def _certified_update(
        self,
        oid: ObjectId,
        state: "ObjectState",
        position: Point,
        cell_old: tuple,
        time: float,
    ) -> UpdateOutcome | None:
        """Delta-certified no-op handling inside a query-covered cell.

        Consumes ``ObjectState.sr_cert``: when the report stays strictly
        interior to the installed safe region, the cell kept its
        relevant-query generation, and no recorded kNN quarantine radius
        grew past its install-time value, the safe-region property
        guarantees no query verdict can have flipped and the installed
        region is still valid for the new position — the report commits
        with zero reevaluation and zero index churn.  The strict-interior
        requirement also pins the report to the certified cell (the
        region is contained in it), so no cell arithmetic is needed.
        """
        cert = state.sr_cert
        if cert is None or cert[0] != cell_old:
            return None
        region = state.safe_region
        x = position.x
        y = position.y
        if not (
            region.min_x < x < region.max_x
            and region.min_y < y < region.max_y
        ):
            return None
        if cert[1] != self.query_index.cell_generation(cell_old):
            return None
        for q, r in cert[2]:
            if q.radius > r:
                return None
        state.p_lst = position
        self.positions.move(oid, x, y, cell_old)
        state.last_update_time = time
        self._m_fastpath.inc()
        self._m_certified.inc()
        self._m_checked.observe(0)
        outcome = UpdateOutcome()
        outcome.safe_region = region
        return outcome

    def _slowpath_update(
        self,
        oid: ObjectId,
        position: Point,
        previous: Point | None,
        time: float,
    ) -> UpdateOutcome:
        state = self._objects[oid]
        state.p_lst = position
        self.positions.set(oid, position)
        state.last_update_time = time
        if self.config.anti_storm_relief:
            # Relief scans the index freely mid-phase; keep the eager
            # pointify so it always sees the exact position.
            self.object_index.update(oid, Rect.from_point(position))
        else:
            # Defer the pointify: it only matters if some reevaluation
            # actually reads the index before the location manager
            # reinstalls the entry.  ``_do_reevaluate_affected`` flushes
            # it just in time; otherwise the entry is never touched.
            self._pending_pointify = (oid, position)

        probed: dict[ObjectId, Point] = {}
        shrunk_only: dict[ObjectId, Rect] = {}
        previous_positions: dict[ObjectId, Point] = {}
        probe = self._make_probe(probed, time)
        constrain = self._make_constrain(time)
        outcome = UpdateOutcome()

        try:
            self._ingest_reports(
                [(oid, position)], probe, probed, previous_positions,
                shrunk_only, constrain, outcome, time,
                initial_previous={oid: previous},
            )
            outcome.queries_reevaluated = len(outcome.changes)

            targets = [oid] + [target for target in probed if target != oid]
            self._location_manager_phase(
                targets, {oid: previous}, probe, probed, previous_positions,
                shrunk_only, constrain, outcome, time, updater=oid,
            )
        finally:
            self._pending_pointify = None
        return outcome

    def _ingest_reports(self, *args, **kwargs) -> None:
        # Inline segment clock (``TickProfiler.acc_ingest``): cheaper
        # than a push/pop pair on a phase entered once per report.
        profiler = self.profiler
        timed = profiler.enabled and profiler.tick_open
        if timed:
            profiler.in_ingest = True
            start = perf_counter()
        try:
            # Skip the no-op span scaffolding when tracing is off
            # (behaviourally identical, measurably cheaper).
            if self._trace.noop_spans():
                self._do_ingest_reports(*args, **kwargs)
                return
            with self._trace.span("ingest"):
                self._do_ingest_reports(*args, **kwargs)
        finally:
            if timed:
                profiler.acc_ingest += perf_counter() - start
                profiler.in_ingest = False

    def _do_ingest_reports(
        self,
        initial_reports: list[tuple[ObjectId, Point]],
        probe,
        probed: dict[ObjectId, Point],
        previous_positions: dict[ObjectId, Point],
        shrunk_only: dict[ObjectId, Rect],
        constrain,
        outcome: UpdateOutcome,
        time: float,
        initial_previous: dict[ObjectId, Point | None] | None = None,
    ) -> None:
        """Reevaluate queries for a cascade of position reports.

        Every position report — a source-initiated update or a probed
        position — goes through affected-query reevaluation.  A probe can
        catch an object outside its safe region (clients detect crossings
        at a finite polling rate, and messages are delayed), so the probed
        position may contradict *other* queries' results; those queries
        must be fixed now, or the error persists until the object happens
        to report again.  Reevaluation may probe further objects, whose
        reports join the queue; each object is ingested at most once.
        """
        initial_previous = initial_previous or {}
        reports = list(initial_reports)
        reported = {r_oid for r_oid, _ in reports}
        while reports:
            r_oid, r_pos = reports.pop(0)
            r_prev = initial_previous.get(
                r_oid, previous_positions.get(r_oid)
            )
            self._reevaluate_affected(
                r_oid, r_pos, r_prev, probe, probed, previous_positions,
                shrunk_only, constrain, outcome, time,
            )
            for target, target_pos in probed.items():
                if target not in reported:
                    reported.add(target)
                    reports.append((target, target_pos))

    def _location_manager_phase(self, *args, **kwargs) -> None:
        # The phase scatters freshly computed regions back onto reports;
        # safe-region *construction* is its ``safe_region`` child phase.
        profiler = self.profiler
        timed = profiler.enabled and profiler.tick_open
        if timed:
            start = perf_counter()
        try:
            if self._trace.noop_spans():
                self._do_location_manager_phase(*args, **kwargs)
                return
            with self._trace.span("location_manager"):
                self._do_location_manager_phase(*args, **kwargs)
        finally:
            if timed:
                profiler.acc_scatter += perf_counter() - start

    def _do_location_manager_phase(
        self,
        targets: list[ObjectId],
        initial_previous: dict[ObjectId, Point | None],
        probe,
        probed: dict[ObjectId, Point],
        previous_positions: dict[ObjectId, Point],
        shrunk_only: dict[ObjectId, Rect],
        constrain,
        outcome: UpdateOutcome,
        time: float,
        updater: ObjectId | None,
    ) -> None:
        """Recompute safe regions for every object that reported (§5).

        Processed as a worklist: when a freshly computed region has
        (near-)zero room, the anti-storm relief may probe further objects,
        whose positions are then ingested like any other report and whose
        safe regions are recomputed in turn.
        """
        def prev_lookup(target):
            if target in initial_previous:
                return initial_previous[target]
            return previous_positions.get(target)

        # Hoisted out of the worklist loop (one lookup per report adds
        # up).  The grid's generation dict is only ever mutated in
        # place, never rebound, so binding its ``.get`` is safe.
        objects = self._objects
        grid = self.query_index
        cell_of = grid.cell_of
        resident_cell_of = self.positions.cell_of
        generation_of = grid._generations.get
        cell_rect_of_point = grid.cell_rect_of_point
        install_safe_region = self._install_safe_region
        failed_probes = self._failed_probes

        queue: list[ObjectId] = list(targets)
        queued = set(queue)
        completed: set[ObjectId] = set()
        while queue:
            target = queue.pop(0)
            queued.discard(target)
            if target in failed_probes:
                # Unreachable this round: the widened degraded region
                # installed by ``_apply_probes`` stands — recomputing a
                # safe region around the stale fix would be unsound, and
                # there is no client to deliver one to anyway.
                shrunk_only.pop(target, None)
                if target not in outcome.missed:
                    outcome.missed.append(target)
                completed.add(target)
                continue
            state = objects[target]
            target_pos = state.p_lst
            stamp = state.sr_stamp
            # ``target_pos`` is the stored position, so its cell is
            # resident in the position store (one dict probe).
            target_cell = resident_cell_of(target)
            if target_cell is None:
                target_cell = cell_of(target_pos)
            if (
                stamp is not None
                and stamp[0] == target_cell
                and stamp[1] == generation_of(stamp[0], 0)
            ):
                # Lazy recomputation: the stamp certifies the installed
                # region is the full, still query-free cell — recomputing
                # would return the identical rectangle.  The region must
                # still be (re)installed: ingestion pointified the
                # object's index entry.  Relief cannot apply either: a
                # full-cell region has the same interior margin as its
                # cell, which contradicts the trigger condition below.
                self._m_sr_skipped.inc()
                if self.events.enabled:
                    self.events.emit(
                        "sr_skip", cause=self._cause, oid=target
                    )
                region = state.safe_region
                shrunk_only.pop(target, None)
                pending = self._pending_pointify
                if pending is not None and pending[0] == target:
                    # The deferred pointify never ran: the index entry
                    # still holds exactly ``region``, so the reinstall's
                    # delete+insert is a no-op — emit the event and keep
                    # the entry untouched.
                    self._pending_pointify = None
                    if self.events.enabled:
                        self.events.emit(
                            "safe_region", cause=self._cause, oid=target,
                            region=(region.min_x, region.min_y,
                                    region.max_x, region.max_y),
                            pos=(state.p_lst.x, state.p_lst.y),
                        )
                else:
                    install_safe_region(target, region)
                completed.add(target)
                if target == updater:
                    outcome.safe_region = region
                else:
                    outcome.probed[target] = region
                continue
            cert = state.sr_cert
            if cert is not None and cert[0] == target_cell:
                region = state.safe_region
                if (
                    region.min_x < target_pos.x < region.max_x
                    and region.min_y < target_pos.y < region.max_y
                    and cert[1] == generation_of(target_cell, 0)
                ):
                    for q, r in cert[2]:
                        if q.radius > r:
                            break
                    else:
                        if (
                            not self.config.anti_storm_relief
                            or interior_margin(region, target_pos)
                            >= self._margin_floor
                        ):
                            # Delta-certificate reinstall: the recorded
                            # clearances prove the installed region still
                            # avoids every relevant quarantine and keeps
                            # every verdict, so recomputing would only
                            # re-centre it.  Reinstalling restores the
                            # index entry that ingestion pointified —
                            # mostly for probed targets, whose exact
                            # position landed strictly inside their
                            # standing region.  (With anti-storm relief
                            # enabled, a tight region falls through so
                            # the relief trigger still sees it.)
                            self._m_sr_skipped.inc()
                            if self.events.enabled:
                                self.events.emit(
                                    "sr_skip", cause=self._cause, oid=target
                                )
                            shrunk_only.pop(target, None)
                            pending = self._pending_pointify
                            if pending is not None and pending[0] == target:
                                # The deferred pointify never ran: the
                                # entry still holds exactly ``region``.
                                self._pending_pointify = None
                            else:
                                install_safe_region(target, region)
                            completed.add(target)
                            if target == updater:
                                outcome.safe_region = region
                            else:
                                outcome.probed[target] = region
                            continue
            region = self._full_safe_region(
                target, target_pos, prev_lookup(target)
            )
            cell = cell_rect_of_point(target_pos)
            if (
                self.config.anti_storm_relief
                and interior_margin(region, target_pos) < self._margin_floor
                and interior_margin(cell, target_pos) >= self._margin_floor
            ):
                # Tight for a query-related reason (an object hugging its
                # own grid-cell edge resolves itself at the next crossing).
                relieved, fresh = self._relieve(
                    target, target_pos, probe, probed, previous_positions,
                    time,
                )
                # Relief probes are position reports too: fix any query
                # their exact positions contradict, then queue their
                # safe-region recomputation.
                for other, other_pos in fresh.items():
                    self._reevaluate_affected(
                        other, other_pos, previous_positions.get(other),
                        probe, probed, previous_positions, shrunk_only,
                        constrain, outcome, time,
                    )
                    if other not in queued and other != target:
                        completed.discard(other)
                        queued.add(other)
                        queue.append(other)
                if relieved:
                    region = self._full_safe_region(
                        target, target_pos, prev_lookup(target)
                    )
            shrunk_only.pop(target, None)
            install_safe_region(target, region)
            completed.add(target)
            if target == updater:
                outcome.safe_region = region
            else:
                outcome.probed[target] = region
        for target, region in shrunk_only.items():
            outcome.probed[target] = region

    def _relieve(
        self,
        target: ObjectId,
        position: Point,
        probe,
        probed: dict[ObjectId, Point],
        previous_positions: dict[ObjectId, Point],
        time: float,
    ) -> tuple[bool, dict[ObjectId, Point]]:
        """Anti-storm relief: widen the slack around a pinched object.

        Returns ``(changed, fresh)``: whether anything changed (so the
        caller must recompute the region) and the positions of any objects
        the relief probed.  Quarantine-radius adjustments are applied to
        the queries directly.
        """
        all_fresh: dict[ObjectId, Point] = {}
        changed_radius = False
        for query in sorted(
            self.query_index.queries_at(position), key=lambda q: q.query_id
        ):
            if not isinstance(query, KNNQuery):
                continue
            # Only relieve the queries whose own constraint is the pinch;
            # probing neighbours of a query with ample slack is waste.
            piece = knn_safe_region(
                query, target, position,
                self.query_index.cell_rect_of_point(position),
                self.object_index.rect_of,
            )
            if interior_margin(piece, position) >= self._margin_floor:
                continue
            probes_before = set(probed)
            relief = relieve_tight_safe_region(
                query, target, position, self.object_index, probe,
                already_probed=frozenset(probed),
                min_gain=self._margin_floor,
            )
            fresh = {
                other: pos
                for other, pos in probed.items()
                if other not in probes_before
            }
            if fresh:
                previous_positions.update(self._apply_probes(fresh, time))
                all_fresh.update(fresh)
            if relief.quarantine_changed:
                changed_radius = True
                self.query_index.update(query)
        return (changed_radius or bool(all_fresh), all_fresh)

    def _reevaluate_affected(self, *args, **kwargs) -> None:
        # Called once per report; skip the no-op span scaffolding when
        # tracing is off (behaviourally identical, measurably cheaper).
        # The profiler's ``in_ingest`` flag routes the segment to
        # ``tick;ingest;reevaluate`` or ``tick;report.scatter;reevaluate``
        # (the relief path reevaluates from inside the scatter phase).
        profiler = self.profiler
        timed = profiler.enabled and profiler.tick_open
        if timed:
            start = perf_counter()
        try:
            if self._trace.noop_spans():
                self._do_reevaluate_affected(*args, **kwargs)
                return
            with self._trace.span("reevaluate"):
                self._do_reevaluate_affected(*args, **kwargs)
        finally:
            if timed:
                if profiler.in_ingest:
                    profiler.acc_reev_in += perf_counter() - start
                else:
                    profiler.acc_reev_out += perf_counter() - start

    def _do_reevaluate_affected(
        self,
        oid: ObjectId,
        position: Point,
        previous: Point | None,
        probe,
        probed: dict[ObjectId, Point],
        previous_positions: dict[ObjectId, Point],
        shrunk_only: dict[ObjectId, Rect],
        constrain,
        outcome: UpdateOutcome,
        time: float,
    ) -> None:
        """Reevaluate every query affected by one position report."""
        # A planned tick already gathered this report's candidate set
        # and batched its range-membership flips in one tick-wide
        # dispatch; consume the verdicts when they are still valid (the
        # plan validates position identity and cell generations).
        plan = self._tick_plan
        planned = (
            plan.take_affected(oid, position, previous, self.query_index)
            if plan is not None
            else None
        )
        if planned is not None:
            ordered, hits, kverdicts = planned
        else:
            ordered = self.query_index.candidate_queries_ordered(
                position, previous
            )
            hits = kverdicts = None
        outcome.queries_checked += len(ordered)
        self.stats.queries_checked += len(ordered)
        self._m_checked.observe(len(ordered))
        # Delta-driven consume: plain range queries take their
        # membership-flip verdicts and plain kNN queries their
        # quarantine gates from the tick plan's fused dispatches — a
        # merge walk over ``ordered`` (``hits``/``kverdicts`` preserve
        # candidate order), so untouched members cost one pointer
        # comparison.  Unplanned, range flips come from one batch pass
        # over the rect columns (``Kernels.range_affected`` is exactly
        # ``RangeQuery.is_affected_by``) and everything else stays
        # scalar.  ``type`` not ``isinstance``: a subclass may override
        # ``is_affected_by``.
        affected: list | None = None
        if hits is not None:
            affected = []
            ri = 0
            rn = len(hits)
            ki = 0
            kn = len(kverdicts)
            for q in ordered:
                tq = type(q)
                if tq is RangeQuery:
                    if ri < rn and hits[ri][0] is q:
                        affected.append(hits[ri])
                        ri += 1
                elif tq is KNNQuery:
                    if ki < kn and kverdicts[ki][0] is q:
                        _, hit, gates, planned_radius = kverdicts[ki]
                        ki += 1
                        if planned_radius != q.radius:
                            # An earlier report's reevaluation moved
                            # this quarantine mid-tick (no generation
                            # bump) — the planned gates are stale.
                            if q.is_affected_by(position, previous):
                                affected.append((q, None))
                        elif hit:
                            affected.append((q, gates))
                    elif q.is_affected_by(position, previous):
                        affected.append((q, None))
                elif q.is_affected_by(position, previous):
                    affected.append((q, None))
        if affected is None:
            range_rows = [
                i for i, q in enumerate(ordered) if type(q) is RangeQuery
            ]
            flags: list[bool | None] = [None] * len(ordered)
            if len(range_rows) >= self.kernels.min_rows:
                rects = [ordered[i].rect for i in range_rows]
                mask = self.kernels.range_affected(
                    [r.min_x for r in rects],
                    [r.min_y for r in rects],
                    [r.max_x for r in rects],
                    [r.max_y for r in rects],
                    position,
                    previous,
                )
                for i, flag in zip(range_rows, mask):
                    flags[i] = flag
            affected = [
                (q, None)
                for i, q in enumerate(ordered)
                if (
                    flags[i]
                    if flags[i] is not None
                    else q.is_affected_by(position, previous)
                )
            ]
        if affected and self._pending_pointify is not None:
            # Flush the deferred pointify before any reevaluation that
            # can read the index (kNN evaluation, extension hooks).
            # Plain range flips never touch the index, so a pure-range
            # affected set leaves the entry for the reinstall.
            for query, _ in affected:
                if type(query) is not RangeQuery:
                    p_oid, p_pos = self._pending_pointify
                    self._pending_pointify = None
                    self.object_index.update(p_oid, Rect.from_point(p_pos))
                    break
        profiler = self.profiler
        profile_on = profiler.enabled
        if profile_on:
            # Hotspot attribution: the report's object, its landing cell
            # (candidate rows stand in for kernel rows), and — below —
            # per-query reevaluation seconds.
            profiler.note_report(
                oid, self.query_index.cell_of(position),
                len(ordered), len(affected),
            )
        events = self.events
        for query, inside in affected:
            started = perf_counter() if profile_on else 0.0
            before = _snapshot(query)
            probes_before = set(probed)
            parent_cause = self._cause
            if events.enabled:
                # Emitted *before* the work so probes and shrinks issued
                # inside the reevaluation chain to it, completing the
                # update → query → probe → result-change causal path.
                self._cause = events.emit(
                    "reevaluation", cause=parent_cause,
                    query=query.query_id, oid=oid,
                )
            try:
                if hasattr(query, "reevaluate_for"):
                    reevaluation = query.reevaluate_for(
                        oid, position, self.object_index, probe, constrain
                    )
                elif isinstance(query, RangeQuery):
                    reevaluation = reevaluate_range(
                        query, oid, position, inside=inside
                    )
                else:
                    reevaluation = reevaluate_knn(
                        query,
                        oid,
                        position,
                        previous,
                        self.object_index,
                        probe,
                        self.object_index.rect_of,
                        constrain,
                        kernels=self.kernels,
                        gates=inside,
                    )
                fresh = {
                    target: pos
                    for target, pos in probed.items()
                    if target not in probes_before
                }
                previous_positions.update(self._apply_probes(fresh, time))
                shrunk_only.update(
                    self._apply_shrinks(reevaluation.shrunk, probed)
                )
                if reevaluation.quarantine_changed:
                    self.query_index.update(query)
                after = _snapshot(query)
                degraded_members: tuple = ()
                if self._degraded or self._failed_probes:
                    # Flag result members whose membership rests on a
                    # stale position: consumers see "possibly in the
                    # result", never a silently wrong answer.
                    unreachable = self._failed_probes | set(self._degraded)
                    degraded_members = tuple(sorted(
                        (o for o in query.results if o in unreachable),
                        key=repr,
                    ))
                outcome.changes.append(
                    ResultChange(
                        query.query_id, before, after,
                        degraded=degraded_members,
                    )
                )
                if before != after:
                    self.stats.result_changes += 1
                    if events.enabled:
                        events.emit(
                            "result_change", cause=self._cause,
                            query=query.query_id,
                            case=getattr(reevaluation, "case", ""),
                            before=_event_snapshot(before),
                            after=_event_snapshot(after),
                            **(
                                {"degraded": list(degraded_members)}
                                if degraded_members else {}
                            ),
                        )
                self.stats.queries_reevaluated += 1
            finally:
                self._cause = parent_cause
                if profile_on:
                    profiler.note_query(
                        query.query_id, perf_counter() - started
                    )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _make_probe(self, probed: dict[ObjectId, Point], time: float):
        def probe(target: ObjectId) -> Point:
            position = self._attempt_probe(target)
            if position is None:
                # Unreachable past the retry budget: answer with the last
                # report so evaluation can finish, remember the failure so
                # ``_apply_probes`` widens the object's region to the
                # reachability circle instead of pointifying a stale fix.
                self._failed_probes.add(target)
                position = self._objects[target].p_lst
            else:
                self._failed_probes.discard(target)
                self.stats.probes += 1
                self._m_probes.inc()
                if self.events.enabled:
                    # cause is read at call time: probes issued during a
                    # query's reevaluation chain to that reevaluation
                    # event.
                    self.events.emit(
                        "probe", cause=self._cause, oid=target,
                        pos=(position.x, position.y),
                    )
            probed[target] = position
            return position

        return probe

    def _attempt_probe(self, target: ObjectId) -> Point | None:
        """One probe with bounded retry, backoff, and the per-op budget.

        Returns the answered position, or ``None`` when every attempt
        timed out or the budget ran dry — the caller degrades the object.
        """
        config = self.config
        for attempt in range(config.probe_retries + 1):
            if (
                config.probe_budget is not None
                and self._probe_spent >= config.probe_budget
            ):
                self.stats.probe_timeouts += 1
                self._m_probe_timeouts.inc()
                if self.events.enabled:
                    self.events.emit(
                        "probe_timeout", cause=self._cause, oid=target,
                        attempt=attempt, reason="budget",
                    )
                return None
            if attempt:
                self.stats.probe_retries += 1
                self._m_probe_retries.inc()
                if self.events.enabled:
                    self.events.emit(
                        "probe_retry", cause=self._cause, oid=target,
                        attempt=attempt,
                        backoff=config.probe_timeout * (2 ** (attempt - 1)),
                    )
            self._probe_spent += 1
            try:
                return self._oracle(target)
            except ProbeTimeout:
                self.stats.probe_timeouts += 1
                self._m_probe_timeouts.inc()
                if self.events.enabled:
                    self.events.emit(
                        "probe_timeout", cause=self._cause, oid=target,
                        attempt=attempt, reason="timeout",
                    )
        return None

    def _make_constrain(self, time: float):
        if self._reachability is None:
            return None

        def constrain(target: ObjectId, region: Rect) -> Rect:
            state = self._objects[target]
            return self._reachability.constrain(
                region, state.p_lst, state.last_update_time, time
            )

        return constrain

    def _apply_probes(
        self, probed: dict[ObjectId, Point], time: float
    ) -> dict[ObjectId, Point]:
        """Collapse probed objects' index entries to their exact points.

        Returns each probed object's *previous* reported position (needed
        as the movement direction for the weighted-perimeter objective).
        """
        # Called once per reevaluated query (usually with an empty dict);
        # skip the no-op span scaffolding when tracing is off.
        if self._trace.noop_spans():
            return self._do_apply_probes(probed, time)
        with self._trace.span("probe"):
            return self._do_apply_probes(probed, time)

    def _do_apply_probes(
        self, probed: dict[ObjectId, Point], time: float
    ) -> dict[ObjectId, Point]:
        previous_positions = {}
        for target, position in probed.items():
            state = self._objects[target]
            previous_positions[target] = state.p_lst
            if target in self._failed_probes:
                # No fresh fix: keep the stale report and its time (the
                # silence keeps growing) and widen the installed region
                # to the reachability circle — conservative, never a
                # stale point the object may have left.
                self._enter_degraded(target, time)
                continue
            if self._degraded and target in self._degraded:
                self._exit_degraded(target, time)
            state.p_lst = position
            self.positions.set(target, position)
            state.last_update_time = time
            self.object_index.update(target, Rect.from_point(position))
        return previous_positions

    def _apply_shrinks(
        self, shrunk: dict[ObjectId, Rect], probed: dict[ObjectId, Point]
    ) -> dict[ObjectId, Rect]:
        """Install reachability-tightened safe regions (Section 6.1).

        Objects that were eventually probed anyway are skipped — the probe
        supersedes the shrink.  Each installed shrink is pushed to the
        client over the downlink and counted in ``safe_region_pushes``.
        With ``reachability_pushes`` disabled (the paper's semantics),
        nothing is installed and constrained decisions may go stale.
        """
        if not self.config.reachability_pushes:
            return {}
        # Same per-reevaluation cadence as ``_apply_probes``: skip the
        # no-op span scaffolding when tracing is off.
        if self._trace.noop_spans():
            return self._do_apply_shrinks(shrunk, probed)
        with self._trace.span("shrink"):
            return self._do_apply_shrinks(shrunk, probed)

    def _do_apply_shrinks(
        self, shrunk: dict[ObjectId, Rect], probed: dict[ObjectId, Point]
    ) -> dict[ObjectId, Rect]:
        applied = {}
        for target, region in shrunk.items():
            if target in probed:
                continue
            state = self._objects[target]
            state.safe_region = region
            state.sr_stamp = None  # region no longer the full cell
            state.sr_cert = None  # nor the cell-certified region
            self.object_index.update(target, region)
            self.stats.safe_region_pushes += 1
            self._m_pushes.inc()
            if self.events.enabled:
                self.events.emit(
                    "shrink_push", cause=self._cause, oid=target,
                    region=(region.min_x, region.min_y,
                            region.max_x, region.max_y),
                    pos=(state.p_lst.x, state.p_lst.y),
                )
            applied[target] = region
        return applied

    def _advance_clock(self, oid: ObjectId, time: float) -> float:
        """Clamp ``time`` to the server's monotonic clock.

        A reordered channel can deliver an older report after a newer
        one; accepting its earlier timestamp would run the event log and
        the per-object ``last_update_time`` backwards (corrupting
        timeline ordering and the reachability silence computation), so
        the regression is counted, evented, and clamped.
        """
        if time < self._clock:
            self.stats.time_regressions += 1
            self._m_time_regressions.inc()
            if self.events.enabled:
                self.events.set_time(self._clock)
                self.events.emit(
                    "time_regression", oid=oid, got=time, clock=self._clock
                )
            return self._clock
        self._clock = time
        return time

    def _degraded_region(self, state: ObjectState, now: float) -> Rect:
        """The widest region the object can occupy while unreachable.

        The §6.1 reachability circle around the last report, grown at the
        maximum speed for the silence duration, clipped to the workspace;
        without any speed bound the whole workspace is the only
        conservative answer.
        """
        model = self._degraded_model
        if model is None:
            return self.config.space
        bbox = model.circle(
            state.p_lst, state.last_update_time, now
        ).bounding_rect()
        clipped = bbox.intersection(self.config.space)
        if clipped is None:  # p_lst outside the workspace: clock skew
            return Rect.from_point(self.config.space.clamp_point(state.p_lst))
        return clipped

    def _refresh_degraded(self, now: float) -> None:
        """Re-widen every degraded region to the current silence duration.

        The reachability circle grows while an object stays unreachable;
        a region frozen at degradation time would eventually stop
        containing the object and silently poison distance bounds.  Run
        at the top of every update/registration — one dict check when no
        object is degraded.
        """
        if not self._degraded:
            return
        for oid in self._degraded:
            state = self._objects[oid]
            region = self._degraded_region(state, now)
            if region != state.safe_region:
                state.safe_region = region
                self.object_index.update(oid, region)

    def _enter_degraded(self, oid: ObjectId, now: float) -> None:
        """Mark ``oid`` unreachable and install its widened region."""
        state = self._objects[oid]
        first = oid not in self._degraded
        if first:
            self._degraded[oid] = now
            self.stats.degraded_entries += 1
            self._g_degraded.set(len(self._degraded))
        region = self._degraded_region(state, now)
        state.safe_region = region
        state.sr_stamp = None
        state.sr_cert = None
        self.object_index.update(oid, region)
        if self.events.enabled:
            if first:
                self.events.emit(
                    "degraded_enter", cause=self._cause, oid=oid,
                    silent_since=state.last_update_time,
                )
            # ``degraded`` marks the install as a server-side widening
            # (no client push) for the diagnose containment exemption.
            self.events.emit(
                "safe_region", cause=self._cause, oid=oid,
                region=(region.min_x, region.min_y,
                        region.max_x, region.max_y),
                pos=(state.p_lst.x, state.p_lst.y),
                degraded=True,
            )

    def _exit_degraded(self, oid: ObjectId, now: float) -> None:
        """A fresh position arrived for a degraded object."""
        entered = self._degraded.pop(oid, None)
        if entered is None:
            return
        self._g_degraded.set(len(self._degraded))
        if self.events.enabled:
            self.events.emit(
                "degraded_exit", cause=self._cause, oid=oid,
                duration=now - entered,
            )

    def _install_safe_region(self, oid: ObjectId, region: Rect) -> None:
        state = self._objects[oid]
        state.safe_region = region
        self.object_index.update(oid, region)
        if self.events.enabled:
            self.events.emit(
                "safe_region", cause=self._cause, oid=oid,
                region=(region.min_x, region.min_y,
                        region.max_x, region.max_y),
                pos=(state.p_lst.x, state.p_lst.y),
            )

    def _objective(self, position: Point, previous: Point | None):
        return weighted_perimeter_objective(
            position, previous, self.config.steadiness
        )

    def _full_safe_region(
        self,
        oid: ObjectId,
        position: Point,
        previous: Point | None,
    ) -> Rect:
        """Recompute an object's safe region against all relevant queries.

        As a side effect, refreshes the object's lazy-recomputation stamp:
        set when the cell is query-free (the result is then certifiably
        the full cell rectangle), cleared otherwise.  Callers always
        install the returned region, keeping the stamp's certificate in
        step with the installed state.
        """
        profiler = self.profiler
        timed = profiler.enabled and profiler.tick_open
        if timed:
            start = perf_counter()
        try:
            if self._trace.noop_spans():
                return self._compute_full_safe_region(oid, position, previous)
            with self._trace.span("safe_region"):
                return self._compute_full_safe_region(oid, position, previous)
        finally:
            if timed:
                profiler.acc_sr += perf_counter() - start

    def _compute_full_safe_region(
        self,
        oid: ObjectId,
        position: Point,
        previous: Point | None,
    ) -> Rect:
        grid = self.query_index
        state = self._objects[oid]
        if position is state.p_lst:
            # The stored position's cell is resident in the store.
            cell_id = self.positions.cell_of(oid)
            if cell_id is None:
                cell_id = grid.cell_of(position)
        else:
            cell_id = grid.cell_of(position)
        cell = grid.cell_rect(cell_id)
        relevant = grid.relevant_queries(cell_id)
        if self._caches_on and not relevant:
            state.sr_stamp = (cell_id, grid.cell_generation(cell_id))
            state.sr_cert = None
        else:
            state.sr_stamp = None
        # A planned tick may carry this report's Section 5.3
        # staircase union, computed in the tick-wide corner dispatch;
        # ``compute_safe_region`` double-checks the obstacle count
        # before trusting it.
        plan = self._tick_plan
        batch_region = (
            plan.take_range_region(oid, position, cell_id)
            if plan is not None and plan.regions
            else None
        )
        region = compute_safe_region(
            oid,
            position,
            relevant,
            cell,
            self.object_index.rect_of,
            self._objective(position, previous),
            use_batch=self.config.batch_range_regions,
            kernels=self.kernels,
            batch_region=batch_region,
        )
        if state.sr_stamp is None:
            # The delta certificate is a policy, not a cache: it applies
            # in cached and uncached runs alike (cache transparency —
            # both runs must take identical decisions).  Each kNN entry
            # records the *clearance* — the region's minimum distance to
            # the quarantine centre — so the certificate survives radius
            # growth up to the region's slack, not just shrinks.  An
            # insider (region inside the quarantine circle) has
            # clearance below the radius and is rejected by the same
            # comparison that guards against growth.
            cert = None
            radii = []
            for q in relevant:
                tq = type(q)
                if tq is RangeQuery:
                    continue  # immutable quarantine rect
                if tq is KNNQuery:
                    d = region.min_dist_to_point(q.center)
                    if (
                        d <= 0.0
                        or q.radius > d
                        or q.quarantine_contains(position)
                    ):
                        # Quarantine holding the object or the region
                        # (rank changes escape the clearance check), or
                        # a degenerate zero-clearance region: no
                        # certificate.
                        break
                    radii.append((q, d))
                    continue
                break  # custom query type: no certificate
            else:
                cert = (
                    cell_id, grid.cell_generation(cell_id), tuple(radii)
                )
            state.sr_cert = cert
        return region


def _snapshot(query: Query):
    return query.result_snapshot()


def _event_snapshot(snapshot):
    """A result snapshot as a JSON-serialisable, deterministic value."""
    if isinstance(snapshot, (frozenset, set)):
        try:
            return sorted(snapshot)
        except TypeError:
            return sorted(snapshot, key=repr)
    if isinstance(snapshot, tuple):
        return list(snapshot)
    return snapshot
