"""Continuous spatial queries and their quarantine areas (Section 3.3).

The server stores, for each registered query, (1) its parameters, (2) the
current result set, and (3) the *quarantine area*: a region such that while
every result object stays inside it and every non-result object stays
outside it, the result cannot change.  For a range query the quarantine
area is the query rectangle itself; for a kNN query it is a circle centred
at the query point whose radius lies strictly between ``Delta(q, o_k.sr)``
and ``delta(q, o_{k+1}.sr)``.
"""

from __future__ import annotations

import itertools
from typing import Hashable

from repro.geometry.circle import Circle
from repro.geometry.point import Point
from repro.geometry.rect import Rect

ObjectId = Hashable

_query_counter = itertools.count(1)


class Query:
    """Base class for continuous queries monitored by the server.

    Queries use identity semantics (each registered query is a distinct
    monitoring session, even if the parameters coincide), so the default
    ``hash`` / ``eq`` are intentionally kept.
    """

    __slots__ = ("query_id",)

    def __init__(self, query_id: str | None = None) -> None:
        self.query_id = query_id or f"q{next(_query_counter)}"

    # -- grid-index interface -------------------------------------------------
    def quarantine_bounding_rect(self) -> Rect:
        """Bounding rectangle of the quarantine area."""
        raise NotImplementedError

    def quarantine_overlaps(self, rect: Rect) -> bool:
        """Whether the quarantine area intersects ``rect``."""
        raise NotImplementedError

    def quarantine_contains(self, p: Point) -> bool:
        """Whether ``p`` lies inside the quarantine area."""
        raise NotImplementedError

    # -- update filtering (Section 3.3) ---------------------------------------
    def is_affected_by(self, p: Point, p_lst: Point | None) -> bool:
        """Whether an update moving from ``p_lst`` to ``p`` may change results.

        ``p_lst`` is ``None`` for an object the server sees for the first
        time (treated as coming from outside every quarantine area).
        """
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover — debugging aid
        return f"{type(self).__name__}({self.query_id})"


class RangeQuery(Query):
    """A continuous range query: report all objects inside ``rect``."""

    __slots__ = ("rect", "results", "_clip_memo")

    def __init__(self, rect: Rect, query_id: str | None = None) -> None:
        super().__init__(query_id)
        self.rect = rect
        #: Current result set, maintained by the server.
        self.results: set[ObjectId] = set()
        #: Memoised ``rect.intersection(cell)`` per cell rectangle.  The
        #: query rectangle is immutable, so entries never invalidate; the
        #: grid hands out interned cell rects, keeping the memo tiny.
        self._clip_memo: dict[Rect, Rect | None] = {}

    def clipped_to(self, cell: Rect) -> Rect | None:
        """``rect ∩ cell``, memoised per cell (hot in safe-region computation)."""
        try:
            return self._clip_memo[cell]
        except KeyError:
            clipped = self._clip_memo[cell] = self.rect.intersection(cell)
            return clipped

    def quarantine_bounding_rect(self) -> Rect:
        return self.rect

    def quarantine_overlaps(self, rect: Rect) -> bool:
        return self.rect.intersects(rect)

    def quarantine_contains(self, p: Point) -> bool:
        return self.rect.contains_point(p)

    def is_affected_by(self, p: Point, p_lst: Point | None) -> bool:
        inside_new = self.rect.contains_point(p)
        inside_old = p_lst is not None and self.rect.contains_point(p_lst)
        return inside_new != inside_old

    def result_snapshot(self) -> frozenset[ObjectId]:
        """Immutable copy of the current result set."""
        return frozenset(self.results)


class KNNQuery(Query):
    """A continuous k-nearest-neighbour query anchored at ``center``.

    ``order_sensitive`` queries treat ``[a, b]`` and ``[b, a]`` as different
    results; they are the default in the paper's workload (Section 7.1).
    ``results`` is maintained in ascending distance order for the
    order-sensitive variant; for the order-insensitive variant the order in
    the list is incidental and comparisons use sets.
    """

    __slots__ = (
        "center", "k", "order_sensitive", "results", "_radius",
        "_circle_memo", "_brect_memo",
    )

    def __init__(
        self,
        center: Point,
        k: int,
        order_sensitive: bool = True,
        query_id: str | None = None,
    ) -> None:
        if k < 1:
            raise ValueError(f"k must be positive, got {k}")
        super().__init__(query_id)
        self.center = center
        self.k = k
        self.order_sensitive = order_sensitive
        #: Current result, nearest first; maintained by the server.
        self.results: list[ObjectId] = []
        #: Quarantine-circle radius; 0 until the query is first evaluated.
        self._radius: float = 0.0
        self._circle_memo: Circle | None = None
        self._brect_memo: Rect | None = None

    @property
    def radius(self) -> float:
        """Quarantine-circle radius; assignment invalidates the memos."""
        return self._radius

    @radius.setter
    def radius(self, value: float) -> None:
        if value != self._radius:
            self._radius = value
            self._circle_memo = None
            self._brect_memo = None

    def quarantine_circle(self) -> Circle:
        """The quarantine area (a circle centred at the query point).

        The circle (and its bounding rectangle below) is memoised until the
        radius changes: the grid index probes it once per covered cell and
        every ``is_affected_by`` check needs it twice.
        """
        circle = self._circle_memo
        if circle is None:
            circle = self._circle_memo = Circle(self.center, self._radius)
        return circle

    def quarantine_bounding_rect(self) -> Rect:
        brect = self._brect_memo
        if brect is None:
            brect = self._brect_memo = self.quarantine_circle().bounding_rect()
        return brect

    def quarantine_overlaps(self, rect: Rect) -> bool:
        return self.quarantine_circle().intersects_rect(rect)

    def quarantine_contains(self, p: Point) -> bool:
        return self.quarantine_circle().contains_point(p)

    def is_affected_by(self, p: Point, p_lst: Point | None) -> bool:
        inside_new = self.quarantine_contains(p)
        inside_old = p_lst is not None and self.quarantine_contains(p_lst)
        if self.order_sensitive:
            # Order may change from movement *within* the quarantine area:
            # unaffected only when both endpoints lie outside (Section 3.3).
            return inside_new or inside_old
        return inside_new != inside_old

    def result_snapshot(self) -> tuple[ObjectId, ...] | frozenset[ObjectId]:
        """Immutable copy of the current result.

        A tuple (ordered) for order-sensitive queries, a frozenset for
        order-insensitive ones — matching how equality of results is
        defined for each variant.
        """
        if self.order_sensitive:
            return tuple(self.results)
        return frozenset(self.results)
