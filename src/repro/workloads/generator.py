"""The paper's mixed query workload (Section 7.1).

``W`` queries, half continuous range queries and half order-sensitive kNN
queries.  Range rectangles are squares with side length uniform in
``[0.5 q_len, 1.5 q_len]``; kNN query points are uniform in the workspace
with ``k`` uniform in ``{1, ..., k_max}``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.queries import KNNQuery, Query, RangeQuery
from repro.geometry.point import Point
from repro.geometry.rect import Rect

UNIT_SPACE = Rect(0.0, 0.0, 1.0, 1.0)


@dataclass(frozen=True, slots=True)
class WorkloadConfig:
    """Parameters of the query mix (defaults: Table 7.1)."""

    num_queries: int = 1000
    q_len: float = 0.005
    k_max: int = 10
    order_sensitive: bool = True
    range_fraction: float = 0.5
    space: Rect = UNIT_SPACE

    def __post_init__(self) -> None:
        if self.num_queries < 0:
            raise ValueError("num_queries must be non-negative")
        if self.q_len <= 0:
            raise ValueError("q_len must be positive")
        if self.k_max < 1:
            raise ValueError("k_max must be at least 1")
        if not 0.0 <= self.range_fraction <= 1.0:
            raise ValueError("range_fraction must be within [0, 1]")


def generate_queries(config: WorkloadConfig, seed: int = 0) -> list[Query]:
    """Generate the query workload deterministically from ``seed``."""
    rng = np.random.default_rng(seed)
    space = config.space
    num_range = round(config.num_queries * config.range_fraction)
    queries: list[Query] = []

    for i in range(num_range):
        side = rng.uniform(0.5 * config.q_len, 1.5 * config.q_len)
        side = min(side, space.width, space.height)
        x = rng.uniform(space.min_x, space.max_x - side)
        y = rng.uniform(space.min_y, space.max_y - side)
        queries.append(
            RangeQuery(Rect(x, y, x + side, y + side), query_id=f"range-{i}")
        )

    for i in range(config.num_queries - num_range):
        center = Point(
            rng.uniform(space.min_x, space.max_x),
            rng.uniform(space.min_y, space.max_y),
        )
        k = int(rng.integers(1, config.k_max + 1))
        queries.append(
            KNNQuery(
                center,
                k,
                order_sensitive=config.order_sensitive,
                query_id=f"knn-{i}",
            )
        )
    return queries
