"""Query workload generation (Section 7.1)."""

from repro.workloads.generator import WorkloadConfig, generate_queries

__all__ = ["WorkloadConfig", "generate_queries"]
