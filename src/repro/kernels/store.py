"""Columnar position store: struct-of-arrays mirror of object positions.

``PositionStore`` keeps every monitored object's last reported position
in two parallel ``float64`` columns plus an id↔row map, maintained
incrementally by ``DatabaseServer`` on register / update / deregister.
The columns are backend-neutral (``array('d')`` from the stdlib);
NumPy consumers view them zero-copy via ``np.frombuffer`` when present.

Deletions swap the last row into the vacated slot, so the columns stay
dense and row order is a function of the exact register/deregister
history — deterministic, but *not* insertion order.  Kernels that need
a deterministic result order therefore sort by object id (or by
``(distance, row)`` with an id-stable candidate set), never by raw row.

Cell residency (docs/PERFORMANCE.md "Resident columns"): once bound to
a grid geometry via :meth:`PositionStore.bind_grid`, the store also
buckets every object into its grid cell — per-cell dense x/y/id
columns maintained by the same swap-remove discipline.  The resident
cell of an object is exactly ``GridIndex.cell_of`` of its stored
position (identical truncate-and-clamp arithmetic), so hot paths read
``cell_of(oid)`` as one dict probe instead of recomputing the cell
from coordinates.  Each bucket carries a membership *generation*,
bumped when an object enters or leaves the cell (in-place moves within
a cell do not bump it); a swap-remove that backfills a vacated row
counts on ``grid.cells.compactions``.
"""

from __future__ import annotations

from array import array
from typing import Iterator, Sequence

from repro.obs import NULL_REGISTRY

try:  # pragma: no cover — container always ships numpy
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None


class CellBucket:
    """One grid cell's dense resident columns (see ``PositionStore``)."""

    __slots__ = ("xs", "ys", "ids", "rows", "generation")

    def __init__(self) -> None:
        self.xs = array("d")
        self.ys = array("d")
        self.ids: list = []
        #: id -> row within this bucket.
        self.rows: dict = {}
        #: Membership generation: bumped on every enter/leave.
        self.generation = 0

    def __len__(self) -> int:
        return len(self.ids)


class PositionStore:
    """Dense x/y columns with id↔row bookkeeping."""

    __slots__ = (
        "_xs", "_ys", "_ids", "_row_of",
        "_grid", "_cells", "_cell_id", "_m_compactions",
    )

    def __init__(self) -> None:
        self._xs = array("d")
        self._ys = array("d")
        self._ids: list = []
        self._row_of: dict = {}
        #: ``(min_x, min_y, cell_w, cell_h, m - 1)`` once bound, else None.
        self._grid: tuple | None = None
        #: cell -> :class:`CellBucket` (dense; absent cells are empty).
        self._cells: dict = {}
        #: oid -> resident cell id.
        self._cell_id: dict = {}
        self._m_compactions = NULL_REGISTRY.counter("grid.cells.compactions")

    def __len__(self) -> int:
        return len(self._ids)

    def __contains__(self, oid) -> bool:
        return oid in self._row_of

    def __iter__(self) -> Iterator:
        return iter(self._ids)

    # ------------------------------------------------------------------
    # Cell residency
    # ------------------------------------------------------------------
    def bind_grid(
        self,
        min_x: float,
        min_y: float,
        cell_w: float,
        cell_h: float,
        m: int,
        metrics=None,
    ) -> None:
        """Enable cell residency over an ``m x m`` grid geometry.

        The arithmetic mirrors ``GridIndex.cell_of`` exactly (truncate,
        then clamp to ``[0, m - 1]``), so the resident cell of every
        object equals the grid's cell of its stored position.  Already-
        stored rows are re-bucketed immediately.  Binding is idempotent
        in effect: rebinding with a different geometry rebuckets.
        """
        if m < 1:
            raise ValueError("grid resolution must be positive")
        registry = NULL_REGISTRY if metrics is None else metrics
        self._m_compactions = registry.counter("grid.cells.compactions")
        self._grid = (min_x, min_y, cell_w, cell_h, m - 1)
        self._cells = {}
        self._cell_id = {}
        for row, oid in enumerate(self._ids):
            self._enter_cell(
                oid, self._cell_for(self._xs[row], self._ys[row]),
                self._xs[row], self._ys[row],
            )

    def _cell_for(self, x: float, y: float) -> tuple:
        min_x, min_y, cell_w, cell_h, hi = self._grid
        i = int((x - min_x) / cell_w)
        j = int((y - min_y) / cell_h)
        if i < 0:
            i = 0
        elif i > hi:
            i = hi
        if j < 0:
            j = 0
        elif j > hi:
            j = hi
        return (i, j)

    def _enter_cell(self, oid, cell: tuple, x: float, y: float) -> None:
        self._cell_id[oid] = cell
        bucket = self._cells.get(cell)
        if bucket is None:
            bucket = self._cells[cell] = CellBucket()
        bucket.rows[oid] = len(bucket.ids)
        bucket.ids.append(oid)
        bucket.xs.append(x)
        bucket.ys.append(y)
        bucket.generation += 1

    def _leave_cell(self, oid, cell: tuple) -> None:
        bucket = self._cells[cell]
        row = bucket.rows.pop(oid)
        last = len(bucket.ids) - 1
        if row != last:
            moved = bucket.ids[last]
            bucket.ids[row] = moved
            bucket.xs[row] = bucket.xs[last]
            bucket.ys[row] = bucket.ys[last]
            bucket.rows[moved] = row
            self._m_compactions.inc()
        del bucket.ids[last]
        del bucket.xs[last]
        del bucket.ys[last]
        bucket.generation += 1
        if not bucket.ids:
            del self._cells[cell]

    def cell_of(self, oid):
        """Resident cell of ``oid`` (``GridIndex.cell_of`` of its stored
        position), or ``None`` when absent or the store is unbound."""
        return self._cell_id.get(oid)

    def cell_generation(self, cell: tuple) -> int:
        """Membership generation of ``cell``'s bucket (0 until first used)."""
        bucket = self._cells.get(cell)
        return bucket.generation if bucket is not None else 0

    def cell_ids(self, cell: tuple) -> Sequence:
        """Resident object ids of ``cell`` in row order (do not mutate)."""
        bucket = self._cells.get(cell)
        return bucket.ids if bucket is not None else ()

    def cell_columns(self, cell: tuple):
        """``(xs, ys, ids)`` resident columns of ``cell``, zero-copy.

        NumPy views over the live bucket buffers when available (consume
        before the next mutation), stdlib arrays otherwise; empty cells
        return empty columns.
        """
        bucket = self._cells.get(cell)
        if bucket is None:
            return array("d"), array("d"), []
        if _np is not None and bucket.ids:
            return (
                _np.frombuffer(bucket.xs, dtype=_np.float64),
                _np.frombuffer(bucket.ys, dtype=_np.float64),
                bucket.ids,
            )
        return bucket.xs, bucket.ys, bucket.ids

    def resident_cells(self) -> Sequence:
        """The non-empty cells (arbitrary order — sort before iterating
        when determinism matters)."""
        return list(self._cells)

    def cell_occupancy(self) -> dict:
        """Resident object count per cell — the occupancy-skew input
        for profiling and the shard-rebalance signal."""
        return {
            cell: len(bucket.ids) for cell, bucket in self._cells.items()
        }

    def set(self, oid, p) -> None:
        """Insert ``oid`` at ``p``, or move it if already stored."""
        x = p.x
        y = p.y
        row = self._row_of.get(oid)
        if row is None:
            self._row_of[oid] = len(self._ids)
            self._ids.append(oid)
            self._xs.append(x)
            self._ys.append(y)
        else:
            self._xs[row] = x
            self._ys[row] = y
        if self._grid is not None:
            cell = self._cell_for(x, y)
            held = self._cell_id.get(oid)
            if held == cell:
                bucket = self._cells[cell]
                brow = bucket.rows[oid]
                bucket.xs[brow] = x
                bucket.ys[brow] = y
            else:
                if held is not None:
                    self._leave_cell(oid, held)
                self._enter_cell(oid, cell, x, y)

    def move(self, oid, x, y, cell) -> None:
        """:meth:`set` with the target cell precomputed by the caller.

        ``cell`` must equal the bound grid's cell of ``(x, y)`` — bulk
        callers derive it columnarly once per tick (``Kernels.cells_of``
        mirrors ``GridIndex.cell_of``), which skips the per-report
        ``_cell_for`` recomputation here.
        """
        row = self._row_of.get(oid)
        if row is None:
            self._row_of[oid] = len(self._ids)
            self._ids.append(oid)
            self._xs.append(x)
            self._ys.append(y)
        else:
            self._xs[row] = x
            self._ys[row] = y
        if self._grid is None:
            return
        held = self._cell_id.get(oid)
        if held == cell:
            bucket = self._cells[cell]
            brow = bucket.rows[oid]
            bucket.xs[brow] = x
            bucket.ys[brow] = y
        else:
            if held is not None:
                self._leave_cell(oid, held)
            self._enter_cell(oid, cell, x, y)

    def discard(self, oid) -> None:
        """Remove ``oid`` (no-op if absent) via swap-remove."""
        row = self._row_of.pop(oid, None)
        if row is None:
            return
        last = len(self._ids) - 1
        if row != last:
            moved = self._ids[last]
            self._ids[row] = moved
            self._xs[row] = self._xs[last]
            self._ys[row] = self._ys[last]
            self._row_of[moved] = row
        del self._ids[last]
        del self._xs[last]
        del self._ys[last]
        held = self._cell_id.pop(oid, None)
        if held is not None:
            self._leave_cell(oid, held)

    def get(self, oid):
        """The stored ``(x, y)`` of ``oid``, or ``None`` if absent."""
        row = self._row_of.get(oid)
        if row is None:
            return None
        return (self._xs[row], self._ys[row])

    @property
    def ids(self) -> Sequence:
        """Object ids in row order (do not mutate)."""
        return self._ids

    def columns(self):
        """``(xs, ys)`` columns in row order.

        NumPy views when available (zero-copy over the live buffers —
        consume before the next mutation), stdlib arrays otherwise.
        """
        if _np is not None and len(self._ids) > 0:
            return (
                _np.frombuffer(self._xs, dtype=_np.float64),
                _np.frombuffer(self._ys, dtype=_np.float64),
            )
        return self._xs, self._ys

    def approximate_size_bytes(self) -> int:
        """Rough resident size of the columns and maps."""
        n = len(self._ids)
        # Two float64 columns, the id list, and the id→row dict entries.
        total = 16 * n + 8 * n + 72 * n
        if self._grid is not None:
            # Cell residency doubles the columns (per-cell mirrors) and
            # adds the id→cell and per-bucket row maps.
            total += 16 * n + 8 * n + 72 * n + 72 * n
            total += 64 * len(self._cells)
        return total


class ColumnBuffer:
    """Append-only ``float64`` column set for tick-wide kernel gathers.

    The planner accumulates one row per work item across a whole tick —
    each row spread over ``width`` parallel columns — then hands the
    columns straight to a kernel dispatch.  Same storage discipline as
    ``PositionStore`` (stdlib ``array('d')``, zero-copy NumPy views) so
    both kernel backends consume it without conversion.  ``clear()``
    keeps the allocated buffers for reuse across ticks.
    """

    __slots__ = ("_cols",)

    def __init__(self, width: int) -> None:
        if width < 1:
            raise ValueError("width must be positive")
        self._cols = tuple(array("d") for _ in range(width))

    def __len__(self) -> int:
        return len(self._cols[0])

    def append(self, *values: float) -> None:
        """Append one row (one value per column)."""
        for col, value in zip(self._cols, values, strict=True):
            col.append(value)

    def columns(self):
        """The columns in declaration order (stdlib arrays, row order)."""
        return self._cols

    def clear(self) -> None:
        """Drop all rows, keeping the column objects."""
        for col in self._cols:
            del col[:]
