"""Columnar position store: struct-of-arrays mirror of object positions.

``PositionStore`` keeps every monitored object's last reported position
in two parallel ``float64`` columns plus an id↔row map, maintained
incrementally by ``DatabaseServer`` on register / update / deregister.
The columns are backend-neutral (``array('d')`` from the stdlib);
NumPy consumers view them zero-copy via ``np.frombuffer`` when present.

Deletions swap the last row into the vacated slot, so the columns stay
dense and row order is a function of the exact register/deregister
history — deterministic, but *not* insertion order.  Kernels that need
a deterministic result order therefore sort by object id (or by
``(distance, row)`` with an id-stable candidate set), never by raw row.
"""

from __future__ import annotations

from array import array
from typing import Iterator, Sequence

try:  # pragma: no cover — container always ships numpy
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None


class PositionStore:
    """Dense x/y columns with id↔row bookkeeping."""

    __slots__ = ("_xs", "_ys", "_ids", "_row_of")

    def __init__(self) -> None:
        self._xs = array("d")
        self._ys = array("d")
        self._ids: list = []
        self._row_of: dict = {}

    def __len__(self) -> int:
        return len(self._ids)

    def __contains__(self, oid) -> bool:
        return oid in self._row_of

    def __iter__(self) -> Iterator:
        return iter(self._ids)

    def set(self, oid, p) -> None:
        """Insert ``oid`` at ``p``, or move it if already stored."""
        row = self._row_of.get(oid)
        if row is None:
            self._row_of[oid] = len(self._ids)
            self._ids.append(oid)
            self._xs.append(p.x)
            self._ys.append(p.y)
        else:
            self._xs[row] = p.x
            self._ys[row] = p.y

    def discard(self, oid) -> None:
        """Remove ``oid`` (no-op if absent) via swap-remove."""
        row = self._row_of.pop(oid, None)
        if row is None:
            return
        last = len(self._ids) - 1
        if row != last:
            moved = self._ids[last]
            self._ids[row] = moved
            self._xs[row] = self._xs[last]
            self._ys[row] = self._ys[last]
            self._row_of[moved] = row
        del self._ids[last]
        del self._xs[last]
        del self._ys[last]

    def get(self, oid):
        """The stored ``(x, y)`` of ``oid``, or ``None`` if absent."""
        row = self._row_of.get(oid)
        if row is None:
            return None
        return (self._xs[row], self._ys[row])

    @property
    def ids(self) -> Sequence:
        """Object ids in row order (do not mutate)."""
        return self._ids

    def columns(self):
        """``(xs, ys)`` columns in row order.

        NumPy views when available (zero-copy over the live buffers —
        consume before the next mutation), stdlib arrays otherwise.
        """
        if _np is not None and len(self._ids) > 0:
            return (
                _np.frombuffer(self._xs, dtype=_np.float64),
                _np.frombuffer(self._ys, dtype=_np.float64),
            )
        return self._xs, self._ys

    def approximate_size_bytes(self) -> int:
        """Rough resident size of the columns and maps."""
        n = len(self._ids)
        # Two float64 columns, the id list, and the id→row dict entries.
        return 16 * n + 8 * n + 72 * n


class ColumnBuffer:
    """Append-only ``float64`` column set for tick-wide kernel gathers.

    The planner accumulates one row per work item across a whole tick —
    each row spread over ``width`` parallel columns — then hands the
    columns straight to a kernel dispatch.  Same storage discipline as
    ``PositionStore`` (stdlib ``array('d')``, zero-copy NumPy views) so
    both kernel backends consume it without conversion.  ``clear()``
    keeps the allocated buffers for reuse across ticks.
    """

    __slots__ = ("_cols",)

    def __init__(self, width: int) -> None:
        if width < 1:
            raise ValueError("width must be positive")
        self._cols = tuple(array("d") for _ in range(width))

    def __len__(self) -> int:
        return len(self._cols[0])

    def append(self, *values: float) -> None:
        """Append one row (one value per column)."""
        for col, value in zip(self._cols, values, strict=True):
            col.append(value)

    def columns(self):
        """The columns in declaration order (stdlib arrays, row order)."""
        return self._cols

    def clear(self) -> None:
        """Drop all rows, keeping the column objects."""
        for col in self._cols:
            del col[:]
