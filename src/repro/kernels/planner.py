"""Tick-wide kernel work planner: gather -> dispatch -> scatter.

Per-update kernel calls starve the batch backends: a single report sees
a handful of candidate queries and a handful of safe-region obstacles,
so almost every call lands under ``Kernels.min_rows`` and runs the
scalar fallback (``kernels.fallback_rows``).  The planner fixes the
shape of the work instead of the cutoff: before a batch of same-tick
reports is processed, the server *gathers* every predictable work item
across the whole tick, then *dispatches* each work class as one large
kernel call, and *scatters* the verdicts into a :class:`TickPlan` keyed
by object id.

The gather itself is columnar (docs/PERFORMANCE.md "Resident columns
and delta reevaluation"): candidate rect/centre columns are derived
once per ``(cell pair, generations)`` and cached, safe-region obstacle
columns once per ``(cell, generation)``, so adding a report extends
shared columns with C-level ``array.extend`` instead of appending one
row per (report x query).  Per-report state — the new/old point pair,
the mutable kNN radii — is gathered fresh each tick as *segment*
columns; the segmented kernels (``affected_deltas``, ``knn_gate_rows``,
``quadrant_corners_grouped``) broadcast each report's points over its
candidate run with exact-copy ``np.repeat``.

The per-report code paths then *consume* the plan instead of
recomputing: each entry is validated against the live state it was
planned from (``Point`` identity of the new/old positions, cell
generations, per-row kNN radii, obstacle counts) and silently ignored
on any mismatch — a probe or quarantine move between planning and
consumption simply sends that report down the unplanned path, which
computes the identical result inline.  Both paths run the same kernel
arithmetic and the same scalar combination code, so planned and
unplanned executions are bit-identical by construction and the
200-tick replay equivalence pins hold with the planner on or off.

Counters (all under ``kernels.planner.*``, visible in ``repro stats``):

* ``plans``           — batches planned;
* ``rows_gathered``   — column rows accumulated across all work classes;
* ``dispatches``      — kernel dispatches issued by ``finish()``;
* ``scatter_seconds`` — wall time spent scattering verdicts back out
  (only measured when a metrics registry is attached).

Plus ``kernels.delta.skipped_rows`` — planned candidate rows whose
delta came back empty (range membership unchanged, kNN quarantine gate
not crossed): work the delta-driven consumer never revisits.
"""

from __future__ import annotations

from array import array
from time import perf_counter
from typing import Hashable

from repro.kernels.ops import _QUADRANT_SIGNS
from repro.kernels.store import ColumnBuffer
from repro.obs import NULL_PROFILER, NULL_REGISTRY

ObjectId = Hashable

#: Lazily resolved ``(RangeQuery, KNNQuery)`` — ``repro.core`` imports
#: this module at class-definition time, so a module-level import of
#: ``repro.core.queries`` would be circular.
_QUERY_TYPES: tuple | None = None


def _query_types() -> tuple:
    global _QUERY_TYPES
    if _QUERY_TYPES is None:
        from repro.core.queries import KNNQuery, RangeQuery

        _QUERY_TYPES = (RangeQuery, KNNQuery)
    return _QUERY_TYPES


class ObstacleColumns:
    """One cell's Section 5.3 obstacle-candidate rects as columns.

    Derived from the cell's relevant queries with exactly the
    eligibility filter of ``collect_range_obstacles`` *minus* the
    position-dependent containment test (that moves in-kernel): plain
    range queries, or range subclasses without a ``safe_region_for``
    extension hook.  Cached per ``(cell, generation)`` by the planner.
    """

    __slots__ = ("n", "minxs", "minys", "maxxs", "maxys")

    def __init__(self, rects) -> None:
        self.minxs = array("d")
        self.minys = array("d")
        self.maxxs = array("d")
        self.maxys = array("d")
        for rect in rects:
            self.minxs.append(rect.min_x)
            self.minys.append(rect.min_y)
            self.maxxs.append(rect.max_x)
            self.maxys.append(rect.max_y)
        self.n = len(self.minxs)


class TickPlan:
    """Scattered verdicts of one planned tick, consumed entry by entry.

    Entries are handed out at most once (``take_*`` pops) and only when
    the caller's live arguments still match what was planned; ``None``
    means "not planned / stale — compute inline".
    """

    __slots__ = ("affected", "regions")

    def __init__(self) -> None:
        #: oid -> (pos, prev, ordered candidates, cells, generations,
        #:         hits, kverdicts) — ``hits`` the affected plain range
        #: queries as ``(query, inside_new)`` in candidate order,
        #: ``kverdicts`` every plain kNN candidate as ``(query, hit,
        #: (in_new, in_old), planned_radius)`` in candidate order.
        self.affected: dict = {}
        #: oid -> (pos, cell_id, n_obstacles, region)
        self.regions: dict = {}

    def take_affected(self, oid: ObjectId, position, previous, grid):
        """Planned candidate set + delta verdicts for one report.

        Returns ``(ordered_candidates, hits, kverdicts)`` or ``None``.
        Valid only while the report's position objects are the ones
        planned from (identity, not equality — an interleaved probe
        rewrites ``p_lst`` to a *different* object) and both involved
        cells still carry their planned generations (a quarantine move
        between planning and consumption changes the candidate set).
        Per-row kNN radii are validated by the consumer — a radius can
        change mid-tick without a generation bump.
        """
        entry = self.affected.pop(oid, None)
        if entry is None:
            return None
        pos, prev, ordered, cells, gens, hits, kverdicts = entry
        if position is not pos or previous is not prev:
            return None
        for cell, gen in zip(cells, gens):
            if grid.cell_generation(cell) != gen:
                return None
        return ordered, hits, kverdicts

    def take_range_region(self, oid: ObjectId, position, cell_id):
        """Planned Section 5.3 staircase union for one report.

        Returns ``(n_obstacles, region)`` or ``None``; the caller
        (``compute_safe_region``) only uses the region when its own
        obstacle collection matches ``n_obstacles``.
        """
        entry = self.regions.pop(oid, None)
        if entry is None:
            return None
        pos, planned_cell, n_obstacles, region = entry
        if position is not pos or cell_id != planned_cell:
            return None
        return n_obstacles, region


class TickPlanner:
    """Accumulates one tick's kernel work and dispatches it in bulk."""

    __slots__ = (
        "kernels", "_metrics_on", "profiler",
        "_m_plans", "_m_rows", "_m_dispatches", "_m_scatter", "_m_skipped",
        "_aff_buf", "_knn_buf", "_pts", "_seg_rlens", "_seg_klens",
        "_aff_segments",
        "_reg_buf", "_reg_pts", "_reg_w", "_reg_h", "_reg_lens",
        "_reg_segments",
        "_cand_cols", "_obst_cols",
    )

    def __init__(self, kernels, metrics=None) -> None:
        self.kernels = kernels
        registry = NULL_REGISTRY if metrics is None else metrics
        self._metrics_on = registry.enabled
        #: Tick-phase profiler, shared with the owning server
        #: (``DatabaseServer.attach_profiler``); the no-op by default.
        self.profiler = NULL_PROFILER
        self._m_plans = registry.counter("kernels.planner.plans")
        self._m_rows = registry.counter("kernels.planner.rows_gathered")
        self._m_dispatches = registry.counter("kernels.planner.dispatches")
        self._m_scatter = registry.counter("kernels.planner.scatter_seconds")
        self._m_skipped = registry.counter("kernels.delta.skipped_rows")
        # Range-affected rect rows: one per (report, candidate range
        # query), extended from cached candidate columns.
        self._aff_buf = ColumnBuffer(4)
        # kNN circle rows: centre x/y from cached candidate columns,
        # radius gathered fresh (mutable mid-tick).
        self._knn_buf = ColumnBuffer(3)
        # Per-report point segments: new x/y, old x/y — one row per
        # ``add_affected`` call, shared by both delta dispatches.
        self._pts = ColumnBuffer(4)
        self._seg_rlens: list = []
        self._seg_klens: list = []
        self._aff_segments: list = []
        # Obstacle rect rows: one per (report, candidate obstacle).
        self._reg_buf = ColumnBuffer(4)
        self._reg_pts = ColumnBuffer(2)
        # Quadrant extents: per-quadrant width/height columns, one
        # entry per report (``quad_widths[q][k]``).
        self._reg_w = tuple(array("d") for _ in range(4))
        self._reg_h = tuple(array("d") for _ in range(4))
        self._reg_lens: list = []
        self._reg_segments: list = []
        #: cells tuple -> (generations, rq, rminx, rminy, rmaxx, rmaxy,
        #:                 knn, kcx, kcy)
        self._cand_cols: dict = {}
        #: cell -> (generation, ObstacleColumns | None)
        self._obst_cols: dict = {}

    def begin(self) -> None:
        """Reset the gather buffers for a new tick (caches persist)."""
        self._aff_buf.clear()
        self._knn_buf.clear()
        self._pts.clear()
        self._seg_rlens.clear()
        self._seg_klens.clear()
        self._aff_segments.clear()
        self._reg_buf.clear()
        self._reg_pts.clear()
        for col in self._reg_w:
            del col[:]
        for col in self._reg_h:
            del col[:]
        self._reg_lens.clear()
        self._reg_segments.clear()

    def _build_cand_cols(self, ordered, cells, generations):
        """Derive (and cache) the candidate columns of one cell pair.

        The candidate tuple is a pure function of ``(cells,
        generations)`` — the grid's ordered-candidate views are cached
        per generation — so the derived columns can be reused until
        either cell's generation moves.  kNN centres are immutable
        (only set at construction); radii are *not* cached here.
        """
        range_t, knn_t = _query_types()
        rq = []
        knn = []
        rminx = array("d")
        rminy = array("d")
        rmaxx = array("d")
        rmaxy = array("d")
        kcx = array("d")
        kcy = array("d")
        for q in ordered:
            tq = type(q)
            if tq is range_t:
                rq.append(q)
                rect = q.rect
                rminx.append(rect.min_x)
                rminy.append(rect.min_y)
                rmaxx.append(rect.max_x)
                rmaxy.append(rect.max_y)
            elif tq is knn_t:
                knn.append(q)
                kcx.append(q.center.x)
                kcy.append(q.center.y)
        entry = (
            generations, tuple(rq), rminx, rminy, rmaxx, rmaxy,
            tuple(knn), kcx, kcy,
        )
        self._cand_cols[cells] = entry
        return entry

    def add_affected(
        self, oid: ObjectId, position, previous,
        ordered_candidates: tuple, cells: tuple, generations: tuple,
    ) -> None:
        """Gather one report's delta work (range flips + kNN gates).

        ``ordered_candidates`` is the full ``query_id``-sorted candidate
        tuple (all query types — stored so consumption skips the grid
        lookup); its plain range and plain kNN members go through the
        segmented kernels, everything else stays scalar at consume.
        """
        entry = self._cand_cols.get(cells)
        if entry is None or entry[0] != generations:
            entry = self._build_cand_cols(
                ordered_candidates, cells, generations
            )
        _, rq, rminx, rminy, rmaxx, rmaxy, knn, kcx, kcy = entry
        c0, c1, c2, c3 = self._aff_buf.columns()
        c0.extend(rminx)
        c1.extend(rminy)
        c2.extend(rmaxx)
        c3.extend(rmaxy)
        k0, k1, k2 = self._knn_buf.columns()
        k0.extend(kcx)
        k1.extend(kcy)
        for q in knn:
            k2.append(q.radius)
        self._pts.append(position.x, position.y, previous.x, previous.y)
        self._seg_rlens.append(len(rq))
        self._seg_klens.append(len(knn))
        self._aff_segments.append((
            oid, position, previous, ordered_candidates, rq, knn,
            cells, generations,
        ))

    def obstacle_columns(self, cell, generation: int, relevant_queries):
        """The cell's cached obstacle-candidate columns, or ``None``.

        ``None`` when the cell has no eligible obstacle rects at all —
        the report then has no Section 5.3 batch work to plan (the
        containment exclusion of the *eligible* rects happens in-kernel
        at dispatch, per report position).
        """
        entry = self._obst_cols.get(cell)
        if entry is not None and entry[0] == generation:
            return entry[1]
        range_t, _ = _query_types()
        rects = []
        for q in relevant_queries:
            tq = type(q)
            if tq is range_t or (
                not hasattr(q, "safe_region_for") and isinstance(q, range_t)
            ):
                rects.append(q.rect)
        cols = ObstacleColumns(rects) if rects else None
        self._obst_cols[cell] = (generation, cols)
        return cols

    def add_region(
        self, oid: ObjectId, position, cell_id, cell,
        extents: list, cols: ObstacleColumns,
    ) -> None:
        """Gather one report's Section 5.3 corner-candidate work.

        ``extents`` are the four quadrant ``(width, height)`` pairs from
        ``repro.core.batch.quadrant_extents``; ``cols`` the cell's
        resident obstacle-candidate columns (:meth:`obstacle_columns`).
        """
        c0, c1, c2, c3 = self._reg_buf.columns()
        c0.extend(cols.minxs)
        c1.extend(cols.minys)
        c2.extend(cols.maxxs)
        c3.extend(cols.maxys)
        self._reg_pts.append(position.x, position.y)
        for q, (width, height) in enumerate(extents):
            self._reg_w[q].append(width)
            self._reg_h[q].append(height)
        self._reg_lens.append(cols.n)
        self._reg_segments.append(
            (oid, position, cell_id, cell, cols.n, extents)
        )

    def finish(self) -> TickPlan:
        """Dispatch every gathered work class and scatter the verdicts."""
        # The staircase/greedy combination is shared with the unplanned
        # path — imported from core lazily to keep repro.kernels
        # importable without repro.core.
        from repro.core.batch import (
            _QUADRANTS,
            combine_components,
            staircase_corners,
        )

        assert _QUADRANTS == _QUADRANT_SIGNS

        plan = TickPlan()
        n_aff = len(self._aff_buf)
        n_knn = len(self._knn_buf)
        n_reg = len(self._reg_buf)
        rows = n_aff + n_knn + n_reg
        self._m_plans.inc()
        if rows:
            self._m_rows.inc(rows)

        profiler = self.profiler
        profile_on = profiler.enabled
        skipped = 0
        if self._aff_segments:
            if profile_on:
                profiler.push("kernel.dispatch")
            nxs, nys, oxs, oys = self._pts.columns()
            affected = inside = in_new = in_old = ()
            if n_aff:
                affected, inside = self.kernels.affected_deltas(
                    *self._aff_buf.columns(),
                    self._seg_rlens, nxs, nys, oxs, oys,
                )
                self._m_dispatches.inc()
            if n_knn:
                in_new, in_old = self.kernels.knn_gate_rows(
                    *self._knn_buf.columns(),
                    self._seg_klens, nxs, nys, oxs, oys,
                )
                self._m_dispatches.inc()
            if profile_on:
                profiler.pop()
                profiler.push("report.scatter")
            rads = self._knn_buf.columns()[2]
            t0 = perf_counter() if self._metrics_on else 0.0
            ro = 0
            ko = 0
            for (
                oid, pos, prev, ordered, rq, knn, cells, gens
            ) in self._aff_segments:
                hits = []
                for q in rq:
                    if affected[ro]:
                        hits.append((q, inside[ro]))
                    else:
                        skipped += 1
                    ro += 1
                kverdicts = []
                for q in knn:
                    gate_new = in_new[ko]
                    gate_old = in_old[ko]
                    # ``is_affected_by`` from the gates: order-sensitive
                    # queries react to any quarantine touch, unordered
                    # ones only to a membership flip.
                    if q.order_sensitive:
                        hit = gate_new or gate_old
                    else:
                        hit = gate_new != gate_old
                    if not hit:
                        skipped += 1
                    kverdicts.append(
                        (q, hit, (gate_new, gate_old), rads[ko])
                    )
                    ko += 1
                plan.affected[oid] = (
                    pos, prev, ordered, cells, gens, hits, kverdicts
                )
            if self._metrics_on:
                self._m_scatter.inc(perf_counter() - t0)
            if profile_on:
                profiler.pop()

        if self._reg_segments:
            if profile_on:
                profiler.push("kernel.dispatch")
            contained, keep, cxs, cys = self.kernels.quadrant_corners_grouped(
                *self._reg_pts.columns(), self._reg_w, self._reg_h,
                self._reg_lens, *self._reg_buf.columns(),
            )
            self._m_dispatches.inc()
            if profile_on:
                profiler.pop()
                profiler.push("report.scatter")
            t0 = perf_counter() if self._metrics_on else 0.0
            off = 0
            for oid, pos, cell_id, cell, n, extents in self._reg_segments:
                seg_contained = contained[off:off + n]
                n_obstacles = n - sum(seg_contained)
                if n_obstacles:
                    component_sets = []
                    for q, (width, height) in enumerate(extents):
                        base = q * n_reg + off
                        blockers = []
                        for i in range(n):
                            if not seg_contained[i] and keep[base + i]:
                                blockers.append(
                                    (cxs[base + i], cys[base + i])
                                )
                        component_sets.append(
                            staircase_corners(blockers, width, height)
                        )
                    region = combine_components(pos, cell, component_sets)
                    plan.regions[oid] = (pos, cell_id, n_obstacles, region)
                off += n
            if self._metrics_on:
                self._m_scatter.inc(perf_counter() - t0)
            if profile_on:
                profiler.pop()

        if skipped:
            self._m_skipped.inc(skipped)
        self.begin()
        return plan
