"""Tick-wide kernel work planner: gather -> dispatch -> scatter.

Per-update kernel calls starve the batch backends: a single report sees
a handful of candidate queries and a handful of safe-region obstacles,
so almost every call lands under ``Kernels.min_rows`` and runs the
scalar fallback (``kernels.fallback_rows``).  The planner fixes the
shape of the work instead of the cutoff: before a batch of same-tick
reports is processed, the server *gathers* every predictable work item
across the whole tick into :class:`~repro.kernels.store.ColumnBuffer`
columns — range-affected membership flips (one row per report x
candidate range query) and Section 5.3 safe-region corner candidates
(one row per report x quadrant x obstacle) — then *dispatches* each
work class as one large kernel call, and *scatters* the verdicts into a
:class:`TickPlan` keyed by object id.

The per-report code paths then *consume* the plan instead of
recomputing: each entry is validated against the live state it was
planned from (``Point`` identity of the new/old positions, cell
generations, obstacle counts) and silently ignored on any mismatch —
a probe or quarantine move between planning and consumption simply
sends that report down the unplanned path, which computes the identical
result inline.  Both paths run the same kernel arithmetic and the same
scalar combination code, so planned and unplanned executions are
bit-identical by construction and the 200-tick replay equivalence pins
hold with the planner on or off.

Counters (all under ``kernels.planner.*``, visible in ``repro stats``):

* ``plans``           — batches planned;
* ``rows_gathered``   — column rows accumulated across all work classes;
* ``dispatches``      — kernel dispatches issued by ``finish()``;
* ``scatter_seconds`` — wall time spent scattering verdicts back out
  (only measured when a metrics registry is attached).
"""

from __future__ import annotations

from time import perf_counter
from typing import Hashable

from repro.kernels.store import ColumnBuffer
from repro.obs import NULL_REGISTRY

ObjectId = Hashable

#: Quadrant sign pairs, kept in lockstep with ``repro.core.batch._QUADRANTS``
#: (asserted at first use — the scatter phase feeds its corners into the
#: same staircase/greedy code the unplanned path runs).
_QUADRANT_SIGNS = ((1.0, 1.0), (1.0, -1.0), (-1.0, -1.0), (-1.0, 1.0))


class TickPlan:
    """Scattered verdicts of one planned tick, consumed entry by entry.

    Entries are handed out at most once (``take_*`` pops) and only when
    the caller's live arguments still match what was planned; ``None``
    means "not planned / stale — compute inline".
    """

    __slots__ = ("affected", "regions")

    def __init__(self) -> None:
        #: oid -> (pos, prev, ordered candidates, cells, generations,
        #:         {query_id: (affected, inside_new)})
        self.affected: dict = {}
        #: oid -> (pos, cell_id, n_obstacles, region)
        self.regions: dict = {}

    def take_affected(self, oid: ObjectId, position, previous, grid):
        """Planned candidate set + range verdicts for one report.

        Returns ``(ordered_candidates, verdicts)`` or ``None``.  Valid
        only while the report's position objects are the ones planned
        from (identity, not equality — an interleaved probe rewrites
        ``p_lst`` to a *different* object) and both involved cells still
        carry their planned generations (a quarantine move between
        planning and consumption changes the candidate set).
        """
        entry = self.affected.pop(oid, None)
        if entry is None:
            return None
        pos, prev, ordered, cells, gens, verdicts = entry
        if position is not pos or previous is not prev:
            return None
        for cell, gen in zip(cells, gens):
            if grid.cell_generation(cell) != gen:
                return None
        return ordered, verdicts

    def take_range_region(self, oid: ObjectId, position, cell_id):
        """Planned Section 5.3 staircase union for one report.

        Returns ``(n_obstacles, region)`` or ``None``; the caller
        (``compute_safe_region``) only uses the region when its own
        obstacle collection matches ``n_obstacles``.
        """
        entry = self.regions.pop(oid, None)
        if entry is None:
            return None
        pos, planned_cell, n_obstacles, region = entry
        if position is not pos or cell_id != planned_cell:
            return None
        return n_obstacles, region


class TickPlanner:
    """Accumulates one tick's kernel work and dispatches it in bulk."""

    __slots__ = (
        "kernels", "_metrics_on",
        "_m_plans", "_m_rows", "_m_dispatches", "_m_scatter",
        "_aff_buf", "_aff_segments", "_cor_buf", "_reg_segments",
    )

    def __init__(self, kernels, metrics=None) -> None:
        self.kernels = kernels
        registry = NULL_REGISTRY if metrics is None else metrics
        self._metrics_on = registry.enabled
        self._m_plans = registry.counter("kernels.planner.plans")
        self._m_rows = registry.counter("kernels.planner.rows_gathered")
        self._m_dispatches = registry.counter("kernels.planner.dispatches")
        self._m_scatter = registry.counter("kernels.planner.scatter_seconds")
        # Range-affected rows: one per (report, candidate range query).
        # Columns: rect min/max, new point, old point.
        self._aff_buf = ColumnBuffer(8)
        self._aff_segments: list = []
        # Corner rows: one per (report, quadrant, obstacle).  Columns:
        # point, obstacle rect min/max, quadrant signs, local extents.
        self._cor_buf = ColumnBuffer(10)
        self._reg_segments: list = []

    def begin(self) -> None:
        """Reset the gather buffers for a new tick."""
        self._aff_buf.clear()
        self._aff_segments.clear()
        self._cor_buf.clear()
        self._reg_segments.clear()

    def add_affected(
        self, oid: ObjectId, position, previous,
        ordered_candidates: tuple, range_queries: list,
        cells: tuple, generations: tuple,
    ) -> None:
        """Gather one report's range-affected work.

        ``ordered_candidates`` is the full ``query_id``-sorted candidate
        tuple (all query types — stored so consumption skips the grid
        lookup); ``range_queries`` its plain-``RangeQuery`` members whose
        membership flips go through the kernel.
        """
        c0, c1, c2, c3, c4, c5, c6, c7 = self._aff_buf.columns()
        nx, ny = position.x, position.y
        ox, oy = previous.x, previous.y
        for query in range_queries:
            rect = query.rect
            c0.append(rect.min_x)
            c1.append(rect.min_y)
            c2.append(rect.max_x)
            c3.append(rect.max_y)
            c4.append(nx)
            c5.append(ny)
            c6.append(ox)
            c7.append(oy)
        self._aff_segments.append((
            oid, position, previous, ordered_candidates,
            [q.query_id for q in range_queries], cells, generations,
        ))

    def add_region(
        self, oid: ObjectId, position, cell_id, cell,
        extents: list, obstacles: list,
    ) -> None:
        """Gather one report's Section 5.3 corner-candidate work.

        ``extents`` are the four quadrant ``(width, height)`` pairs from
        ``repro.core.batch.quadrant_extents``; ``obstacles`` the rects
        ``collect_range_obstacles`` found for ``position``.
        """
        c0, c1, c2, c3, c4, c5, c6, c7, c8, c9 = self._cor_buf.columns()
        px, py = position.x, position.y
        for (sx, sy), (width, height) in zip(_QUADRANT_SIGNS, extents):
            for rect in obstacles:
                c0.append(px)
                c1.append(py)
                c2.append(rect.min_x)
                c3.append(rect.min_y)
                c4.append(rect.max_x)
                c5.append(rect.max_y)
                c6.append(sx)
                c7.append(sy)
                c8.append(width)
                c9.append(height)
        self._reg_segments.append(
            (oid, position, cell_id, cell, extents, len(obstacles))
        )

    def finish(self) -> TickPlan:
        """Dispatch every gathered work class and scatter the verdicts."""
        # The staircase/greedy combination is shared with the unplanned
        # path — imported from core lazily to keep repro.kernels
        # importable without repro.core.
        from repro.core.batch import (
            _QUADRANTS,
            combine_components,
            staircase_corners,
        )

        assert _QUADRANTS == _QUADRANT_SIGNS

        plan = TickPlan()
        rows = len(self._aff_buf) + len(self._cor_buf)
        self._m_plans.inc()
        if rows:
            self._m_rows.inc(rows)

        if self._aff_segments:
            affected, inside = self.kernels.affected_rows(
                *self._aff_buf.columns()
            )
            self._m_dispatches.inc()
            t0 = perf_counter() if self._metrics_on else 0.0
            offset = 0
            for (
                oid, pos, prev, ordered, qids, cells, gens
            ) in self._aff_segments:
                verdicts = {}
                for qid in qids:
                    verdicts[qid] = (affected[offset], inside[offset])
                    offset += 1
                plan.affected[oid] = (pos, prev, ordered, cells, gens, verdicts)
            if self._metrics_on:
                self._m_scatter.inc(perf_counter() - t0)

        if self._reg_segments:
            keep, cxs, cys = self.kernels.quadrant_corners_rows(
                *self._cor_buf.columns()
            )
            self._m_dispatches.inc()
            t0 = perf_counter() if self._metrics_on else 0.0
            offset = 0
            for oid, pos, cell_id, cell, extents, n_obstacles in (
                self._reg_segments
            ):
                component_sets = []
                for width, height in extents:
                    blockers = []
                    for _ in range(n_obstacles):
                        if keep[offset]:
                            blockers.append((cxs[offset], cys[offset]))
                        offset += 1
                    component_sets.append(
                        staircase_corners(blockers, width, height)
                    )
                region = combine_components(pos, cell, component_sets)
                plan.regions[oid] = (pos, cell_id, n_obstacles, region)
            if self._metrics_on:
                self._m_scatter.inc(perf_counter() - t0)

        self.begin()
        return plan
