"""Vectorized columnar kernels for the evaluation hot path.

Public surface:

* :class:`~repro.kernels.ops.Kernels` — batch geometry kernels with a
  NumPy backend and a bit-identical pure-Python fallback, selected by
  ``ServerConfig.kernel_backend``.
* :class:`~repro.kernels.store.PositionStore` — struct-of-arrays mirror
  of the monitored objects' last reported positions.
* :class:`~repro.kernels.store.ColumnBuffer` — append-only float64
  columns for tick-wide kernel gathers.
* :class:`~repro.kernels.planner.TickPlanner` /
  :class:`~repro.kernels.planner.TickPlan` — the tick-wide
  gather -> dispatch -> scatter pipeline (docs/PERFORMANCE.md).
* :func:`~repro.kernels.ops.resolve_backend`, ``KERNEL_BACKENDS``,
  ``HAS_NUMPY`` — backend negotiation helpers.
"""

from repro.kernels.ops import (
    DEFAULT_KERNELS,
    HAS_NUMPY,
    KERNEL_BACKENDS,
    Kernels,
    resolve_backend,
)
from repro.kernels.planner import TickPlan, TickPlanner
from repro.kernels.store import ColumnBuffer, PositionStore

__all__ = [
    "ColumnBuffer",
    "DEFAULT_KERNELS",
    "HAS_NUMPY",
    "KERNEL_BACKENDS",
    "Kernels",
    "PositionStore",
    "TickPlan",
    "TickPlanner",
    "resolve_backend",
]
