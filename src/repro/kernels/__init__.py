"""Vectorized columnar kernels for the evaluation hot path.

Public surface:

* :class:`~repro.kernels.ops.Kernels` — batch geometry kernels with a
  NumPy backend and a bit-identical pure-Python fallback, selected by
  ``ServerConfig.kernel_backend``.
* :class:`~repro.kernels.store.PositionStore` — struct-of-arrays mirror
  of the monitored objects' last reported positions.
* :func:`~repro.kernels.ops.resolve_backend`, ``KERNEL_BACKENDS``,
  ``HAS_NUMPY`` — backend negotiation helpers.
"""

from repro.kernels.ops import (
    DEFAULT_KERNELS,
    HAS_NUMPY,
    KERNEL_BACKENDS,
    Kernels,
    resolve_backend,
)
from repro.kernels.store import PositionStore

__all__ = [
    "DEFAULT_KERNELS",
    "HAS_NUMPY",
    "KERNEL_BACKENDS",
    "Kernels",
    "PositionStore",
    "resolve_backend",
]
