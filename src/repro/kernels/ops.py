"""Columnar geometry kernels for the evaluation hot path.

Every kernel exists twice: a NumPy batch implementation and a pure-Python
scalar fallback.  The two are **bit-identical by construction** — the
NumPy path performs the same floating-point operations in the same order
per element as the scalar path (``dx*dx + dy*dy``, explicit ``min``/
``max`` compositions, sequential ``cumsum`` row sums instead of pairwise
reductions, and never ``hypot``, whose result CPython and NumPy are free
to compute differently).  This lets the server swap backends via
``ServerConfig.kernel_backend`` without perturbing a single result,
message, or counter; ``tests/test_kernels_properties.py`` cross-checks
the two paths on random columns including rect-edge and distance-tie
inputs, and ``tests/test_kernel_equivalence.py`` replays full monitoring
streams under both backends.

FP-determinism rules for new kernels (see docs/PERFORMANCE.md):

* square with ``v * v``, never ``v ** 2`` or ``np.square`` mixed with
  scalar ``pow``;
* sum sequentially (``np.cumsum(...)[..., -1]``) when the scalar path
  sums left to right — ``np.sum`` uses pairwise reduction;
* replicate Python's ``min``/``max`` tie behaviour (first argument wins
  on equality) — ``np.minimum``/``np.maximum`` match it, but
  ``max(v, 0.0)`` must become ``np.where(v >= 0.0, v, 0.0)`` to keep
  the sign of a negative zero;
* match truncation: ``int(f)`` truncates toward zero, as does
  ``ndarray.astype(int64)`` for the values a grid ever sees;
* convert every NumPy output back to Python scalars (``tolist()``) so
  downstream geometry never mixes ``np.float64`` into snapshots.
"""

from __future__ import annotations

import heapq
import math
from typing import Sequence

from repro.obs import NULL_EVENT_LOG, NULL_REGISTRY

try:  # pragma: no cover — exercised implicitly by backend resolution
    import numpy as _np

    HAS_NUMPY = True
except ImportError:  # pragma: no cover — container always ships numpy
    _np = None
    HAS_NUMPY = False

#: Recognised values of ``ServerConfig.kernel_backend``.
KERNEL_BACKENDS = ("numpy", "python")

#: Quadrant sign pairs of the Section 5.3 staircase batch, kept in
#: lockstep with ``repro.core.batch._QUADRANTS`` (asserted by the tick
#: planner).  ``quadrant_corners_grouped`` iterates these as constants,
#: so no per-row sign column is gathered.
_QUADRANT_SIGNS = ((1.0, 1.0), (1.0, -1.0), (-1.0, -1.0), (-1.0, 1.0))


def resolve_backend(requested: str) -> str:
    """Map a requested backend to the one that will actually run.

    ``"numpy"`` silently degrades to ``"python"`` when NumPy is absent —
    the fallback is bit-identical, so nothing but speed changes.
    """
    if requested not in KERNEL_BACKENDS:
        raise ValueError(
            f"unknown kernel backend {requested!r}; choose from {KERNEL_BACKENDS}"
        )
    if requested == "numpy" and not HAS_NUMPY:
        return "python"
    return requested


class Kernels:
    """Batch geometry kernels with a selected backend.

    ``min_rows`` is the batch-size cutoff below which the NumPy path is
    not worth its constant overhead; smaller inputs run the scalar
    fallback (identical results either way).  Counters:

    * ``kernels.batch_calls``    — invocations served by the NumPy path;
    * ``kernels.rows_scanned``   — rows processed by the NumPy path;
    * ``kernels.fallback_calls`` — invocations served by the scalar path
      (explicit ``python`` backend, missing NumPy, or below-cutoff);
    * ``kernels.fallback_rows``  — rows processed by the scalar path.
      The ratio ``fallback_rows / (rows_scanned + fallback_rows)`` is the
      number that matters for batching health: many tiny fallback calls
      can be negligible by rows, and one huge fallback call can dominate.
    """

    __slots__ = (
        "backend", "min_rows", "_np", "_events",
        "_batch_calls", "_rows_scanned", "_fallback_calls",
        "_fallback_rows",
    )

    def __init__(
        self, backend: str = "numpy", metrics=None, min_rows: int = 8,
        events=None,
    ) -> None:
        if min_rows < 1:
            raise ValueError("min_rows must be positive")
        self.backend = resolve_backend(backend)
        self.min_rows = min_rows
        self._np = _np if self.backend == "numpy" else None
        registry = NULL_REGISTRY if metrics is None else metrics
        self._events = NULL_EVENT_LOG if events is None else events
        self._batch_calls = registry.counter("kernels.batch_calls")
        self._rows_scanned = registry.counter("kernels.rows_scanned")
        self._fallback_calls = registry.counter("kernels.fallback_calls")
        self._fallback_rows = registry.counter("kernels.fallback_rows")

    def _batch(self, n: int) -> bool:
        """Whether to take the NumPy path for an ``n``-row call.

        The cutoff is inclusive: a call with exactly ``min_rows`` rows
        takes the vectorized path (``n >= self.min_rows``), on both
        backends — pinned by ``test_min_rows_exact_cutoff_vectorises``.
        """
        if self._np is not None and n >= self.min_rows:
            self._batch_calls.inc()
            self._rows_scanned.inc(n)
            return True
        self._fallback_calls.inc()
        self._fallback_rows.inc(n)
        if self._events.enabled:
            self._events.emit(
                "kernel_fallback", rows=n, backend=self.backend,
                reason="below_cutoff" if self._np is not None else "no_numpy",
            )
        return False

    # ------------------------------------------------------------------
    # Point kernels
    # ------------------------------------------------------------------
    def points_in_rect(
        self, xs: Sequence[float], ys: Sequence[float], rect
    ) -> list[bool]:
        """Per-row mask: is ``(xs[i], ys[i])`` inside the closed ``rect``."""
        n = len(xs)
        if self._batch(n):
            np = self._np
            x = np.asarray(xs, dtype=np.float64)
            y = np.asarray(ys, dtype=np.float64)
            mask = (
                (x >= rect.min_x) & (x <= rect.max_x)
                & (y >= rect.min_y) & (y <= rect.max_y)
            )
            return mask.tolist()
        return [
            rect.min_x <= xs[i] <= rect.max_x
            and rect.min_y <= ys[i] <= rect.max_y
            for i in range(n)
        ]

    def squared_dists(
        self, xs: Sequence[float], ys: Sequence[float], qx: float, qy: float
    ) -> list[float]:
        """Per-row squared distance to ``(qx, qy)`` as ``dx*dx + dy*dy``."""
        n = len(xs)
        if self._batch(n):
            np = self._np
            dx = np.asarray(xs, dtype=np.float64) - qx
            dy = np.asarray(ys, dtype=np.float64) - qy
            return (dx * dx + dy * dy).tolist()
        out = []
        for i in range(n):
            dx = xs[i] - qx
            dy = ys[i] - qy
            out.append(dx * dx + dy * dy)
        return out

    def top_k_rows(
        self,
        xs: Sequence[float],
        ys: Sequence[float],
        qx: float,
        qy: float,
        k: int,
    ) -> list[int]:
        """Rows of the ``k`` nearest points, ordered by ``(d2, row)``.

        The row index breaks exact distance ties, so the selection is
        fully deterministic — unlike a bare ``argpartition``, whose
        boundary ties depend on the partitioning order.
        """
        n = len(xs)
        if k <= 0 or n == 0:
            return []
        k = min(k, n)
        if self._batch(n):
            np = self._np
            dx = np.asarray(xs, dtype=np.float64) - qx
            dy = np.asarray(ys, dtype=np.float64) - qy
            d2 = dx * dx + dy * dy
            if k < n:
                part = np.argpartition(d2, k - 1)
                threshold = d2[part[k - 1]]
                cand = np.flatnonzero(d2 <= threshold)
            else:
                cand = np.arange(n)
            order = cand[np.lexsort((cand, d2[cand]))]
            return order[:k].tolist()
        d2 = self.squared_dists(xs, ys, qx, qy)
        return heapq.nsmallest(k, range(n), key=lambda i: (d2[i], i))

    def cells_of(
        self,
        xs: Sequence[float],
        ys: Sequence[float],
        min_x: float,
        min_y: float,
        cell_w: float,
        cell_h: float,
        m: int,
    ) -> list[tuple[int, int]]:
        """Per-row grid cell ids, clamped exactly like ``GridIndex.cell_of``."""
        n = len(xs)
        if self._batch(n):
            np = self._np
            i = ((np.asarray(xs, dtype=np.float64) - min_x) / cell_w)
            j = ((np.asarray(ys, dtype=np.float64) - min_y) / cell_h)
            # astype truncates toward zero, matching int().
            ci = np.minimum(np.maximum(i.astype(np.int64), 0), m - 1)
            cj = np.minimum(np.maximum(j.astype(np.int64), 0), m - 1)
            return list(zip(ci.tolist(), cj.tolist()))
        out = []
        for r in range(n):
            i = int((xs[r] - min_x) / cell_w)
            j = int((ys[r] - min_y) / cell_h)
            out.append((min(max(i, 0), m - 1), min(max(j, 0), m - 1)))
        return out

    # ------------------------------------------------------------------
    # Rect-column kernels
    # ------------------------------------------------------------------
    def rects_intersecting(
        self,
        minxs: Sequence[float],
        minys: Sequence[float],
        maxxs: Sequence[float],
        maxys: Sequence[float],
        rect,
    ) -> list[bool]:
        """Per-row mask: does stored rect ``i`` intersect ``rect`` (closed)."""
        n = len(minxs)
        if self._batch(n):
            np = self._np
            mask = (
                (np.asarray(minxs, dtype=np.float64) <= rect.max_x)
                & (np.asarray(maxxs, dtype=np.float64) >= rect.min_x)
                & (np.asarray(minys, dtype=np.float64) <= rect.max_y)
                & (np.asarray(maxys, dtype=np.float64) >= rect.min_y)
            )
            return mask.tolist()
        return [
            minxs[i] <= rect.max_x
            and rect.min_x <= maxxs[i]
            and minys[i] <= rect.max_y
            and rect.min_y <= maxys[i]
            for i in range(n)
        ]

    def rects_contained_in(
        self,
        minxs: Sequence[float],
        minys: Sequence[float],
        maxxs: Sequence[float],
        maxys: Sequence[float],
        rect,
    ) -> list[bool]:
        """Per-row mask: is stored rect ``i`` fully inside ``rect``."""
        n = len(minxs)
        if self._batch(n):
            np = self._np
            mask = (
                (np.asarray(minxs, dtype=np.float64) >= rect.min_x)
                & (np.asarray(minys, dtype=np.float64) >= rect.min_y)
                & (np.asarray(maxxs, dtype=np.float64) <= rect.max_x)
                & (np.asarray(maxys, dtype=np.float64) <= rect.max_y)
            )
            return mask.tolist()
        return [
            rect.min_x <= minxs[i]
            and rect.min_y <= minys[i]
            and rect.max_x >= maxxs[i]
            and rect.max_y >= maxys[i]
            for i in range(n)
        ]

    def range_affected(
        self,
        minxs: Sequence[float],
        minys: Sequence[float],
        maxxs: Sequence[float],
        maxys: Sequence[float],
        p,
        p_lst,
    ) -> list[bool]:
        """Per-row ``RangeQuery.is_affected_by`` over query-rect columns.

        Row ``i`` is affected iff membership of ``p`` in rect ``i``
        differs from membership of ``p_lst`` (``p_lst is None`` counts as
        outside every rectangle).
        """
        n = len(minxs)
        if self._batch(n):
            np = self._np
            lox = np.asarray(minxs, dtype=np.float64)
            loy = np.asarray(minys, dtype=np.float64)
            hix = np.asarray(maxxs, dtype=np.float64)
            hiy = np.asarray(maxys, dtype=np.float64)
            inside_new = (
                (lox <= p.x) & (p.x <= hix) & (loy <= p.y) & (p.y <= hiy)
            )
            if p_lst is None:
                return inside_new.tolist()
            inside_old = (
                (lox <= p_lst.x) & (p_lst.x <= hix)
                & (loy <= p_lst.y) & (p_lst.y <= hiy)
            )
            return (inside_new != inside_old).tolist()
        out = []
        for i in range(n):
            inside_new = (
                minxs[i] <= p.x <= maxxs[i] and minys[i] <= p.y <= maxys[i]
            )
            inside_old = p_lst is not None and (
                minxs[i] <= p_lst.x <= maxxs[i]
                and minys[i] <= p_lst.y <= maxys[i]
            )
            out.append(inside_new != inside_old)
        return out

    def min_overlap_child(
        self,
        minxs: Sequence[float],
        minys: Sequence[float],
        maxxs: Sequence[float],
        maxys: Sequence[float],
        rect,
    ) -> int:
        """Row of the R* least-``(overlap delta, enlargement, area)`` child.

        Batch form of ``RStarTree._pick_min_overlap_child``'s selection
        rule: for each candidate row, grow its MBR to cover ``rect`` and
        sum the resulting pairwise overlap increase against every sibling
        (left to right, exactly as the scalar loop accumulates); the
        first row at the lexicographic minimum key wins.  The scalar
        loop's containment fast path and early abort are pure pruning —
        the full computation reproduces their keys exactly (a containing
        child has overlap delta and enlargement exactly ``0.0``; an
        aborted candidate's full sum exceeds the running best because the
        per-sibling terms are non-negative in floating point).
        """
        n = len(minxs)
        if n == 0:
            raise ValueError("min_overlap_child needs at least one row")
        if self._batch(n):
            np = self._np
            lox = np.asarray(minxs, dtype=np.float64)
            loy = np.asarray(minys, dtype=np.float64)
            hix = np.asarray(maxxs, dtype=np.float64)
            hiy = np.asarray(maxys, dtype=np.float64)
            ulox = np.minimum(lox, rect.min_x)
            uloy = np.minimum(loy, rect.min_y)
            uhix = np.maximum(hix, rect.max_x)
            uhiy = np.maximum(hiy, rect.max_y)
            areas = (hix - lox) * (hiy - loy)
            enlargement = (uhix - ulox) * (uhiy - uloy) - areas
            # Containment fast path, mirroring the scalar branch: a child
            # already covering ``rect`` has overlap delta and enlargement
            # exactly ``0.0``, so the smallest-area containing row (first
            # on ties, like the scalar strict-``<`` scan) wins — *unless*
            # some non-containing row also has enlargement ``0.0`` (a
            # degenerate MBR growing along a zero-extent axis), whose key
            # could tie at ``(0.0, 0.0, area)`` too; then the full
            # pairwise pass below decides.
            containing = (
                (lox <= rect.min_x) & (loy <= rect.min_y)
                & (hix >= rect.max_x) & (hiy >= rect.max_y)
            )
            if containing.any() and not bool(
                (~containing & (enlargement == 0.0)).any()
            ):
                crows = np.flatnonzero(containing)
                return int(crows[np.argmin(areas[crows])])
            # One stacked pairwise pass: rows 0..n-1 hold the union MBRs,
            # rows n..2n-1 the originals, columns the siblings.  Every
            # element evaluates the exact per-pair overlap expression of
            # the scalar loop, so the difference of the two row blocks
            # matches its per-sibling ``grown`` terms bit for bit.
            slox = np.concatenate((ulox, lox))
            sloy = np.concatenate((uloy, loy))
            shix = np.concatenate((uhix, hix))
            shiy = np.concatenate((uhiy, hiy))
            w = np.minimum(shix[:, None], hix[None, :]) - np.maximum(
                slox[:, None], lox[None, :]
            )
            h = np.minimum(shiy[:, None], hiy[None, :]) - np.maximum(
                sloy[:, None], loy[None, :]
            )
            ov = np.where((w <= 0.0) | (h <= 0.0), 0.0, w * h)
            grown = ov[:n] - ov[n:]
            np.fill_diagonal(grown, 0.0)
            # Sequential row sums: matches the scalar left-to-right
            # accumulation bit for bit (the terms are >= 0, so skipping
            # the zero terms — as the scalar loop does — is a no-op).
            deltas = np.cumsum(grown, axis=1)[:, -1]
            # Stable lexicographic argmin — first row at the minimum
            # ``(overlap delta, enlargement, area)`` key, like the scalar
            # scan's strict ``<`` comparisons.
            return int(np.lexsort((areas, enlargement, deltas))[0])
        best = 0
        best_key = (math.inf, math.inf, math.inf)
        for i in range(n):
            ulox = min(minxs[i], rect.min_x)
            uloy = min(minys[i], rect.min_y)
            uhix = max(maxxs[i], rect.max_x)
            uhiy = max(maxys[i], rect.max_y)
            area = (maxxs[i] - minxs[i]) * (maxys[i] - minys[i])
            if (
                ulox == minxs[i] and uloy == minys[i]
                and uhix == maxxs[i] and uhiy == maxys[i]
            ):
                key = (0.0, 0.0, area)
                if key < best_key:
                    best_key = key
                    best = i
                continue
            overlap_delta = 0.0
            aborted = False
            best_delta = best_key[0]
            for j in range(n):
                if j == i:
                    continue
                w_u = min(uhix, maxxs[j]) - max(ulox, minxs[j])
                h_u = min(uhiy, maxys[j]) - max(uloy, minys[j])
                grown = 0.0 if w_u <= 0.0 or h_u <= 0.0 else w_u * h_u
                w_o = min(maxxs[i], maxxs[j]) - max(minxs[i], minxs[j])
                h_o = min(maxys[i], maxys[j]) - max(minys[i], minys[j])
                grown -= 0.0 if w_o <= 0.0 or h_o <= 0.0 else w_o * h_o
                if grown > 0.0:
                    overlap_delta += grown
                    if overlap_delta > best_delta:
                        aborted = True
                        break
            if aborted:
                continue
            enlargement = (uhix - ulox) * (uhiy - uloy) - area
            key = (overlap_delta, enlargement, area)
            if key < best_key:
                best_key = key
                best = i
        return best

    def quadrant_corners(
        self,
        px: float,
        py: float,
        minxs: Sequence[float],
        minys: Sequence[float],
        maxxs: Sequence[float],
        maxys: Sequence[float],
        sx: float,
        sy: float,
        width: float,
        height: float,
    ) -> list[tuple[float, float]]:
        """Quadrant-local obstacle corners for the Section 5.3 staircase.

        Batch form of ``repro.core.batch._local_min_corner`` over obstacle
        columns: rows that cannot constrain the quadrant are dropped, the
        rest contribute ``(max(lx1, 0), max(ly1, 0))`` in input order.
        ``np.where(v >= 0.0, v, 0.0)`` replicates Python's
        ``max(v, 0.0)`` exactly, including for ``-0.0``.
        """
        n = len(minxs)
        if self._batch(n):
            np = self._np
            lox = np.asarray(minxs, dtype=np.float64)
            loy = np.asarray(minys, dtype=np.float64)
            hix = np.asarray(maxxs, dtype=np.float64)
            hiy = np.asarray(maxys, dtype=np.float64)
            if sx > 0:
                lx1, lx2 = lox - px, hix - px
            else:
                lx1, lx2 = px - hix, px - lox
            if sy > 0:
                ly1, ly2 = loy - py, hiy - py
            else:
                ly1, ly2 = py - hiy, py - loy
            keep = ~(
                (lx2 <= 0.0) | (ly2 <= 0.0) | (lx1 >= width) | (ly1 >= height)
            )
            cx = np.where(lx1 >= 0.0, lx1, 0.0)
            cy = np.where(ly1 >= 0.0, ly1, 0.0)
            return [
                (x, y)
                for k, x, y in zip(keep.tolist(), cx.tolist(), cy.tolist())
                if k
            ]
        out = []
        for i in range(n):
            if sx > 0:
                lx1, lx2 = minxs[i] - px, maxxs[i] - px
            else:
                lx1, lx2 = px - maxxs[i], px - minxs[i]
            if sy > 0:
                ly1, ly2 = minys[i] - py, maxys[i] - py
            else:
                ly1, ly2 = py - maxys[i], py - minys[i]
            if lx2 <= 0.0 or ly2 <= 0.0 or lx1 >= width or ly1 >= height:
                continue
            out.append((max(lx1, 0.0), max(ly1, 0.0)))
        return out

    # ------------------------------------------------------------------
    # Tick-wide row kernels (gather -> dispatch -> scatter pipeline)
    # ------------------------------------------------------------------
    def affected_rows(
        self,
        minxs: Sequence[float],
        minys: Sequence[float],
        maxxs: Sequence[float],
        maxys: Sequence[float],
        nxs: Sequence[float],
        nys: Sequence[float],
        oxs: Sequence[float],
        oys: Sequence[float],
    ) -> tuple[list[bool], list[bool]]:
        """Row-wise ``range_affected`` with a per-row point pair.

        Unlike :meth:`range_affected` (one update against many rects),
        every row here carries its own query rect *and* its own
        new/old point pair, so a whole tick's (report x candidate range
        query) work becomes one dispatch.  Returns ``(affected,
        inside_new)`` masks; ``inside_new`` is scattered into
        ``reevaluate_range`` so the membership flip needs no second
        containment check.  Pure comparisons — no FP risk.
        """
        n = len(minxs)
        if self._batch(n):
            np = self._np
            lox = np.asarray(minxs, dtype=np.float64)
            loy = np.asarray(minys, dtype=np.float64)
            hix = np.asarray(maxxs, dtype=np.float64)
            hiy = np.asarray(maxys, dtype=np.float64)
            nx = np.asarray(nxs, dtype=np.float64)
            ny = np.asarray(nys, dtype=np.float64)
            ox = np.asarray(oxs, dtype=np.float64)
            oy = np.asarray(oys, dtype=np.float64)
            inside_new = (lox <= nx) & (nx <= hix) & (loy <= ny) & (ny <= hiy)
            inside_old = (lox <= ox) & (ox <= hix) & (loy <= oy) & (oy <= hiy)
            return (inside_new != inside_old).tolist(), inside_new.tolist()
        affected = []
        inside = []
        for i in range(n):
            inside_new = (
                minxs[i] <= nxs[i] <= maxxs[i]
                and minys[i] <= nys[i] <= maxys[i]
            )
            inside_old = (
                minxs[i] <= oxs[i] <= maxxs[i]
                and minys[i] <= oys[i] <= maxys[i]
            )
            affected.append(inside_new != inside_old)
            inside.append(inside_new)
        return affected, inside

    def quadrant_corners_rows(
        self,
        pxs: Sequence[float],
        pys: Sequence[float],
        minxs: Sequence[float],
        minys: Sequence[float],
        maxxs: Sequence[float],
        maxys: Sequence[float],
        sxs: Sequence[float],
        sys_: Sequence[float],
        widths: Sequence[float],
        heights: Sequence[float],
    ) -> tuple[list[bool], list[float], list[float]]:
        """Row-wise :meth:`quadrant_corners` with per-row point/sign/extent.

        Each row is one (update, quadrant, obstacle) combination, so a
        whole tick's Section 5.3 corner localisation becomes one
        dispatch.  Returns parallel ``(keep, corner_x, corner_y)``
        columns in input order; callers scatter kept corners back per
        (update, quadrant) segment.  The sign-dependent subtractions are
        computed per element exactly as the scalar branch orders them
        (``np.where`` selects between elementwise expressions whose kept
        lane performs the identical subtraction), and ``np.where(v >=
        0.0, v, 0.0)`` replicates ``max(v, 0.0)`` including ``-0.0``.
        """
        n = len(minxs)
        if self._batch(n):
            np = self._np
            px = np.asarray(pxs, dtype=np.float64)
            py = np.asarray(pys, dtype=np.float64)
            lox = np.asarray(minxs, dtype=np.float64)
            loy = np.asarray(minys, dtype=np.float64)
            hix = np.asarray(maxxs, dtype=np.float64)
            hiy = np.asarray(maxys, dtype=np.float64)
            xpos = np.asarray(sxs, dtype=np.float64) > 0
            ypos = np.asarray(sys_, dtype=np.float64) > 0
            lx1 = np.where(xpos, lox - px, px - hix)
            lx2 = np.where(xpos, hix - px, px - lox)
            ly1 = np.where(ypos, loy - py, py - hiy)
            ly2 = np.where(ypos, hiy - py, py - loy)
            keep = ~(
                (lx2 <= 0.0) | (ly2 <= 0.0)
                | (lx1 >= np.asarray(widths, dtype=np.float64))
                | (ly1 >= np.asarray(heights, dtype=np.float64))
            )
            cx = np.where(lx1 >= 0.0, lx1, 0.0)
            cy = np.where(ly1 >= 0.0, ly1, 0.0)
            return keep.tolist(), cx.tolist(), cy.tolist()
        keep = []
        cxs = []
        cys = []
        for i in range(n):
            if sxs[i] > 0:
                lx1, lx2 = minxs[i] - pxs[i], maxxs[i] - pxs[i]
            else:
                lx1, lx2 = pxs[i] - maxxs[i], pxs[i] - minxs[i]
            if sys_[i] > 0:
                ly1, ly2 = minys[i] - pys[i], maxys[i] - pys[i]
            else:
                ly1, ly2 = pys[i] - maxys[i], pys[i] - minys[i]
            keep.append(
                not (
                    lx2 <= 0.0 or ly2 <= 0.0
                    or lx1 >= widths[i] or ly1 >= heights[i]
                )
            )
            cxs.append(max(lx1, 0.0))
            cys.append(max(ly1, 0.0))
        return keep, cxs, cys

    # ------------------------------------------------------------------
    # Segmented kernels (per-report segments over shared resident columns)
    # ------------------------------------------------------------------
    def affected_deltas(
        self,
        minxs: Sequence[float],
        minys: Sequence[float],
        maxxs: Sequence[float],
        maxys: Sequence[float],
        seg_lens: Sequence[int],
        nxs: Sequence[float],
        nys: Sequence[float],
        oxs: Sequence[float],
        oys: Sequence[float],
    ) -> tuple[list[bool], list[bool]]:
        """Segmented :meth:`affected_rows`: one point pair per segment.

        Each report contributes one ``(nx, ny, ox, oy)`` pair and a run
        of ``seg_lens[k]`` candidate rects in the rect columns (the
        planner extends them straight from cached candidate columns —
        no per-row point duplication at gather time).  The points are
        broadcast over their segment with ``np.repeat`` (exact copies,
        no arithmetic), then the test is the comparison-only
        ``affected_rows`` arithmetic.  Returns ``(affected,
        inside_new)`` masks in rect-row order.
        """
        n = len(minxs)
        if self._batch(n):
            np = self._np
            reps = np.asarray(seg_lens, dtype=np.int64)
            nx = np.repeat(np.asarray(nxs, dtype=np.float64), reps)
            ny = np.repeat(np.asarray(nys, dtype=np.float64), reps)
            ox = np.repeat(np.asarray(oxs, dtype=np.float64), reps)
            oy = np.repeat(np.asarray(oys, dtype=np.float64), reps)
            lox = np.asarray(minxs, dtype=np.float64)
            loy = np.asarray(minys, dtype=np.float64)
            hix = np.asarray(maxxs, dtype=np.float64)
            hiy = np.asarray(maxys, dtype=np.float64)
            inside_new = (lox <= nx) & (nx <= hix) & (loy <= ny) & (ny <= hiy)
            inside_old = (lox <= ox) & (ox <= hix) & (loy <= oy) & (oy <= hiy)
            return (inside_new != inside_old).tolist(), inside_new.tolist()
        affected = []
        inside = []
        i = 0
        for k, seg in enumerate(seg_lens):
            nx, ny, ox, oy = nxs[k], nys[k], oxs[k], oys[k]
            for _ in range(seg):
                inside_new = (
                    minxs[i] <= nx <= maxxs[i]
                    and minys[i] <= ny <= maxys[i]
                )
                inside_old = (
                    minxs[i] <= ox <= maxxs[i]
                    and minys[i] <= oy <= maxys[i]
                )
                affected.append(inside_new != inside_old)
                inside.append(inside_new)
                i += 1
        return affected, inside

    def knn_gate_rows(
        self,
        cxs: Sequence[float],
        cys: Sequence[float],
        rads: Sequence[float],
        seg_lens: Sequence[int],
        nxs: Sequence[float],
        nys: Sequence[float],
        oxs: Sequence[float],
        oys: Sequence[float],
    ) -> tuple[list[bool], list[bool]]:
        """Segmented quarantine-circle membership gates for kNN queries.

        Each report contributes one point pair and ``seg_lens[k]``
        candidate circle rows (centre + radius).  Replicates
        ``Circle.contains_point`` with ``eps == 0`` exactly: the centre-
        minus-point squared distance (``dx*dx + dy*dy``, matching
        ``Point.squared_distance_to``'s operand order) against ``r*r``.
        Returns ``(in_new, in_old)`` masks in circle-row order; the
        delta consumer turns them into ``is_affected_by`` verdicts and
        feeds them to ``reevaluate_knn`` so the scalar path never
        re-tests the quarantine circle.
        """
        n = len(cxs)
        if self._batch(n):
            np = self._np
            reps = np.asarray(seg_lens, dtype=np.int64)
            nx = np.repeat(np.asarray(nxs, dtype=np.float64), reps)
            ny = np.repeat(np.asarray(nys, dtype=np.float64), reps)
            ox = np.repeat(np.asarray(oxs, dtype=np.float64), reps)
            oy = np.repeat(np.asarray(oys, dtype=np.float64), reps)
            cx = np.asarray(cxs, dtype=np.float64)
            cy = np.asarray(cys, dtype=np.float64)
            r = np.asarray(rads, dtype=np.float64)
            rr = r * r
            dxn = cx - nx
            dyn = cy - ny
            dxo = cx - ox
            dyo = cy - oy
            in_new = dxn * dxn + dyn * dyn <= rr
            in_old = dxo * dxo + dyo * dyo <= rr
            return in_new.tolist(), in_old.tolist()
        in_new = []
        in_old = []
        i = 0
        for k, seg in enumerate(seg_lens):
            nx, ny, ox, oy = nxs[k], nys[k], oxs[k], oys[k]
            for _ in range(seg):
                cx, cy, r = cxs[i], cys[i], rads[i]
                dxn = cx - nx
                dyn = cy - ny
                dxo = cx - ox
                dyo = cy - oy
                rr = r * r
                in_new.append(dxn * dxn + dyn * dyn <= rr)
                in_old.append(dxo * dxo + dyo * dyo <= rr)
                i += 1
        return in_new, in_old

    def quadrant_corners_grouped(
        self,
        pxs: Sequence[float],
        pys: Sequence[float],
        quad_widths: Sequence[Sequence[float]],
        quad_heights: Sequence[Sequence[float]],
        seg_lens: Sequence[int],
        minxs: Sequence[float],
        minys: Sequence[float],
        maxxs: Sequence[float],
        maxys: Sequence[float],
    ) -> tuple[list[bool], list[bool], list[float], list[float]]:
        """Segmented :meth:`quadrant_corners_rows` plus containment.

        Each report contributes one point, four quadrant ``(width,
        height)`` extents (``quad_widths[q][k]`` is quadrant ``q`` of
        segment ``k``), and ``seg_lens[k]`` *candidate* obstacle rects —
        candidates, because the rects come straight from resident
        per-cell columns and the closed containment test
        (``collect_range_obstacles``'s exclusion) moves in-kernel: a
        contained rect is not an obstacle for this point and its rows
        are dropped at scatter.  Quadrant signs are the module constants
        (no sign columns), so the sign-dependent subtractions compile to
        straight-line expressions per quadrant block.

        Returns ``(contained, keep, corner_x, corner_y)``: ``contained``
        in rect-row order (length ``n``), the corner columns
        quadrant-major (block ``q`` covers global rows ``[q*n, (q+1)*n)``
        in rect-row order).  All comparisons / sign-preserving ``max`` —
        same FP rules as :meth:`quadrant_corners_rows`.
        """
        n = len(minxs)
        if self._batch(5 * n):
            np = self._np
            reps = np.asarray(seg_lens, dtype=np.int64)
            px = np.repeat(np.asarray(pxs, dtype=np.float64), reps)
            py = np.repeat(np.asarray(pys, dtype=np.float64), reps)
            lox = np.asarray(minxs, dtype=np.float64)
            loy = np.asarray(minys, dtype=np.float64)
            hix = np.asarray(maxxs, dtype=np.float64)
            hiy = np.asarray(maxys, dtype=np.float64)
            contained = (
                (lox <= px) & (px <= hix) & (loy <= py) & (py <= hiy)
            )
            keeps = []
            cxs_out = []
            cys_out = []
            for q, (sx, sy) in enumerate(_QUADRANT_SIGNS):
                if sx > 0:
                    lx1 = lox - px
                    lx2 = hix - px
                else:
                    lx1 = px - hix
                    lx2 = px - lox
                if sy > 0:
                    ly1 = loy - py
                    ly2 = hiy - py
                else:
                    ly1 = py - hiy
                    ly2 = py - loy
                w = np.repeat(
                    np.asarray(quad_widths[q], dtype=np.float64), reps
                )
                h = np.repeat(
                    np.asarray(quad_heights[q], dtype=np.float64), reps
                )
                keeps.append(
                    ~((lx2 <= 0.0) | (ly2 <= 0.0) | (lx1 >= w) | (ly1 >= h))
                )
                cxs_out.append(np.where(lx1 >= 0.0, lx1, 0.0))
                cys_out.append(np.where(ly1 >= 0.0, ly1, 0.0))
            return (
                contained.tolist(),
                np.concatenate(keeps).tolist() if n else [],
                np.concatenate(cxs_out).tolist() if n else [],
                np.concatenate(cys_out).tolist() if n else [],
            )
        contained = []
        i = 0
        for k, seg in enumerate(seg_lens):
            px, py = pxs[k], pys[k]
            for _ in range(seg):
                contained.append(
                    minxs[i] <= px <= maxxs[i]
                    and minys[i] <= py <= maxys[i]
                )
                i += 1
        keep = []
        cxs_out = []
        cys_out = []
        for q, (sx, sy) in enumerate(_QUADRANT_SIGNS):
            i = 0
            for k, seg in enumerate(seg_lens):
                px, py = pxs[k], pys[k]
                width = quad_widths[q][k]
                height = quad_heights[q][k]
                for _ in range(seg):
                    if sx > 0:
                        lx1, lx2 = minxs[i] - px, maxxs[i] - px
                    else:
                        lx1, lx2 = px - maxxs[i], px - minxs[i]
                    if sy > 0:
                        ly1, ly2 = minys[i] - py, maxys[i] - py
                    else:
                        ly1, ly2 = py - maxys[i], py - minys[i]
                    keep.append(
                        not (
                            lx2 <= 0.0 or ly2 <= 0.0
                            or lx1 >= width or ly1 >= height
                        )
                    )
                    cxs_out.append(max(lx1, 0.0))
                    cys_out.append(max(ly1, 0.0))
                    i += 1
        return contained, keep, cxs_out, cys_out

    # ------------------------------------------------------------------
    # Grouped kernels (one dispatch over many queries, query-id keyed)
    # ------------------------------------------------------------------
    def grouped_points_in_rects(
        self,
        xs: Sequence[float],
        ys: Sequence[float],
        minxs: Sequence[float],
        minys: Sequence[float],
        maxxs: Sequence[float],
        maxys: Sequence[float],
    ) -> list[list[bool]]:
        """Containment of every point against every query rect.

        One dispatch answers ``Q`` range queries over the same ``N``
        point columns; ``out[q][i]`` is ``points_in_rect`` of point ``i``
        against rect ``q``.  Counts ``Q * N`` rows.  Pure comparisons.
        """
        q = len(minxs)
        n = len(xs)
        if q == 0 or n == 0:
            return [[False] * n for _ in range(q)]
        if self._batch(q * n):
            np = self._np
            x = np.asarray(xs, dtype=np.float64)[None, :]
            y = np.asarray(ys, dtype=np.float64)[None, :]
            lox = np.asarray(minxs, dtype=np.float64)[:, None]
            loy = np.asarray(minys, dtype=np.float64)[:, None]
            hix = np.asarray(maxxs, dtype=np.float64)[:, None]
            hiy = np.asarray(maxys, dtype=np.float64)[:, None]
            mask = (x >= lox) & (x <= hix) & (y >= loy) & (y <= hiy)
            return [row.tolist() for row in mask]
        return [
            [
                minxs[j] <= xs[i] <= maxxs[j]
                and minys[j] <= ys[i] <= maxys[j]
                for i in range(n)
            ]
            for j in range(q)
        ]

    def grouped_top_k(
        self,
        xs: Sequence[float],
        ys: Sequence[float],
        qxs: Sequence[float],
        qys: Sequence[float],
        ks: Sequence[int],
    ) -> list[list[int]]:
        """Segment-reduced :meth:`top_k_rows` for many centres at once.

        ``out[q]`` lists the rows of the ``ks[q]`` nearest points to
        ``(qxs[q], qys[q])`` ordered by ``(d2, row)`` — identical to a
        per-centre ``top_k_rows`` call.  The distance matrix uses the
        same elementwise ``dx*dx + dy*dy`` arithmetic, and a stable
        argsort reproduces the ``(d2, row)`` tie order exactly.  Counts
        ``Q * N`` rows.
        """
        q = len(qxs)
        n = len(xs)
        if q == 0:
            return []
        if n == 0:
            return [[] for _ in range(q)]
        if self._batch(q * n):
            np = self._np
            dx = np.asarray(xs, dtype=np.float64)[None, :] - np.asarray(
                qxs, dtype=np.float64
            )[:, None]
            dy = np.asarray(ys, dtype=np.float64)[None, :] - np.asarray(
                qys, dtype=np.float64
            )[:, None]
            d2 = dx * dx + dy * dy
            order = np.argsort(d2, axis=1, kind="stable")
            return [
                order[j, : min(ks[j], n)].tolist() if ks[j] > 0 else []
                for j in range(q)
            ]
        out = []
        for j in range(q):
            if ks[j] <= 0:
                out.append([])
                continue
            cx, cy = qxs[j], qys[j]
            d2 = []
            for i in range(n):
                dx = xs[i] - cx
                dy = ys[i] - cy
                d2.append(dx * dx + dy * dy)
            out.append(
                heapq.nsmallest(
                    min(ks[j], n), range(n), key=lambda i: (d2[i], i)
                )
            )
        return out

    # ------------------------------------------------------------------
    # Scalar-value helpers
    # ------------------------------------------------------------------
    def mask_leq(
        self, values: Sequence[float], bound: float
    ) -> list[bool]:
        """Per-row mask ``values[i] <= bound`` (comparison only, no FP risk)."""
        n = len(values)
        if self._batch(n):
            np = self._np
            return (np.asarray(values, dtype=np.float64) <= bound).tolist()
        return [values[i] <= bound for i in range(n)]


#: Shared default instance (NumPy when available, no metrics).
DEFAULT_KERNELS = Kernels()
