"""repro — safe-region-based monitoring of continuous spatial queries.

A from-scratch reproduction of Hu, Xu & Lee, *"A Generic Framework for
Monitoring Continuous Spatial Queries over Moving Objects"* (SIGMOD 2005):
the safe-region framework (server, query evaluation/reevaluation with lazy
probes, safe-region geometry), its substrates (R*-tree with bottom-up
updates, grid query index, random-waypoint mobility, a discrete event
simulator), the paper's baselines (periodic and optimal monitoring), and a
benchmark harness regenerating every figure of the evaluation.

Quick start::

    from repro import (
        DatabaseServer, KNNQuery, Point, RangeQuery, Rect, ServerConfig,
    )

    positions = {"taxi-1": Point(0.2, 0.3), "taxi-2": Point(0.7, 0.8)}
    server = DatabaseServer(position_oracle=positions.__getitem__)
    server.load_objects(positions.items())
    query = KNNQuery(Point(0.5, 0.5), k=1)
    server.register_query(query)
    assert query.results == ["taxi-2"]
"""

from repro.baselines import PRDSimulation, optimal_report
from repro.core import (
    DatabaseServer,
    KNNQuery,
    Query,
    RangeQuery,
    ResultChange,
    ServerConfig,
    UpdateOutcome,
)
from repro.geometry import Circle, Point, Rect, Ring
from repro.index import BruteForceIndex, GridIndex, RStarTree
from repro.mobility import MobileClient, RandomWaypointModel, Trajectory
from repro.simulation import (
    GroundTruth,
    Scenario,
    SchemeReport,
    SRBSimulation,
)
from repro.workloads import WorkloadConfig, generate_queries

__version__ = "1.0.0"

__all__ = [
    "DatabaseServer",
    "ServerConfig",
    "Query",
    "RangeQuery",
    "KNNQuery",
    "ResultChange",
    "UpdateOutcome",
    "Point",
    "Rect",
    "Circle",
    "Ring",
    "RStarTree",
    "GridIndex",
    "BruteForceIndex",
    "MobileClient",
    "RandomWaypointModel",
    "Trajectory",
    "Scenario",
    "GroundTruth",
    "SchemeReport",
    "SRBSimulation",
    "PRDSimulation",
    "optimal_report",
    "WorkloadConfig",
    "generate_queries",
    "__version__",
]
