"""Linear motion helpers used by the event-driven simulator.

A moving object follows piecewise-linear trajectories (random waypoint
model, Section 7.1).  For the safe-region scheme, the simulator needs the
*exact* moment an object crosses its safe-region boundary so that the
source-initiated update event can be scheduled analytically rather than by
polling.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.geometry.circle import Circle
from repro.geometry.point import Point
from repro.geometry.rect import Rect

INFINITY = float("inf")


@dataclass(frozen=True, slots=True)
class LinearMotion:
    """Position ``start + (t - start_time) * velocity`` for ``t >= start_time``."""

    start: Point
    velocity_x: float
    velocity_y: float
    start_time: float = 0.0

    @property
    def speed(self) -> float:
        return math.hypot(self.velocity_x, self.velocity_y)

    def position_at(self, t: float) -> Point:
        """Position at absolute time ``t`` (must be >= ``start_time``)."""
        dt = t - self.start_time
        return Point(
            self.start.x + self.velocity_x * dt,
            self.start.y + self.velocity_y * dt,
        )

    def exit_time_from_rect(self, rect: Rect) -> float:
        """Absolute time at which the motion first leaves ``rect``.

        Returns ``start_time`` when the start point is already outside and
        ``inf`` when the object never leaves (it is stationary inside, or
        moving parallel to an unbounded direction — impossible for a proper
        rectangle, so in practice only the stationary case).
        """
        return self.start_time + exit_time_from_rect(
            self.start, self.velocity_x, self.velocity_y, rect
        )

    def exit_time_from_circle(self, circle: Circle) -> float:
        """Absolute time at which the motion first leaves ``circle``."""
        return self.start_time + exit_time_from_circle(
            self.start, self.velocity_x, self.velocity_y, circle
        )


def position_at(
    start: Point, velocity_x: float, velocity_y: float, dt: float
) -> Point:
    """Position after moving for ``dt`` from ``start`` at the velocity."""
    return Point(start.x + velocity_x * dt, start.y + velocity_y * dt)


def exit_time_from_rect(
    start: Point, velocity_x: float, velocity_y: float, rect: Rect
) -> float:
    """Relative time until a linear motion first leaves a rectangle.

    Returns 0 when ``start`` is already outside, ``inf`` when the motion
    never leaves (stationary inside the rectangle).
    """
    if not rect.contains_point(start):
        return 0.0

    t_exit = INFINITY
    if velocity_x > 0.0:
        t_exit = min(t_exit, (rect.max_x - start.x) / velocity_x)
    elif velocity_x < 0.0:
        t_exit = min(t_exit, (rect.min_x - start.x) / velocity_x)
    if velocity_y > 0.0:
        t_exit = min(t_exit, (rect.max_y - start.y) / velocity_y)
    elif velocity_y < 0.0:
        t_exit = min(t_exit, (rect.min_y - start.y) / velocity_y)
    return max(t_exit, 0.0)


def exit_time_from_circle(
    start: Point, velocity_x: float, velocity_y: float, circle: Circle
) -> float:
    """Relative time until a linear motion first leaves a disk.

    Returns 0 when ``start`` is already outside, ``inf`` when stationary
    inside the disk.
    """
    cx = start.x - circle.center.x
    cy = start.y - circle.center.y
    if cx * cx + cy * cy > circle.radius * circle.radius:
        return 0.0

    a = velocity_x * velocity_x + velocity_y * velocity_y
    if a == 0.0:
        return INFINITY
    b = 2.0 * (cx * velocity_x + cy * velocity_y)
    c = cx * cx + cy * cy - circle.radius * circle.radius
    disc = b * b - 4.0 * a * c
    if disc < 0.0:  # numerically should not happen for an inside start
        disc = 0.0
    # The larger root is the exit time (the start is inside, so c <= 0).
    t = (-b + math.sqrt(disc)) / (2.0 * a)
    return max(t, 0.0)
