"""Rings (annuli) — safe-region constraint for an i-th nearest neighbour.

Section 5.2 of the paper: for an order-sensitive kNN query, the i-th NN must
stay inside the ring centred at the query point with inner radius
``Delta(q, o_{i-1}.sr)`` and outer radius ``delta(q, o_{i+1}.sr)``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.geometry.circle import Circle
from repro.geometry.point import Point
from repro.geometry.rect import Rect


@dataclass(frozen=True, slots=True)
class Ring:
    """A closed annulus: points ``p`` with ``inner <= d(center, p) <= outer``.

    ``inner == 0`` degrades the ring to a disk; ``outer == inf`` degrades it
    to the complement of a disk (the paper's i = 1 and i = k corner cases).
    """

    center: Point
    inner: float
    outer: float

    def __post_init__(self) -> None:
        if self.inner < 0:
            raise ValueError(f"negative inner radius: {self.inner}")
        if self.outer < self.inner:
            raise ValueError(
                f"outer radius {self.outer} smaller than inner {self.inner}"
            )

    @property
    def is_disk(self) -> bool:
        """True when the ring is just a disk (``inner == 0``)."""
        return self.inner == 0.0

    @property
    def is_disk_complement(self) -> bool:
        """True when the ring is the complement of a disk (unbounded)."""
        return self.outer == float("inf")

    def inner_circle(self) -> Circle:
        return Circle(self.center, self.inner)

    def outer_circle(self) -> Circle:
        if self.is_disk_complement:
            raise ValueError("unbounded ring has no outer circle")
        return Circle(self.center, self.outer)

    def contains_point(self, p: Point, eps: float = 0.0) -> bool:
        """Whether ``p`` lies in the closed annulus (within ``eps``)."""
        d = self.center.distance_to(p)
        return self.inner - eps <= d <= self.outer + eps

    def contains_rect(self, rect: Rect) -> bool:
        """Whether the whole rectangle lies inside the annulus."""
        if rect.max_dist_to_point(self.center) > self.outer:
            return False
        return rect.min_dist_to_point(self.center) >= self.inner
