"""The paper's distance notation: d, delta (min) and Delta (max).

``delta(S, T)`` is the minimum distance between a pair of points in areas
``S`` and ``T``; ``Delta(S, T)`` is the maximum.  Either argument may also
be a :class:`~repro.geometry.point.Point` (an area of one point).
"""

from __future__ import annotations

import math

from repro.geometry.point import Point
from repro.geometry.rect import Rect

Geometry = Point | Rect


def min_dist_point_rect(p: Point, r: Rect) -> float:
    """Minimum distance between a point and a rectangle (0 if inside)."""
    return r.min_dist_to_point(p)


def max_dist_point_rect(p: Point, r: Rect) -> float:
    """Maximum distance between a point and a rectangle."""
    return r.max_dist_to_point(p)


def min_dist_rect_rect(a: Rect, b: Rect) -> float:
    """Minimum distance between two rectangles (0 when they intersect)."""
    dx = max(a.min_x - b.max_x, 0.0, b.min_x - a.max_x)
    dy = max(a.min_y - b.max_y, 0.0, b.min_y - a.max_y)
    return math.hypot(dx, dy)


def max_dist_rect_rect(a: Rect, b: Rect) -> float:
    """Maximum distance between two rectangles (farthest corner pair)."""
    dx = max(a.max_x - b.min_x, b.max_x - a.min_x)
    dy = max(a.max_y - b.min_y, b.max_y - a.min_y)
    return math.hypot(dx, dy)


def delta(s: Geometry, t: Geometry) -> float:
    """Minimum distance between geometries ``s`` and ``t``.

    Mirrors the paper's ``delta(S, T)``; accepts any combination of points
    and rectangles.
    """
    if isinstance(s, Point):
        if isinstance(t, Point):
            return s.distance_to(t)
        return min_dist_point_rect(s, t)
    if isinstance(t, Point):
        return min_dist_point_rect(t, s)
    return min_dist_rect_rect(s, t)


def Delta(s: Geometry, t: Geometry) -> float:  # noqa: N802 — paper notation
    """Maximum distance between geometries ``s`` and ``t``.

    Mirrors the paper's ``Delta(S, T)``.
    """
    if isinstance(s, Point):
        if isinstance(t, Point):
            return s.distance_to(t)
        return max_dist_point_rect(s, t)
    if isinstance(t, Point):
        return max_dist_point_rect(t, s)
    return max_dist_rect_rect(s, t)
