"""Axis-aligned rectangles (the paper's safe regions, query ranges, MBRs)."""

from __future__ import annotations

import math

from repro.geometry.point import Point


class Rect:
    """An axis-aligned rectangle ``[min_x, max_x] x [min_y, max_y]``.

    The rectangle is closed: boundary points are contained.  Degenerate
    rectangles (zero width and/or height) are allowed — a freshly updated
    object has a point-sized safe region until the server recomputes it.
    Instances are immutable by convention, with value equality/hashing
    matching the former frozen-dataclass definition; construction is
    hand-rolled because rectangles are minted by the hundred thousand per
    bench run and the frozen ``object.__setattr__`` path dominated.
    """

    __slots__ = ("min_x", "min_y", "max_x", "max_y")

    def __init__(
        self, min_x: float, min_y: float, max_x: float, max_y: float
    ) -> None:
        if min_x > max_x or min_y > max_y:
            raise ValueError(
                f"malformed rectangle: ({min_x}, {min_y}, {max_x}, {max_y})"
            )
        self.min_x = min_x
        self.min_y = min_y
        self.max_x = max_x
        self.max_y = max_y

    def __repr__(self) -> str:
        return (
            f"Rect(min_x={self.min_x!r}, min_y={self.min_y!r}, "
            f"max_x={self.max_x!r}, max_y={self.max_y!r})"
        )

    def __eq__(self, other: object) -> bool:
        if other.__class__ is Rect:
            return (
                self.min_x == other.min_x
                and self.min_y == other.min_y
                and self.max_x == other.max_x
                and self.max_y == other.max_y
            )
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.min_x, self.min_y, self.max_x, self.max_y))

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_points(cls, a: Point, b: Point) -> "Rect":
        """Smallest rectangle containing both points."""
        return cls(
            min(a.x, b.x), min(a.y, b.y), max(a.x, b.x), max(a.y, b.y)
        )

    @classmethod
    def from_point(cls, p: Point) -> "Rect":
        """Degenerate (point-sized) rectangle."""
        return cls(p.x, p.y, p.x, p.y)

    @classmethod
    def from_center(cls, center: Point, half_width: float, half_height: float) -> "Rect":
        """Rectangle centred at ``center`` with the given half extents."""
        if half_width < 0 or half_height < 0:
            raise ValueError("half extents must be non-negative")
        return cls(
            center.x - half_width,
            center.y - half_height,
            center.x + half_width,
            center.y + half_height,
        )

    # ------------------------------------------------------------------
    # Basic measures
    # ------------------------------------------------------------------
    @property
    def width(self) -> float:
        return self.max_x - self.min_x

    @property
    def height(self) -> float:
        return self.max_y - self.min_y

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def perimeter(self) -> float:
        """Perimeter — the quantity Theorem 5.1 says to maximise."""
        return 2.0 * (self.width + self.height)

    @property
    def margin(self) -> float:
        """Half perimeter (R*-tree literature calls this the margin)."""
        return self.width + self.height

    @property
    def center(self) -> Point:
        return Point((self.min_x + self.max_x) / 2.0, (self.min_y + self.max_y) / 2.0)

    @property
    def is_degenerate(self) -> bool:
        """True if the rectangle has zero area."""
        return self.width == 0.0 or self.height == 0.0

    def corners(self) -> tuple[Point, Point, Point, Point]:
        """The four corners, counter-clockwise from the lower-left."""
        return (
            Point(self.min_x, self.min_y),
            Point(self.max_x, self.min_y),
            Point(self.max_x, self.max_y),
            Point(self.min_x, self.max_y),
        )

    # ------------------------------------------------------------------
    # Predicates
    # ------------------------------------------------------------------
    def contains_point(self, p: Point, eps: float = 0.0) -> bool:
        """Whether ``p`` lies in the (closed) rectangle, within ``eps``."""
        return (
            self.min_x - eps <= p.x <= self.max_x + eps
            and self.min_y - eps <= p.y <= self.max_y + eps
        )

    def contains_rect(self, other: "Rect") -> bool:
        """Whether ``other`` is fully inside this rectangle."""
        return (
            self.min_x <= other.min_x
            and self.min_y <= other.min_y
            and self.max_x >= other.max_x
            and self.max_y >= other.max_y
        )

    def intersects(self, other: "Rect") -> bool:
        """Whether the closed rectangles share at least one point."""
        return (
            self.min_x <= other.max_x
            and other.min_x <= self.max_x
            and self.min_y <= other.max_y
            and other.min_y <= self.max_y
        )

    def intersects_open(self, other: "Rect") -> bool:
        """Whether the rectangles overlap with positive area."""
        return (
            self.min_x < other.max_x
            and other.min_x < self.max_x
            and self.min_y < other.max_y
            and other.min_y < self.max_y
        )

    # ------------------------------------------------------------------
    # Combinators
    # ------------------------------------------------------------------
    def intersection(self, other: "Rect") -> "Rect | None":
        """Intersection rectangle, or ``None`` when disjoint."""
        min_x = self.min_x if self.min_x >= other.min_x else other.min_x
        min_y = self.min_y if self.min_y >= other.min_y else other.min_y
        max_x = self.max_x if self.max_x <= other.max_x else other.max_x
        max_y = self.max_y if self.max_y <= other.max_y else other.max_y
        if min_x > max_x or min_y > max_y:
            return None
        return Rect(min_x, min_y, max_x, max_y)

    def union(self, other: "Rect") -> "Rect":
        """Smallest rectangle covering both (MBR union)."""
        return Rect(
            self.min_x if self.min_x <= other.min_x else other.min_x,
            self.min_y if self.min_y <= other.min_y else other.min_y,
            self.max_x if self.max_x >= other.max_x else other.max_x,
            self.max_y if self.max_y >= other.max_y else other.max_y,
        )

    def expanded(self, amount: float) -> "Rect":
        """Rectangle grown by ``amount`` on every side (clamped to valid)."""
        if amount < 0:
            half_w = min(-amount, self.width / 2.0)
            half_h = min(-amount, self.height / 2.0)
            return Rect(
                self.min_x + half_w,
                self.min_y + half_h,
                self.max_x - half_w,
                self.max_y - half_h,
            )
        return Rect(
            self.min_x - amount,
            self.min_y - amount,
            self.max_x + amount,
            self.max_y + amount,
        )

    def enlargement(self, other: "Rect") -> float:
        """Area increase needed for this MBR to also cover ``other``."""
        return self.union(other).area - self.area

    def overlap_area(self, other: "Rect") -> float:
        """Area of the intersection (0 when disjoint)."""
        w = min(self.max_x, other.max_x) - max(self.min_x, other.min_x)
        h = min(self.max_y, other.max_y) - max(self.min_y, other.min_y)
        if w <= 0.0 or h <= 0.0:
            return 0.0
        return w * h

    # ------------------------------------------------------------------
    # Distances (delta / Delta of the paper for point-vs-rect)
    # ------------------------------------------------------------------
    def min_dist_to_point(self, p: Point) -> float:
        """``delta(p, self)``: 0 when ``p`` is inside."""
        x = p.x
        if x < self.min_x:
            dx = self.min_x - x
        elif x > self.max_x:
            dx = x - self.max_x
        else:
            dx = 0.0
        y = p.y
        if y < self.min_y:
            dy = self.min_y - y
        elif y > self.max_y:
            dy = y - self.max_y
        else:
            dy = 0.0
        return math.hypot(dx, dy)

    def max_dist_to_point(self, p: Point) -> float:
        """``Delta(p, self)``: distance to the farthest corner."""
        dx = max(p.x - self.min_x, self.max_x - p.x)
        dy = max(p.y - self.min_y, self.max_y - p.y)
        return math.hypot(dx, dy)

    def clamp_point(self, p: Point) -> Point:
        """Closest point of the rectangle to ``p``."""
        return Point(
            min(max(p.x, self.min_x), self.max_x),
            min(max(p.y, self.min_y), self.max_y),
        )

    def as_tuple(self) -> tuple[float, float, float, float]:
        """Return ``(min_x, min_y, max_x, max_y)``."""
        return (self.min_x, self.min_y, self.max_x, self.max_y)
