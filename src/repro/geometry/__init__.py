"""Geometry kernel: points, rectangles, circles, rings, and motion helpers.

These primitives implement the distance notation of the paper: ``d(s, t)``
is the distance between two points, ``delta(S, T)`` the minimum distance
between areas (or points) ``S`` and ``T``, and ``Delta(S, T)`` the maximum
distance.
"""

from repro.geometry.circle import Circle
from repro.geometry.distances import (
    Delta,
    delta,
    max_dist_point_rect,
    max_dist_rect_rect,
    min_dist_point_rect,
    min_dist_rect_rect,
)
from repro.geometry.motion import (
    LinearMotion,
    exit_time_from_circle,
    exit_time_from_rect,
    position_at,
)
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.geometry.ring import Ring

__all__ = [
    "Point",
    "Rect",
    "Circle",
    "Ring",
    "delta",
    "Delta",
    "min_dist_point_rect",
    "max_dist_point_rect",
    "min_dist_rect_rect",
    "max_dist_rect_rect",
    "LinearMotion",
    "exit_time_from_rect",
    "exit_time_from_circle",
    "position_at",
]
