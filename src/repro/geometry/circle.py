"""Circles — the quarantine areas of kNN queries (Section 3.3)."""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.geometry.point import Point
from repro.geometry.rect import Rect


@dataclass(frozen=True, slots=True)
class Circle:
    """A closed disk centred at ``center`` with radius ``radius``."""

    center: Point
    radius: float

    def __post_init__(self) -> None:
        if self.radius < 0:
            raise ValueError(f"negative radius: {self.radius}")

    def contains_point(self, p: Point, eps: float = 0.0) -> bool:
        """Whether ``p`` lies in the closed disk (within ``eps``).

        The exact (``eps == 0``) test compares squared distances — no
        square root, and the arithmetic (``dx*dx + dy*dy`` against
        ``r*r``) is elementwise-reproducible by the batch kernels
        (``math.hypot`` is not: CPython's correctly-rounded hypot and
        NumPy's differ in the last ulp).  The tolerant form keeps the
        distance metric so ``eps`` stays a length, not an area.
        """
        if eps == 0.0:
            return (
                self.center.squared_distance_to(p)
                <= self.radius * self.radius
            )
        return self.center.distance_to(p) <= self.radius + eps

    def contains_rect(self, rect: Rect) -> bool:
        """Whether the whole rectangle lies in the disk.

        True iff the corner farthest from the centre is within the radius.
        """
        return rect.max_dist_to_point(self.center) <= self.radius

    def intersects_rect(self, rect: Rect) -> bool:
        """Whether disk and rectangle share at least one point."""
        return rect.min_dist_to_point(self.center) <= self.radius

    def excludes_rect(self, rect: Rect) -> bool:
        """Whether the rectangle is entirely outside the open disk."""
        return rect.min_dist_to_point(self.center) >= self.radius

    def bounding_rect(self) -> Rect:
        """Axis-aligned bounding rectangle of the disk."""
        return Rect(
            self.center.x - self.radius,
            self.center.y - self.radius,
            self.center.x + self.radius,
            self.center.y + self.radius,
        )

    def expanded(self, amount: float) -> "Circle":
        """Disk grown (or shrunk, clamped at 0) by ``amount``."""
        return Circle(self.center, max(self.radius + amount, 0.0))

    @property
    def area(self) -> float:
        return math.pi * self.radius * self.radius

    @property
    def circumference(self) -> float:
        return 2.0 * math.pi * self.radius
