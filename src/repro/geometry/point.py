"""An immutable 2-D point."""

from __future__ import annotations

import math


class Point:
    """A point in the unit square workspace.

    Coordinates are plain floats; the class is hashable so points can be
    used as dictionary keys (e.g. memoising safe-region computations).
    Instances are immutable by convention — nothing in the codebase
    mutates a published point, and value equality/hashing match the
    former frozen-dataclass definition.  (A hand-rolled ``__init__``
    because point construction is hot enough for the frozen-dataclass
    ``object.__setattr__`` overhead to show up in tick profiles.)
    """

    __slots__ = ("x", "y")

    def __init__(self, x: float, y: float) -> None:
        self.x = x
        self.y = y

    def __repr__(self) -> str:
        return f"Point(x={self.x!r}, y={self.y!r})"

    def __eq__(self, other: object) -> bool:
        if other.__class__ is Point:
            return self.x == other.x and self.y == other.y
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.x, self.y))

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance ``d(self, other)``."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def squared_distance_to(self, other: "Point") -> float:
        """Squared Euclidean distance (avoids the sqrt when comparing)."""
        dx = self.x - other.x
        dy = self.y - other.y
        return dx * dx + dy * dy

    def translated(self, dx: float, dy: float) -> "Point":
        """Return a copy moved by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)

    def dominates(self, other: "Point") -> bool:
        """Strict dominance as used by Proposition 5.6 of the paper.

        Point ``a`` dominates point ``b`` iff ``a.x > b.x and a.y > b.y``.
        """
        return self.x > other.x and self.y > other.y

    def as_tuple(self) -> tuple[float, float]:
        """Return ``(x, y)``."""
        return (self.x, self.y)

    def __iter__(self):
        yield self.x
        yield self.y
