"""Tests for the random waypoint model and client logic (Section 7.1)."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry import Rect
from repro.mobility import MobileClient, RandomWaypointModel

UNIT = Rect(0.0, 0.0, 1.0, 1.0)


def make_trajectory(oid=0, speed=0.05, period=0.3, seed=0):
    return RandomWaypointModel(speed, period, UNIT, seed=seed).create(oid)


class TestTrajectory:
    def test_deterministic_per_seed_and_oid(self):
        a = make_trajectory(oid=3, seed=9)
        b = make_trajectory(oid=3, seed=9)
        for t in (0.0, 0.5, 1.7, 10.0):
            assert a.position_at(t) == b.position_at(t)

    def test_different_objects_differ(self):
        a = make_trajectory(oid=1)
        b = make_trajectory(oid=2)
        assert a.position_at(0.0) != b.position_at(0.0)

    def test_stays_in_space(self):
        trajectory = make_trajectory(seed=4)
        for i in range(200):
            p = trajectory.position_at(i * 0.1)
            assert UNIT.contains_point(p, eps=1e-9)

    def test_speed_bounded(self):
        trajectory = make_trajectory(speed=0.05, seed=5)
        dt = 1e-4
        for i in range(100):
            t = i * 0.21
            a = trajectory.position_at(t)
            b = trajectory.position_at(t + dt)
            assert a.distance_to(b) <= trajectory.max_speed * dt + 1e-12

    def test_continuity(self):
        trajectory = make_trajectory(seed=6)
        prev = trajectory.position_at(0.0)
        for i in range(1, 500):
            cur = trajectory.position_at(i * 0.01)
            assert prev.distance_to(cur) <= trajectory.max_speed * 0.011
            prev = cur

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            make_trajectory().position_at(-0.1)

    def test_parameter_validation(self):
        model = RandomWaypointModel(0.05, 0.3)
        with pytest.raises(ValueError):
            RandomWaypointModel(0.0, 0.3).create(0)
        with pytest.raises(ValueError):
            RandomWaypointModel(0.05, 0.0).create(0)

    def test_distance_travelled_additive(self):
        trajectory = make_trajectory(seed=7)
        total = trajectory.distance_travelled(0.0, 2.0)
        split = trajectory.distance_travelled(0.0, 0.8) + \
            trajectory.distance_travelled(0.8, 2.0)
        assert total == pytest.approx(split)
        assert trajectory.distance_travelled(1.0, 1.0) == 0.0
        assert total <= trajectory.max_speed * 2.0 + 1e-9

    def test_random_access_after_forward_scan(self):
        trajectory = make_trajectory(seed=8)
        late = trajectory.position_at(5.0)
        early = trajectory.position_at(0.3)  # rewind must work
        assert trajectory.position_at(5.0) == late
        assert trajectory.position_at(0.3) == early


class TestExitTimes:
    def test_exit_time_matches_position(self):
        trajectory = make_trajectory(seed=10)
        p0 = trajectory.position_at(0.5)
        box = Rect(p0.x - 0.03, p0.y - 0.03, p0.x + 0.03, p0.y + 0.03)
        exit_at = trajectory.exit_time_from_rect(box, 0.5, horizon=100.0)
        assert exit_at > 0.5
        on_exit = trajectory.position_at(exit_at)
        assert box.contains_point(on_exit, eps=1e-9)
        # Just before the exit the object is inside; just after, outside.
        after = trajectory.position_at(min(exit_at + 1e-6, 100.0))
        margin = min(
            on_exit.x - box.min_x, box.max_x - on_exit.x,
            on_exit.y - box.min_y, box.max_y - on_exit.y,
        )
        assert margin < 1e-6 or not box.contains_point(after)

    def test_exit_time_outside_is_now(self):
        trajectory = make_trajectory(seed=11)
        box = Rect(2.0, 2.0, 3.0, 3.0)
        assert trajectory.exit_time_from_rect(box, 0.2, 10.0) == 0.2

    def test_never_exits_whole_space(self):
        trajectory = make_trajectory(seed=12)
        assert trajectory.exit_time_from_rect(UNIT, 0.0, 5.0) == math.inf

    def test_beyond_horizon_is_inf(self):
        trajectory = make_trajectory(seed=13, speed=1e-6)
        p0 = trajectory.position_at(0.0)
        box = Rect(p0.x - 0.4, p0.y - 0.4, p0.x + 0.4, p0.y + 0.4)
        assert trajectory.exit_time_from_rect(box, 0.0, 1.0) == math.inf

    @given(st.integers(min_value=0, max_value=50), st.floats(min_value=0.0, max_value=3.0))
    @settings(max_examples=60, deadline=None)
    def test_property_no_crossing_before_exit(self, oid, start):
        trajectory = RandomWaypointModel(0.08, 0.2, UNIT, seed=99).create(oid)
        p0 = trajectory.position_at(start)
        box = Rect(
            max(p0.x - 0.05, 0), max(p0.y - 0.05, 0),
            min(p0.x + 0.05, 1), min(p0.y + 0.05, 1),
        )
        exit_at = trajectory.exit_time_from_rect(box, start, start + 5.0)
        end = min(exit_at, start + 5.0)
        steps = 50
        for i in range(steps):
            t = start + (end - start) * (i / steps) * 0.999
            assert box.contains_point(trajectory.position_at(t), eps=1e-7)


class TestMobileClient:
    def make_client(self):
        return MobileClient("c1", make_trajectory(seed=20))

    def test_install_inside_schedules_monitoring(self):
        client = self.make_client()
        p = client.position_at(0.0)
        region = Rect(p.x - 0.1, p.y - 0.1, p.x + 0.1, p.y + 0.1)
        assert client.install_safe_region(region, 0.0) is True
        assert not client.awaiting
        exit_at = client.next_exit_time(0.0, 100.0)
        assert exit_at > 0.0

    def test_install_outside_reports(self):
        client = self.make_client()
        region = Rect(2, 2, 3, 3)
        assert client.install_safe_region(region, 0.0) is False

    def test_epoch_invalidates_old_events(self):
        client = self.make_client()
        p = client.position_at(0.0)
        region = Rect(p.x - 0.1, p.y - 0.1, p.x + 0.1, p.y + 0.1)
        client.install_safe_region(region, 0.0)
        old_epoch = client.epoch
        client.install_safe_region(region, 0.1)
        assert client.epoch != old_epoch

    def test_begin_update_mutes(self):
        client = self.make_client()
        p = client.position_at(0.0)
        client.install_safe_region(Rect(p.x - 0.1, p.y - 0.1, p.x + 0.1, p.y + 0.1), 0.0)
        client.begin_update()
        assert client.awaiting
        assert client.next_exit_time(0.0, 10.0) == math.inf
