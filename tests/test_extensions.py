"""Tests for extension query types (the framework's genericity claim)."""

import random

import pytest

from repro.core import DatabaseServer, ServerConfig
from repro.core.extensions import CircleRangeQuery
from repro.geometry import Point, Rect


class TestCircleRangeQueryUnit:
    def test_validation(self):
        with pytest.raises(ValueError):
            CircleRangeQuery(Point(0.5, 0.5), 0.0)

    def test_quarantine_interface(self):
        query = CircleRangeQuery(Point(0.5, 0.5), 0.1)
        assert query.quarantine_contains(Point(0.55, 0.5))
        assert not query.quarantine_contains(Point(0.7, 0.5))
        assert query.quarantine_bounding_rect() == Rect(0.4, 0.4, 0.6, 0.6)
        # Bounding-box corner cell that misses the circle:
        assert not query.quarantine_overlaps(Rect(0.58, 0.58, 0.6, 0.6))

    def test_affected_on_crossing_only(self):
        query = CircleRangeQuery(Point(0.5, 0.5), 0.1)
        inside, outside = Point(0.55, 0.5), Point(0.9, 0.9)
        assert query.is_affected_by(inside, outside)
        assert query.is_affected_by(outside, inside)
        assert not query.is_affected_by(inside, inside)
        assert not query.is_affected_by(outside, outside)

    def test_reevaluate_for(self):
        query = CircleRangeQuery(Point(0.5, 0.5), 0.1)
        assert query.reevaluate_for("a", Point(0.52, 0.5)).changed
        assert query.results == {"a"}
        assert not query.reevaluate_for("a", Point(0.55, 0.5)).changed
        assert query.reevaluate_for("a", Point(0.9, 0.9)).changed
        assert query.results == set()

    def test_safe_region_member_inside_circle(self):
        query = CircleRangeQuery(Point(0.5, 0.5), 0.2)
        query.results = {"a"}
        cell = Rect(0.4, 0.4, 0.6, 0.6)
        p = Point(0.55, 0.5)
        region = query.safe_region_for("a", p, cell)
        assert region.contains_point(p, eps=1e-9)
        assert region.max_dist_to_point(query.center) <= query.radius + 1e-9

    def test_safe_region_nonmember_outside_circle(self):
        query = CircleRangeQuery(Point(0.2, 0.2), 0.1)
        cell = Rect(0.3, 0.3, 0.5, 0.5)
        p = Point(0.4, 0.4)
        region = query.safe_region_for("b", p, cell)
        assert region.contains_point(p, eps=1e-9)
        assert region.min_dist_to_point(query.center) >= query.radius - 1e-9


class TestCircleRangeEndToEnd:
    """The extension type runs through the unmodified server."""

    def build(self, seed=0, n=250):
        rng = random.Random(seed)
        positions = {
            oid: Point(rng.random(), rng.random()) for oid in range(n)
        }
        server = DatabaseServer(
            position_oracle=lambda oid: positions[oid],
            config=ServerConfig(grid_m=8),
        )
        server.load_objects(positions.items())
        return rng, positions, server

    def truth(self, query, positions):
        return {
            oid for oid, p in positions.items()
            if query.center.distance_to(p) <= query.radius
        }

    def test_registration_exact(self):
        rng, positions, server = self.build(seed=1)
        query = CircleRangeQuery(Point(0.5, 0.5), 0.15, query_id="c")
        outcome = server.register_query(query)
        assert query.results == self.truth(query, positions)
        assert outcome.changes[0].new == query.result_snapshot()
        server.validate()

    @pytest.mark.parametrize("seed", range(3))
    def test_monitoring_exact(self, seed):
        rng, positions, server = self.build(seed=seed)
        queries = [
            CircleRangeQuery(
                Point(rng.random(), rng.random()), 0.1, query_id=f"c{i}"
            )
            for i in range(5)
        ]
        for query in queries:
            server.register_query(query)
        t = 0.0
        for _ in range(300):
            t += 0.01
            oid = rng.randrange(len(positions))
            p = positions[oid]
            positions[oid] = Point(
                min(max(p.x + rng.uniform(-0.04, 0.04), 0), 1),
                min(max(p.y + rng.uniform(-0.04, 0.04), 0), 1),
            )
            if not server.safe_region_of(oid).contains_point(positions[oid]):
                server.handle_location_update(oid, positions[oid], t)
        for query in queries:
            assert query.results == self.truth(query, positions), query.query_id
        server.validate()

    def test_mixes_with_builtin_queries(self):
        from repro.core import KNNQuery, RangeQuery

        rng, positions, server = self.build(seed=7)
        circle = CircleRangeQuery(Point(0.4, 0.4), 0.12, query_id="c")
        box = RangeQuery(Rect(0.5, 0.5, 0.65, 0.65), query_id="r")
        knn = KNNQuery(Point(0.6, 0.3), 3, query_id="k")
        for query in (circle, box, knn):
            server.register_query(query)
        t = 0.0
        for _ in range(200):
            t += 0.01
            oid = rng.randrange(len(positions))
            p = positions[oid]
            positions[oid] = Point(
                min(max(p.x + rng.uniform(-0.04, 0.04), 0), 1),
                min(max(p.y + rng.uniform(-0.04, 0.04), 0), 1),
            )
            if not server.safe_region_of(oid).contains_point(positions[oid]):
                server.handle_location_update(oid, positions[oid], t)
        assert circle.results == self.truth(circle, positions)
        assert box.results == {
            oid for oid, p in positions.items() if box.rect.contains_point(p)
        }
        ranked = sorted(
            positions, key=lambda o: knn.center.distance_to(positions[o])
        )
        assert knn.results == ranked[:3]

    def test_probe_economy(self):
        """Most objects resolve by region containment, not probing."""
        rng, positions, server = self.build(seed=9, n=400)
        query = CircleRangeQuery(Point(0.5, 0.5), 0.2, query_id="c")
        server.register_query(query)
        assert server.stats.probes < 120  # boundary band only
