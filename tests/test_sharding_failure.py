"""The shard-failure drill: kill one shard mid-run, contain the damage.

A killed shard's members stay in the merged results as a *frozen*
partial — flagged degraded, never silently dropped — and heal as the
objects re-home by reporting (routing falls over to each cell's
rendezvous runner-up).  ``repro diagnose`` must stay green: degraded
containment breaches are exempted, real breaches are not.
"""

import random

import pytest

from repro.core import KNNQuery, RangeQuery, ServerConfig
from repro.geometry import Point, Rect
from repro.obs import EventLog
from repro.obs.diagnose import diagnose
from repro.sharding import ShardedServer


class _Oracle:
    def __init__(self, world):
        self.positions = dict(world)

    def __call__(self, oid):
        return self.positions[oid]


def _cluster(n_shards=3, n=80, seed=5, events=None):
    rng = random.Random(seed)
    world = {f"o{i}": Point(rng.random(), rng.random()) for i in range(n)}
    oracle = _Oracle(world)
    cluster = ShardedServer(
        oracle, ServerConfig(grid_m=16, max_speed=0.04),
        n_shards=n_shards, events=events,
    )
    cluster.load_objects(sorted(world.items()), 0.0)
    queries = [
        RangeQuery(Rect(0.2, 0.2, 0.8, 0.8), query_id="r-wide"),
        KNNQuery(Point(0.5, 0.5), 4, query_id="k-mid"),
    ]
    for q in queries:
        cluster.register_query(q, 0.0)
    return cluster, oracle, queries


def _tick(cluster, oracle, rng, t, movers=20):
    batch = []
    for oid in rng.sample(sorted(oracle.positions), movers):
        p = oracle.positions[oid]
        q = Point(
            min(max(p.x + rng.gauss(0, 0.02), 0.0), 1.0),
            min(max(p.y + rng.gauss(0, 0.02), 0.0), 1.0),
        )
        oracle.positions[oid] = q
        batch.append((oid, q))
    cluster.handle_location_updates(batch, t)


def test_kill_shard_freezes_members_and_heals_on_rehome():
    cluster, oracle, queries = _cluster()
    rng = random.Random(9)
    for tick in range(1, 6):
        _tick(cluster, oracle, rng, float(tick))

    victim = 1
    before = dict(zip(range(3), cluster.shard_object_counts()))
    assert before[victim] > 0
    cluster.kill_shard(victim, time=6.0)
    assert cluster.dead_shards() == frozenset({victim})

    # Containment: every member the dead shard contributed is still in
    # the merged results, flagged degraded — never silently dropped.
    stranded = {
        oid for oid, home in cluster._homes.items() if home == victim
    }
    assert stranded
    degraded = set(cluster.degraded_objects())
    assert stranded <= degraded
    for q in queries:
        members = set(q.results)
        assert members & stranded == members & degraded & stranded

    # Healing: stranded objects re-home when they report; with everyone
    # reporting, the dead shard drains completely.
    for tick in range(6, 30):
        t = float(tick) + 0.5
        batch = []
        for oid in sorted(oracle.positions):
            p = oracle.positions[oid]
            q = Point(
                min(max(p.x + rng.gauss(0, 0.01), 0.0), 1.0),
                min(max(p.y + rng.gauss(0, 0.01), 0.0), 1.0),
            )
            oracle.positions[oid] = q
            batch.append((oid, q))
        cluster.handle_location_updates(batch, t)
    assert cluster.shard_object_counts()[victim] == 0
    assert not cluster.degraded_objects()
    cluster.validate()


def test_kill_shard_emits_event_and_diagnose_stays_green():
    events = EventLog()
    cluster, oracle, _ = _cluster(events=events)
    rng = random.Random(10)
    for tick in range(1, 5):
        _tick(cluster, oracle, rng, float(tick))
    cluster.kill_shard(2, time=5.0)
    for tick in range(5, 12):
        _tick(cluster, oracle, rng, float(tick) + 0.5)
    kinds = {e.kind for e in events.events()}
    assert "shard_killed" in kinds
    report = diagnose(events.events())
    assert report.ok, [str(v) for v in report.violations]


def test_updates_for_dead_shard_route_to_runner_up():
    cluster, oracle, _ = _cluster(n_shards=2)
    cluster.kill_shard(0, time=1.0)
    stranded = sorted(
        oid for oid, home in cluster._homes.items() if home == 0
    )
    assert stranded
    oid = stranded[0]
    # Report from the same position: the dead home cannot take it, so
    # the object re-homes onto the runner-up shard.
    cluster.handle_location_update(oid, oracle.positions[oid], 2.0)
    assert cluster.shard_of_object(oid) == 1
    cluster.validate()


def test_cannot_kill_the_last_live_shard():
    cluster, _, _ = _cluster(n_shards=2)
    cluster.kill_shard(0, time=1.0)
    with pytest.raises(ValueError):
        cluster.kill_shard(1, time=2.0)


def test_killed_worker_process_terminates():
    rng = random.Random(3)
    world = {f"o{i}": Point(rng.random(), rng.random()) for i in range(40)}
    oracle = _Oracle(world)
    with ShardedServer(
        oracle, ServerConfig(grid_m=16), n_shards=2, n_workers=2
    ) as cluster:
        cluster.load_objects(sorted(world.items()), 0.0)
        victim = cluster._shards[0]
        cluster.kill_shard(0, time=1.0)
        victim.process.join(timeout=10)
        assert victim.process.exitcode is not None
        # The survivor still serves queries.
        q = KNNQuery(Point(0.5, 0.5), 2, query_id="k")
        cluster.register_query(q, 2.0)
        assert len(q.results) == 2
