"""Tests for server snapshot / restore."""

import io
import json
import random

import pytest

from repro.core import DatabaseServer, KNNQuery, RangeQuery, ServerConfig
from repro.core.extensions import CircleRangeQuery
from repro.core.snapshot import (
    dump_server,
    load_server,
    replay_updates,
    restore_server,
    snapshot_server,
)
from repro.geometry import Point, Rect
from repro.obs import EventLog, read_events


def build_server(seed=0, n=120):
    rng = random.Random(seed)
    positions = {oid: Point(rng.random(), rng.random()) for oid in range(n)}
    server = DatabaseServer(
        position_oracle=lambda oid: positions[oid],
        config=ServerConfig(grid_m=7, steadiness=0.25),
    )
    server.load_objects(positions.items())
    for i in range(4):
        x, y = rng.random() * 0.85, rng.random() * 0.85
        server.register_query(
            RangeQuery(Rect(x, y, x + 0.1, y + 0.1), query_id=f"r{i}")
        )
    for i in range(4):
        server.register_query(
            KNNQuery(Point(rng.random(), rng.random()), 3, query_id=f"k{i}")
        )
    return rng, positions, server


class TestSnapshotShape:
    def test_json_round_trippable(self):
        _, _, server = build_server()
        payload = snapshot_server(server)
        assert json.loads(json.dumps(payload)) == payload
        assert payload["version"] == 2
        assert len(payload["queries"]) == 8
        assert len(payload["objects"]) == 120

    def test_extension_queries_rejected(self):
        rng, positions, server = build_server(n=20)
        server.register_query(CircleRangeQuery(Point(0.5, 0.5), 0.1))
        with pytest.raises(TypeError):
            snapshot_server(server)

    def test_unknown_version_rejected(self):
        with pytest.raises(ValueError):
            restore_server({"version": 99}, lambda oid: None)

    def test_version_1_snapshot_still_loads(self):
        """Pre-fault-era snapshots carry neither clock, degraded set,
        nor the fault-handling config fields — they must restore to a
        healthy faults-off server."""
        _, positions, server = build_server(seed=11, n=30)
        payload = snapshot_server(server)
        legacy = json.loads(json.dumps(payload))
        legacy["version"] = 1
        del legacy["time"]
        del legacy["degraded"]
        for key in ("probe_timeout", "probe_retries", "probe_budget",
                    "on_unknown_object", "degraded_max_speed"):
            del legacy["config"][key]
        restored = restore_server(legacy, lambda oid: positions[oid])
        assert restored.object_count == 30
        assert restored.clock == 0.0
        assert restored.degraded_objects() == {}
        assert restored.config.on_unknown_object == "raise"
        restored.validate()

    def test_kernel_min_rows_round_trips(self):
        """``kernel_min_rows`` survives the round trip; snapshots written
        before the knob existed restore to its default."""
        positions = {oid: Point(0.1 * oid + 0.05, 0.5) for oid in range(5)}
        server = DatabaseServer(
            position_oracle=lambda oid: positions[oid],
            config=ServerConfig(kernel_min_rows=17),
        )
        server.load_objects(positions.items())
        payload = json.loads(json.dumps(snapshot_server(server)))
        assert payload["config"]["kernel_min_rows"] == 17
        restored = restore_server(payload, lambda oid: positions[oid])
        assert restored.config.kernel_min_rows == 17
        assert restored.kernels.min_rows == 17

        del payload["config"]["kernel_min_rows"]
        legacy = restore_server(payload, lambda oid: positions[oid])
        assert legacy.config.kernel_min_rows == 8

    def test_fault_state_round_trips(self):
        """Clock, degraded set, and fault config survive the round trip."""
        from repro.faults import ProbeTimeout

        positions = {oid: Point(0.1 * oid + 0.05, 0.5) for oid in range(8)}

        def oracle(oid):
            if oid == 3:
                raise ProbeTimeout(oid)
            return positions[oid]

        server = DatabaseServer(
            position_oracle=oracle,
            config=ServerConfig(
                probe_timeout=0.125, probe_retries=1, probe_budget=64,
                on_unknown_object="drop", degraded_max_speed=0.02,
            ),
        )
        server.load_objects(positions.items())
        # Registration probes every object whose safe region straddles
        # the query boundary; oid 3 times out and enters degraded mode.
        server.register_query(
            RangeQuery(Rect(0.3, 0.4, 0.35, 0.6), query_id="r"), time=1.5
        )
        assert server.is_degraded(3)
        assert server.clock == 1.5

        payload = json.loads(json.dumps(snapshot_server(server)))
        assert payload["version"] == 2
        restored = restore_server(payload, oracle)
        assert restored.clock == server.clock
        assert restored.degraded_objects() == server.degraded_objects()
        assert restored.config.probe_timeout == 0.125
        assert restored.config.probe_retries == 1
        assert restored.config.probe_budget == 64
        assert restored.config.on_unknown_object == "drop"
        assert restored.config.degraded_max_speed == 0.02
        restored.validate()


class TestRoundTrip:
    def test_state_identical_after_restore(self):
        rng, positions, server = build_server(seed=3)
        payload = snapshot_server(server)
        restored = restore_server(payload, lambda oid: positions[oid])

        assert restored.object_count == server.object_count
        assert restored.query_count == server.query_count
        for oid in positions:
            assert restored.safe_region_of(oid) == server.safe_region_of(oid)
        original = {q.query_id: q for q in server.queries()}
        for query in restored.queries():
            assert query.result_snapshot() == \
                original[query.query_id].result_snapshot()
        restored.validate()

    def test_monitoring_continues_identically(self):
        """Drive the original and the restored server through the same
        movement script — results and stats must not diverge."""
        rng, positions, server = build_server(seed=5)
        restored = restore_server(
            snapshot_server(server), lambda oid: positions_b[oid]
        )
        positions_b = dict(positions)

        script = []
        r = random.Random(99)
        for _ in range(150):
            oid = r.randrange(len(positions))
            script.append(
                (oid, Point(r.random(), r.random()))
            )

        t = 0.0
        for oid, target in script:
            t += 0.01
            positions[oid] = target
            positions_b[oid] = target
            if not server.safe_region_of(oid).contains_point(target):
                server.handle_location_update(oid, target, t)
            if not restored.safe_region_of(oid).contains_point(target):
                restored.handle_location_update(oid, target, t)

        for query_a in server.queries():
            query_b = next(
                q for q in restored.queries()
                if q.query_id == query_a.query_id
            )
            assert query_a.result_snapshot() == query_b.result_snapshot()

    def test_file_round_trip(self, tmp_path):
        rng, positions, server = build_server(seed=7, n=40)
        path = tmp_path / "server.json"
        with open(path, "w") as handle:
            dump_server(server, handle)
        with open(path) as handle:
            restored = load_server(handle, lambda oid: positions[oid])
        assert restored.object_count == 40
        restored.validate()

    def test_flight_recorder_replay_catches_up(self, tmp_path):
        """Crash recovery (docs/ROBUSTNESS.md): restore a mid-flight
        snapshot, replay the flight-recorder tail, and end up with the
        same query results as the server that never crashed."""
        rng = random.Random(23)
        positions = {
            oid: Point(rng.random(), rng.random()) for oid in range(50)
        }
        script = []
        t = 0.0
        for _ in range(120):
            t += 0.01
            oid = rng.randrange(50)
            script.append((round(t, 9), oid, Point(rng.random(), rng.random())))
        # Duplicate a few reports (same oid, later time) — the faulted
        # stream shape a recovered server must also digest.
        script.extend(
            (round(t + 0.01 * (i + 1), 9), oid, target)
            for i, (_, oid, target) in enumerate(script[::40])
        )
        script.sort()

        server_box = [None]

        def oracle(oid):
            # Answer probes with the object's last scripted position as
            # of the probing server's clock — identical answers for the
            # live run and the replay, which is what makes recovery
            # deterministic.
            best = positions[oid]
            for when, who, target in script:
                if when > server_box[0].clock:
                    break
                if who == oid:
                    best = target
            return best

        sink = tmp_path / "recorder.jsonl"
        log = EventLog(capacity=16, sink=sink)  # tiny ring; sink has all
        live = DatabaseServer(position_oracle=oracle, events=log)
        server_box[0] = live
        live.load_objects(positions.items())
        for i in range(6):
            x, y = rng.random() * 0.8, rng.random() * 0.8
            live.register_query(
                RangeQuery(Rect(x, y, x + 0.2, y + 0.2), query_id=f"r{i}")
            )

        payload = None
        for when, oid, target in script:
            live.handle_location_update(oid, target, when)
            if payload is None and when >= 0.6:
                payload = json.loads(json.dumps(snapshot_server(live)))
        log.close()
        assert payload is not None and payload["time"] >= 0.6

        restored = restore_server(payload, oracle)
        server_box[0] = restored
        assert restored.clock == payload["time"]
        replayed, skipped = replay_updates(
            restored, read_events(sink)
        )
        assert replayed > 0
        assert skipped == 0

        results_live = {
            q.query_id: q.result_snapshot() for q in live.queries()
        }
        results_restored = {
            q.query_id: q.result_snapshot() for q in restored.queries()
        }
        assert results_live == results_restored
        for oid in positions:
            assert restored.safe_region_of(oid) == live.safe_region_of(oid)
        restored.validate()

    def test_string_object_ids(self):
        positions = {"car-1": Point(0.2, 0.2), "car-2": Point(0.8, 0.8)}
        server = DatabaseServer(position_oracle=lambda oid: positions[oid])
        server.load_objects(positions.items())
        server.register_query(RangeQuery(Rect(0, 0, 0.5, 0.5), query_id="r"))
        buffer = io.StringIO()
        dump_server(server, buffer)
        buffer.seek(0)
        restored = load_server(buffer, lambda oid: positions[oid])
        assert "car-1" in restored
        query = next(iter(restored.queries()))
        assert query.results == {"car-1"}
