"""Tests for server snapshot / restore."""

import io
import json
import random

import pytest

from repro.core import DatabaseServer, KNNQuery, RangeQuery, ServerConfig
from repro.core.extensions import CircleRangeQuery
from repro.core.snapshot import (
    dump_server,
    load_server,
    restore_server,
    snapshot_server,
)
from repro.geometry import Point, Rect


def build_server(seed=0, n=120):
    rng = random.Random(seed)
    positions = {oid: Point(rng.random(), rng.random()) for oid in range(n)}
    server = DatabaseServer(
        position_oracle=lambda oid: positions[oid],
        config=ServerConfig(grid_m=7, steadiness=0.25),
    )
    server.load_objects(positions.items())
    for i in range(4):
        x, y = rng.random() * 0.85, rng.random() * 0.85
        server.register_query(
            RangeQuery(Rect(x, y, x + 0.1, y + 0.1), query_id=f"r{i}")
        )
    for i in range(4):
        server.register_query(
            KNNQuery(Point(rng.random(), rng.random()), 3, query_id=f"k{i}")
        )
    return rng, positions, server


class TestSnapshotShape:
    def test_json_round_trippable(self):
        _, _, server = build_server()
        payload = snapshot_server(server)
        assert json.loads(json.dumps(payload)) == payload
        assert payload["version"] == 1
        assert len(payload["queries"]) == 8
        assert len(payload["objects"]) == 120

    def test_extension_queries_rejected(self):
        rng, positions, server = build_server(n=20)
        server.register_query(CircleRangeQuery(Point(0.5, 0.5), 0.1))
        with pytest.raises(TypeError):
            snapshot_server(server)

    def test_unknown_version_rejected(self):
        with pytest.raises(ValueError):
            restore_server({"version": 99}, lambda oid: None)


class TestRoundTrip:
    def test_state_identical_after_restore(self):
        rng, positions, server = build_server(seed=3)
        payload = snapshot_server(server)
        restored = restore_server(payload, lambda oid: positions[oid])

        assert restored.object_count == server.object_count
        assert restored.query_count == server.query_count
        for oid in positions:
            assert restored.safe_region_of(oid) == server.safe_region_of(oid)
        original = {q.query_id: q for q in server.queries()}
        for query in restored.queries():
            assert query.result_snapshot() == \
                original[query.query_id].result_snapshot()
        restored.validate()

    def test_monitoring_continues_identically(self):
        """Drive the original and the restored server through the same
        movement script — results and stats must not diverge."""
        rng, positions, server = build_server(seed=5)
        restored = restore_server(
            snapshot_server(server), lambda oid: positions_b[oid]
        )
        positions_b = dict(positions)

        script = []
        r = random.Random(99)
        for _ in range(150):
            oid = r.randrange(len(positions))
            script.append(
                (oid, Point(r.random(), r.random()))
            )

        t = 0.0
        for oid, target in script:
            t += 0.01
            positions[oid] = target
            positions_b[oid] = target
            if not server.safe_region_of(oid).contains_point(target):
                server.handle_location_update(oid, target, t)
            if not restored.safe_region_of(oid).contains_point(target):
                restored.handle_location_update(oid, target, t)

        for query_a in server.queries():
            query_b = next(
                q for q in restored.queries()
                if q.query_id == query_a.query_id
            )
            assert query_a.result_snapshot() == query_b.result_snapshot()

    def test_file_round_trip(self, tmp_path):
        rng, positions, server = build_server(seed=7, n=40)
        path = tmp_path / "server.json"
        with open(path, "w") as handle:
            dump_server(server, handle)
        with open(path) as handle:
            restored = load_server(handle, lambda oid: positions[oid])
        assert restored.object_count == 40
        restored.validate()

    def test_string_object_ids(self):
        positions = {"car-1": Point(0.2, 0.2), "car-2": Point(0.8, 0.8)}
        server = DatabaseServer(position_oracle=lambda oid: positions[oid])
        server.load_objects(positions.items())
        server.register_query(RangeQuery(Rect(0, 0, 0.5, 0.5), query_id="r"))
        buffer = io.StringIO()
        dump_server(server, buffer)
        buffer.seek(0)
        restored = load_server(buffer, lambda oid: positions[oid])
        assert "car-1" in restored
        query = next(iter(restored.queries()))
        assert query.results == {"car-1"}
