"""Unit and property tests for the geometry kernel."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.geometry import (
    Circle,
    Delta,
    LinearMotion,
    Point,
    Rect,
    Ring,
    delta,
    exit_time_from_circle,
    exit_time_from_rect,
)

coords = st.floats(
    min_value=-10.0, max_value=10.0, allow_nan=False, allow_infinity=False
)
unit_coords = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


def points(coord=coords):
    return st.builds(Point, coord, coord)


def rects(coord=coords):
    return st.builds(
        lambda a, b, c, d: Rect(min(a, c), min(b, d), max(a, c), max(b, d)),
        coord,
        coord,
        coord,
        coord,
    )


class TestPoint:
    def test_distance(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == 5.0

    def test_squared_distance(self):
        assert Point(1, 1).squared_distance_to(Point(4, 5)) == 25.0

    def test_dominates(self):
        assert Point(2, 2).dominates(Point(1, 1))
        assert not Point(2, 1).dominates(Point(1, 1))
        assert not Point(1, 1).dominates(Point(1, 1))

    def test_translated(self):
        assert Point(1, 2).translated(0.5, -0.5) == Point(1.5, 1.5)

    def test_iter_and_tuple(self):
        assert tuple(Point(1, 2)) == (1.0, 2.0)
        assert Point(1, 2).as_tuple() == (1, 2)

    @given(points(), points())
    def test_distance_symmetry(self, a, b):
        assert a.distance_to(b) == pytest.approx(b.distance_to(a))

    @given(points(), points(), points())
    def test_triangle_inequality(self, a, b, c):
        assert a.distance_to(c) <= a.distance_to(b) + b.distance_to(c) + 1e-9


class TestRect:
    def test_malformed_raises(self):
        with pytest.raises(ValueError):
            Rect(1, 0, 0, 1)
        with pytest.raises(ValueError):
            Rect(0, 1, 1, 0)

    def test_measures(self):
        r = Rect(0, 0, 2, 1)
        assert r.width == 2
        assert r.height == 1
        assert r.area == 2
        assert r.perimeter == 6
        assert r.margin == 3
        assert r.center == Point(1, 0.5)

    def test_containment(self):
        r = Rect(0, 0, 1, 1)
        assert r.contains_point(Point(0.5, 0.5))
        assert r.contains_point(Point(0, 0))  # closed boundary
        assert not r.contains_point(Point(1.0001, 0.5))
        assert r.contains_point(Point(1.0001, 0.5), eps=0.001)
        assert r.contains_rect(Rect(0.2, 0.2, 0.8, 0.8))
        assert not r.contains_rect(Rect(0.2, 0.2, 1.2, 0.8))

    def test_intersection_disjoint(self):
        assert Rect(0, 0, 1, 1).intersection(Rect(2, 2, 3, 3)) is None

    def test_intersection_touching(self):
        r = Rect(0, 0, 1, 1).intersection(Rect(1, 0, 2, 1))
        assert r == Rect(1, 0, 1, 1)
        assert r.is_degenerate

    def test_intersects_open_vs_closed(self):
        a, b = Rect(0, 0, 1, 1), Rect(1, 0, 2, 1)
        assert a.intersects(b)
        assert not a.intersects_open(b)

    def test_min_max_dist(self):
        r = Rect(0, 0, 1, 1)
        assert r.min_dist_to_point(Point(0.5, 0.5)) == 0.0
        assert r.min_dist_to_point(Point(2, 0.5)) == 1.0
        assert r.max_dist_to_point(Point(0, 0)) == pytest.approx(math.sqrt(2))

    def test_clamp(self):
        r = Rect(0, 0, 1, 1)
        assert r.clamp_point(Point(2, -1)) == Point(1, 0)
        assert r.clamp_point(Point(0.3, 0.7)) == Point(0.3, 0.7)

    def test_expanded_shrink_clamps(self):
        r = Rect(0, 0, 1, 1).expanded(-5)
        assert r.width == 0 and r.height == 0
        assert r.center == Point(0.5, 0.5)

    def test_from_center(self):
        assert Rect.from_center(Point(0.5, 0.5), 0.5, 0.25) == Rect(
            0, 0.25, 1, 0.75
        )
        with pytest.raises(ValueError):
            Rect.from_center(Point(0, 0), -1, 0)

    @given(rects(), rects())
    def test_union_contains_both(self, a, b):
        u = a.union(b)
        assert u.contains_rect(a) and u.contains_rect(b)

    @given(rects(), rects())
    def test_intersection_contained(self, a, b):
        inter = a.intersection(b)
        if inter is None:
            assert not a.intersects_open(b)
        else:
            assert a.contains_rect(inter) and b.contains_rect(inter)

    @given(rects(), points())
    def test_min_le_max_dist(self, r, p):
        assert r.min_dist_to_point(p) <= r.max_dist_to_point(p) + 1e-12

    @given(rects(), points())
    def test_min_dist_matches_clamp(self, r, p):
        assert r.min_dist_to_point(p) == pytest.approx(
            r.clamp_point(p).distance_to(p)
        )

    @given(rects(), points())
    def test_max_dist_is_corner_dist(self, r, p):
        corner_max = max(p.distance_to(c) for c in r.corners())
        assert r.max_dist_to_point(p) == pytest.approx(corner_max)


class TestCircle:
    def test_negative_radius(self):
        with pytest.raises(ValueError):
            Circle(Point(0, 0), -1)

    def test_contains(self):
        c = Circle(Point(0, 0), 1)
        assert c.contains_point(Point(1, 0))
        assert not c.contains_point(Point(1.001, 0))

    def test_rect_relations(self):
        c = Circle(Point(0, 0), 1)
        inside = Rect(-0.5, -0.5, 0.5, 0.5)
        outside = Rect(2, 2, 3, 3)
        crossing = Rect(0.5, -0.5, 2, 0.5)
        assert c.contains_rect(inside)
        assert c.excludes_rect(outside)
        assert not c.intersects_rect(outside)
        assert c.intersects_rect(crossing) and not c.contains_rect(crossing)

    def test_bounding_rect(self):
        assert Circle(Point(1, 1), 2).bounding_rect() == Rect(-1, -1, 3, 3)

    def test_measures(self):
        c = Circle(Point(0, 0), 2)
        assert c.area == pytest.approx(4 * math.pi)
        assert c.circumference == pytest.approx(4 * math.pi)

    @given(points(), st.floats(min_value=0, max_value=5), rects())
    def test_contains_rect_implies_corners_inside(self, center, r, rect):
        c = Circle(center, r)
        if c.contains_rect(rect):
            for corner in rect.corners():
                assert c.contains_point(corner, eps=1e-9)


class TestRing:
    def test_validation(self):
        with pytest.raises(ValueError):
            Ring(Point(0, 0), -1, 2)
        with pytest.raises(ValueError):
            Ring(Point(0, 0), 2, 1)

    def test_degenerate_forms(self):
        disk = Ring(Point(0, 0), 0, 1)
        assert disk.is_disk and not disk.is_disk_complement
        unbounded = Ring(Point(0, 0), 1, float("inf"))
        assert unbounded.is_disk_complement
        with pytest.raises(ValueError):
            unbounded.outer_circle()

    def test_contains_point(self):
        ring = Ring(Point(0, 0), 1, 2)
        assert ring.contains_point(Point(1.5, 0))
        assert not ring.contains_point(Point(0.5, 0))
        assert not ring.contains_point(Point(2.5, 0))

    def test_contains_rect(self):
        ring = Ring(Point(0, 0), 1, 5)
        assert ring.contains_rect(Rect(2, 2, 3, 3))
        assert not ring.contains_rect(Rect(0, 0, 3, 3))  # crosses inner disk
        assert not ring.contains_rect(Rect(4, 4, 6, 6))  # exits outer circle


class TestDistancesDispatch:
    def test_point_point(self):
        assert delta(Point(0, 0), Point(3, 4)) == 5
        assert Delta(Point(0, 0), Point(3, 4)) == 5

    def test_point_rect_both_orders(self):
        r = Rect(1, 1, 2, 2)
        p = Point(0, 1.5)
        assert delta(p, r) == 1.0
        assert delta(r, p) == 1.0
        assert Delta(p, r) == pytest.approx(math.hypot(2, 0.5))
        assert Delta(r, p) == pytest.approx(math.hypot(2, 0.5))

    def test_rect_rect(self):
        a, b = Rect(0, 0, 1, 1), Rect(2, 0, 3, 1)
        assert delta(a, b) == 1.0
        assert Delta(a, b) == pytest.approx(math.hypot(3, 1))
        assert delta(a, a) == 0.0

    @given(rects(), rects(), points(), points())
    def test_sampled_points_within_bounds(self, a, b, u, v):
        pa = a.clamp_point(u)
        pb = b.clamp_point(v)
        d = pa.distance_to(pb)
        assert delta(a, b) <= d + 1e-9
        assert Delta(a, b) >= d - 1e-9


class TestMotion:
    def test_exit_time_axis_aligned(self):
        r = Rect(0, 0, 1, 1)
        t = exit_time_from_rect(Point(0.5, 0.5), 1.0, 0.0, r)
        assert t == pytest.approx(0.5)

    def test_exit_time_diagonal(self):
        r = Rect(0, 0, 1, 1)
        t = exit_time_from_rect(Point(0.5, 0.5), 1.0, 2.0, r)
        assert t == pytest.approx(0.25)  # hits the top first

    def test_exit_time_outside_is_zero(self):
        assert exit_time_from_rect(Point(2, 2), 1, 1, Rect(0, 0, 1, 1)) == 0.0

    def test_exit_time_stationary_is_inf(self):
        t = exit_time_from_rect(Point(0.5, 0.5), 0, 0, Rect(0, 0, 1, 1))
        assert t == float("inf")

    def test_circle_exit(self):
        c = Circle(Point(0, 0), 1)
        assert exit_time_from_circle(Point(0, 0), 1, 0, c) == pytest.approx(1)
        assert exit_time_from_circle(Point(0.5, 0), 1, 0, c) == pytest.approx(0.5)
        assert exit_time_from_circle(Point(2, 0), 1, 0, c) == 0.0
        assert exit_time_from_circle(Point(0, 0), 0, 0, c) == float("inf")

    def test_linear_motion_position(self):
        m = LinearMotion(Point(0, 0), 1.0, -1.0, start_time=2.0)
        assert m.position_at(3.0) == Point(1.0, -1.0)
        assert m.speed == pytest.approx(math.sqrt(2))

    def test_linear_motion_exit_absolute_time(self):
        m = LinearMotion(Point(0.5, 0.5), 1.0, 0.0, start_time=10.0)
        assert m.exit_time_from_rect(Rect(0, 0, 1, 1)) == pytest.approx(10.5)
        assert m.exit_time_from_circle(
            Circle(Point(0.5, 0.5), 0.25)
        ) == pytest.approx(10.25)

    @given(
        points(unit_coords),
        st.floats(min_value=-2, max_value=2, allow_nan=False),
        st.floats(min_value=-2, max_value=2, allow_nan=False),
    )
    def test_exit_point_is_on_boundary(self, start, vx, vy):
        rect = Rect(0, 0, 1, 1)
        t = exit_time_from_rect(start, vx, vy, rect)
        if t == 0.0 or t == float("inf"):
            return
        exit_point = Point(start.x + vx * t, start.y + vy * t)
        assert rect.contains_point(exit_point, eps=1e-9)
        on_boundary = (
            abs(exit_point.x - rect.min_x) < 1e-9
            or abs(exit_point.x - rect.max_x) < 1e-9
            or abs(exit_point.y - rect.min_y) < 1e-9
            or abs(exit_point.y - rect.max_y) < 1e-9
        )
        assert on_boundary
        # Slightly before the exit the motion is still strictly inside.
        before = Point(start.x + vx * t * 0.999, start.y + vy * t * 0.999)
        assert rect.contains_point(before, eps=1e-9)
