"""Tests for the CI benchmark-regression gate (benchmarks/check_regression.py).

The checker is a standalone script (not part of the ``repro`` package),
so it is loaded straight from its file path.
"""

import importlib.util
import json
import pathlib

import pytest

_PATH = (
    pathlib.Path(__file__).resolve().parent.parent
    / "benchmarks" / "check_regression.py"
)
_spec = importlib.util.spec_from_file_location("check_regression", _PATH)
check_regression = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check_regression)


def _document(rate=1000.0, cached=2000.0, smoke=False):
    return {
        "smoke": smoke,
        "scenario": {"num_objects": 4000, "duration": 2.0},
        "uncached": {"updates_per_sec": rate},
        "cached": {"updates_per_sec": cached},
    }


class TestThroughputs:
    def test_collects_nested_fields_by_json_path(self):
        rates = check_regression.throughputs(_document())
        assert rates == {
            "uncached.updates_per_sec": 1000.0,
            "cached.updates_per_sec": 2000.0,
        }

    def test_matches_suffixed_keys_and_top_level(self):
        rates = check_regression.throughputs(
            {"hotpath_cached_updates_per_sec": 5.0, "other": {"x": 1}}
        )
        assert rates == {"hotpath_cached_updates_per_sec": 5.0}

    def test_ignores_non_numeric_values(self):
        assert check_regression.throughputs(
            {"updates_per_sec": "n/a"}
        ) == {}


class TestCheck:
    def test_within_tolerance_passes(self):
        code, messages = check_regression.check(
            _document(rate=900.0, cached=2100.0), _document(), tolerance=0.2
        )
        assert code == 0
        assert all(m.startswith("ok ") for m in messages)

    def test_regression_beyond_tolerance_fails(self):
        code, messages = check_regression.check(
            _document(rate=700.0), _document(), tolerance=0.2
        )
        assert code == 1
        assert any(
            m.startswith("REGRESSION uncached.updates_per_sec") for m in messages
        )

    def test_improvement_beyond_tolerance_warns_but_passes(self):
        code, messages = check_regression.check(
            _document(rate=1500.0), _document(), tolerance=0.2
        )
        assert code == 0
        assert any("refreshing the committed baseline" in m for m in messages)

    def test_missing_field_in_fresh_run_fails(self):
        fresh = _document()
        del fresh["cached"]
        code, messages = check_regression.check(
            fresh, _document(), tolerance=0.2
        )
        assert code == 1
        assert any("field missing" in m for m in messages)

    def test_smoke_flag_mismatch_skips_gate(self):
        # CI runs smoke mode against committed full-run baselines: the
        # configs differ, so even a huge slowdown must not gate.
        code, messages = check_regression.check(
            _document(rate=1.0, smoke=True), _document(), tolerance=0.2
        )
        assert code == 0
        assert any("gate skipped" in m for m in messages)

    def test_scenario_mismatch_skips_gate(self):
        fresh = _document(rate=1.0)
        fresh["scenario"]["num_objects"] = 99
        code, messages = check_regression.check(
            fresh, _document(), tolerance=0.2
        )
        assert code == 0
        assert any("gate skipped" in m for m in messages)

    def test_baseline_without_rates_skips_gate(self):
        empty = {"smoke": False, "scenario": None, "results": {}}
        code, messages = check_regression.check(empty, empty, tolerance=0.2)
        assert code == 0
        assert any("nothing to gate" in m for m in messages)

    def test_tolerance_is_respected(self):
        fresh = _document(rate=850.0)  # -15%
        assert check_regression.check(fresh, _document(), 0.2)[0] == 0
        assert check_regression.check(fresh, _document(), 0.1)[0] == 1

    def test_zero_baseline_rate_never_divides(self):
        base = _document(rate=0.0)
        code, _ = check_regression.check(_document(rate=5.0), base, 0.2)
        assert code == 0  # infinite ratio counts as an improvement


class TestMain:
    def test_cli_round_trip(self, tmp_path, capsys):
        fresh = tmp_path / "fresh.json"
        baseline = tmp_path / "baseline.json"
        fresh.write_text(json.dumps(_document(rate=700.0)))
        baseline.write_text(json.dumps(_document()))
        assert check_regression.main([str(fresh), str(baseline)]) == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out

        assert check_regression.main(
            [str(fresh), str(baseline), "--tolerance", "0.4"]
        ) == 0

    def test_committed_baselines_self_compare_clean(self, capsys):
        """Each committed BENCH_*.json gated against itself passes —
        the shape the CI stash-then-gate steps rely on."""
        results = _PATH.parent / "results"
        baselines = sorted(
            path for path in results.glob("BENCH_*.json")
            if path.name != "BENCH_trajectory.json"  # a log, not a baseline
        )
        assert baselines, "no committed benchmark baselines found"
        for path in baselines:
            assert check_regression.main([str(path), str(path)]) == 0
        capsys.readouterr()


@pytest.mark.parametrize("tolerance", [0.0, 0.2])
def test_identity_always_passes(tolerance):
    code, _ = check_regression.check(_document(), _document(), tolerance)
    assert code == 0


def _entry(figure, rate, commit="abc1234", date="2026-08-08"):
    return {
        "date": date, "commit": commit,
        "figure": figure, "updates_per_sec": rate,
    }


class TestTrajectory:
    def test_latest_within_tolerance_of_best_passes(self):
        entries = [
            _entry("kernels.numpy", 80_000.0, commit="a"),
            _entry("kernels.numpy", 90_000.0, commit="b"),
            _entry("kernels.numpy", 85_000.0, commit="c"),
        ]
        code, messages = check_regression.check_trajectory(entries, 0.2)
        assert code == 0
        assert any(m.startswith("  ok:") for m in messages)

    def test_latest_below_best_beyond_tolerance_fails(self):
        # The gate compares against the *best* earlier entry, so a slow
        # drift split over several commits cannot slip through.
        entries = [
            _entry("kernels.numpy", 100_000.0, commit="a"),
            _entry("kernels.numpy", 90_000.0, commit="b"),
            _entry("kernels.numpy", 79_000.0, commit="c"),
        ]
        code, messages = check_regression.check_trajectory(entries, 0.2)
        assert code == 1
        assert any("REGRESSION" in m for m in messages)

    def test_single_entry_has_nothing_to_gate(self):
        code, messages = check_regression.check_trajectory(
            [_entry("hotpath.cached", 20_000.0)], 0.2
        )
        assert code == 0
        assert any("nothing to gate" in m for m in messages)

    def test_figures_gate_independently(self):
        entries = [
            _entry("hotpath.cached", 20_000.0, commit="a"),
            _entry("hotpath.cached", 21_000.0, commit="b"),
            _entry("kernels.numpy", 100_000.0, commit="a"),
            _entry("kernels.numpy", 50_000.0, commit="b"),
        ]
        code, messages = check_regression.check_trajectory(entries, 0.2)
        assert code == 1
        regressions = [m for m in messages if "REGRESSION" in m]
        assert len(regressions) == 1

    def test_empty_trajectory_passes(self):
        code, messages = check_regression.check_trajectory([], 0.2)
        assert code == 0
        assert any("nothing to gate" in m for m in messages)

    def test_cli_trajectory_mode(self, tmp_path, capsys):
        path = tmp_path / "BENCH_trajectory.json"
        path.write_text(json.dumps([
            _entry("kernels.numpy", 100_000.0, commit="a"),
            _entry("kernels.numpy", 50_000.0, commit="b"),
        ]))
        assert check_regression.main(["--trajectory", str(path)]) == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out
        assert "|" in out  # the ASCII history plot

    def test_committed_trajectory_gates_clean(self, capsys):
        path = _PATH.parent / "results" / "BENCH_trajectory.json"
        assert path.exists(), "tracked perf trajectory missing"
        assert check_regression.main(["--trajectory", str(path)]) == 0
        capsys.readouterr()
