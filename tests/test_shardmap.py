"""Property tests for the cell → shard rendezvous map (docs/SHARDING.md).

The map is the contract everything else in ``repro.sharding`` leans on:

* **total** — every grid cell has exactly one owner in range;
* **deterministic across processes** — the weights come from a keyed
  BLAKE2 digest, never the salted builtin ``hash``, so a router in one
  process and a worker in another always agree;
* **stable under growth** — going from N to N + 1 shards only moves the
  cells the new shard wins, about 1/(N+1) of them (the consistent-
  hashing property that makes resharding cheap);
* **ranked fallback** — excluding a dead shard re-homes only that
  shard's cells, each to its rendezvous runner-up.
"""

import subprocess
import sys

from hypothesis import given, settings, strategies as st

from repro.sharding import ShardMap

grid_ms = st.integers(min_value=14, max_value=40)
shard_counts = st.integers(min_value=1, max_value=8)


@settings(max_examples=60, deadline=None)
@given(shard_counts, grid_ms)
def test_map_is_total_and_in_range(n, m):
    shard_map = ShardMap(n, m)
    owners = {
        (i, j): shard_map.shard_of((i, j))
        for i in range(m)
        for j in range(m)
    }
    assert len(owners) == m * m
    assert all(0 <= s < n for s in owners.values())


@settings(max_examples=60, deadline=None)
@given(shard_counts, grid_ms)
def test_counts_and_cells_of_agree(n, m):
    shard_map = ShardMap(n, m)
    counts = shard_map.counts()
    assert sum(counts.values()) == m * m
    for shard in range(n):
        cells = shard_map.cells_of(shard)
        assert counts[shard] == len(cells)
        assert all(shard_map.shard_of(cell) == shard for cell in cells)


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=1, max_value=7), grid_ms)
def test_growth_moves_less_than_two_over_n_plus_one(n, m):
    """N → N + 1 only moves cells the new shard wins (< 2/(N+1))."""
    before = ShardMap(n, m)
    after = ShardMap(n + 1, m)
    moved = [
        cell
        for i in range(m)
        for j in range(m)
        if before.shard_of(cell := (i, j)) != after.shard_of(cell)
    ]
    # Every moved cell moved *to* the new shard, never between old ones.
    assert all(after.shard_of(cell) == n for cell in moved)
    # Expectation is (m*m)/(n+1); 2x slack keeps the bound flake-free
    # at these grid sizes (>= 196 cells per draw).
    assert len(moved) < 2 * m * m / (n + 1)


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=2, max_value=8), grid_ms)
def test_exclusion_reroutes_only_the_dead_shards_cells(n, m):
    shard_map = ShardMap(n, m)
    dead = frozenset({0})
    for i in range(m):
        for j in range(m):
            owner = shard_map.shard_of((i, j))
            fallback = shard_map.shard_of((i, j), excluding=dead)
            if owner != 0:
                assert fallback == owner
            else:
                assert fallback != 0


def test_deterministic_across_processes():
    """A fresh interpreter computes the exact same ownership table."""
    m, n = 16, 4
    local = [ShardMap(n, m).shard_of((i, j)) for i in range(m) for j in range(m)]
    code = (
        "from repro.sharding import ShardMap\n"
        f"print([ShardMap({n}, {m}).shard_of((i, j)) "
        f"for i in range({m}) for j in range({m})])\n"
    )
    out = subprocess.run(
        [sys.executable, "-c", code],
        capture_output=True, text=True, check=True,
    )
    assert eval(out.stdout) == local


def test_all_shards_excluded_raises():
    shard_map = ShardMap(2, 14)
    try:
        shard_map.shard_of((0, 0), excluding=frozenset({0, 1}))
    except ValueError as exc:
        # The message must name the cell and the exclusion count — the
        # seed raised a bare "no shard" that hid which lookup failed.
        assert "(0, 0)" in str(exc) and "excluded" in str(exc)
    else:
        raise AssertionError("expected ValueError with no live shards")


# ----------------------------------------------------------------------
# Elastic derivation: with_shard / without_shard / moved_cells
# ----------------------------------------------------------------------
@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=1, max_value=7), grid_ms)
def test_with_shard_moves_only_the_new_shards_wins(n, m):
    """``add_shard`` minimality: every moved cell lands on the new shard
    and the expected fraction is 1/(N+1) (2x slack, as above)."""
    before = ShardMap(n, m)
    after = before.with_shard(n)
    moved = before.moved_cells(after)
    assert all(after.shard_of(cell) == n for cell in moved)
    assert len(moved) < 2 * m * m / (n + 1)
    moved_set = set(moved)
    for i in range(m):
        for j in range(m):
            if (i, j) not in moved_set:
                assert after.shard_of((i, j)) == before.shard_of((i, j))


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=2, max_value=8), grid_ms,
       st.integers(min_value=0, max_value=7))
def test_without_shard_moves_only_the_removed_shards_cells(n, m, victim):
    """``remove_shard`` minimality: exactly the retiree's cells move,
    each to its rendezvous runner-up; every other cell keeps its owner."""
    victim %= n
    before = ShardMap(n, m)
    if n == 1:
        return  # without_shard refuses the last shard; covered below
    after = before.without_shard(victim)
    moved = before.moved_cells(after)
    assert set(moved) == set(before.cells_of(victim))
    for cell in moved:
        assert after.shard_of(cell) == before.shard_of(
            cell, excluding=frozenset({victim})
        )
    for i in range(m):
        for j in range(m):
            if before.shard_of((i, j)) != victim:
                assert after.shard_of((i, j)) == before.shard_of((i, j))


def test_holey_maps_compose():
    """Grow-after-shrink works on non-contiguous id sets and ids are
    never reused: {0,1,2} - {1} + {3} owns with ids {0,2,3}."""
    base = ShardMap(3, 16)
    holey = base.without_shard(1)
    assert holey.shard_ids == (0, 2)
    grown = holey.with_shard(3)
    assert grown.shard_ids == (0, 2, 3)
    owners = {grown.shard_of((i, j)) for i in range(16) for j in range(16)}
    assert owners <= {0, 2, 3}
    # Cells neither shard-1 lost nor shard-3 won are untouched from base.
    for i in range(16):
        for j in range(16):
            if base.shard_of((i, j)) != 1 and grown.shard_of((i, j)) != 3:
                assert grown.shard_of((i, j)) == base.shard_of((i, j))


def test_with_without_reject_bad_ids_and_mismatched_diffs():
    shard_map = ShardMap(3, 14)
    try:
        shard_map.with_shard(1)
    except ValueError:
        pass
    else:
        raise AssertionError("with_shard must refuse an existing id")
    try:
        shard_map.without_shard(9)
    except ValueError:
        pass
    else:
        raise AssertionError("without_shard must refuse a missing id")
    try:
        ShardMap(1, 14).without_shard(0)
    except ValueError:
        pass
    else:
        raise AssertionError("without_shard must refuse the last shard")
    try:
        shard_map.moved_cells(ShardMap(3, 16))
    except ValueError:
        pass
    else:
        raise AssertionError("moved_cells must refuse a grid_m mismatch")
