"""Property tests for the cell → shard rendezvous map (docs/SHARDING.md).

The map is the contract everything else in ``repro.sharding`` leans on:

* **total** — every grid cell has exactly one owner in range;
* **deterministic across processes** — the weights come from a keyed
  BLAKE2 digest, never the salted builtin ``hash``, so a router in one
  process and a worker in another always agree;
* **stable under growth** — going from N to N + 1 shards only moves the
  cells the new shard wins, about 1/(N+1) of them (the consistent-
  hashing property that makes resharding cheap);
* **ranked fallback** — excluding a dead shard re-homes only that
  shard's cells, each to its rendezvous runner-up.
"""

import subprocess
import sys

from hypothesis import given, settings, strategies as st

from repro.sharding import ShardMap

grid_ms = st.integers(min_value=14, max_value=40)
shard_counts = st.integers(min_value=1, max_value=8)


@settings(max_examples=60, deadline=None)
@given(shard_counts, grid_ms)
def test_map_is_total_and_in_range(n, m):
    shard_map = ShardMap(n, m)
    owners = {
        (i, j): shard_map.shard_of((i, j))
        for i in range(m)
        for j in range(m)
    }
    assert len(owners) == m * m
    assert all(0 <= s < n for s in owners.values())


@settings(max_examples=60, deadline=None)
@given(shard_counts, grid_ms)
def test_counts_and_cells_of_agree(n, m):
    shard_map = ShardMap(n, m)
    counts = shard_map.counts()
    assert sum(counts.values()) == m * m
    for shard in range(n):
        cells = shard_map.cells_of(shard)
        assert counts[shard] == len(cells)
        assert all(shard_map.shard_of(cell) == shard for cell in cells)


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=1, max_value=7), grid_ms)
def test_growth_moves_less_than_two_over_n_plus_one(n, m):
    """N → N + 1 only moves cells the new shard wins (< 2/(N+1))."""
    before = ShardMap(n, m)
    after = ShardMap(n + 1, m)
    moved = [
        cell
        for i in range(m)
        for j in range(m)
        if before.shard_of(cell := (i, j)) != after.shard_of(cell)
    ]
    # Every moved cell moved *to* the new shard, never between old ones.
    assert all(after.shard_of(cell) == n for cell in moved)
    # Expectation is (m*m)/(n+1); 2x slack keeps the bound flake-free
    # at these grid sizes (>= 196 cells per draw).
    assert len(moved) < 2 * m * m / (n + 1)


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=2, max_value=8), grid_ms)
def test_exclusion_reroutes_only_the_dead_shards_cells(n, m):
    shard_map = ShardMap(n, m)
    dead = frozenset({0})
    for i in range(m):
        for j in range(m):
            owner = shard_map.shard_of((i, j))
            fallback = shard_map.shard_of((i, j), excluding=dead)
            if owner != 0:
                assert fallback == owner
            else:
                assert fallback != 0


def test_deterministic_across_processes():
    """A fresh interpreter computes the exact same ownership table."""
    m, n = 16, 4
    local = [ShardMap(n, m).shard_of((i, j)) for i in range(m) for j in range(m)]
    code = (
        "from repro.sharding import ShardMap\n"
        f"print([ShardMap({n}, {m}).shard_of((i, j)) "
        f"for i in range({m}) for j in range({m})])\n"
    )
    out = subprocess.run(
        [sys.executable, "-c", code],
        capture_output=True, text=True, check=True,
    )
    assert eval(out.stdout) == local


def test_all_shards_excluded_raises():
    shard_map = ShardMap(2, 14)
    try:
        shard_map.shard_of((0, 0), excluding=frozenset({0, 1}))
    except ValueError:
        pass
    else:
        raise AssertionError("expected ValueError with no live shards")
