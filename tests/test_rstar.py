"""Unit, integration, and property tests for the R*-tree substrate."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry import Point, Rect
from repro.index import BruteForceIndex, RStarTree
from repro.index.bulk import bulk_load


def random_rect(rng: random.Random, size: float = 0.05) -> Rect:
    x = rng.uniform(0, 1 - size)
    y = rng.uniform(0, 1 - size)
    w = rng.uniform(0, size)
    h = rng.uniform(0, size)
    return Rect(x, y, x + w, y + h)


def build_pair(n: int, seed: int = 7, max_entries: int = 8):
    """An R*-tree and a brute-force oracle over the same data."""
    rng = random.Random(seed)
    tree = RStarTree(max_entries=max_entries)
    oracle = BruteForceIndex()
    for oid in range(n):
        rect = random_rect(rng)
        tree.insert(oid, rect)
        oracle.insert(oid, rect)
    return tree, oracle, rng


class TestConstruction:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            RStarTree(max_entries=3)
        with pytest.raises(ValueError):
            RStarTree(min_fill=0.9)
        with pytest.raises(ValueError):
            RStarTree(min_fill=0.0)

    def test_empty_tree(self):
        tree = RStarTree()
        assert len(tree) == 0
        assert tree.height == 1
        assert tree.search(Rect(0, 0, 1, 1)) == []
        assert list(tree.nearest_iter(Point(0, 0))) == []
        tree.validate()

    def test_duplicate_insert_rejected(self):
        tree = RStarTree()
        tree.insert("a", Rect(0, 0, 1, 1))
        with pytest.raises(KeyError):
            tree.insert("a", Rect(0, 0, 1, 1))

    def test_missing_delete_raises(self):
        with pytest.raises(KeyError):
            RStarTree().delete("ghost")

    def test_contains_and_rect_of(self):
        tree = RStarTree()
        r = Rect(0.1, 0.1, 0.2, 0.2)
        tree.insert(42, r)
        assert 42 in tree
        assert tree.rect_of(42) == r
        assert 43 not in tree


class TestStructuralInvariants:
    @pytest.mark.parametrize("n", [1, 5, 33, 200, 800])
    def test_validate_after_inserts(self, n):
        tree, _, _ = build_pair(n)
        assert len(tree) == n
        tree.validate()

    def test_grows_in_height(self):
        tree, _, _ = build_pair(800)
        assert tree.height >= 3

    def test_validate_after_heavy_deletes(self):
        tree, oracle, rng = build_pair(300)
        ids = list(range(300))
        rng.shuffle(ids)
        for oid in ids[:250]:
            tree.delete(oid)
            oracle.delete(oid)
        tree.validate()
        assert len(tree) == 50
        survivors = {oid for oid, _ in tree.all_entries()}
        assert survivors == set(ids[250:])

    def test_delete_everything(self):
        tree, _, _ = build_pair(120)
        for oid in range(120):
            tree.delete(oid)
        assert len(tree) == 0
        tree.validate()
        # Tree is reusable after emptying.
        tree.insert("again", Rect(0, 0, 0.1, 0.1))
        tree.validate()


class TestSearch:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_range_search_matches_oracle(self, seed):
        tree, oracle, rng = build_pair(400, seed=seed)
        for _ in range(30):
            probe = random_rect(rng, size=0.3)
            assert sorted(tree.search(probe)) == sorted(oracle.search(probe))

    def test_search_entries_returns_stored_rects(self):
        tree, oracle, rng = build_pair(100)
        probe = Rect(0, 0, 1, 1)
        got = dict(tree.search_entries(probe))
        expected = dict(oracle.search_entries(probe))
        assert got == expected

    def test_point_probe(self):
        tree = RStarTree(max_entries=4)
        tree.insert("hit", Rect(0.4, 0.4, 0.6, 0.6))
        tree.insert("miss", Rect(0.8, 0.8, 0.9, 0.9))
        found = tree.search(Rect.from_point(Point(0.5, 0.5)))
        assert found == ["hit"]


class TestNearestIter:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_order_matches_oracle(self, seed):
        tree, oracle, rng = build_pair(300, seed=seed)
        q = Point(rng.random(), rng.random())
        got = [(oid, d) for oid, _, d in tree.nearest_iter(q)]
        expected = [(oid, d) for oid, _, d in oracle.nearest_iter(q)]
        assert len(got) == len(expected)
        # Distances must be identical and non-decreasing; ids may permute
        # only among equal distances.
        for (_, dg), (_, de) in zip(got, expected):
            assert dg == pytest.approx(de)
        assert [d for _, d in got] == sorted(d for _, d in got)

    def test_exclude_filter(self):
        tree, _, _ = build_pair(50)
        banned = {0, 1, 2, 3, 4}
        seen = [oid for oid, _, _ in tree.nearest_iter(
            Point(0.5, 0.5), exclude=lambda oid: oid in banned
        )]
        assert banned.isdisjoint(seen)
        assert len(seen) == 45

    def test_lazy_iteration_is_incremental(self):
        tree, oracle, _ = build_pair(500)
        it = tree.nearest_iter(Point(0.5, 0.5))
        first = next(it)
        expected_first = next(iter(oracle.nearest_iter(Point(0.5, 0.5))))
        assert first[2] == pytest.approx(expected_first[2])


class TestUpdate:
    def test_fast_path_in_root_leaf(self):
        tree = RStarTree()
        tree.insert("a", Rect(0, 0, 0.1, 0.1))
        assert tree.update("a", Rect(0.5, 0.5, 0.6, 0.6)) is True
        assert tree.rect_of("a") == Rect(0.5, 0.5, 0.6, 0.6)
        tree.validate()

    def test_small_moves_use_fast_path(self):
        tree, _, rng = build_pair(400)
        fast = 0
        for oid in range(400):
            rect = tree.rect_of(oid)
            nudged = Rect(
                rect.min_x, rect.min_y,
                min(rect.max_x + 1e-6, 1.0), min(rect.max_y + 1e-6, 1.0),
            )
            # Shrinks always stay inside the recorded leaf MBR.
            shrunk = Rect(rect.min_x, rect.min_y, rect.min_x, rect.min_y)
            if tree.update(oid, shrunk):
                fast += 1
            tree.update(oid, nudged)
        assert fast == 400
        tree.validate()

    def test_large_moves_relocate(self):
        tree, oracle, rng = build_pair(300)
        for oid in range(300):
            rect = random_rect(rng)
            tree.update(oid, rect)
            oracle.update(oid, rect)
        tree.validate()
        probe = Rect(0.25, 0.25, 0.75, 0.75)
        assert sorted(tree.search(probe)) == sorted(oracle.search(probe))

    def test_update_missing_raises(self):
        with pytest.raises(KeyError):
            RStarTree().update("ghost", Rect(0, 0, 1, 1))


class TestBulkLoad:
    def test_empty(self):
        tree = bulk_load([])
        assert len(tree) == 0
        tree.validate()

    @pytest.mark.parametrize("n", [1, 10, 100, 1000])
    def test_matches_oracle(self, n):
        rng = random.Random(11)
        pairs = [(i, random_rect(rng)) for i in range(n)]
        tree = bulk_load(pairs, max_entries=16)
        oracle = BruteForceIndex()
        for oid, rect in pairs:
            oracle.insert(oid, rect)
        tree.validate()
        assert len(tree) == n
        probe = Rect(0.2, 0.2, 0.6, 0.6)
        assert sorted(tree.search(probe)) == sorted(oracle.search(probe))

    def test_duplicate_rejected(self):
        with pytest.raises(KeyError):
            bulk_load([("a", Rect(0, 0, 1, 1)), ("a", Rect(0, 0, 1, 1))])

    def test_supports_mutation_after_load(self):
        rng = random.Random(3)
        pairs = [(i, random_rect(rng)) for i in range(500)]
        tree = bulk_load(pairs, max_entries=8)
        for oid in range(0, 500, 2):
            tree.delete(oid)
        for oid in range(500, 600):
            tree.insert(oid, random_rect(rng))
        tree.validate()
        assert len(tree) == 350


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0, max_value=1, allow_nan=False),
            st.floats(min_value=0, max_value=1, allow_nan=False),
            st.floats(min_value=0, max_value=0.2, allow_nan=False),
            st.floats(min_value=0, max_value=0.2, allow_nan=False),
        ),
        min_size=0,
        max_size=120,
    ),
    st.randoms(use_true_random=False),
)
def test_random_workload_matches_oracle(raw, rng):
    """Interleaved inserts / deletes / updates agree with brute force."""
    tree = RStarTree(max_entries=5)
    oracle = BruteForceIndex()
    live = []
    for i, (x, y, w, h) in enumerate(raw):
        rect = Rect(x, y, x + w, y + h)
        op = rng.random()
        if live and op < 0.25:
            victim = live.pop(rng.randrange(len(live)))
            tree.delete(victim)
            oracle.delete(victim)
        elif live and op < 0.5:
            target = live[rng.randrange(len(live))]
            tree.update(target, rect)
            oracle.update(target, rect)
        else:
            tree.insert(i, rect)
            oracle.insert(i, rect)
            live.append(i)
    tree.validate()
    assert sorted(oid for oid, _ in tree.all_entries()) == sorted(live)
    probe = Rect(0.25, 0.25, 0.8, 0.8)
    assert sorted(tree.search(probe)) == sorted(oracle.search(probe))
    q = Point(0.4, 0.6)
    got = [d for _, _, d in tree.nearest_iter(q)]
    expected = [d for _, _, d in oracle.nearest_iter(q)]
    assert got == pytest.approx(expected)
