"""Tests for result-change records and update outcomes."""

from repro.core.results import ResultChange, UpdateOutcome
from repro.geometry import Rect


class TestResultChange:
    def test_changed_flag(self):
        assert ResultChange("q", frozenset({1}), frozenset({1, 2})).changed
        assert not ResultChange("q", frozenset({1}), frozenset({1})).changed

    def test_ordered_snapshots(self):
        assert ResultChange("q", (1, 2), (2, 1)).changed
        assert not ResultChange("q", (1, 2), (1, 2)).changed

    def test_none_old_counts_as_change(self):
        assert ResultChange("q", None, frozenset()).changed


class TestUpdateOutcome:
    def test_defaults(self):
        outcome = UpdateOutcome()
        assert outcome.safe_region is None
        assert outcome.probed == {}
        assert outcome.changes == []
        assert outcome.probe_count == 0

    def test_probe_count(self):
        outcome = UpdateOutcome()
        outcome.probed["a"] = Rect(0, 0, 1, 1)
        outcome.probed["b"] = Rect(0, 0, 1, 1)
        assert outcome.probe_count == 2

    def test_changed_queries_filter(self):
        outcome = UpdateOutcome()
        outcome.changes.append(ResultChange("a", frozenset(), frozenset({1})))
        outcome.changes.append(ResultChange("b", frozenset(), frozenset()))
        outcome.changes.append(ResultChange("c", (1,), (2,)))
        changed = outcome.changed_queries()
        assert [change.query_id for change in changed] == ["a", "c"]

    def test_chained_changes_preserved(self):
        """A query reevaluated twice in one update keeps both deltas."""
        outcome = UpdateOutcome()
        outcome.changes.append(ResultChange("q", frozenset(), frozenset({1})))
        outcome.changes.append(
            ResultChange("q", frozenset({1}), frozenset({1, 2}))
        )
        assert len(outcome.changed_queries()) == 2
