"""Tests for the structured-event stream and flight recorder."""

import json
import random

import pytest

from repro.core.queries import KNNQuery, RangeQuery
from repro.core.server import DatabaseServer, ServerConfig
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.obs import (
    EVENT_KINDS,
    NULL_EVENT_LOG,
    EventLog,
    causal_chain,
    filter_events,
    read_events,
    timeline,
)


class TestEventLog:
    def test_emit_assigns_ascending_seq_and_time(self):
        log = EventLog()
        log.set_time(2.5)
        first = log.emit("update", oid=1)
        second = log.emit("probe", cause=first, oid=2)
        assert second == first + 1
        events = log.events()
        assert [e.seq for e in events] == [first, second]
        assert all(e.t == 2.5 for e in events)
        assert events[1].cause == first

    def test_ring_buffer_retains_only_capacity(self):
        log = EventLog(capacity=10)
        for i in range(25):
            log.emit("update", oid=i)
        assert len(log) == 10
        assert log.total_emitted == 25
        assert [e.data["oid"] for e in log.events()] == list(range(15, 25))

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            EventLog(capacity=0)

    def test_to_dict_flattens_data(self):
        log = EventLog()
        log.set_time(1.0)
        seq = log.emit("probe", cause=None, oid=7, pos=(0.5, 0.5))
        row = log.events()[0].to_dict()
        assert row == {
            "seq": seq, "t": 1.0, "kind": "probe", "cause": None,
            "oid": 7, "pos": (0.5, 0.5),
        }

    def test_sink_streams_every_event_despite_small_ring(self, tmp_path):
        sink = tmp_path / "events.jsonl"
        log = EventLog(capacity=2, sink=sink)
        for i in range(9):
            log.emit("update", oid=i)
        log.close()
        rows = read_events(sink)
        assert len(rows) == 9  # the ring kept 2, the sink kept all
        assert [row["oid"] for row in rows] == list(range(9))

    def test_dump_spills_ring_as_jsonl(self, tmp_path):
        log = EventLog(capacity=3)
        for i in range(5):
            log.emit("update", oid=i)
        out = tmp_path / "flight.jsonl"
        assert log.dump(out) == 3
        rows = [json.loads(line) for line in out.read_text().splitlines()]
        assert [row["oid"] for row in rows] == [2, 3, 4]

    def test_null_log_is_inert(self, tmp_path):
        assert NULL_EVENT_LOG.enabled is False
        assert NULL_EVENT_LOG.emit("update", oid=1) == 0
        assert NULL_EVENT_LOG.events() == []
        assert len(NULL_EVENT_LOG) == 0
        assert NULL_EVENT_LOG.total_emitted == 0
        assert NULL_EVENT_LOG.dump(tmp_path / "nothing.jsonl") == 0
        assert not (tmp_path / "nothing.jsonl").exists()


class TestFilterAndChain:
    def _rows(self):
        return [
            {"seq": 1, "t": 0.0, "kind": "update", "cause": None, "oid": 3},
            {"seq": 2, "t": 0.0, "kind": "reevaluation", "cause": 1,
             "query": "q1", "oid": 3},
            {"seq": 3, "t": 0.0, "kind": "probe", "cause": 2, "oid": 9},
            {"seq": 4, "t": 0.0, "kind": "result_change", "cause": 2,
             "query": "q1"},
            {"seq": 5, "t": 7.0, "kind": "update", "cause": None, "oid": 9},
        ]

    def test_filter_by_kind_oid_query_and_time(self):
        rows = self._rows()
        assert [e["seq"] for e in filter_events(rows, kind="update")] == [1, 5]
        assert [e["seq"] for e in filter_events(rows, oid=9)] == [3, 5]
        # Stringified ids match too (JSON round-trips may change types).
        assert [e["seq"] for e in filter_events(rows, oid="9")] == [3, 5]
        assert [e["seq"] for e in filter_events(rows, query="q1")] == [2, 4]
        assert [e["seq"] for e in filter_events(rows, t_min=1.0)] == [5]
        assert [e["seq"] for e in filter_events(rows, t_max=1.0)] == [1, 2, 3, 4]

    def test_chain_from_leaf_recovers_whole_tree(self):
        rows = self._rows()
        chain = causal_chain(rows, 3)  # start from the probe
        assert [e["seq"] for e in chain] == [1, 2, 3, 4]

    def test_chain_from_root_and_unknown_seq(self):
        rows = self._rows()
        assert [e["seq"] for e in causal_chain(rows, 5)] == [5]
        assert causal_chain(rows, 99) == []

    def test_chain_survives_cause_outside_window(self):
        # Ring truncation can drop the root; the walk stops gracefully.
        rows = [
            {"seq": 10, "t": 1.0, "kind": "reevaluation", "cause": 2},
            {"seq": 11, "t": 1.0, "kind": "probe", "cause": 10},
        ]
        assert [e["seq"] for e in causal_chain(rows, 11)] == [10, 11]


class TestTimeline:
    def test_buckets_by_interval_and_counts_kinds(self):
        rows = [
            {"seq": 1, "t": 0.2, "kind": "update"},
            {"seq": 2, "t": 0.9, "kind": "probe"},
            {"seq": 3, "t": 2.4, "kind": "update"},
        ]
        table = timeline(rows, interval=1.0)
        assert [row["t0"] for row in table] == [0.0, 2.0]
        assert table[0]["update"] == 1 and table[0]["probe"] == 1
        assert table[1]["update"] == 1

    def test_interval_must_be_positive(self):
        with pytest.raises(ValueError):
            timeline([], interval=0.0)


def _drive_server(events, ticks=200, num_objects=30, seed=3):
    """A small SRB world driven for ``ticks`` update rounds."""
    rng = random.Random(seed)
    live = {i: Point(rng.random(), rng.random()) for i in range(num_objects)}
    server = DatabaseServer(
        lambda oid: live[oid],
        ServerConfig(grid_m=8, max_speed=0.05),
        events=events,
    )
    server.load_objects(live.items())
    server.register_query(RangeQuery(Rect(0.2, 0.2, 0.6, 0.6), query_id="r1"))
    server.register_query(KNNQuery(Point(0.5, 0.5), 3, query_id="k1"))
    for t in range(1, ticks + 1):
        for oid in rng.sample(sorted(live), 5):
            p = live[oid]
            live[oid] = Point(
                min(max(p.x + rng.uniform(-0.05, 0.05), 0.0), 1.0),
                min(max(p.y + rng.uniform(-0.05, 0.05), 0.0), 1.0),
            )
            server.handle_location_update(oid, live[oid], time=float(t))
    server.validate()
    return server


class TestServerIntegration:
    def test_200_tick_run_replays_full_probe_causal_chain(self):
        """The ISSUE acceptance path: update → reevaluation → probe →
        result_change, reconstructed from the flight recorder alone."""
        log = EventLog(capacity=200_000)
        _drive_server(log, ticks=200)
        rows = [e.to_dict() for e in log.events()]
        assert {row["kind"] for row in rows} <= EVENT_KINDS

        probes = [
            row for row in rows
            if row["kind"] == "probe" and row["cause"] is not None
        ]
        assert probes, "the run issued no caused probes"
        full_chains = 0
        for probe in probes:
            chain = causal_chain(rows, probe["seq"])
            kinds = [row["kind"] for row in chain]
            roots = [row for row in chain if row["cause"] is None]
            assert len(roots) == 1
            assert roots[0]["kind"] in ("update", "query_registered")
            if roots[0]["kind"] == "update":
                # Probes under an update are always issued from within a
                # query reevaluation.
                assert "reevaluation" in kinds
                if "result_change" in kinds:
                    full_chains += 1
        assert full_chains, (
            "no probe chain spanned update -> reevaluation -> probe "
            "-> result_change"
        )
        # Probes chain to the reevaluation they were issued under.
        by_seq = {row["seq"]: row for row in rows}
        assert any(
            by_seq[probe["cause"]]["kind"] == "reevaluation"
            for probe in probes
            if probe["cause"] in by_seq
        )

    def test_event_times_follow_the_update_clock(self):
        log = EventLog(capacity=200_000)
        _drive_server(log, ticks=20)
        updates = [e for e in log.events() if e.kind == "update"]
        assert updates[0].t == 1.0
        assert updates[-1].t == 20.0

    def test_no_event_log_attached_emits_nothing(self):
        server = _drive_server(None, ticks=5)
        assert server.events is NULL_EVENT_LOG

    def test_server_stats_match_event_counts(self):
        log = EventLog(capacity=200_000)
        server = _drive_server(log, ticks=50)
        kinds = {}
        for event in log.events():
            kinds[event.kind] = kinds.get(event.kind, 0) + 1
        assert kinds.get("update", 0) == server.stats.location_updates
        assert kinds.get("probe", 0) == server.stats.probes
        assert kinds.get("shrink_push", 0) == server.stats.safe_region_pushes
        assert kinds.get("result_change", 0) == server.stats.result_changes
