"""Unit tests for the metrics registry and its exporters."""

import json

import pytest

from repro.obs import (
    COUNT_BUCKETS,
    NULL_REGISTRY,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    load_metrics,
    render_document,
    render_snapshot,
    write_json,
    write_jsonl,
)


class TestInstruments:
    def test_counter_increments(self):
        registry = MetricsRegistry()
        c = registry.counter("server.probes")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_counter_is_cached_by_name(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.counter("a") is not registry.counter("b")

    def test_gauge_set_and_add(self):
        g = MetricsRegistry().gauge("index.size")
        g.set(10.0)
        g.add(-2.5)
        assert g.value == 7.5

    def test_histogram_bucketing_is_inclusive_upper_bound(self):
        h = Histogram("h", buckets=(1.0, 2.0, 5.0))
        for value in (0.5, 1.0, 1.5, 2.0, 5.0, 5.0001):
            h.observe(value)
        # 0.5 and 1.0 land in le_1; 1.5 and 2.0 in le_2; 5.0 in le_5;
        # 5.0001 overflows.
        assert h.counts == [2, 2, 1]
        assert h.overflow == 1

    def test_histogram_summary_stats(self):
        h = Histogram("h", buckets=(10.0,))
        for value in (1.0, 2.0, 3.0):
            h.observe(value)
        assert h.count == 3
        assert h.sum == pytest.approx(6.0)
        assert h.min == 1.0
        assert h.max == 3.0
        assert h.mean == pytest.approx(2.0)

    def test_empty_histogram_mean_and_to_dict(self):
        h = Histogram("h", buckets=(1.0,))
        assert h.mean == 0.0
        data = h.to_dict()
        assert data["count"] == 0
        assert data["min"] is None and data["max"] is None

    def test_histogram_rejects_bad_buckets(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=())
        with pytest.raises(ValueError):
            Histogram("h", buckets=(2.0, 1.0))

    def test_histogram_custom_buckets_via_registry(self):
        registry = MetricsRegistry()
        h = registry.histogram("grid.candidates", COUNT_BUCKETS)
        assert h.buckets == COUNT_BUCKETS
        # Cached: a second call with the default buckets returns the same
        # instrument (buckets are fixed at creation).
        assert registry.histogram("grid.candidates") is h


class TestRegistrySnapshot:
    def test_to_dict_shape_and_sorting(self):
        registry = MetricsRegistry()
        registry.counter("b").inc()
        registry.counter("a").inc(2)
        registry.gauge("g").set(1.5)
        registry.histogram("h").observe(0.5)
        snapshot = registry.to_dict()
        assert list(snapshot["counters"]) == ["a", "b"]
        assert snapshot["counters"]["a"] == 2
        assert snapshot["gauges"]["g"] == 1.5
        assert snapshot["histograms"]["h"]["count"] == 1
        # Snapshot is JSON-serialisable as-is.
        json.dumps(snapshot)


class TestNullRegistry:
    def test_disabled_and_shared_instruments(self):
        null = NullRegistry()
        assert null.enabled is False
        assert MetricsRegistry.enabled is True
        # Every name maps to the same shared no-op instrument.
        assert null.counter("a") is null.counter("b")
        assert null.gauge("a") is null.gauge("b")
        assert null.histogram("a") is null.histogram("b")
        assert null.counter("a") is NULL_REGISTRY.counter("z")

    def test_observations_are_discarded(self):
        null = NULL_REGISTRY
        null.counter("c").inc(100)
        null.gauge("g").set(3.0)
        null.histogram("h").observe(1.0)
        assert null.to_dict() == {
            "counters": {}, "gauges": {}, "histograms": {}
        }


class TestExporters:
    def _populated(self):
        registry = MetricsRegistry()
        registry.counter("server.probes").inc(3)
        registry.gauge("index.size").set(42.0)
        registry.histogram("span.server.update.seconds").observe(0.002)
        return registry

    def test_write_json_document_round_trip(self, tmp_path):
        registry = self._populated()
        path = tmp_path / "metrics.json"
        write_json({"schemes": {"SRB": registry.to_dict()}}, path)
        document = load_metrics(path)
        assert document["schemes"]["SRB"] == registry.to_dict()

    def test_bare_snapshot_is_wrapped_as_run(self, tmp_path):
        registry = self._populated()
        path = tmp_path / "metrics.json"
        write_json(registry.to_dict(), path)
        document = load_metrics(path)
        assert document["schemes"]["run"] == registry.to_dict()

    def test_jsonl_round_trip(self, tmp_path):
        registry = self._populated()
        path = tmp_path / "metrics.jsonl"
        lines = write_jsonl(registry, path)
        assert lines == 3
        document = load_metrics(path)
        assert document["schemes"]["run"] == registry.to_dict()

    def test_jsonl_append(self, tmp_path):
        registry = self._populated()
        path = tmp_path / "metrics.jsonl"
        write_jsonl(registry, path)
        write_jsonl(registry, path, append=True)
        assert len(path.read_text().splitlines()) == 6

    def test_render_snapshot_mentions_instruments(self):
        text = render_snapshot(self._populated().to_dict(), title="SRB")
        assert "== SRB" in text
        assert "server.probes" in text
        assert "span.server.update.seconds" in text
        assert "index.size" in text

    def test_render_empty_snapshot(self):
        text = render_snapshot(NULL_REGISTRY.to_dict())
        assert "(no metrics recorded)" in text
        assert render_document({}) == "(no schemes in metrics document)"
