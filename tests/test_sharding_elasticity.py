"""Elastic topology: live shard add/remove and merge exactness.

Two contracts from docs/SHARDING.md are pinned here:

* **Minimal, consistent migration** — ``add_shard``/``remove_shard``
  move exactly the objects of the cells the rendezvous map re-homes,
  keep ``validate()`` green mid- and post-migration, and leave the
  cluster bit-identical to one that ran the final topology from the
  start (same report stream, same merged results, same home table).

* **Merge exactness under staleness** — with ``refresh_probes`` the
  coordinator re-ranks boundary kNN candidates at their *true* (probed)
  positions, restoring closed-loop accuracy to >= 0.99 where the
  held-position merge drifts to ~0.91-0.95; the probe premium is a
  measured communication cost, not a hidden one.
"""

import random

import pytest

from repro.core import DatabaseServer, KNNQuery, RangeQuery, ServerConfig
from repro.geometry import Point, Rect
from repro.obs import EventLog, MetricsRegistry
from repro.obs.diagnose import diagnose
from repro.sharding import RebalancePolicy, ShardedServer, ShardMap
from repro.simulation.engine import SRBSimulation
from repro.simulation.scenario import Scenario


def _make_world(seed, n=90):
    rng = random.Random(seed)
    return {f"o{i}": Point(rng.random(), rng.random()) for i in range(n)}


def _make_stream(seed, world, ticks=40, movers=18):
    positions = dict(world)
    rng = random.Random(seed + 1)
    stream = []
    for tick in range(1, ticks + 1):
        batch = []
        for oid in rng.sample(sorted(positions), movers):
            p = positions[oid]
            positions[oid] = Point(
                min(max(p.x + rng.gauss(0, 0.015), 0.0), 1.0),
                min(max(p.y + rng.gauss(0, 0.015), 0.0), 1.0),
            )
            batch.append((oid, positions[oid]))
        stream.append((tick * 1.0, batch))
    return stream


class _Oracle:
    def __init__(self, world):
        self.positions = dict(world)

    def __call__(self, oid):
        return self.positions[oid]

    def apply(self, batch):
        for oid, p in batch:
            self.positions[oid] = p


def _queries(rng):
    out = []
    for i in range(8):
        if i % 2:
            x, y = rng.random() * 0.85, rng.random() * 0.85
            out.append(RangeQuery(Rect(x, y, x + 0.14, y + 0.14),
                                  query_id=f"r{i}"))
        else:
            out.append(KNNQuery(Point(rng.random(), rng.random()), 3,
                                query_id=f"k{i}"))
    return out


def _drive(server, oracle, world, stream, seed, reshard=None):
    """Replay ``stream``; ``reshard`` maps tick -> callable(server, t).

    Validates the whole cluster after every batch — the elastic runs
    must hold the home-table/membership invariants *mid-migration*, not
    just at rest.
    """
    rng = random.Random(seed + 2)
    server.load_objects(sorted(world.items()), 0.0)
    queries = _queries(rng)
    for q in queries:
        server.register_query(q, 0.0)
    per_tick = []
    for tick, (t, batch) in enumerate(stream):
        if reshard and tick in reshard:
            reshard[tick](server, t)
            server.validate()
        oracle.apply(batch)
        server.handle_location_updates(batch, t)
        server.validate()
        per_tick.append({q.query_id: q.result_snapshot() for q in queries})
    return per_tick


# ----------------------------------------------------------------------
# Elastic equivalence: grow/shrink mid-run == fixed final topology
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", [41, 42])
def test_grow_matches_fixed_topology_of_final_shard_set(seed):
    world = _make_world(seed)
    stream = _make_stream(seed, world)
    config = ServerConfig(grid_m=16, max_speed=0.04)
    grow_tick = 15

    o1 = _Oracle(world)
    elastic = ShardedServer(o1, config, n_shards=2)
    a = _drive(elastic, o1, world, stream, seed,
               reshard={grow_tick: lambda s, t: s.add_shard(time=t)})

    o2 = _Oracle(world)
    fixed = ShardedServer(o2, config, n_shards=3)
    b = _drive(fixed, o2, world, stream, seed)

    # From the grow tick on, the elastic run is indistinguishable from a
    # cluster that was 3-wide all along: the migration re-ranked every
    # moved object through the same evict-and-add path an update takes.
    assert a[grow_tick:] == b[grow_tick:]
    assert elastic._homes == fixed._homes
    assert elastic.live_shard_ids() == (0, 1, 2)
    assert elastic.shard_object_counts() == fixed.shard_object_counts()


@pytest.mark.parametrize("victim", [0, 1])
def test_shrink_matches_holey_fixed_topology(victim):
    seed = 43
    world = _make_world(seed)
    stream = _make_stream(seed, world)
    config = ServerConfig(grid_m=16, max_speed=0.04)
    shrink_tick = 15

    o1 = _Oracle(world)
    elastic = ShardedServer(o1, config, n_shards=3)
    a = _drive(
        elastic, o1, world, stream, seed,
        reshard={shrink_tick: lambda s, t: s.remove_shard(victim, time=t)},
    )

    survivors = sorted({0, 1, 2} - {victim})
    o2 = _Oracle(world)
    fixed = ShardedServer(o2, config, shard_ids=survivors)
    b = _drive(fixed, o2, world, stream, seed)

    assert a[shrink_tick:] == b[shrink_tick:]
    assert elastic._homes == fixed._homes
    assert elastic.retired_shards() == frozenset({victim})
    assert elastic.live_shard_ids() == tuple(survivors)
    assert elastic.shard_object_counts()[victim] == 0


def test_elastic_run_still_matches_single_server():
    """Transitivity check straight against the baseline server."""
    seed = 44
    world = _make_world(seed)
    stream = _make_stream(seed, world)
    config = ServerConfig(grid_m=16, max_speed=0.04)

    o1 = _Oracle(world)
    single = DatabaseServer(o1, config)
    baseline = _drive(single, o1, world, stream, seed)

    o2 = _Oracle(world)
    elastic = ShardedServer(o2, config, n_shards=2)
    merged = _drive(
        elastic, o2, world, stream, seed,
        reshard={
            10: lambda s, t: s.add_shard(time=t),
            20: lambda s, t: s.add_shard(time=t),
            30: lambda s, t: s.remove_shard(1, time=t),
        },
    )
    assert merged == baseline
    assert elastic.live_shard_ids() == (0, 2, 3)
    assert elastic.object_count == single.object_count


def test_add_shard_migrates_exactly_the_moved_cells_objects():
    seed = 45
    world = _make_world(seed, n=120)
    oracle = _Oracle(world)
    config = ServerConfig(grid_m=16)
    metrics = MetricsRegistry()
    cluster = ShardedServer(oracle, config, n_shards=2, metrics=metrics)
    cluster.load_objects(sorted(world.items()), 0.0)

    before = ShardMap(2, 16)
    after = before.with_shard(2)
    moved = set(before.moved_cells(after))
    homes_before = dict(cluster._homes)

    cluster.add_shard(time=1.0)
    for oid, home in cluster._homes.items():
        p = oracle.positions[oid]
        cell = cluster.router.cell_of(p)
        if cell in moved:
            assert home == 2
        else:
            # Objects on unmoved cells were not touched.
            assert home == homes_before[oid]
    counters = metrics.to_dict()["counters"]
    assert counters["shard.rebalance.moved_cells"] == len(moved)
    assert counters["shard.rebalance.moved_objects"] == sum(
        1 for oid, p in oracle.positions.items()
        if cluster.router.cell_of(p) in moved
    )
    cluster.validate()


# ----------------------------------------------------------------------
# Lifecycle edge cases (the bugfix half of the issue)
# ----------------------------------------------------------------------
def _small_cluster(n_shards=2, **kwargs):
    world = _make_world(7, n=30)
    oracle = _Oracle(world)
    cluster = ShardedServer(
        oracle, ServerConfig(grid_m=14), n_shards=n_shards, **kwargs
    )
    cluster.load_objects(sorted(world.items()), 0.0)
    return cluster


def test_kill_shard_refuses_last_live_dead_and_removed():
    cluster = _small_cluster(n_shards=3)
    cluster.remove_shard(2, time=1.0)
    with pytest.raises(ValueError, match="removed and cannot be killed"):
        cluster.kill_shard(2, time=2.0)
    cluster.kill_shard(0, time=3.0)
    with pytest.raises(ValueError, match="already dead"):
        cluster.kill_shard(0, time=4.0)
    # Shard 1 is the only live one left; killing it must refuse with a
    # clear message (the seed miscounted retirees and allowed this).
    with pytest.raises(ValueError, match="last live shard"):
        cluster.kill_shard(1, time=5.0)


def test_remove_shard_refuses_bad_targets():
    cluster = _small_cluster(n_shards=3)
    with pytest.raises(ValueError, match="no such shard"):
        cluster.remove_shard(99, time=1.0)
    cluster.remove_shard(1, time=1.0)
    with pytest.raises(ValueError, match="already removed"):
        cluster.remove_shard(1, time=2.0)
    cluster.kill_shard(0, time=3.0)
    with pytest.raises(ValueError, match="dead shards present"):
        cluster.remove_shard(2, time=4.0)
    with pytest.raises(ValueError, match="dead shards present"):
        cluster.add_shard(time=4.0)


def test_remove_shard_refuses_last_live():
    cluster = _small_cluster(n_shards=2)
    cluster.remove_shard(0, time=1.0)
    with pytest.raises(ValueError, match="last live shard"):
        cluster.remove_shard(1, time=2.0)


def test_retired_slot_refuses_calls_with_context():
    cluster = _small_cluster(n_shards=2)
    cluster.remove_shard(1, time=1.0)
    with pytest.raises(RuntimeError, match="shard 1 was removed"):
        cluster._shards[1].call("object_count")


# ----------------------------------------------------------------------
# Empty-shard observability (satellite: gauges/stats stay well-defined)
# ----------------------------------------------------------------------
def test_imbalance_gauge_is_defined_with_zero_objects():
    metrics = MetricsRegistry()
    oracle = _Oracle({})
    cluster = ShardedServer(
        oracle, ServerConfig(grid_m=14), n_shards=2, metrics=metrics
    )
    cluster.refresh_index_gauges()
    gauges = metrics.to_dict()["gauges"]
    # An empty cluster is perfectly balanced, not NaN/stale.
    assert gauges["shard.objects.imbalance"] == 1.0


def test_retired_and_empty_shards_render_in_stats_snapshots():
    metrics = MetricsRegistry()
    cluster = _small_cluster(n_shards=3, metrics=metrics)
    cluster.remove_shard(1, time=1.0)
    snapshots = cluster.shard_metrics_snapshots()
    # The retired slot still renders: its registry was frozen at
    # retirement, so `repro stats` keeps the full per-shard history.
    assert set(snapshots) == {"shard0", "shard1", "shard2"}
    assert all(isinstance(v, dict) for v in snapshots.values())


# ----------------------------------------------------------------------
# Occupancy-driven rebalancing
# ----------------------------------------------------------------------
class TestRebalancePolicy:
    def test_parse_round_trips_every_key(self):
        policy = RebalancePolicy.parse(
            "min=2,max=6,grow-occupancy=50,grow-imbalance=1.5,"
            "shrink-occupancy=10,cooldown=2.5"
        )
        assert policy.min_shards == 2
        assert policy.max_shards == 6
        assert policy.grow_occupancy == 50.0
        assert policy.grow_imbalance == 1.5
        assert policy.shrink_occupancy == 10.0
        assert policy.cooldown == 2.5

    def test_parse_rejects_unknown_keys_and_bad_values(self):
        with pytest.raises(ValueError):
            RebalancePolicy.parse("grow=1")
        with pytest.raises(ValueError):
            RebalancePolicy.parse("max=lots")
        with pytest.raises(ValueError):
            RebalancePolicy.parse("min=3,max=2")

    def test_decide_grows_on_hot_imbalanced_census(self):
        policy = RebalancePolicy(
            max_shards=4, grow_occupancy=10.0, grow_imbalance=1.2
        )
        assert policy.decide({0: 50, 1: 10}, now=5.0,
                             last_action_at=None) == "grow"

    def test_decide_holds_when_balanced_or_capped(self):
        policy = RebalancePolicy(
            max_shards=2, grow_occupancy=10.0, grow_imbalance=1.2
        )
        # At max_shards: never grow, however hot.
        assert policy.decide({0: 500, 1: 20}, 5.0, None) is None
        balanced = RebalancePolicy(
            max_shards=4, grow_occupancy=10.0, grow_imbalance=2.0
        )
        assert balanced.decide({0: 30, 1: 28}, 5.0, None) is None

    def test_decide_shrinks_the_emptiest_shard(self):
        policy = RebalancePolicy(
            min_shards=2, shrink_occupancy=20.0, grow_occupancy=1e9
        )
        action = policy.decide({0: 10, 1: 2, 2: 9}, 5.0, None)
        assert action == ("shrink", 1)
        # At min_shards: hold.
        assert policy.decide({0: 1, 1: 1}, 5.0, None) is None

    def test_cooldown_suppresses_actions(self):
        policy = RebalancePolicy(
            max_shards=4, grow_occupancy=1.0, grow_imbalance=1.0,
            cooldown=5.0,
        )
        assert policy.decide({0: 50, 1: 10}, now=3.0,
                             last_action_at=0.0) is None
        assert policy.decide({0: 50, 1: 10}, now=6.0,
                             last_action_at=0.0) == "grow"


def test_maybe_rebalance_grows_and_respects_cooldown():
    metrics = MetricsRegistry()
    events = EventLog()
    cluster = _small_cluster(n_shards=2, metrics=metrics, events=events)
    policy = RebalancePolicy(
        max_shards=3, grow_occupancy=5.0, grow_imbalance=1.0, cooldown=10.0
    )
    outcome = cluster.maybe_rebalance(policy, time=1.0)
    assert outcome is not None
    assert cluster.live_shard_ids() == (0, 1, 2)
    assert cluster.last_rebalance_at == 1.0
    # Within the cooldown the policy holds even though the census would
    # still trigger.
    assert cluster.maybe_rebalance(policy, time=2.0) is None
    assert cluster.live_shard_ids() == (0, 1, 2)
    counters = metrics.to_dict()["counters"]
    assert counters["shard.rebalance.checks"] == 2
    assert counters["shard.rebalance.grows"] == 1
    kinds = [e.kind for e in events.events()]
    assert "rebalance" in kinds and "shard_added" in kinds
    cluster.validate()


# ----------------------------------------------------------------------
# Merge exactness: refresh probes close the stale-position gap
# ----------------------------------------------------------------------
def test_refresh_probes_restore_closed_loop_knn_accuracy():
    """The tentpole number: >= 0.99 accuracy with probes on, against the
    same seeded closed loop that drifts well below it with probes off.

    Ground truth is the simulation's own accuracy checkpoint (results
    against true client positions) — the same metric ``repro compare``
    reports and the shard bench records.
    """
    base = dict(num_objects=240, num_queries=16, duration=3.0,
                seed=3, shards=3, grid_m=14)
    stale = SRBSimulation(Scenario(refresh_probes=False, **base)).run()
    fresh = SRBSimulation(Scenario(refresh_probes=True, **base)).run()

    assert stale.extras["shards"]["refresh_probes"] == 0
    assert fresh.extras["shards"]["refresh_probes"] > 0
    assert stale.accuracy < 0.97  # the bug is visible at this scale
    assert fresh.accuracy >= 0.99
    # The exactness is bought with probe traffic, and that traffic is
    # accounted as communication cost, not hidden.
    assert fresh.costs.probes > stale.costs.probes


def test_refresh_probes_preserve_report_equivalence():
    """With no unreported drift (every oracle position equals the last
    report), probing must change nothing: same merged results as the
    probe-free cluster and the single server."""
    seed = 46
    world = _make_world(seed)
    stream = _make_stream(seed, world)
    config = ServerConfig(grid_m=16, max_speed=0.04)

    o1 = _Oracle(world)
    plain = ShardedServer(o1, config, n_shards=3)
    a = _drive(plain, o1, world, stream, seed)

    o2 = _Oracle(world)
    probing = ShardedServer(o2, config, n_shards=3, refresh_probes=True)
    b = _drive(probing, o2, world, stream, seed)

    assert a == b
    assert probing.refresh_probe_count > 0


# ----------------------------------------------------------------------
# Engine wiring: --reshard / --rebalance scenarios and diagnose
# ----------------------------------------------------------------------
def test_scenario_reshard_grammar():
    s = Scenario(shards=2, duration=4.0, reshard="+@1.0,-1@2.5,+@3.0")
    assert s.parsed_reshard() == [
        ("add", None, 1.0), ("remove", 1, 2.5), ("add", None, 3.0)
    ]
    with pytest.raises(ValueError, match="reshard items"):
        Scenario(shards=2, reshard="grow@1").parsed_reshard()
    with pytest.raises(ValueError):
        Scenario(shards=0, reshard="+@1.0")
    with pytest.raises(ValueError):  # beyond the run
        Scenario(shards=2, duration=2.0, reshard="+@3.0")
    with pytest.raises(ValueError):
        Scenario(shards=0, refresh_probes=True)
    with pytest.raises(ValueError):
        Scenario(shards=2, rebalance="bogus=1")


def test_engine_elasticity_drill_stays_green():
    """The CI drill in miniature: grow then shrink mid-run, the event
    stream carries consistent reshard events, and diagnose passes."""
    events = EventLog(capacity=200000)
    scenario = Scenario(
        num_objects=160, num_queries=10, duration=2.5, seed=5,
        shards=2, grid_m=14, reshard="+@1.0,-1@1.8",
    )
    sim = SRBSimulation(scenario, events=events)
    report = sim.run()
    shards = report.extras["shards"]
    assert shards["live"] == [0, 2]
    assert shards["retired"] == [1]
    reshards = [e for e in events.events()
                if e.kind in ("shard_added", "shard_removed")]
    assert [e.kind for e in reshards] == ["shard_added", "shard_removed"]
    assert all(e.data["consistent"] for e in reshards)
    diag = diagnose([e.to_dict() for e in events.events()])
    assert diag.ok, [str(v) for v in diag.violations]


def test_engine_rebalance_policy_grows_under_load():
    scenario = Scenario(
        num_objects=160, num_queries=10, duration=2.5, seed=5,
        shards=2, grid_m=14,
        rebalance="max=3,grow-occupancy=5,grow-imbalance=1.0,cooldown=99",
    )
    report = SRBSimulation(scenario).run()
    shards = report.extras["shards"]
    assert shards["n_shards"] == 3
    assert shards["live"] == [0, 1, 2]
