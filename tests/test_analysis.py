"""Tests validating Theorem 5.1 and the steady-movement analysis."""

import math

import pytest

from repro.analysis import (
    expected_escape_time,
    simulate_escape_time,
    theorem_5_1_cost,
    weighted_escape_time,
)
from repro.geometry import Point, Rect


class TestClosedForms:
    def test_expected_escape_time_formula(self):
        region = Rect(0, 0, 2, 1)  # perimeter 6
        assert expected_escape_time(region, speed=1.0) == pytest.approx(
            6 / (2 * math.pi)
        )

    def test_cost_is_inverse_of_escape_time(self):
        region = Rect(0, 0, 1, 1)
        cost = theorem_5_1_cost(region, speed=0.5, c_l=2.0)
        assert cost == pytest.approx(2.0 / expected_escape_time(region, 0.5))

    def test_speed_validation(self):
        with pytest.raises(ValueError):
            expected_escape_time(Rect(0, 0, 1, 1), 0.0)
        with pytest.raises(ValueError):
            simulate_escape_time(Rect(0, 0, 1, 1), Point(0.5, 0.5), -1.0)

    def test_longer_perimeter_cheaper(self):
        """The theorem's design implication: maximise the perimeter."""
        small = Rect(0, 0, 0.1, 0.1)
        large = Rect(0, 0, 0.4, 0.05)  # same area, longer perimeter
        assert theorem_5_1_cost(large, 1.0) < theorem_5_1_cost(small, 1.0)


class TestMonteCarloAgreement:
    """Theorem 5.1's formula vs the exact escape time (see module docs).

    Reproduction finding: the paper's identity only holds for a circle
    about its centre; for rectangles the formula overestimates and the
    true value depends on the start point.
    """

    @pytest.mark.parametrize(
        "start",
        [Point(0.5, 0.25), Point(0.1, 0.1), Point(0.9, 0.25), Point(0.01, 0.49)],
    )
    def test_paper_formula_is_an_upper_bound(self, start):
        region = Rect(0, 0, 1, 0.5)
        simulated = simulate_escape_time(region, start, speed=1.0, samples=200_000)
        paper = expected_escape_time(region, 1.0)
        assert simulated <= paper * 1.001
        # ... and within the same order of magnitude (the design heuristic
        # "maximise perimeter" stays meaningful).
        assert simulated > 0.25 * paper

    def test_escape_time_depends_on_start_point(self):
        """Directly contradicts the theorem's position independence."""
        region = Rect(0, 0, 1, 0.5)
        center = simulate_escape_time(region, Point(0.5, 0.25), 1.0)
        corner = simulate_escape_time(region, Point(0.02, 0.02), 1.0)
        assert corner < 0.9 * center

    def test_exact_for_circle_center_analogue(self):
        """For a square's centre the ray integral is 4 ln(1 + sqrt 2)."""
        region = Rect(0, 0, 1, 1)
        simulated = simulate_escape_time(
            region, Point(0.5, 0.5), 1.0, samples=400_000
        )
        exact = 4 * math.log(1 + math.sqrt(2)) / (2 * math.pi)
        assert simulated == pytest.approx(exact, rel=0.01)

    def test_scales_inversely_with_speed(self):
        region = Rect(0, 0, 1, 1)
        slow = simulate_escape_time(region, Point(0.3, 0.7), speed=0.5)
        fast = simulate_escape_time(region, Point(0.3, 0.7), speed=2.0)
        assert slow == pytest.approx(4 * fast, rel=0.01)

    def test_start_outside_rejected(self):
        with pytest.raises(ValueError):
            simulate_escape_time(Rect(0, 0, 1, 1), Point(2, 2), 1.0)


class TestWeightedEscapeTime:
    def test_zero_steadiness_matches_uniform(self):
        region = Rect(0, 0, 1, 0.5)
        p, p_lst = Point(0.5, 0.25), Point(0.4, 0.25)
        weighted = weighted_escape_time(region, p, p_lst, 1.0, steadiness=0.0)
        uniform = simulate_escape_time(region, p, 1.0)
        assert weighted == pytest.approx(uniform, rel=0.02)

    def test_forward_room_rewards_steady_movers(self):
        """A region extending ahead of the motion yields a longer dwell
        under the steady density than under the uniform one — the premise
        of the Section 6.2 objective."""
        p, p_lst = Point(0.2, 0.5), Point(0.1, 0.5)  # moving +x
        forward_room = Rect(0.1, 0.3, 1.2, 0.7)      # long runway ahead
        steady = weighted_escape_time(forward_room, p, p_lst, 1.0, 0.9)
        uniform = simulate_escape_time(forward_room, p, 1.0)
        assert steady > uniform

    def test_backward_room_punishes_steady_movers(self):
        p, p_lst = Point(1.1, 0.5), Point(1.2, 0.5)  # moving -x
        forward_room = Rect(0.1, 0.3, 1.2, 0.7)      # runway is behind now?
        # Moving -x with room to the left: runway IS ahead; flip motion.
        p, p_lst = Point(0.2, 0.5), Point(0.3, 0.5)  # moving -x, room behind
        steady = weighted_escape_time(forward_room, p, p_lst, 1.0, 0.9)
        uniform = simulate_escape_time(forward_room, p, 1.0)
        assert steady < uniform

    def test_steadiness_validation(self):
        with pytest.raises(ValueError):
            weighted_escape_time(
                Rect(0, 0, 1, 1), Point(0.5, 0.5), Point(0.4, 0.5), 1.0, 1.5
            )
