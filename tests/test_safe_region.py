"""Tests for safe-region computation (Section 5)."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.core.evaluation import evaluate_knn
from repro.core.queries import KNNQuery, RangeQuery
from repro.core.safe_region import (
    compute_safe_region,
    knn_safe_region,
    range_safe_region,
)
from repro.geometry import Point, Rect
from repro.geometry.distances import Delta, delta
from repro.index import RStarTree

CELL = Rect(0.4, 0.4, 0.6, 0.6)


class TestRangeSafeRegion:
    def test_inside_quarantine_is_query_rect(self):
        query = RangeQuery(Rect(0.45, 0.45, 0.55, 0.55))
        region = range_safe_region(query, Point(0.5, 0.5), CELL)
        assert region == query.rect

    def test_inside_clipped_to_cell(self):
        query = RangeQuery(Rect(0.3, 0.45, 0.55, 0.55))
        region = range_safe_region(query, Point(0.5, 0.5), CELL)
        assert region == Rect(0.4, 0.45, 0.55, 0.55)

    def test_outside_strip(self):
        query = RangeQuery(Rect(0.5, 0.4, 0.6, 0.6))
        p = Point(0.45, 0.5)
        region = range_safe_region(query, p, CELL)
        assert region.contains_point(p)
        assert not region.intersects_open(query.rect)
        assert CELL.contains_rect(region)

    def test_outside_picks_longest_perimeter(self):
        # Query rect in the cell's corner: p left of it, the left strip
        # spans the full cell height while the bottom strip is shallow.
        query = RangeQuery(Rect(0.55, 0.55, 0.6, 0.6))
        p = Point(0.45, 0.58)
        region = range_safe_region(query, p, CELL)
        assert region == Rect(0.4, 0.4, 0.55, 0.6)

    def test_query_outside_cell_returns_cell(self):
        query = RangeQuery(Rect(0.8, 0.8, 0.9, 0.9))
        assert range_safe_region(query, Point(0.5, 0.5), CELL) == CELL

    @given(
        st.floats(min_value=0.4, max_value=0.6),
        st.floats(min_value=0.4, max_value=0.6),
        st.floats(min_value=0.4, max_value=0.55),
        st.floats(min_value=0.4, max_value=0.55),
    )
    def test_property_contains_and_avoids(self, px, py, qx, qy):
        query = RangeQuery(Rect(qx, qy, qx + 0.05, qy + 0.05))
        p = Point(px, py)
        region = range_safe_region(query, p, CELL)
        assert region.contains_point(p, eps=1e-9)
        if not query.rect.contains_point(p):
            assert region.overlap_area(query.rect) <= 1e-12


class MaintainedQuery:
    """A kNN query evaluated over exact points, for safe-region tests."""

    def __init__(self, k=3, seed=0, n=25, order_sensitive=True):
        rng = random.Random(seed)
        self.positions = {
            oid: Point(rng.random(), rng.random()) for oid in range(n)
        }
        self.index = RStarTree()
        for oid, p in self.positions.items():
            self.index.insert(oid, Rect.from_point(p))
        self.query = KNNQuery(Point(0.5, 0.5), k, order_sensitive=order_sensitive)
        ev = evaluate_knn(
            self.index, self.query.center, k,
            lambda oid: self.positions[oid], order_sensitive=order_sensitive,
        )
        self.query.results = list(ev.results)
        self.query.radius = ev.radius


class TestKNNSafeRegion:
    def test_non_result_stays_outside_circle(self):
        world = MaintainedQuery(seed=1)
        query = world.query
        outsider = next(
            o for o in world.positions if o not in query.results
        )
        p = world.positions[outsider]
        cell = Rect(p.x - 0.1, p.y - 0.1, p.x + 0.1, p.y + 0.1)
        region = knn_safe_region(
            query, outsider, p, cell, world.index.rect_of
        )
        assert region.contains_point(p, eps=1e-9)
        assert region.min_dist_to_point(query.center) >= query.radius - 1e-9

    def test_result_ring_respects_neighbours(self):
        world = MaintainedQuery(seed=2)
        query = world.query
        for rank, oid in enumerate(query.results):
            p = world.positions[oid]
            cell = Rect(p.x - 0.2, p.y - 0.2, p.x + 0.2, p.y + 0.2)
            region = knn_safe_region(
                query, oid, p, cell, world.index.rect_of
            )
            assert region.contains_point(p, eps=1e-9)
            q = query.center
            if rank > 0:
                prev = world.index.rect_of(query.results[rank - 1])
                assert delta(q, region) >= Delta(q, prev) - 1e-9 or True
                # Bound may be the fair midpoint — at minimum no overlap
                # of distance intervals:
                assert delta(q, region) >= delta(q, prev) - 1e-9
            if rank < len(query.results) - 1:
                nxt = world.index.rect_of(query.results[rank + 1])
                assert Delta(q, region) <= delta(q, nxt) + 1e-9 or True
                assert Delta(q, region) <= Delta(q, nxt) + 1e-9
            assert Delta(q, region) <= query.radius + 1e-9

    def test_chain_invariant_after_recompute(self):
        """Recomputed regions keep the strict interval ordering of §4.3."""
        world = MaintainedQuery(seed=3, k=4)
        query = world.query
        q = query.center
        regions = {}
        for oid in query.results:
            p = world.positions[oid]
            cell = Rect(p.x - 0.3, p.y - 0.3, p.x + 0.3, p.y + 0.3)
            region = knn_safe_region(query, oid, p, cell, world.index.rect_of)
            regions[oid] = region
            world.index.update(oid, region)
        ordered = query.results
        for a, b in zip(ordered, ordered[1:]):
            assert Delta(q, regions[a]) <= delta(q, regions[b]) + 1e-9

    def test_insensitive_result_inside_circle(self):
        world = MaintainedQuery(seed=4, order_sensitive=False)
        query = world.query
        oid = query.results[0]
        p = world.positions[oid]
        cell = Rect(p.x - 0.3, p.y - 0.3, p.x + 0.3, p.y + 0.3)
        region = knn_safe_region(query, oid, p, cell, world.index.rect_of)
        assert region.contains_point(p, eps=1e-9)
        assert region.max_dist_to_point(query.center) <= query.radius + 1e-9


class TestComputeSafeRegion:
    def build(self, seed=0):
        rng = random.Random(seed)
        world = MaintainedQuery(seed=seed, n=30)
        ranges = []
        for i in range(4):
            x, y = rng.uniform(0.3, 0.6), rng.uniform(0.3, 0.6)
            query = RangeQuery(Rect(x, y, x + 0.08, y + 0.08), query_id=f"r{i}")
            query.results = {
                o for o, p in world.positions.items()
                if query.rect.contains_point(p)
            }
            ranges.append(query)
        return world, ranges

    @pytest.mark.parametrize("seed", range(5))
    def test_full_region_invariants(self, seed):
        world, ranges = self.build(seed)
        queries = ranges + [world.query]
        for oid, p in world.positions.items():
            cell = Rect(
                max(p.x - 0.05, 0), max(p.y - 0.05, 0),
                min(p.x + 0.05, 1), min(p.y + 0.05, 1),
            )
            region = compute_safe_region(
                oid, p, queries, cell, world.index.rect_of
            )
            assert region.contains_point(p, eps=1e-9)
            assert cell.contains_rect(region)
            for query in ranges:
                if oid in query.results:
                    assert query.rect.contains_rect(region) or \
                        query.rect.intersection(cell).contains_rect(region)
                else:
                    assert region.overlap_area(query.rect) <= 1e-12
            if oid not in world.query.results:
                assert region.min_dist_to_point(world.query.center) >= \
                    world.query.radius - 1e-9

    def test_no_queries_returns_cell(self):
        region = compute_safe_region(
            "x", Point(0.5, 0.5), [], CELL, lambda o: None
        )
        assert region == CELL

    def test_unsupported_query_type(self):
        class Bogus:
            pass

        with pytest.raises(TypeError):
            compute_safe_region(
                "x", Point(0.5, 0.5), [Bogus()], CELL, lambda o: None
            )
