"""Tests for the grid-based query index (Section 3.3)."""

import pytest

from repro.core.queries import KNNQuery, RangeQuery
from repro.geometry import Point, Rect
from repro.index import GridIndex


def make_range(x, y, size=0.1, qid=None):
    return RangeQuery(Rect(x, y, x + size, y + size), query_id=qid)


class TestCellArithmetic:
    def setup_method(self):
        self.grid = GridIndex(10)

    def test_validation(self):
        with pytest.raises(ValueError):
            GridIndex(0)
        with pytest.raises(ValueError):
            GridIndex(5, Rect(0, 0, 0, 1))

    def test_cell_of_interior(self):
        assert self.grid.cell_of(Point(0.05, 0.05)) == (0, 0)
        assert self.grid.cell_of(Point(0.95, 0.15)) == (9, 1)

    def test_cell_of_clamps_outside(self):
        assert self.grid.cell_of(Point(-1, 2)) == (0, 9)
        assert self.grid.cell_of(Point(1.0, 1.0)) == (9, 9)

    def test_cell_rect(self):
        rect = self.grid.cell_rect((2, 3))
        assert rect.as_tuple() == pytest.approx((0.2, 0.3, 0.3, 0.4))
        with pytest.raises(IndexError):
            self.grid.cell_rect((10, 0))

    def test_cell_rect_of_point_contains_point(self):
        p = Point(0.42, 0.77)
        assert self.grid.cell_rect_of_point(p).contains_point(p)

    def test_cells_overlapping(self):
        cells = set(self.grid.cells_overlapping(Rect(0.05, 0.05, 0.25, 0.15)))
        assert cells == {(0, 0), (1, 0), (2, 0), (0, 1), (1, 1), (2, 1)}

    def test_nonuniform_space(self):
        grid = GridIndex(4, Rect(0, 0, 2, 1))
        assert grid.cell_rect((0, 0)) == Rect(0, 0, 0.5, 0.25)
        assert grid.cell_of(Point(1.9, 0.9)) == (3, 3)


class TestRegistration:
    def setup_method(self):
        self.grid = GridIndex(10)

    def test_insert_and_lookup(self):
        query = make_range(0.42, 0.42, 0.05)
        self.grid.insert(query)
        assert query in self.grid
        assert len(self.grid) == 1
        assert query in self.grid.queries_at(Point(0.44, 0.44))
        assert query not in self.grid.queries_at(Point(0.1, 0.1))

    def test_duplicate_insert_rejected(self):
        query = make_range(0.1, 0.1)
        self.grid.insert(query)
        with pytest.raises(KeyError):
            self.grid.insert(query)

    def test_remove(self):
        query = make_range(0.1, 0.1)
        self.grid.insert(query)
        self.grid.remove(query)
        assert query not in self.grid
        assert not self.grid.queries_at(Point(0.15, 0.15))
        with pytest.raises(KeyError):
            self.grid.remove(query)

    def test_query_spanning_cells(self):
        query = make_range(0.05, 0.05, 0.2)
        self.grid.insert(query)
        for p in (Point(0.06, 0.06), Point(0.2, 0.2), Point(0.24, 0.06)):
            assert query in self.grid.queries_at(p)

    def test_knn_circle_precision(self):
        """Buckets are filtered by the true circle, not its bounding box."""
        query = KNNQuery(Point(0.55, 0.55), k=1)
        query.radius = 0.049
        self.grid.insert(query)
        # Cell (6, 6) overlaps the bounding box corner but not the circle.
        assert query not in self.grid.queries_in_cell((6, 6))
        assert query in self.grid.queries_in_cell((5, 5))

    def test_update_after_quarantine_change(self):
        query = KNNQuery(Point(0.35, 0.35), k=1)
        query.radius = 0.01
        self.grid.insert(query)
        assert query not in self.grid.queries_at(Point(0.65, 0.35))
        query.radius = 0.35
        self.grid.update(query)
        assert query in self.grid.queries_at(Point(0.65, 0.35))

    def test_update_unregistered_raises(self):
        with pytest.raises(KeyError):
            self.grid.update(make_range(0.1, 0.1))

    def test_update_without_movement_is_noop(self):
        query = make_range(0.3, 0.3, 0.05)
        self.grid.insert(query)
        self.grid.update(query)
        assert query in self.grid.queries_at(Point(0.32, 0.32))


class TestCandidateQueries:
    def setup_method(self):
        self.grid = GridIndex(10)
        self.q_a = make_range(0.11, 0.11, 0.05, "a")
        self.q_b = make_range(0.81, 0.81, 0.05, "b")
        self.grid.insert(self.q_a)
        self.grid.insert(self.q_b)

    def test_same_cell_move(self):
        found = self.grid.candidate_queries(Point(0.12, 0.12), Point(0.13, 0.13))
        assert self.q_a in found and self.q_b not in found

    def test_cross_cell_move_unions_buckets(self):
        found = self.grid.candidate_queries(Point(0.12, 0.12), Point(0.82, 0.82))
        assert {self.q_a, self.q_b} <= set(found)

    def test_new_object(self):
        found = self.grid.candidate_queries(Point(0.85, 0.85), None)
        assert self.q_b in found and self.q_a not in found

    def test_all_queries(self):
        assert self.grid.all_queries() == frozenset({self.q_a, self.q_b})

    def test_size_accounting(self):
        assert self.grid.approximate_size_bytes() > 0
