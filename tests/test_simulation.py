"""Tests for the simulation layer: scenarios, truth, metrics, engines."""

import math

import pytest

from repro.baselines import PRDSimulation, optimal_report
from repro.core.queries import KNNQuery, RangeQuery
from repro.geometry import Point, Rect
from repro.mobility import RandomWaypointModel
from repro.simulation import GroundTruth, Scenario, SRBSimulation
from repro.simulation.metrics import (
    C_PROBE,
    C_PUSH,
    C_UPDATE,
    AccuracyAccumulator,
    CommunicationCosts,
)
from repro.simulation.truth import opt_update_count

TINY = Scenario(
    num_objects=120,
    num_queries=8,
    mean_speed=0.02,
    mean_period=0.1,
    q_len=0.08,
    k_max=3,
    grid_m=6,
    duration=1.5,
    sample_interval=0.1,
    seed=5,
)


class TestScenario:
    def test_validation(self):
        with pytest.raises(ValueError):
            Scenario(num_objects=0)
        with pytest.raises(ValueError):
            Scenario(duration=0)
        with pytest.raises(ValueError):
            Scenario(sample_interval=0)
        with pytest.raises(ValueError):
            Scenario(delay=-0.1)
        with pytest.raises(ValueError):
            Scenario(client_poll_interval=0)
        with pytest.raises(ValueError):
            Scenario(kernel_min_rows=0)

    def test_sample_times(self):
        scenario = Scenario(duration=1.0, sample_interval=0.25)
        assert scenario.sample_times() == [0.25, 0.5, 0.75, 1.0]

    def test_opt_sample_times_finer(self):
        scenario = Scenario(duration=1.0, sample_interval=0.25)
        assert len(scenario.opt_sample_times()) == 20

    def test_with_overrides(self):
        scenario = TINY.with_overrides(delay=0.5)
        assert scenario.delay == 0.5
        assert scenario.num_objects == TINY.num_objects

    def test_max_speed(self):
        assert Scenario(mean_speed=0.01).max_speed == 0.02


class TestGroundTruth:
    def build(self):
        model = RandomWaypointModel(0.02, 0.2, seed=1)
        trajectories = {oid: model.create(oid) for oid in range(50)}
        range_query = RangeQuery(Rect(0.3, 0.3, 0.7, 0.7), query_id="r")
        knn = KNNQuery(Point(0.5, 0.5), 3, query_id="k")
        knn_set = KNNQuery(Point(0.2, 0.8), 3, order_sensitive=False, query_id="ks")
        return GroundTruth(trajectories, [range_query, knn, knn_set]), trajectories

    def test_matches_brute_force(self):
        truth, trajectories = self.build()
        for t in (0.0, 0.7, 2.0):
            snapshot = truth.evaluate_at(t)
            positions = {o: tr.position_at(t) for o, tr in trajectories.items()}
            expected_range = frozenset(
                o for o, p in positions.items()
                if Rect(0.3, 0.3, 0.7, 0.7).contains_point(p)
            )
            assert snapshot["r"] == expected_range
            center = Point(0.5, 0.5)
            expected_knn = tuple(sorted(
                positions, key=lambda o: center.distance_to(positions[o])
            )[:3])
            assert snapshot["k"] == expected_knn
            assert isinstance(snapshot["ks"], frozenset)
            assert len(snapshot["ks"]) == 3

    def test_memoised(self):
        truth, _ = self.build()
        assert truth.evaluate_at(0.5) is truth.evaluate_at(0.5)


class TestOptCounting:
    def setup_method(self):
        self.range_query = RangeQuery(Rect(0, 0, 1, 1), query_id="r")
        self.knn = KNNQuery(Point(0, 0), 3, query_id="k")
        self.queries = [self.range_query, self.knn]

    def test_first_checkpoint_free(self):
        assert opt_update_count(None, {"r": frozenset(), "k": ()}, self.queries) == 0

    def test_range_membership_changes(self):
        before = {"r": frozenset({1, 2}), "k": ()}
        after = {"r": frozenset({2, 3}), "k": ()}
        assert opt_update_count(before, after, self.queries) == 2

    def test_knn_swap_counts_inversion(self):
        before = {"r": frozenset(), "k": (1, 2, 3)}
        after = {"r": frozenset(), "k": (2, 1, 3)}
        assert opt_update_count(before, after, self.queries) == 1

    def test_knn_full_reversal(self):
        before = {"r": frozenset(), "k": (1, 2, 3)}
        after = {"r": frozenset(), "k": (3, 2, 1)}
        assert opt_update_count(before, after, self.queries) == 3

    def test_knn_membership_plus_order(self):
        before = {"r": frozenset(), "k": (1, 2, 3)}
        after = {"r": frozenset(), "k": (2, 1, 4)}
        # 3 leaves (+1), 4 enters (+1), survivors (1, 2) swapped (+1).
        assert opt_update_count(before, after, self.queries) == 3

    def test_no_change(self):
        snap = {"r": frozenset({1}), "k": (1, 2, 3)}
        assert opt_update_count(snap, dict(snap), self.queries) == 0


class TestMetrics:
    def test_cost_weights(self):
        costs = CommunicationCosts(updates=4, probes=2, pushes=2)
        assert costs.total == 4 * C_UPDATE + 2 * C_PROBE + 2 * C_PUSH
        assert costs.per_client_per_time(2, 2.0) == costs.total / 4.0

    def test_accuracy_accumulator(self):
        acc = AccuracyAccumulator()
        assert acc.value == 1.0
        acc.record(True)
        acc.record(False)
        assert acc.value == 0.5


class TestSRBSimulation:
    def test_runs_and_reports(self):
        report = SRBSimulation(TINY).run()
        assert report.scheme == "SRB"
        assert report.num_objects == TINY.num_objects
        assert 0.0 <= report.accuracy <= 1.0
        assert report.costs.updates >= 0
        assert report.total_distance > 0

    def test_high_accuracy_at_zero_delay(self):
        report = SRBSimulation(TINY).run()
        assert report.accuracy > 0.95

    def test_accuracy_degrades_with_delay(self):
        crisp = SRBSimulation(TINY).run()
        delayed = SRBSimulation(TINY.with_overrides(delay=0.3)).run()
        assert delayed.accuracy <= crisp.accuracy

    def test_deterministic(self):
        a = SRBSimulation(TINY).run()
        b = SRBSimulation(TINY).run()
        assert a.costs.updates == b.costs.updates
        assert a.accuracy == b.accuracy

    def test_shared_truth_reuse(self):
        first = SRBSimulation(TINY)
        report_a = first.run()
        second = SRBSimulation(TINY, truth=first.truth)
        report_b = second.run()
        assert report_a.costs.updates == report_b.costs.updates


class TestPRDSimulation:
    def test_validation(self):
        with pytest.raises(ValueError):
            PRDSimulation(TINY, t_prd=0.0)

    def test_runs_and_reports(self):
        report = PRDSimulation(TINY, t_prd=0.3).run()
        assert report.scheme == "PRD(0.3)"
        periods = math.floor(TINY.duration / 0.3) + 1
        assert report.costs.updates == TINY.num_objects * periods
        assert report.costs.probes == 0

    def test_faster_period_more_accurate(self):
        slow = PRDSimulation(TINY, t_prd=0.75).run()
        fast = PRDSimulation(TINY, t_prd=0.15).run()
        assert fast.accuracy >= slow.accuracy
        assert fast.costs.updates > slow.costs.updates


class TestOptimalReport:
    def test_perfect_accuracy_and_costs(self):
        report = optimal_report(TINY)
        assert report.accuracy == 1.0
        assert report.scheme == "OPT"
        assert report.costs.probes == 0
        assert report.costs.updates >= 0

    def test_cheaper_than_srb(self):
        srb = SRBSimulation(TINY).run()
        opt = optimal_report(TINY, truth=SRBSimulation(TINY).truth)
        assert opt.comm_cost <= srb.comm_cost


class TestSchemeOrdering:
    def test_headline_shape(self):
        """SRB beats PRD on accuracy at comparable or lower cost."""
        srb = SRBSimulation(TINY).run()
        prd = PRDSimulation(TINY, t_prd=1.0, truth=None).run()
        assert srb.accuracy > prd.accuracy
