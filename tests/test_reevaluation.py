"""Tests for incremental reevaluation (Section 4.3)."""

import random

import pytest

from repro.core.evaluation import evaluate_knn
from repro.core.queries import KNNQuery, RangeQuery
from repro.core.reevaluation import (
    reevaluate_knn,
    reevaluate_range,
    relieve_tight_safe_region,
)
from repro.geometry import Point, Rect
from repro.index import RStarTree


class TestReevaluateRange:
    def setup_method(self):
        self.query = RangeQuery(Rect(0.4, 0.4, 0.6, 0.6))
        self.query.results = {"a"}

    def test_enter(self):
        outcome = reevaluate_range(self.query, "b", Point(0.5, 0.5))
        assert outcome.changed
        assert self.query.results == {"a", "b"}

    def test_leave(self):
        outcome = reevaluate_range(self.query, "a", Point(0.1, 0.1))
        assert outcome.changed
        assert self.query.results == set()

    def test_noop_inside(self):
        outcome = reevaluate_range(self.query, "a", Point(0.45, 0.55))
        assert not outcome.changed
        assert self.query.results == {"a"}

    def test_noop_outside(self):
        outcome = reevaluate_range(self.query, "b", Point(0.1, 0.1))
        assert not outcome.changed

    def test_never_probes_or_touches_quarantine(self):
        outcome = reevaluate_range(self.query, "b", Point(0.5, 0.5))
        assert not outcome.probed
        assert not outcome.quarantine_changed


class KNNWorld:
    """A kNN query with maintained state over an exact-position world."""

    def __init__(self, k=3, seed=0, n=30, order_sensitive=True):
        rng = random.Random(seed)
        self.positions = {
            oid: Point(rng.random(), rng.random()) for oid in range(n)
        }
        self.index = RStarTree()
        for oid, p in self.positions.items():
            self.index.insert(oid, Rect.from_point(p))
        self.query = KNNQuery(Point(0.5, 0.5), k, order_sensitive=order_sensitive)
        evaluation = evaluate_knn(
            self.index, self.query.center, k, self.probe,
            order_sensitive=order_sensitive,
        )
        self.query.results = list(evaluation.results)
        self.query.radius = evaluation.radius
        self.probe_log = []

    def probe(self, oid):
        self.probe_log.append(oid)
        return self.positions[oid]

    def move(self, oid, p):
        """Simulate an object's location update arriving at the server."""
        previous = self.positions[oid]
        self.positions[oid] = p
        self.index.update(oid, Rect.from_point(p))
        outcome = reevaluate_knn(
            self.query, oid, p, previous, self.index, self.probe,
            self.index.rect_of,
        )
        return outcome

    def true_knn(self):
        ranked = sorted(
            self.positions,
            key=lambda o: self.query.center.distance_to(self.positions[o]),
        )
        return ranked[: self.query.k]


class TestCaseOne:
    """A result leaves the quarantine area."""

    def test_replacement_found(self):
        world = KNNWorld(seed=1)
        leaver = world.query.results[0]
        outcome = world.move(leaver, Point(0.99, 0.99))
        assert outcome.changed
        assert outcome.quarantine_changed
        assert world.query.results == world.true_knn()

    def test_leaver_can_remain_kth(self):
        """The leaver exits the circle but may still be the k-th NN."""
        world = KNNWorld(seed=2, k=2, n=6)
        leaver = world.query.results[-1]
        # Move just past the quarantine boundary, still closer than others.
        q = world.query.center
        boundary = world.query.radius + 1e-6
        target = Point(q.x + boundary, q.y)
        world.move(leaver, target)
        assert world.query.results == world.true_knn()


class TestCaseTwo:
    """A non-result enters the quarantine area."""

    def test_newcomer_displaces_last(self):
        world = KNNWorld(seed=3)
        outsider = next(
            o for o in world.positions if o not in world.query.results
        )
        q = world.query.center
        outcome = world.move(outsider, Point(q.x + 1e-4, q.y))
        assert outcome.changed
        assert world.query.results[0] == outsider
        assert world.query.results == world.true_knn()

    def test_at_most_one_probe(self):
        for seed in range(10):
            world = KNNWorld(seed=seed)
            outsider = next(
                o for o in world.positions if o not in world.query.results
            )
            q = world.query.center
            world.probe_log.clear()
            world.move(outsider, Point(q.x + 0.01, q.y + 0.01))
            assert len(world.probe_log) <= 1

    def test_enter_but_still_beyond_kth(self):
        """Entering the circle without displacing anyone shrinks it."""
        world = KNNWorld(seed=4)
        results_before = list(world.query.results)
        # Find a spot inside the old circle but farther than the k-th NN.
        q = world.query.center
        kth = world.positions[results_before[-1]]
        kth_dist = q.distance_to(kth)
        radius = world.query.radius
        if radius - kth_dist < 1e-9:
            pytest.skip("no gap between k-th NN and quarantine boundary")
        target_dist = (kth_dist + radius) / 2
        outsider = next(
            o for o in world.positions if o not in results_before
        )
        outcome = world.move(outsider, Point(q.x + target_dist, q.y))
        assert world.query.results == results_before
        assert world.query.radius < radius  # shrunk to exclude the visitor
        assert outcome.quarantine_changed


class TestCaseThree:
    """A result moves within the quarantine area."""

    def test_rank_swap(self):
        world = KNNWorld(seed=5)
        q = world.query.center
        mover = world.query.results[-1]
        nearest = world.positions[world.query.results[0]]
        # Move the last result closer than the current first.
        d = q.distance_to(nearest)
        world.move(mover, Point(q.x + d / 2, q.y))
        assert world.query.results[0] == mover
        assert world.query.results == world.true_knn()

    def test_rank_preserved_on_small_move(self):
        world = KNNWorld(seed=6)
        mover = world.query.results[1]
        p = world.positions[mover]
        outcome = world.move(mover, Point(p.x + 1e-9, p.y))
        assert world.query.results == world.true_knn()
        assert not outcome.quarantine_changed

    def test_radius_unchanged(self):
        world = KNNWorld(seed=7)
        radius = world.query.radius
        mover = world.query.results[0]
        p = world.positions[mover]
        world.move(mover, Point(p.x + 1e-6, p.y + 1e-6))
        assert world.query.radius == radius


class TestOrderInsensitive:
    def test_reevaluated_from_scratch(self):
        world = KNNWorld(seed=8, order_sensitive=False)
        outsider = next(
            o for o in world.positions if o not in world.query.results
        )
        q = world.query.center
        outcome = world.move(outsider, Point(q.x + 1e-4, q.y))
        assert outcome.changed
        assert outcome.quarantine_changed
        assert set(world.query.results) == set(world.true_knn())


class TestRandomisedMaintenance:
    @pytest.mark.parametrize("order_sensitive", [True, False])
    @pytest.mark.parametrize("seed", range(4))
    def test_many_moves_stay_exact(self, seed, order_sensitive):
        world = KNNWorld(seed=seed, k=4, n=40, order_sensitive=order_sensitive)
        rng = random.Random(seed + 77)
        for _ in range(120):
            oid = rng.randrange(40)
            p = world.positions[oid]
            new = Point(
                min(max(p.x + rng.uniform(-0.08, 0.08), 0), 1),
                min(max(p.y + rng.uniform(-0.08, 0.08), 0), 1),
            )
            if world.query.is_affected_by(new, world.positions[oid]):
                world.move(oid, new)
            else:
                world.positions[oid] = new
                world.index.update(oid, Rect.from_point(new))
            truth = world.true_knn()
            if order_sensitive:
                assert world.query.results == truth
            else:
                assert set(world.query.results) == set(truth)


class TestRelief:
    def test_noop_when_no_results(self):
        index = RStarTree()
        query = KNNQuery(Point(0.5, 0.5), 2)
        outcome = relieve_tight_safe_region(
            query, "x", Point(0.6, 0.5), index, lambda o: Point(0, 0)
        )
        assert not outcome.probed and not outcome.quarantine_changed

    def test_nonresult_hugging_shrinks_radius(self):
        index = RStarTree()
        q = Point(0.5, 0.5)
        index.insert("near", Rect.from_point(Point(0.55, 0.5)))   # d = 0.05
        index.insert("hug", Rect.from_point(Point(0.6, 0.5)))     # d = 0.10
        query = KNNQuery(q, 1)
        query.results = ["near"]
        query.radius = 0.0999999  # the hugger sits right on the circle
        outcome = relieve_tight_safe_region(
            query, "hug", Point(0.6, 0.5), index, lambda o: Point(0, 0)
        )
        assert outcome.quarantine_changed
        assert 0.05 < query.radius < 0.1

    def test_last_result_hugging_grows_radius(self):
        index = RStarTree()
        q = Point(0.5, 0.5)
        index.insert("a", Rect.from_point(Point(0.52, 0.5)))    # result
        index.insert("b", Rect.from_point(Point(0.55, 0.5)))    # result (last)
        index.insert("c", Rect.from_point(Point(0.8, 0.5)))     # follower
        query = KNNQuery(q, 2)
        query.results = ["a", "b"]
        query.radius = 0.0500001  # "b" hugs the boundary from inside
        outcome = relieve_tight_safe_region(
            query, "b", Point(0.55, 0.5), index, lambda o: Point(0, 0)
        )
        assert outcome.quarantine_changed
        assert query.radius == pytest.approx((0.05 + 0.3) / 2)

    def test_middle_result_probes_loose_neighbour(self):
        index = RStarTree()
        q = Point(0.5, 0.5)
        positions = {
            "a": Point(0.52, 0.5),
            "b": Point(0.55, 0.5),
            "c": Point(0.62, 0.5),
        }
        index.insert("a", Rect(0.5, 0.45, 0.56, 0.55))  # loose region
        index.insert("b", Rect.from_point(positions["b"]))
        index.insert("c", Rect.from_point(positions["c"]))
        query = KNNQuery(q, 3)
        query.results = ["a", "b", "c"]
        query.radius = 0.2
        outcome = relieve_tight_safe_region(
            query, "b", positions["b"], index, lambda o: positions[o]
        )
        assert "a" in outcome.probed  # the loose lower neighbour is probed
