"""White-box tests for the evaluation machinery's internals."""

import pytest

from repro.core.evaluation import _Candidate, _MergedQueue
from repro.geometry import Point, Rect


def region_stream(entries, q):
    """Mimic ``RStarTree.nearest_iter`` output for given (oid, rect) pairs."""
    ranked = sorted(
        (rect.min_dist_to_point(q), oid, rect) for oid, rect in entries
    )
    for dist, oid, rect in ranked:
        yield oid, rect, dist


class TestCandidate:
    def test_region_bounds(self):
        q = Point(0.0, 0.0)
        candidate = _Candidate("a", Rect(3.0, 0.0, 4.0, 0.0), q, False)
        assert candidate.min_dist == pytest.approx(3.0)
        assert candidate.max_dist == pytest.approx(4.0)
        assert not candidate.is_point

    def test_point_bounds_collapse(self):
        q = Point(0.0, 0.0)
        candidate = _Candidate("a", Point(3.0, 4.0), q, True)
        assert candidate.min_dist == candidate.max_dist == pytest.approx(5.0)
        assert candidate.is_point


class TestMergedQueue:
    def test_stream_only_order(self):
        q = Point(0.0, 0.0)
        entries = [
            ("far", Rect(5, 0, 6, 1)),
            ("near", Rect(1, 0, 2, 1)),
            ("mid", Rect(3, 0, 4, 1)),
        ]
        queue = _MergedQueue(region_stream(entries, q), q)
        order = []
        while True:
            item = queue.pop()
            if item is None:
                break
            order.append(item.oid)
        assert order == ["near", "mid", "far"]

    def test_pushed_items_merge_by_key(self):
        q = Point(0.0, 0.0)
        entries = [("a", Rect(2, 0, 3, 0)), ("b", Rect(6, 0, 7, 0))]
        queue = _MergedQueue(region_stream(entries, q), q)
        first = queue.pop()
        assert first.oid == "a"
        # Probe resolution: a's exact point lands between a and b.
        queue.push(_Candidate("a", Point(4.0, 0.0), q, True))
        second = queue.pop()
        assert second.oid == "a" and second.is_point
        third = queue.pop()
        assert third.oid == "b"
        assert queue.pop() is None

    def test_pushed_item_with_smaller_key_comes_first(self):
        q = Point(0.0, 0.0)
        entries = [("far", Rect(9, 0, 10, 0))]
        queue = _MergedQueue(region_stream(entries, q), q)
        queue.push(_Candidate("urgent", Point(1.0, 0.0), q, True))
        assert queue.pop().oid == "urgent"
        assert queue.pop().oid == "far"

    def test_empty_everything(self):
        q = Point(0.0, 0.0)
        queue = _MergedQueue(iter(()), q)
        assert queue.pop() is None
        queue.push(_Candidate("late", Point(1, 1), q, True))
        assert queue.pop().oid == "late"
        assert queue.pop() is None

    def test_tie_breaking_is_stable(self):
        """Equal keys must not raise (heap falls back to the counter)."""
        q = Point(0.0, 0.0)
        queue = _MergedQueue(iter(()), q)
        for i in range(5):
            queue.push(_Candidate(f"o{i}", Point(1.0, 0.0), q, True))
        seen = {queue.pop().oid for _ in range(5)}
        assert seen == {f"o{i}" for i in range(5)}
