"""Unit tests for the span tracer (nesting, cpu accounting, no-op path)."""

import pytest

from repro.obs import NULL_REGISTRY, MetricsRegistry, Tracer
from repro.obs.trace import _NOOP_SPAN


def test_nested_spans_build_dotted_paths():
    registry = MetricsRegistry()
    tracer = Tracer(registry)
    with tracer.span("server.update"):
        with tracer.span("ingest"):
            with tracer.span("reevaluate"):
                pass
        with tracer.span("location_manager"):
            pass
    names = set(registry.to_dict()["histograms"])
    assert names == {
        "span.server.update.seconds",
        "span.server.update.ingest.seconds",
        "span.server.update.ingest.reevaluate.seconds",
        "span.server.update.location_manager.seconds",
    }


def test_parent_duration_covers_children():
    registry = MetricsRegistry()
    tracer = Tracer(registry)
    for _ in range(5):
        with tracer.span("parent"):
            with tracer.span("a"):
                sum(range(200))
            with tracer.span("b"):
                sum(range(200))
    histograms = registry.to_dict()["histograms"]
    parent = histograms["span.parent.seconds"]
    child_sum = (
        histograms["span.parent.a.seconds"]["sum"]
        + histograms["span.parent.b.seconds"]["sum"]
    )
    assert parent["count"] == 5
    assert parent["sum"] >= child_sum


def test_cpu_seconds_accumulates_root_spans_only():
    registry = MetricsRegistry()
    tracer = Tracer(registry)
    with tracer.span("root"):
        before_child = tracer.cpu_seconds
        with tracer.span("child"):
            pass
        # The child's exit must not feed cpu_seconds directly.
        assert tracer.cpu_seconds == before_child
    assert tracer.cpu_seconds > 0.0
    root = registry.to_dict()["histograms"]["span.root.seconds"]
    assert tracer.cpu_seconds == pytest.approx(root["sum"])


def test_disabled_tracer_times_roots_but_not_children():
    tracer = Tracer(NULL_REGISTRY)
    child_spans = []
    with tracer.span("root"):
        child_spans.append(tracer.span("child"))
        with child_spans[-1]:
            pass
    assert tracer.cpu_seconds > 0.0
    # Child spans under a disabled registry are the shared no-op object.
    assert child_spans[0] is _NOOP_SPAN
    assert NULL_REGISTRY.to_dict()["histograms"] == {}


def test_default_tracer_is_disabled():
    tracer = Tracer()
    assert tracer.registry is NULL_REGISTRY
    with tracer.span("anything"):
        pass
    assert tracer.records == []


def test_keep_records_flat_trace_log():
    tracer = Tracer(MetricsRegistry(), keep_records=True)
    with tracer.span("outer"):
        with tracer.span("inner"):
            pass
    records = tracer.records
    # Completion order: inner exits before outer.
    assert [r.path for r in records] == ["outer.inner", "outer"]
    inner, outer = records
    assert inner.depth == 1 and outer.depth == 0
    assert inner.name == "inner"
    assert inner.start >= outer.start
    assert outer.duration >= inner.duration
    assert set(inner.to_dict()) == {
        "name", "path", "depth", "start", "duration"
    }


def test_traced_decorator_records_span():
    registry = MetricsRegistry()
    tracer = Tracer(registry)

    @tracer.traced("work")
    def work(x):
        """Docstring survives."""
        return x + 1

    assert work(1) == 2
    assert work.__name__ == "work"
    assert work.__doc__ == "Docstring survives."
    assert registry.to_dict()["histograms"]["span.work.seconds"]["count"] == 1


def test_exception_still_closes_span():
    registry = MetricsRegistry()
    tracer = Tracer(registry)
    with pytest.raises(RuntimeError):
        with tracer.span("root"):
            with tracer.span("boom"):
                raise RuntimeError("x")
    # Both spans were closed and recorded despite the exception.
    histograms = registry.to_dict()["histograms"]
    assert histograms["span.root.seconds"]["count"] == 1
    assert histograms["span.root.boom.seconds"]["count"] == 1
    # The stack unwound fully: a new span is a root again.
    with tracer.span("after"):
        pass
    assert "span.after.seconds" in registry.to_dict()["histograms"]
