"""Tests for query evaluation over safe regions (Section 4, Algorithm 2)."""

import math
import random

import pytest

from repro.core.evaluation import evaluate_knn, evaluate_range
from repro.geometry import Point, Rect
from repro.index import BruteForceIndex, RStarTree


class World:
    """Objects with exact positions, indexed by conservative safe regions."""

    def __init__(self, seed=0, n=60, region_half=0.04, index_cls=RStarTree):
        rng = random.Random(seed)
        self.positions = {}
        self.index = index_cls()
        for oid in range(n):
            p = Point(rng.random(), rng.random())
            # Safe region: random rectangle guaranteed to contain p.
            dx1, dx2 = rng.uniform(0, region_half), rng.uniform(0, region_half)
            dy1, dy2 = rng.uniform(0, region_half), rng.uniform(0, region_half)
            region = Rect(
                max(p.x - dx1, 0), max(p.y - dy1, 0),
                min(p.x + dx2, 1), min(p.y + dy2, 1),
            )
            self.positions[oid] = p
            self.index.insert(oid, region)
        self.probe_log = []

    def probe(self, oid):
        self.probe_log.append(oid)
        return self.positions[oid]

    def true_range(self, rect):
        return {o for o, p in self.positions.items() if rect.contains_point(p)}

    def true_knn(self, q, k, exclude=frozenset()):
        ranked = sorted(
            (o for o in self.positions if o not in exclude),
            key=lambda o: q.distance_to(self.positions[o]),
        )
        return ranked[:k]


class TestEvaluateRange:
    def test_matches_truth(self):
        world = World(seed=1)
        rect = Rect(0.3, 0.3, 0.7, 0.7)
        outcome = evaluate_range(world.index, rect, world.probe)
        assert set(outcome.results) == world.true_range(rect)

    def test_probes_only_boundary_overlaps(self):
        world = World(seed=2)
        rect = Rect(0.25, 0.25, 0.75, 0.75)
        outcome = evaluate_range(world.index, rect, world.probe)
        for oid in outcome.probed:
            region = world.index.rect_of(oid)
            assert region.intersects(rect) and not rect.contains_rect(region)

    def test_empty_result(self):
        world = World(seed=3)
        outcome = evaluate_range(world.index, Rect(2, 2, 3, 3), world.probe)
        assert outcome.results == []
        assert not outcome.probed

    def test_degenerate_query_rect(self):
        world = World(seed=4)
        p = world.positions[0]
        outcome = evaluate_range(
            world.index, Rect.from_point(p), world.probe
        )
        assert 0 in outcome.results

    @pytest.mark.parametrize("seed", range(5))
    def test_random_queries(self, seed):
        world = World(seed=seed, n=100)
        rng = random.Random(seed + 50)
        for _ in range(10):
            x, y = rng.random() * 0.7, rng.random() * 0.7
            rect = Rect(x, y, x + 0.3, y + 0.3)
            outcome = evaluate_range(world.index, rect, world.probe)
            assert set(outcome.results) == world.true_range(rect)


class TestEvaluateKNNOrdered:
    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("k", [1, 3, 7])
    def test_matches_truth(self, seed, k):
        world = World(seed=seed)
        q = Point(0.5, 0.5)
        outcome = evaluate_knn(world.index, q, k, world.probe)
        assert outcome.results == world.true_knn(q, k)

    def test_radius_separates_results_from_rest(self):
        world = World(seed=7)
        q = Point(0.4, 0.6)
        k = 4
        outcome = evaluate_knn(world.index, q, k, world.probe)
        results = set(outcome.results)
        # Every result's *post-evaluation* stored geometry fits inside the
        # quarantine circle; every non-result's stays outside.
        for oid in world.positions:
            region = world.index.rect_of(oid)
            if oid in outcome.probed:
                region = Rect.from_point(outcome.probed[oid])
            if oid in results:
                assert region.max_dist_to_point(q) <= outcome.radius + 1e-9
            else:
                assert region.min_dist_to_point(q) >= outcome.radius - 1e-9

    def test_k_larger_than_population(self):
        world = World(seed=8, n=3)
        outcome = evaluate_knn(world.index, Point(0.5, 0.5), 10, world.probe)
        assert len(outcome.results) == 3
        assert outcome.radius == pytest.approx(math.sqrt(2.0))

    def test_exclude(self):
        world = World(seed=9)
        q = Point(0.5, 0.5)
        banned = set(world.true_knn(q, 2))
        outcome = evaluate_knn(
            world.index, q, 3, world.probe,
            exclude=lambda oid: oid in banned,
        )
        assert outcome.results == world.true_knn(q, 3, exclude=banned)

    def test_invalid_k(self):
        world = World(seed=10)
        with pytest.raises(ValueError):
            evaluate_knn(world.index, Point(0, 0), 0, world.probe)

    def test_empty_index(self):
        index = RStarTree()
        outcome = evaluate_knn(index, Point(0.5, 0.5), 3, lambda o: None)
        assert outcome.results == []

    def test_point_regions_need_no_probes(self):
        """Degenerate safe regions are exact: zero probes necessary."""
        index = RStarTree()
        positions = {}
        rng = random.Random(11)
        for oid in range(40):
            p = Point(rng.random(), rng.random())
            positions[oid] = p
            index.insert(oid, Rect.from_point(p))
        probes = []
        outcome = evaluate_knn(
            index, Point(0.5, 0.5), 5,
            lambda oid: probes.append(oid) or positions[oid],
        )
        assert not probes
        ranked = sorted(positions, key=lambda o: Point(0.5, 0.5).distance_to(positions[o]))
        assert outcome.results == ranked[:5]

    def test_lazy_probe_bound(self):
        """Probes stay well below the population (lazy probing works)."""
        world = World(seed=12, n=200, region_half=0.02)
        evaluate_knn(world.index, Point(0.5, 0.5), 5, world.probe)
        assert len(world.probe_log) < 40


class TestEvaluateKNNUnordered:
    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("k", [1, 4])
    def test_set_matches_truth(self, seed, k):
        world = World(seed=seed)
        q = Point(0.45, 0.55)
        outcome = evaluate_knn(
            world.index, q, k, world.probe, order_sensitive=False
        )
        assert set(outcome.results) == set(world.true_knn(q, k))

    def test_fewer_probes_than_ordered(self):
        seeds = range(8)
        ordered_probes = unordered_probes = 0
        for seed in seeds:
            world = World(seed=seed, n=150, region_half=0.05)
            evaluate_knn(world.index, Point(0.5, 0.5), 6, world.probe)
            ordered_probes += len(world.probe_log)
            world = World(seed=seed, n=150, region_half=0.05)
            evaluate_knn(
                world.index, Point(0.5, 0.5), 6, world.probe,
                order_sensitive=False,
            )
            unordered_probes += len(world.probe_log)
        assert unordered_probes <= ordered_probes

    def test_radius_valid_for_sets(self):
        world = World(seed=13)
        q = Point(0.6, 0.4)
        outcome = evaluate_knn(
            world.index, q, 5, world.probe, order_sensitive=False
        )
        results = set(outcome.results)
        for oid in world.positions:
            region = world.index.rect_of(oid)
            if oid in outcome.probed:
                region = Rect.from_point(outcome.probed[oid])
            if oid in results:
                assert region.max_dist_to_point(q) <= outcome.radius + 1e-9
            else:
                assert region.min_dist_to_point(q) >= outcome.radius - 1e-9


class TestWithBruteForceIndex:
    """The evaluation is index-agnostic; run against the reference index."""

    def test_knn(self):
        world = World(seed=14, index_cls=BruteForceIndex)
        q = Point(0.3, 0.3)
        outcome = evaluate_knn(world.index, q, 4, world.probe)
        assert outcome.results == world.true_knn(q, 4)

    def test_range(self):
        world = World(seed=15, index_cls=BruteForceIndex)
        rect = Rect(0.2, 0.2, 0.8, 0.8)
        outcome = evaluate_range(world.index, rect, world.probe)
        assert set(outcome.results) == world.true_range(rect)


class TestReachabilityConstrain:
    def test_constrain_reduces_probes(self):
        """A tight reachability box resolves ambiguity without probing."""
        index = RStarTree()
        positions = {}
        rng = random.Random(16)
        for oid in range(80):
            p = Point(rng.random(), rng.random())
            positions[oid] = p
            index.insert(
                oid,
                Rect(
                    max(p.x - 0.1, 0), max(p.y - 0.1, 0),
                    min(p.x + 0.1, 1), min(p.y + 0.1, 1),
                ),
            )
        q = Point(0.5, 0.5)

        def run(constrain):
            probes = []
            outcome = evaluate_knn(
                index, q, 4,
                lambda oid: probes.append(oid) or positions[oid],
                constrain=constrain,
            )
            return outcome, probes

        plain_outcome, plain_probes = run(None)

        def tight(oid, region):
            p = positions[oid]
            box = Rect(p.x - 1e-4, p.y - 1e-4, p.x + 1e-4, p.y + 1e-4)
            clipped = region.intersection(box)
            return clipped if clipped is not None else region

        tight_outcome, tight_probes = run(tight)
        assert tight_outcome.results == plain_outcome.results
        assert len(tight_probes) <= len(plain_probes)
        # The decisive tightenings are reported for safe-region shrinking.
        assert tight_outcome.shrunk or len(tight_probes) == len(plain_probes)

    def test_range_constrain_decides_membership(self):
        index = RStarTree()
        p = Point(0.5, 0.5)
        index.insert("x", Rect(0.3, 0.3, 0.9, 0.9))
        rect = Rect(0.4, 0.4, 0.6, 0.6)

        def constrain(oid, region):
            return Rect(0.45, 0.45, 0.55, 0.55)  # surely inside

        outcome = evaluate_range(
            index, rect, lambda oid: p, constrain=constrain
        )
        assert outcome.results == ["x"]
        assert not outcome.probed
        assert outcome.shrunk == {"x": Rect(0.45, 0.45, 0.55, 0.55)}
