"""Unit tests for the tick-wide kernel planner (repro.kernels.planner).

The planner is the gather → dispatch → scatter pipeline behind
``DatabaseServer.handle_location_updates`` (docs/PERFORMANCE.md).  These
tests pin its contract pieces in isolation: the ``kernels.planner.*``
counters, the take-time validation that keeps planned and unplanned
executions bit-identical, the bulk-path gating (an enabled event stream
must disable planning entirely), and the public ``planned_tick``
context manager the sharded backend drives per-op streams through.
"""

from __future__ import annotations

import random

from repro.core import DatabaseServer, KNNQuery, RangeQuery, ServerConfig
from repro.core.batch import batch_range_safe_region, quadrant_extents
from repro.geometry import Point, Rect
from repro.kernels import Kernels, TickPlanner
from repro.obs import EventLog, MetricsRegistry


class _StubGrid:
    """Just enough grid for ``TickPlan.take_affected`` validation."""

    def __init__(self, generations):
        self._generations = dict(generations)

    def cell_generation(self, cell):
        return self._generations.get(cell, 0)


def _plan_one(planner, oid, position, previous, queries,
              cells=(3,), generations=(0,)):
    planner.begin()
    planner.add_affected(
        oid, position, previous, tuple(queries), cells, generations,
    )
    return planner.finish()


class TestPlannerCounters:
    def test_counts_plans_rows_and_dispatches(self):
        registry = MetricsRegistry()
        planner = TickPlanner(Kernels("numpy"), metrics=registry)
        q = RangeQuery(Rect(0.2, 0.2, 0.6, 0.6), query_id="r0")
        _plan_one(planner, "a", Point(0.3, 0.3), Point(0.1, 0.1), [q])
        counters = registry.to_dict()["counters"]
        assert counters["kernels.planner.plans"] == 1
        assert counters["kernels.planner.rows_gathered"] == 1
        assert counters["kernels.planner.dispatches"] == 1

    def test_region_work_is_a_second_dispatch(self):
        registry = MetricsRegistry()
        planner = TickPlanner(Kernels("numpy"), metrics=registry)
        q = RangeQuery(Rect(0.5, 0.5, 0.7, 0.7), query_id="r0")
        p = Point(0.2, 0.2)
        cell = Rect(0.0, 0.0, 1.0, 1.0)
        planner.begin()
        planner.add_affected("a", p, Point(0.1, 0.1), (q,), (0,), (0,))
        cols = planner.obstacle_columns(0, 0, [q])
        planner.add_region(
            "a", p, 0, cell, quadrant_extents(p, cell), cols
        )
        planner.finish()
        counters = registry.to_dict()["counters"]
        assert counters["kernels.planner.dispatches"] == 2
        # 1 affected row + 1 obstacle rect row (the four quadrant corner
        # candidates are derived in-kernel, not gathered as rows).
        assert counters["kernels.planner.rows_gathered"] == 2

    def test_empty_deltas_count_as_skipped_rows(self):
        registry = MetricsRegistry()
        planner = TickPlanner(Kernels("numpy"), metrics=registry)
        q_hit = RangeQuery(Rect(0.2, 0.2, 0.6, 0.6), query_id="rin")
        q_miss = RangeQuery(Rect(0.8, 0.8, 0.9, 0.9), query_id="rout")
        _plan_one(
            planner, "a", Point(0.3, 0.3), Point(0.1, 0.1),
            [q_hit, q_miss],
        )
        counters = registry.to_dict()["counters"]
        # ``q_miss`` contains neither endpoint: its verdict row is an
        # empty delta the consumer never revisits.
        assert counters["kernels.delta.skipped_rows"] == 1


class TestTakeValidation:
    def test_verdicts_match_scalar_is_affected_by(self):
        planner = TickPlanner(Kernels("numpy"))
        q_in = RangeQuery(Rect(0.2, 0.2, 0.6, 0.6), query_id="rin")
        q_out = RangeQuery(Rect(0.8, 0.8, 0.9, 0.9), query_id="rout")
        pos, prev = Point(0.3, 0.3), Point(0.1, 0.1)
        plan = _plan_one(planner, "a", pos, prev, [q_in, q_out])
        taken = plan.take_affected("a", pos, prev, _StubGrid({3: 0}))
        assert taken is not None
        ordered, hits, kverdicts = taken
        assert ordered == (q_in, q_out)
        assert kverdicts == []
        # Only the affected query appears in the delta; its payload is
        # the new-position containment ``reevaluate_range`` consumes.
        assert q_in.is_affected_by(pos, prev)
        assert not q_out.is_affected_by(pos, prev)
        assert hits == [(q_in, q_in.rect.contains_point(pos))]

    def test_knn_gates_match_scalar_quarantine(self):
        planner = TickPlanner(Kernels("numpy"))
        q_near = KNNQuery(Point(0.3, 0.3), 2, query_id="knear")
        q_near.radius = 0.2
        q_far = KNNQuery(Point(0.9, 0.9), 2, query_id="kfar")
        q_far.radius = 0.05
        pos, prev = Point(0.35, 0.3), Point(0.1, 0.1)
        plan = _plan_one(planner, "a", pos, prev, [q_far, q_near])
        taken = plan.take_affected("a", pos, prev, _StubGrid({3: 0}))
        assert taken is not None
        ordered, hits, kverdicts = taken
        assert hits == []
        # Every plain kNN candidate gets a gate row (candidate order),
        # carrying the radius it was planned against.
        assert [(q, hit, rad) for q, hit, _, rad in kverdicts] == [
            (q_far, q_far.is_affected_by(pos, prev), q_far.radius),
            (q_near, q_near.is_affected_by(pos, prev), q_near.radius),
        ]
        for q, _, (in_new, in_old), _ in kverdicts:
            assert in_new == q.quarantine_contains(pos)
            assert in_old == q.quarantine_contains(prev)

    def test_entries_pop_once(self):
        planner = TickPlanner(Kernels("numpy"))
        q = RangeQuery(Rect(0.2, 0.2, 0.6, 0.6), query_id="r0")
        pos, prev = Point(0.3, 0.3), Point(0.1, 0.1)
        plan = _plan_one(planner, "a", pos, prev, [q])
        grid = _StubGrid({3: 0})
        assert plan.take_affected("a", pos, prev, grid) is not None
        assert plan.take_affected("a", pos, prev, grid) is None

    def test_position_identity_not_equality(self):
        planner = TickPlanner(Kernels("numpy"))
        q = RangeQuery(Rect(0.2, 0.2, 0.6, 0.6), query_id="r0")
        pos, prev = Point(0.3, 0.3), Point(0.1, 0.1)
        plan = _plan_one(planner, "a", pos, prev, [q])
        # An equal but distinct Point means an interleaved op rewrote
        # the state — the entry must be rejected, not resold.
        assert plan.take_affected(
            "a", Point(0.3, 0.3), prev, _StubGrid({3: 0})
        ) is None

    def test_stale_generation_rejects(self):
        planner = TickPlanner(Kernels("numpy"))
        q = RangeQuery(Rect(0.2, 0.2, 0.6, 0.6), query_id="r0")
        pos, prev = Point(0.3, 0.3), Point(0.1, 0.1)
        plan = _plan_one(
            planner, "a", pos, prev, [q], cells=(3,), generations=(0,)
        )
        # A quarantine move bumped the cell's generation after planning.
        assert plan.take_affected("a", pos, prev, _StubGrid({3: 1})) is None

    def test_region_matches_unplanned_staircase(self):
        planner = TickPlanner(Kernels("numpy"))
        p = Point(0.41, 0.37)
        cell = Rect(0.25, 0.25, 0.5, 0.5)
        obstacles = [
            Rect(0.30, 0.30, 0.35, 0.35),
            Rect(0.44, 0.40, 0.48, 0.49),
        ]
        queries = [
            RangeQuery(r, query_id=f"r{i}")
            for i, r in enumerate(obstacles)
        ]
        planner.begin()
        cols = planner.obstacle_columns(7, 0, queries)
        planner.add_region("a", p, 7, cell, quadrant_extents(p, cell), cols)
        plan = planner.finish()
        taken = plan.take_range_region("a", p, 7)
        assert taken is not None
        n_obstacles, region = taken
        assert n_obstacles == len(obstacles)
        assert region == batch_range_safe_region(p, cell, obstacles, None)
        # Wrong cell id (a mid-tick move) rejects; entries pop once.
        assert plan.take_range_region("a", p, 8) is None
        assert plan.take_range_region("a", p, 7) is None

    def test_contained_obstacles_are_dropped_in_kernel(self):
        # The resident obstacle columns include every eligible rect of
        # the cell; the containment exclusion moves into the dispatch.
        planner = TickPlanner(Kernels("numpy"))
        p = Point(0.41, 0.37)
        cell = Rect(0.25, 0.25, 0.5, 0.5)
        around_p = Rect(0.40, 0.30, 0.45, 0.40)  # contains p
        blocker = Rect(0.30, 0.30, 0.35, 0.35)
        queries = [
            RangeQuery(around_p, query_id="rc"),
            RangeQuery(blocker, query_id="rb"),
        ]
        planner.begin()
        cols = planner.obstacle_columns(7, 0, queries)
        assert cols.n == 2
        planner.add_region("a", p, 7, cell, quadrant_extents(p, cell), cols)
        plan = planner.finish()
        n_obstacles, region = plan.take_range_region("a", p, 7)
        assert n_obstacles == 1
        assert region == batch_range_safe_region(p, cell, [blocker], None)

    def test_obstacle_columns_cache_by_generation(self):
        planner = TickPlanner(Kernels("numpy"))
        q = RangeQuery(Rect(0.3, 0.3, 0.4, 0.4), query_id="r0")
        cols = planner.obstacle_columns(5, 3, [q])
        assert planner.obstacle_columns(5, 3, [q]) is cols
        q2 = RangeQuery(Rect(0.6, 0.6, 0.7, 0.7), query_id="r1")
        fresh = planner.obstacle_columns(5, 4, [q, q2])
        assert fresh is not cols and fresh.n == 2


def _world(events=None, metrics=None):
    rng = random.Random(11)
    live = {
        f"o{i}": Point(rng.random(), rng.random()) for i in range(40)
    }
    server = DatabaseServer(
        lambda oid: live[oid], ServerConfig(grid_m=5),
        metrics=metrics, events=events,
    )
    server.load_objects(live.items())
    server.register_query(
        RangeQuery(Rect(0.1, 0.1, 0.6, 0.6), query_id="r0"), time=0.0
    )
    server.register_query(
        KNNQuery(Point(0.5, 0.5), 3, query_id="k0"), time=0.0
    )
    return live, server, rng


def _batches(live, rng, ticks=6, movers=12):
    out = []
    for _ in range(ticks):
        batch = []
        for oid in rng.sample(sorted(live), movers):
            p = live[oid]
            q = Point(
                min(max(p.x + rng.gauss(0.0, 0.05), 0.0), 1.0),
                min(max(p.y + rng.gauss(0.0, 0.05), 0.0), 1.0),
            )
            live[oid] = q
            batch.append((oid, q))
        out.append(batch)
    return out


class TestBulkGating:
    def test_batches_plan_when_cleanly_orderable(self):
        registry = MetricsRegistry()
        live, server, rng = _world(metrics=registry)
        clock = 0.0
        for batch in _batches(live, rng):
            clock += 1.0
            server.handle_location_updates(batch, time=clock)
        counters = registry.to_dict()["counters"]
        assert counters["kernels.planner.plans"] > 0
        assert counters["kernels.planner.rows_gathered"] > 0

    def test_enabled_event_stream_disables_planning(self):
        # The event stream documents per-report causality; the bulk
        # pipeline elides per-report scaffolding, so it must stand down.
        registry = MetricsRegistry()
        events = EventLog()
        live, server, rng = _world(events=events, metrics=registry)
        clock = 0.0
        for batch in _batches(live, rng):
            clock += 1.0
            server.handle_location_updates(batch, time=clock)
        counters = registry.to_dict()["counters"]
        assert counters.get("kernels.planner.plans", 0) == 0


class TestPlannedTickContext:
    def test_installs_and_clears_the_plan(self):
        live, server, rng = _world()
        # A report into a query-holding cell always has plannable work.
        oid = sorted(live)[0]
        with server.planned_tick([(oid, Point(0.3, 0.3))], time=1.0):
            assert server._tick_plan is not None
        assert server._tick_plan is None

    def test_duplicate_ids_skip_planning(self):
        live, server, rng = _world()
        oid = sorted(live)[0]
        reports = [(oid, Point(0.3, 0.3)), (oid, Point(0.4, 0.4))]
        with server.planned_tick(reports, time=1.0):
            assert server._tick_plan is None

    def test_non_monotone_time_skips_planning(self):
        live, server, rng = _world()
        reports = _batches(live, rng, ticks=1)[0]
        server.handle_location_updates([], time=5.0)
        server._clock = 5.0
        with server.planned_tick(reports, time=1.0):
            assert server._tick_plan is None

    def test_per_op_replay_matches_unplanned(self):
        """Driving reports one by one under ``planned_tick`` is
        bit-identical to the plain sequential path — the guarantee the
        sharded backend's op-stream batching rests on."""
        live_a, server_a, _ = _world()
        live_b, server_b, _ = _world()
        # One shared update stream, generated apart from both oracles so
        # each server sees positions advance tick by tick.
        plan_live = dict(live_a)
        batches = _batches(plan_live, random.Random(99))
        clock = 0.0
        for batch in batches:
            clock += 1.0
            live_a.update(batch)
            live_b.update(batch)
            outcomes_a = []
            with server_a.planned_tick(batch, time=clock):
                for oid, p in batch:
                    outcomes_a.append(
                        server_a.handle_location_update(oid, p, clock)
                    )
            outcomes_b = [
                server_b.handle_location_update(oid, p, clock)
                for oid, p in batch
            ]
            for oa, ob in zip(outcomes_a, outcomes_b):
                assert oa.safe_region == ob.safe_region
                assert oa.probed == ob.probed
                assert [
                    (c.query_id, c.old, c.new) for c in oa.changes
                ] == [(c.query_id, c.old, c.new) for c in ob.changes]
        snap_a = {
            q.query_id: q.result_snapshot() for q in server_a.queries()
        }
        snap_b = {
            q.query_id: q.result_snapshot() for q in server_b.queries()
        }
        assert snap_a == snap_b
        assert (
            server_a.stats.queries_checked
            == server_b.stats.queries_checked
        )
