"""Unit tests for the tick-wide kernel planner (repro.kernels.planner).

The planner is the gather → dispatch → scatter pipeline behind
``DatabaseServer.handle_location_updates`` (docs/PERFORMANCE.md).  These
tests pin its contract pieces in isolation: the ``kernels.planner.*``
counters, the take-time validation that keeps planned and unplanned
executions bit-identical, the bulk-path gating (an enabled event stream
must disable planning entirely), and the public ``planned_tick``
context manager the sharded backend drives per-op streams through.
"""

from __future__ import annotations

import random

from repro.core import DatabaseServer, KNNQuery, RangeQuery, ServerConfig
from repro.core.batch import batch_range_safe_region, quadrant_extents
from repro.geometry import Point, Rect
from repro.kernels import Kernels, TickPlanner
from repro.obs import EventLog, MetricsRegistry


class _StubGrid:
    """Just enough grid for ``TickPlan.take_affected`` validation."""

    def __init__(self, generations):
        self._generations = dict(generations)

    def cell_generation(self, cell):
        return self._generations.get(cell, 0)


def _plan_one(planner, oid, position, previous, queries,
              cells=(3,), generations=(0,)):
    planner.begin()
    planner.add_affected(
        oid, position, previous, tuple(queries), list(queries),
        cells, generations,
    )
    return planner.finish()


class TestPlannerCounters:
    def test_counts_plans_rows_and_dispatches(self):
        registry = MetricsRegistry()
        planner = TickPlanner(Kernels("numpy"), metrics=registry)
        q = RangeQuery(Rect(0.2, 0.2, 0.6, 0.6), query_id="r0")
        _plan_one(planner, "a", Point(0.3, 0.3), Point(0.1, 0.1), [q])
        counters = registry.to_dict()["counters"]
        assert counters["kernels.planner.plans"] == 1
        assert counters["kernels.planner.rows_gathered"] == 1
        assert counters["kernels.planner.dispatches"] == 1

    def test_region_work_is_a_second_dispatch(self):
        registry = MetricsRegistry()
        planner = TickPlanner(Kernels("numpy"), metrics=registry)
        q = RangeQuery(Rect(0.5, 0.5, 0.7, 0.7), query_id="r0")
        p = Point(0.2, 0.2)
        cell = Rect(0.0, 0.0, 1.0, 1.0)
        planner.begin()
        planner.add_affected(
            "a", p, Point(0.1, 0.1), (q,), [q], (0,), (0,)
        )
        planner.add_region(
            "a", p, 0, cell, quadrant_extents(p, cell), [q.rect]
        )
        planner.finish()
        counters = registry.to_dict()["counters"]
        assert counters["kernels.planner.dispatches"] == 2
        # 1 affected row + 4 quadrants x 1 obstacle corner rows.
        assert counters["kernels.planner.rows_gathered"] == 5


class TestTakeValidation:
    def test_verdicts_match_scalar_is_affected_by(self):
        planner = TickPlanner(Kernels("numpy"))
        q_in = RangeQuery(Rect(0.2, 0.2, 0.6, 0.6), query_id="rin")
        q_out = RangeQuery(Rect(0.8, 0.8, 0.9, 0.9), query_id="rout")
        pos, prev = Point(0.3, 0.3), Point(0.1, 0.1)
        plan = _plan_one(planner, "a", pos, prev, [q_in, q_out])
        taken = plan.take_affected("a", pos, prev, _StubGrid({3: 0}))
        assert taken is not None
        ordered, verdicts = taken
        assert ordered == (q_in, q_out)
        for q in (q_in, q_out):
            affected, inside = verdicts[q.query_id]
            assert affected == q.is_affected_by(pos, prev)
            assert inside == q.rect.contains_point(pos)

    def test_entries_pop_once(self):
        planner = TickPlanner(Kernels("numpy"))
        q = RangeQuery(Rect(0.2, 0.2, 0.6, 0.6), query_id="r0")
        pos, prev = Point(0.3, 0.3), Point(0.1, 0.1)
        plan = _plan_one(planner, "a", pos, prev, [q])
        grid = _StubGrid({3: 0})
        assert plan.take_affected("a", pos, prev, grid) is not None
        assert plan.take_affected("a", pos, prev, grid) is None

    def test_position_identity_not_equality(self):
        planner = TickPlanner(Kernels("numpy"))
        q = RangeQuery(Rect(0.2, 0.2, 0.6, 0.6), query_id="r0")
        pos, prev = Point(0.3, 0.3), Point(0.1, 0.1)
        plan = _plan_one(planner, "a", pos, prev, [q])
        # An equal but distinct Point means an interleaved op rewrote
        # the state — the entry must be rejected, not resold.
        assert plan.take_affected(
            "a", Point(0.3, 0.3), prev, _StubGrid({3: 0})
        ) is None

    def test_stale_generation_rejects(self):
        planner = TickPlanner(Kernels("numpy"))
        q = RangeQuery(Rect(0.2, 0.2, 0.6, 0.6), query_id="r0")
        pos, prev = Point(0.3, 0.3), Point(0.1, 0.1)
        plan = _plan_one(
            planner, "a", pos, prev, [q], cells=(3,), generations=(0,)
        )
        # A quarantine move bumped the cell's generation after planning.
        assert plan.take_affected("a", pos, prev, _StubGrid({3: 1})) is None

    def test_region_matches_unplanned_staircase(self):
        planner = TickPlanner(Kernels("numpy"))
        p = Point(0.41, 0.37)
        cell = Rect(0.25, 0.25, 0.5, 0.5)
        obstacles = [
            Rect(0.30, 0.30, 0.35, 0.35),
            Rect(0.44, 0.40, 0.48, 0.49),
        ]
        planner.begin()
        planner.add_region(
            "a", p, 7, cell, quadrant_extents(p, cell), obstacles
        )
        plan = planner.finish()
        taken = plan.take_range_region("a", p, 7)
        assert taken is not None
        n_obstacles, region = taken
        assert n_obstacles == len(obstacles)
        assert region == batch_range_safe_region(p, cell, obstacles, None)
        # Wrong cell id (a mid-tick move) rejects; entries pop once.
        assert plan.take_range_region("a", p, 8) is None
        assert plan.take_range_region("a", p, 7) is None


def _world(events=None, metrics=None):
    rng = random.Random(11)
    live = {
        f"o{i}": Point(rng.random(), rng.random()) for i in range(40)
    }
    server = DatabaseServer(
        lambda oid: live[oid], ServerConfig(grid_m=5),
        metrics=metrics, events=events,
    )
    server.load_objects(live.items())
    server.register_query(
        RangeQuery(Rect(0.1, 0.1, 0.6, 0.6), query_id="r0"), time=0.0
    )
    server.register_query(
        KNNQuery(Point(0.5, 0.5), 3, query_id="k0"), time=0.0
    )
    return live, server, rng


def _batches(live, rng, ticks=6, movers=12):
    out = []
    for _ in range(ticks):
        batch = []
        for oid in rng.sample(sorted(live), movers):
            p = live[oid]
            q = Point(
                min(max(p.x + rng.gauss(0.0, 0.05), 0.0), 1.0),
                min(max(p.y + rng.gauss(0.0, 0.05), 0.0), 1.0),
            )
            live[oid] = q
            batch.append((oid, q))
        out.append(batch)
    return out


class TestBulkGating:
    def test_batches_plan_when_cleanly_orderable(self):
        registry = MetricsRegistry()
        live, server, rng = _world(metrics=registry)
        clock = 0.0
        for batch in _batches(live, rng):
            clock += 1.0
            server.handle_location_updates(batch, time=clock)
        counters = registry.to_dict()["counters"]
        assert counters["kernels.planner.plans"] > 0
        assert counters["kernels.planner.rows_gathered"] > 0

    def test_enabled_event_stream_disables_planning(self):
        # The event stream documents per-report causality; the bulk
        # pipeline elides per-report scaffolding, so it must stand down.
        registry = MetricsRegistry()
        events = EventLog()
        live, server, rng = _world(events=events, metrics=registry)
        clock = 0.0
        for batch in _batches(live, rng):
            clock += 1.0
            server.handle_location_updates(batch, time=clock)
        counters = registry.to_dict()["counters"]
        assert counters.get("kernels.planner.plans", 0) == 0


class TestPlannedTickContext:
    def test_installs_and_clears_the_plan(self):
        live, server, rng = _world()
        # A report into a query-holding cell always has plannable work.
        oid = sorted(live)[0]
        with server.planned_tick([(oid, Point(0.3, 0.3))], time=1.0):
            assert server._tick_plan is not None
        assert server._tick_plan is None

    def test_duplicate_ids_skip_planning(self):
        live, server, rng = _world()
        oid = sorted(live)[0]
        reports = [(oid, Point(0.3, 0.3)), (oid, Point(0.4, 0.4))]
        with server.planned_tick(reports, time=1.0):
            assert server._tick_plan is None

    def test_non_monotone_time_skips_planning(self):
        live, server, rng = _world()
        reports = _batches(live, rng, ticks=1)[0]
        server.handle_location_updates([], time=5.0)
        server._clock = 5.0
        with server.planned_tick(reports, time=1.0):
            assert server._tick_plan is None

    def test_per_op_replay_matches_unplanned(self):
        """Driving reports one by one under ``planned_tick`` is
        bit-identical to the plain sequential path — the guarantee the
        sharded backend's op-stream batching rests on."""
        live_a, server_a, _ = _world()
        live_b, server_b, _ = _world()
        # One shared update stream, generated apart from both oracles so
        # each server sees positions advance tick by tick.
        plan_live = dict(live_a)
        batches = _batches(plan_live, random.Random(99))
        clock = 0.0
        for batch in batches:
            clock += 1.0
            live_a.update(batch)
            live_b.update(batch)
            outcomes_a = []
            with server_a.planned_tick(batch, time=clock):
                for oid, p in batch:
                    outcomes_a.append(
                        server_a.handle_location_update(oid, p, clock)
                    )
            outcomes_b = [
                server_b.handle_location_update(oid, p, clock)
                for oid, p in batch
            ]
            for oa, ob in zip(outcomes_a, outcomes_b):
                assert oa.safe_region == ob.safe_region
                assert oa.probed == ob.probed
                assert [
                    (c.query_id, c.old, c.new) for c in oa.changes
                ] == [(c.query_id, c.old, c.new) for c in ob.changes]
        snap_a = {
            q.query_id: q.result_snapshot() for q in server_a.queries()
        }
        snap_b = {
            q.query_id: q.result_snapshot() for q in server_b.queries()
        }
        assert snap_a == snap_b
        assert (
            server_a.stats.queries_checked
            == server_b.stats.queries_checked
        )
