"""Tests for the Ir-lp constructions of Section 5.2."""

import math

import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.core.irlp import (
    interior_margin,
    irlp_circle,
    irlp_circle_complement,
    irlp_ring,
    maximize_theta,
)
from repro.geometry import Circle, Point, Rect, Ring

UNIT = Rect(0.0, 0.0, 1.0, 1.0)

unit_floats = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
angles = st.floats(min_value=0.0, max_value=2 * math.pi, allow_nan=False)


def rect_in_circle(rect: Rect, circle: Circle, eps=1e-9) -> bool:
    return rect.max_dist_to_point(circle.center) <= circle.radius + eps


def rect_avoids_circle(rect: Rect, circle: Circle, eps=1e-9) -> bool:
    return rect.min_dist_to_point(circle.center) >= circle.radius - eps


class TestIrlpCircle:
    def test_centered_point_gives_square(self):
        circle = Circle(Point(0.5, 0.5), 0.2)
        rect = irlp_circle(circle, Point(0.5, 0.5))
        # Unconstrained optimum is the inscribed square (theta = pi/4).
        assert rect.width == pytest.approx(rect.height, rel=1e-6)
        assert rect.perimeter == pytest.approx(8 * 0.2 / math.sqrt(2), rel=1e-6)

    def test_zero_radius(self):
        circle = Circle(Point(0.3, 0.3), 0.0)
        assert irlp_circle(circle, Point(0.3, 0.3)) == Rect.from_point(Point(0.3, 0.3))

    def test_contains_p_and_inscribed(self):
        circle = Circle(Point(0.5, 0.5), 0.25)
        p = Point(0.62, 0.41)
        rect = irlp_circle(circle, p)
        assert rect.contains_point(p, eps=1e-9)
        assert rect_in_circle(rect, circle)

    def test_interior_margin_positive_for_interior_p(self):
        circle = Circle(Point(0.5, 0.5), 0.25)
        p = Point(0.6, 0.55)
        rect = irlp_circle(circle, p)
        assert interior_margin(rect, p) > 0

    @given(
        st.floats(min_value=0.05, max_value=0.4),
        st.floats(min_value=0.0, max_value=0.99),
        angles,
    )
    def test_property_contains_and_inscribed(self, radius, rho, phi):
        circle = Circle(Point(0.5, 0.5), radius)
        p = Point(
            0.5 + rho * radius * math.cos(phi),
            0.5 + rho * radius * math.sin(phi),
        )
        rect = irlp_circle(circle, p)
        assert rect.contains_point(p, eps=1e-9)
        assert rect_in_circle(rect, circle)

    @given(
        st.floats(min_value=0.05, max_value=0.4),
        st.floats(min_value=0.0, max_value=0.7),
        angles,
    )
    def test_property_margin_scales_with_clearance(self, radius, rho, phi):
        """For p well inside the disk the rectangle holds p strictly."""
        circle = Circle(Point(0.5, 0.5), radius)
        p = Point(
            0.5 + rho * radius * math.cos(phi),
            0.5 + rho * radius * math.sin(phi),
        )
        rect = irlp_circle(circle, p)
        assert interior_margin(rect, p) > 0.0

    def test_near_optimal_perimeter(self):
        """The closed form is within the nudge factor of the true optimum."""
        circle = Circle(Point(0.5, 0.5), 0.2)
        p = Point(0.58, 0.43)
        rect = irlp_circle(circle, p)
        best = 0.0
        r = circle.radius
        for i in range(2000):
            theta = (i + 0.5) / 2000 * (math.pi / 2)
            cand = Rect.from_center(
                circle.center, r * math.sin(theta), r * math.cos(theta)
            )
            if cand.contains_point(p):
                best = max(best, cand.perimeter)
        assert rect.perimeter >= 0.85 * best


class TestIrlpComplement:
    def test_p_far_from_circle_gets_large_rect(self):
        circle = Circle(Point(0.2, 0.2), 0.1)
        p = Point(0.8, 0.8)
        rect = irlp_circle_complement(circle, p, UNIT)
        assert rect.contains_point(p, eps=1e-9)
        assert rect_avoids_circle(rect, circle)
        assert rect.perimeter > 1.0  # most of the cell

    def test_zero_radius_returns_cell(self):
        circle = Circle(Point(0.5, 0.5), 0.0)
        assert irlp_circle_complement(circle, Point(0.7, 0.7), UNIT) == UNIT

    def test_result_clipped_to_cell(self):
        circle = Circle(Point(0.5, 0.5), 0.3)
        cell = Rect(0.0, 0.0, 0.5, 0.5)
        p = Point(0.1, 0.1)
        rect = irlp_circle_complement(circle, p, cell)
        assert cell.contains_rect(rect)
        assert rect.contains_point(p, eps=1e-9)

    @given(
        st.floats(min_value=0.05, max_value=0.3),
        st.floats(min_value=1.001, max_value=3.0),
        angles,
        unit_floats,
        unit_floats,
    )
    @settings(max_examples=200)
    def test_property_contains_avoids(self, radius, rho, phi, cx, cy):
        center = Point(0.2 + 0.6 * cx, 0.2 + 0.6 * cy)
        circle = Circle(center, radius)
        p = Point(
            center.x + rho * radius * math.cos(phi),
            center.y + rho * radius * math.sin(phi),
        )
        assume(UNIT.contains_point(p))
        rect = irlp_circle_complement(circle, p, UNIT)
        assert rect.contains_point(p, eps=1e-9)
        assert rect_avoids_circle(rect, circle)
        assert UNIT.contains_rect(rect)

    def test_strict_interior_for_clear_p(self):
        circle = Circle(Point(0.3, 0.3), 0.1)
        p = Point(0.5, 0.5)
        rect = irlp_circle_complement(circle, p, UNIT)
        assert interior_margin(rect, p) > 0.01


class TestIrlpRing:
    def test_dispatch_disk(self):
        ring = Ring(Point(0.5, 0.5), 0.0, 0.2)
        p = Point(0.55, 0.5)
        rect = irlp_ring(ring, p, UNIT)
        assert rect.contains_point(p, eps=1e-9)
        assert rect_in_circle(rect, ring.outer_circle())

    def test_dispatch_complement(self):
        ring = Ring(Point(0.5, 0.5), 0.2, float("inf"))
        p = Point(0.9, 0.9)
        rect = irlp_ring(ring, p, UNIT)
        assert rect.contains_point(p, eps=1e-9)
        assert rect_avoids_circle(rect, ring.inner_circle())

    def test_axis_position_uses_tangent_layout(self):
        """p straight above the centre: the wide tangent layout applies."""
        ring = Ring(Point(0.5, 0.5), 0.1, 0.3)
        p = Point(0.5, 0.75)
        rect = irlp_ring(ring, p, UNIT)
        assert rect.contains_point(p, eps=1e-9)
        assert rect.width > 0.15  # tangentially wide

    def test_corner_shadow_position(self):
        """Diagonal p inside the inner circle's bounding box corner region."""
        ring = Ring(Point(0.5, 0.5), 0.2, 0.3)
        d = 0.22 / math.sqrt(2)
        p = Point(0.5 + d, 0.5 + d)
        assert ring.contains_point(p)
        rect = irlp_ring(ring, p, UNIT)
        assert rect.contains_point(p, eps=1e-9)
        assert rect.min_dist_to_point(ring.center) >= ring.inner - 1e-9
        assert rect.max_dist_to_point(ring.center) <= ring.outer + 1e-9

    def test_mid_ring_margin_scales_with_slack(self):
        """An object mid-ring must not get a sliver (storm regression)."""
        ring = Ring(Point(0.0, 0.0), 0.2, 0.26)
        d = 0.23
        p = Point(d * math.sin(0.65), d * math.cos(0.65))
        rect = irlp_ring(ring, p, Rect(-1, -1, 1, 1))
        # Radial slack is 0.03 both ways; the chosen rectangle may trade
        # margin for perimeter (Theorem 5.1), but must never be a sliver.
        assert interior_margin(rect, p) > 0.001

    @given(
        st.floats(min_value=0.05, max_value=0.25),
        st.floats(min_value=0.01, max_value=0.2),
        st.floats(min_value=0.001, max_value=0.999),
        angles,
    )
    @settings(max_examples=200)
    def test_property_valid_ring_rect(self, inner, width, frac, phi):
        ring = Ring(Point(0.5, 0.5), inner, inner + width)
        d = inner + frac * width
        p = Point(
            0.5 + d * math.cos(phi),
            0.5 + d * math.sin(phi),
        )
        cell = Rect(-0.5, -0.5, 1.5, 1.5)
        rect = irlp_ring(ring, p, cell)
        assert rect.contains_point(p, eps=1e-9)
        assert rect.min_dist_to_point(ring.center) >= ring.inner - 1e-9
        assert rect.max_dist_to_point(ring.center) <= ring.outer + 1e-9

    def test_degenerate_ring_returns_point_like(self):
        ring = Ring(Point(0.5, 0.5), 0.2, 0.2)
        p = Point(0.7, 0.5)
        rect = irlp_ring(ring, p, UNIT)
        assert rect.contains_point(p, eps=1e-9)


class TestMaximizeTheta:
    def test_finds_interior_maximum(self):
        # Perimeter of an inscribed rect peaks at pi/4.
        circle = Circle(Point(0.0, 0.0), 1.0)

        def build(theta):
            return Rect.from_center(
                circle.center, math.sin(theta), math.cos(theta)
            )

        rect = maximize_theta(build, 0.0, math.pi / 2, lambda r: r.perimeter)
        assert rect.perimeter == pytest.approx(8 / math.sqrt(2), rel=1e-3)

    def test_monotone_objective_picks_endpoint(self):
        def build(theta):
            return Rect(0, 0, max(theta, 1e-9), 1)

        rect = maximize_theta(build, 0.1, 0.9, lambda r: r.width)
        assert rect.width == pytest.approx(0.9, abs=1e-3)

    def test_inverted_range_collapses(self):
        def build(theta):
            return Rect(0, 0, 1, 1)

        rect = maximize_theta(build, 0.5, 0.2, lambda r: r.perimeter)
        assert rect == Rect(0, 0, 1, 1)


class TestInteriorMargin:
    def test_center(self):
        assert interior_margin(Rect(0, 0, 2, 2), Point(1, 1)) == 1.0

    def test_on_face(self):
        assert interior_margin(Rect(0, 0, 2, 2), Point(0, 1)) == 0.0

    def test_outside_negative(self):
        assert interior_margin(Rect(0, 0, 2, 2), Point(-1, 1)) == -1.0
