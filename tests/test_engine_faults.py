"""End-to-end fault injection through the simulator (docs/ROBUSTNESS.md)."""

import pytest

from repro.obs import EventLog, diagnose
from repro.simulation import Scenario, SRBSimulation

LOSSY = "drop=0.05,dup=0.02,delay=2"


def small_scenario(**overrides):
    base = Scenario(
        num_objects=120,
        num_queries=12,
        duration=2.0,
        seed=3,
    )
    return base.with_overrides(**overrides)


def run(scenario, events=None):
    sim = SRBSimulation(scenario, events=events)
    report = sim.run()
    return sim, report


def result_row(report):
    """A report row minus CPU timing — the deterministic fields."""
    return {k: v for k, v in report.row().items() if k != "cpu_s_per_time"}


class TestFaultedRuns:
    def test_reliable_run_unchanged_by_the_fault_machinery(self):
        """fault_spec=None must reproduce the pre-faults engine exactly:
        same costs, same accuracy, no fault extras."""
        _, report = run(small_scenario())
        assert "faults" not in report.extras
        _, again = run(small_scenario())
        assert result_row(report) == result_row(again)

    def test_lossy_channel_never_crashes_and_stays_sound(self):
        log = EventLog(capacity=100_000)
        scenario = small_scenario(fault_spec=LOSSY, fault_seed=7)
        sim, report = run(scenario, events=log)
        summary = report.extras["faults"]
        assert summary["uplink"]["dropped"] > 0
        assert summary["uplink"]["sent"] > 0
        # Invariants hold on the full recorded stream.
        diag = diagnose(log.events())
        assert diag.ok, diag.render()
        # Accuracy dips under faults but the system keeps answering.
        assert report.accuracy > 0.5

    def test_faulted_runs_deterministic_for_fixed_seeds(self):
        scenario = small_scenario(fault_spec=LOSSY, fault_seed=7)
        _, a = run(scenario)
        _, b = run(scenario)
        assert result_row(a) == result_row(b)
        assert a.extras["faults"] == b.extras["faults"]

    def test_fault_seed_changes_the_realisation(self):
        _, a = run(small_scenario(fault_spec=LOSSY, fault_seed=7))
        _, b = run(small_scenario(fault_spec=LOSSY, fault_seed=8))
        assert a.extras["faults"] != b.extras["faults"]

    def test_probe_timeouts_trigger_retries_and_degradation(self):
        log = EventLog(capacity=100_000)
        scenario = small_scenario(
            fault_spec="probe_timeout=0.5,probe_stale=0.1",
            fault_seed=5,
            num_queries=20,
        )
        sim, report = run(scenario, events=log)
        summary = report.extras["faults"]["server"]
        assert summary["probe_timeouts"] > 0
        # The server survived and the invariants hold — degraded regions
        # are exempt from containment by construction.
        diag = diagnose(log.events())
        assert diag.ok, diag.render()

    def test_degraded_objects_recover(self):
        """Objects degrade under a harsh probe channel but recover via
        their own reports; none should be degraded long after the end."""
        scenario = small_scenario(
            fault_spec="probe_timeout=0.6", fault_seed=2, num_queries=20
        )
        sim, report = run(scenario)
        entries = report.extras["faults"]["server"]["degraded_entries"]
        if entries:
            # Every degraded episode either ended or is younger than the
            # full run duration (no object silenced forever).
            for oid, entered in sim.server.degraded_objects().items():
                assert entered > 0.0

    def test_retransmit_keeps_clients_alive_under_heavy_drop(self):
        """With 30% drop in both directions, the retransmit timer must
        keep every client out of a stuck awaiting state."""
        scenario = small_scenario(fault_spec="drop=0.3", fault_seed=11)
        sim, report = run(scenario)
        stuck = [
            oid for oid, client in sim.clients.items()
            if client.awaiting
        ]
        # Clients mid-round-trip at the horizon are fine; a stuck client
        # would have been awaiting since long before the end.  Bound:
        # nobody has been awaiting longer than the retransmit timeout
        # budget allows (the timer refires every timeout interval).
        assert len(stuck) < len(sim.clients) * 0.2
        assert report.costs.updates > 0

    def test_bad_fault_spec_rejected_at_scenario_construction(self):
        with pytest.raises(ValueError):
            small_scenario(fault_spec="drop=2.0")
        with pytest.raises(ValueError):
            small_scenario(fault_spec="bogus=1")
        with pytest.raises(ValueError):
            small_scenario(fault_spec=LOSSY, retransmit_timeout=-1.0)

    def test_fault_plan_helper(self):
        scenario = small_scenario(fault_spec=LOSSY, fault_seed=4)
        plan = scenario.fault_plan()
        assert plan.drop == 0.05
        assert plan.seed == 4
        assert small_scenario().fault_plan() is None
