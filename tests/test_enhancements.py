"""Tests for the Section 6 enhancements."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.core.enhancements import (
    ReachabilityModel,
    weighted_perimeter,
    weighted_perimeter_objective,
)
from repro.geometry import Point, Rect


class TestReachabilityModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            ReachabilityModel(0.0)
        with pytest.raises(ValueError):
            ReachabilityModel(-1.0)

    def test_circle_grows_with_time(self):
        model = ReachabilityModel(2.0)
        p = Point(0.5, 0.5)
        assert model.circle(p, 1.0, 1.0).radius == 0.0
        assert model.circle(p, 1.0, 1.5).radius == pytest.approx(1.0)

    def test_circle_clamps_clock_skew(self):
        model = ReachabilityModel(2.0)
        assert model.circle(Point(0, 0), 2.0, 1.0).radius == 0.0

    def test_constrain_intersects_bbox(self):
        model = ReachabilityModel(1.0)
        region = Rect(0.0, 0.0, 1.0, 1.0)
        constrained = model.constrain(region, Point(0.5, 0.5), 0.0, 0.1)
        assert constrained == Rect(0.4, 0.4, 0.6, 0.6)

    def test_constrain_is_conservative(self):
        """The constrained region always contains the true position set."""
        model = ReachabilityModel(1.0)
        region = Rect(0.0, 0.0, 1.0, 1.0)
        p_lst = Point(0.2, 0.2)
        constrained = model.constrain(region, p_lst, 0.0, 0.05)
        # Any point within distance 0.05 of p_lst that is inside region
        # must remain inside the constrained rect.
        for angle in range(0, 360, 30):
            candidate = Point(
                p_lst.x + 0.05 * math.cos(math.radians(angle)),
                p_lst.y + 0.05 * math.sin(math.radians(angle)),
            )
            if region.contains_point(candidate):
                assert constrained.contains_point(candidate, eps=1e-12)

    def test_constrain_disjoint_falls_back(self):
        model = ReachabilityModel(1.0)
        region = Rect(0.0, 0.0, 1.0, 1.0)
        constrained = model.constrain(region, Point(5.0, 5.0), 0.0, 0.01)
        assert region.contains_rect(constrained)


class TestWeightedPerimeter:
    def test_validation(self):
        with pytest.raises(ValueError):
            weighted_perimeter(Rect(0, 0, 1, 1), Point(0, 0), Point(1, 1), 1.5)

    def test_zero_steadiness_is_plain_perimeter(self):
        rect = Rect(0, 0, 2, 1)
        assert weighted_perimeter(rect, Point(0.5, 0.5), Point(0, 0.5), 0.0) == 6.0

    def test_no_direction_is_plain_perimeter(self):
        rect = Rect(0, 0, 2, 1)
        p = Point(0.5, 0.5)
        assert weighted_perimeter(rect, p, p, 0.9) == rect.perimeter

    def test_centered_rect_equals_plain(self):
        """When p is at the rectangle centre, lambda_w == lambda."""
        rect = Rect(0, 0, 2, 2)
        value = weighted_perimeter(rect, Point(1, 1), Point(0, 1), 0.5)
        assert value == pytest.approx(rect.perimeter)

    def test_forward_rect_scores_higher(self):
        """A rectangle extending ahead of the motion beats one behind."""
        p, p_lst = Point(0.5, 0.5), Point(0.4, 0.5)  # moving +x
        ahead = Rect(0.45, 0.4, 0.85, 0.6)
        behind = Rect(0.15, 0.4, 0.55, 0.6)
        d = 0.5
        assert weighted_perimeter(ahead, p, p_lst, d) > weighted_perimeter(
            behind, p, p_lst, d
        )
        assert ahead.perimeter == pytest.approx(behind.perimeter)

    def test_bounded_by_extremes(self):
        """lambda_w stays within [(1-D) lambda, (1+D) lambda]."""
        p, p_lst, d = Point(0.5, 0.5), Point(0.3, 0.3), 0.7
        for rect in (
            Rect(0.5, 0.5, 0.9, 0.9),
            Rect(0.1, 0.1, 0.5, 0.5),
            Rect(0.2, 0.4, 0.8, 0.9),
        ):
            lam = rect.perimeter
            value = weighted_perimeter(rect, p, p_lst, d)
            assert (1 - d) * lam - 1e-9 <= value <= (1 + d) * lam + 1e-9

    @given(
        st.floats(min_value=0.0, max_value=1.0),
        st.floats(min_value=0.05, max_value=0.5),
        st.floats(min_value=0.0, max_value=1.0),
        st.floats(min_value=0.0, max_value=1.0),
    )
    def test_property_bounds(self, steadiness, half, cx, cy):
        rect = Rect.from_center(Point(cx, cy), half, half)
        p = Point(0.5, 0.5)
        value = weighted_perimeter(rect, p, Point(0.4, 0.45), steadiness)
        lam = rect.perimeter
        assert (1 - steadiness) * lam - 1e-9 <= value <= (1 + steadiness) * lam + 1e-9

    def test_zero_perimeter(self):
        rect = Rect.from_point(Point(0.5, 0.5))
        assert weighted_perimeter(rect, Point(0.5, 0.5), Point(0.4, 0.4), 0.5) == 0.0


class TestObjectiveFactory:
    def test_disabled_cases_return_none(self):
        p = Point(0.5, 0.5)
        assert weighted_perimeter_objective(p, Point(0.4, 0.4), 0.0) is None
        assert weighted_perimeter_objective(p, None, 0.5) is None
        assert weighted_perimeter_objective(p, p, 0.5) is None

    def test_enabled_returns_callable(self):
        objective = weighted_perimeter_objective(
            Point(0.5, 0.5), Point(0.4, 0.5), 0.5
        )
        assert objective is not None
        rect = Rect(0.45, 0.4, 0.85, 0.6)
        assert objective(rect) == weighted_perimeter(
            rect, Point(0.5, 0.5), Point(0.4, 0.5), 0.5
        )
