"""The hot-path acceleration layer (docs/PERFORMANCE.md).

Three families of guarantees:

* **Equivalence** — with ``enable_caches`` on or off, the server produces
  bit-identical results, outcomes, and operation counters on the same
  report stream.  The caches are a CPU optimisation, never a semantic
  change.
* **Invalidation** — generation stamps advance exactly when a cell's
  relevant-query set changes, so cached views and lazy-recompute
  certificates die the moment a register / deregister / quarantine
  change touches their cell.
* **Elision** — the update fast path really does skip the recompute
  machinery for no-churn traffic (observable through the metrics
  vocabulary), and falls back to the full path the moment a query is
  near.
"""

import random

import pytest

from repro.core import DatabaseServer, KNNQuery, RangeQuery, ServerConfig
from repro.geometry import Point, Rect
from repro.index.grid import GridIndex
from repro.obs import MetricsRegistry


def _stats_tuple(server):
    """Every ServerStats field except the wall-clock one."""
    st = server.stats
    return (
        st.location_updates, st.probes, st.safe_region_pushes,
        st.queries_registered, st.queries_checked,
        st.queries_reevaluated, st.result_changes,
    )


def _outcome_key(outcome):
    return (
        outcome.safe_region,
        sorted(outcome.probed.items()),
        [(c.query_id, c.old, c.new) for c in outcome.changes],
        outcome.queries_checked,
        outcome.queries_reevaluated,
    )


def _drive(enable_caches, seed, ticks=200, n=100, movers=15, batch_every=4):
    """Replay a seeded report stream (with mid-run query churn) end to end."""
    rng = random.Random(seed)
    positions = {
        f"o{i}": Point(rng.random(), rng.random()) for i in range(n)
    }
    server = DatabaseServer(
        lambda oid: positions[oid],
        ServerConfig(grid_m=10, enable_caches=enable_caches, max_speed=0.05),
    )
    server.load_objects(positions.items())
    queries = []
    for i in range(8):
        if i % 2:
            x, y = rng.random() * 0.85, rng.random() * 0.85
            queries.append(RangeQuery(Rect(x, y, x + 0.1, y + 0.1), f"r{i}"))
        else:
            queries.append(
                KNNQuery(Point(rng.random(), rng.random()), 3, query_id=f"k{i}")
            )
        server.register_query(queries[-1], time=0.0)
    log = []
    t = 0.0
    for tick in range(ticks):
        t += 1.0
        batch = []
        for oid in rng.sample(sorted(positions), movers):
            p = positions[oid]
            positions[oid] = Point(
                min(max(p.x + rng.gauss(0, 0.01), 0.0), 1.0),
                min(max(p.y + rng.gauss(0, 0.01), 0.0), 1.0),
            )
            batch.append((oid, positions[oid]))
        if tick % batch_every == 0:
            out = server.handle_location_updates(batch, time=t)
            log.append((
                sorted(out.regions.items()),
                [(c.query_id, c.old, c.new) for c in out.changes],
            ))
        else:
            for oid, new in batch:
                log.append(
                    _outcome_key(server.handle_location_update(oid, new, t))
                )
        if tick == 80:  # mid-simulation churn: deregistration...
            server.deregister_query(queries[0])
        if tick == 120:  # ...and late registration invalidate live stamps
            late = KNNQuery(Point(0.4, 0.4), 4, query_id="k-late")
            queries.append(late)
            server.register_query(late, time=t)
    server.validate()
    snapshots = {q.query_id: q.result_snapshot() for q in queries[1:]}
    return log, snapshots, _stats_tuple(server)


class TestEquivalence:
    """Cached and cache-disabled runs are bit-identical (the tentpole pin)."""

    @pytest.mark.parametrize("seed", [7, 8, 9])
    def test_cached_run_identical_to_uncached(self, seed):
        cached = _drive(True, seed)
        uncached = _drive(False, seed)
        assert cached[0] == uncached[0]      # every outcome, every message
        assert cached[1] == uncached[1]      # final result snapshots
        assert cached[2] == uncached[2]      # ServerStats minus cpu_seconds

    def test_batch_api_identical_to_sequential(self):
        rng = random.Random(3)
        positions = {
            f"o{i}": Point(rng.random(), rng.random()) for i in range(60)
        }
        reports = []
        for oid in sorted(positions)[:20]:
            p = positions[oid]
            reports.append((oid, Point(p.x * 0.9 + 0.05, p.y * 0.9 + 0.05)))

        def fresh_server(live):
            server = DatabaseServer(
                lambda oid: live[oid], ServerConfig(grid_m=8)
            )
            server.load_objects(live.items())
            server.register_query(
                RangeQuery(Rect(0.2, 0.2, 0.45, 0.45), "r0"), time=0.0
            )
            server.register_query(
                KNNQuery(Point(0.6, 0.6), 3, query_id="k0"), time=0.0
            )
            return server

        live_a = dict(positions)
        batch_server = fresh_server(live_a)
        grid = batch_server.query_index
        order = sorted(
            enumerate(reports), key=lambda item: (grid.cell_of(item[1][1]), item[0])
        )
        live_a.update(reports)
        batch_out = batch_server.handle_location_updates(reports, time=1.0)

        live_b = dict(positions)
        seq_server = fresh_server(live_b)
        live_b.update(reports)
        expected_regions = {}
        expected_changes = []
        for _, (oid, new) in order:
            out = seq_server.handle_location_update(oid, new, time=1.0)
            expected_regions[oid] = out.safe_region
            expected_regions.update(out.probed)
            expected_changes.extend(
                (c.query_id, c.old, c.new) for c in out.changes
            )

        assert batch_out.regions == expected_regions
        assert [
            (c.query_id, c.old, c.new) for c in batch_out.changes
        ] == expected_changes
        assert _stats_tuple(batch_server) == _stats_tuple(seq_server)


class TestGenerationStamps:
    """Grid generations advance exactly with cell-membership changes."""

    def test_insert_remove_update_bump_generations(self):
        grid = GridIndex(4)
        query = RangeQuery(Rect(0.1, 0.1, 0.3, 0.3), "r0")
        touched = (0, 0)
        untouched = (3, 3)
        assert grid.cell_generation(touched) == 0
        grid.insert(query)
        gen_after_insert = grid.cell_generation(touched)
        assert gen_after_insert > 0
        assert grid.cell_generation(untouched) == 0

        # A quarantine change moving the query to other cells bumps both
        # the cells it left and the cells it entered.
        query.rect = Rect(0.8, 0.8, 0.9, 0.9)
        grid.update(query)
        assert grid.cell_generation(touched) > gen_after_insert
        assert grid.cell_generation((3, 3)) > 0

        gen_before_remove = grid.cell_generation((3, 3))
        grid.remove(query)
        assert grid.cell_generation((3, 3)) > gen_before_remove
        assert not grid.has_queries_in_cell((3, 3))

    def test_cached_views_invalidate_on_membership_change(self):
        grid = GridIndex(4)
        a = RangeQuery(Rect(0.05, 0.05, 0.2, 0.2), "a")
        b = RangeQuery(Rect(0.1, 0.1, 0.22, 0.22), "b")
        grid.insert(a)
        cell = (0, 0)
        assert grid.relevant_queries(cell) == (a,)
        assert grid.queries_in_cell(cell) == {a}
        grid.insert(b)
        assert grid.relevant_queries(cell) == (a, b)
        grid.remove(a)
        assert grid.relevant_queries(cell) == (b,)
        assert grid.queries_in_cell(cell) == {b}
        grid.remove(b)
        assert grid.relevant_queries(cell) == ()
        assert grid.queries_in_cell(cell) == frozenset()

    def test_cache_hits_and_misses_are_counted(self):
        registry = MetricsRegistry()
        grid = GridIndex(4, metrics=registry)
        grid.insert(RangeQuery(Rect(0.05, 0.05, 0.2, 0.2), "a"))
        cell = (0, 0)
        grid.relevant_queries(cell)
        grid.relevant_queries(cell)
        grid.queries_in_cell(cell)
        counters = registry.to_dict()["counters"]
        assert counters["grid.cache.misses"] == 1
        assert counters["grid.cache.hits"] == 2

    def test_occupancy_gauges_track_buckets(self):
        registry = MetricsRegistry()
        grid = GridIndex(4, metrics=registry)
        query = RangeQuery(Rect(0.05, 0.05, 0.2, 0.2), "a")
        grid.insert(query)
        gauges = registry.to_dict()["gauges"]
        assert gauges["grid.occupied_cells"] == 1
        assert gauges["grid.cell_occupancy.mean"] == 1.0
        assert gauges["grid.cell_occupancy.peak"] == 1
        grid.remove(query)
        gauges = registry.to_dict()["gauges"]
        assert gauges["grid.occupied_cells"] == 0
        assert gauges["grid.cell_occupancy.peak"] == 1  # watermark


class TestFastPathElision:
    """The update fast path fires for no-churn traffic and only then."""

    def _server(self):
        self.registry = MetricsRegistry()
        self.positions = {"quiet": Point(0.05, 0.05), "near": Point(0.8, 0.8)}
        server = DatabaseServer(
            lambda oid: self.positions[oid],
            ServerConfig(grid_m=4),
            metrics=self.registry,
        )
        server.load_objects(self.positions.items())
        return server

    def _fastpath_count(self):
        return self.registry.to_dict()["counters"].get(
            "server.update.fastpath", 0
        )

    def _certified_count(self):
        return self.registry.to_dict()["counters"].get(
            "server.update.certified", 0
        )

    def test_same_cell_update_in_query_free_cell_is_elided(self):
        server = self._server()
        cell_rect = server.query_index.cell_rect_of_point(Point(0.05, 0.05))
        out = server.handle_location_update("quiet", Point(0.06, 0.07), 1.0)
        assert self._fastpath_count() == 1
        assert out.safe_region == cell_rect
        assert out.probed == {}
        assert out.changes == []
        server.validate()

    def test_cross_cell_migration_restamps_to_new_cell(self):
        server = self._server()
        new_pos = Point(0.3, 0.05)  # next cell over, also query-free
        new_cell = server.query_index.cell_rect_of_point(new_pos)
        out = server.handle_location_update("quiet", new_pos, 1.0)
        assert self._fastpath_count() == 1
        assert out.safe_region == new_cell
        assert server.safe_region_of("quiet") == new_cell
        # The re-stamped certificate keeps working in the new cell.
        out = server.handle_location_update("quiet", Point(0.31, 0.06), 2.0)
        assert self._fastpath_count() == 2
        assert out.safe_region == new_cell
        server.validate()

    def test_migration_into_query_cell_takes_full_path(self):
        server = self._server()
        query = RangeQuery(Rect(0.3, 0.3, 0.45, 0.45), "r0")
        server.register_query(query, time=0.0)
        out = server.handle_location_update("quiet", Point(0.35, 0.35), 1.0)
        assert self._fastpath_count() == 0
        assert query.results == {"quiet"}
        assert any(c.query_id == "r0" for c in out.changes)
        server.validate()

    def test_registration_invalidates_live_stamp(self):
        server = self._server()
        server.handle_location_update("quiet", Point(0.06, 0.07), 1.0)
        assert self._fastpath_count() == 1
        # A query lands on the quiet object's cell: its stamp must die.
        # The registration's own reevaluation already absorbed the quiet
        # object into the result and granted it the clipped member
        # region plus a delta certificate, so the next in-region report
        # is certified (no reevaluation can be needed while the member
        # stays strictly inside a region contained in the query rect).
        server.register_query(
            RangeQuery(Rect(0.0, 0.0, 0.2, 0.2), "r0"), time=1.0
        )
        assert server.safe_region_of("quiet") != \
            server.query_index.cell_rect_of_point(Point(0.08, 0.08))
        out = server.handle_location_update("quiet", Point(0.08, 0.08), 2.0)
        assert self._fastpath_count() == 2  # delta-certified, not stamped
        assert self._certified_count() == 1
        assert out.queries_checked == 0
        # Leaving the granted region ends the certificate: the full path
        # runs and catches the membership change.
        out = server.handle_location_update("quiet", Point(0.22, 0.08), 3.0)
        assert self._fastpath_count() == 2  # unchanged: full path ran
        assert out.queries_checked >= 1
        assert any(c.query_id == "r0" for c in out.changes)
        server.validate()

    def test_deregistration_restores_elision_after_one_full_pass(self):
        server = self._server()
        query = RangeQuery(Rect(0.0, 0.0, 0.2, 0.2), "r0")
        server.register_query(query, time=0.0)
        server.deregister_query(query)
        # First update after deregistration recomputes (stamp was never
        # set while the query lived there) and re-certifies the cell...
        server.handle_location_update("quiet", Point(0.06, 0.07), 1.0)
        assert self._fastpath_count() == 0
        # ...so the next one is elided again.
        server.handle_location_update("quiet", Point(0.07, 0.06), 2.0)
        assert self._fastpath_count() == 1
        server.validate()

    def test_reachability_shrink_clears_certificate(self):
        registry = MetricsRegistry()
        positions = {"a": Point(0.55, 0.5), "b": Point(0.9, 0.9)}
        server = DatabaseServer(
            lambda oid: positions[oid],
            ServerConfig(grid_m=2, max_speed=0.05),
            metrics=registry,
        )
        server.load_objects(positions.items())
        server.register_query(
            KNNQuery(Point(0.1, 0.1), 1, query_id="k0"), time=0.0
        )
        state = server._objects["a"]
        if state.sr_stamp is not None:
            assert state.safe_region == \
                server.query_index.cell_rect_of_point(state.p_lst)
        # Any object whose region was tightened below its full cell must
        # have lost the full-cell certificate.
        for oid, st in server._objects.items():
            cell = server.query_index.cell_rect_of_point(st.p_lst)
            if st.safe_region != cell:
                assert st.sr_stamp is None, oid
        server.validate()
