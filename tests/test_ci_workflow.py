"""Sanity checks for the GitHub Actions workflow (.github/workflows/ci.yml).

CI cannot test itself before it is merged, so these run under tier-1: the
workflow must stay parseable, keep the documented job set, and — most
importantly — run the tier-1 command *exactly* as ROADMAP.md records it,
so local verification and CI can never drift apart.
"""

import pathlib
import re

import pytest

yaml = pytest.importorskip("yaml")
jsonschema = pytest.importorskip("jsonschema")

ROOT = pathlib.Path(__file__).resolve().parent.parent
WORKFLOW = ROOT / ".github" / "workflows" / "ci.yml"

#: Light structural schema for the subset of the Actions grammar we use.
WORKFLOW_SCHEMA = {
    "type": "object",
    "required": ["name", "jobs"],
    "properties": {
        "name": {"type": "string"},
        "jobs": {
            "type": "object",
            "minProperties": 1,
            "additionalProperties": {
                "type": "object",
                "required": ["runs-on", "steps"],
                "properties": {
                    "runs-on": {"type": "string"},
                    "steps": {
                        "type": "array",
                        "minItems": 1,
                        "items": {
                            "type": "object",
                            "anyOf": [
                                {"required": ["uses"]},
                                {"required": ["run"]},
                            ],
                        },
                    },
                },
            },
        },
    },
}


@pytest.fixture(scope="module")
def workflow():
    return yaml.safe_load(WORKFLOW.read_text())


def test_workflow_parses_and_validates(workflow):
    jsonschema.validate(workflow, WORKFLOW_SCHEMA)
    # YAML 1.1 parses the `on:` trigger key as boolean True.
    triggers = workflow.get("on", workflow.get(True))
    assert triggers is not None
    assert "pull_request" in triggers and "push" in triggers


def test_expected_jobs_present(workflow):
    assert set(workflow["jobs"]) == {
        "lint", "test", "bench-smoke", "bench-hotpath", "bench-kernels",
        "bench-shards", "fault-matrix", "profile-smoke",
    }


def test_concurrency_cancels_superseded_pr_runs(workflow):
    """Follow-up pushes to a PR cancel the superseded run; main never
    cancels, so every merge keeps its full CI record."""
    concurrency = workflow["concurrency"]
    assert "github.ref" in concurrency["group"]
    cancel = str(concurrency["cancel-in-progress"])
    assert "refs/heads/main" in cancel and "!=" in cancel


def test_every_job_caches_pip(workflow):
    """All jobs install from pip, so all jobs must restore the pip cache
    keyed on pyproject.toml."""
    for name, job in workflow["jobs"].items():
        setups = [
            step for step in job["steps"]
            if "setup-python" in step.get("uses", "")
        ]
        assert setups, name
        for step in setups:
            assert step["with"].get("cache") == "pip", name
            assert step["with"].get("cache-dependency-path") == (
                "pyproject.toml"
            ), name


def _runs(job):
    return [step["run"] for step in job["steps"] if "run" in step]


def _uploads(job):
    return [
        step for step in job["steps"]
        if "upload-artifact" in step.get("uses", "")
    ]


def _primary_uploads(job):
    """Unconditional artifact uploads (no ``if:`` guard)."""
    return [step for step in _uploads(job) if "if" not in step]


def test_tier1_command_matches_roadmap(workflow):
    roadmap = (ROOT / "ROADMAP.md").read_text()
    match = re.search(r"\*\*Tier-1 verify:\*\* `([^`]+)`", roadmap)
    assert match, "ROADMAP.md lost its tier-1 verify line"
    tier1 = match.group(1)
    assert tier1 in _runs(workflow["jobs"]["test"])


def test_test_job_covers_both_python_versions(workflow):
    matrix = workflow["jobs"]["test"]["strategy"]["matrix"]
    assert matrix["python-version"] == ["3.11", "3.12"]


def test_lint_job_runs_ruff(workflow):
    runs = _runs(workflow["jobs"]["lint"])
    assert any("ruff check" in run for run in runs)


def test_bench_smoke_uploads_metrics_artifact(workflow):
    job = workflow["jobs"]["bench-smoke"]
    runs = _runs(job)
    assert any("benchmarks/test_scale_smoke.py" in run for run in runs)
    uploads = _primary_uploads(job)
    assert len(uploads) == 1
    # The metrics land in the gitignored scratch dir — bench runs never
    # churn the tracked results/ tree with regenerated side artifacts.
    assert uploads[0]["with"]["path"] == (
        "benchmarks/results/scratch/bench_metrics.json"
    )
    assert uploads[0]["with"]["if-no-files-found"] == "error"


def test_bench_hotpath_runs_smoke_and_uploads_baseline(workflow):
    job = workflow["jobs"]["bench-hotpath"]
    runs = _runs(job)
    assert any(
        "HOTPATH_SMOKE=1" in run
        and "benchmarks/test_hotpath_bench.py" in run
        for run in runs
    )
    uploads = _primary_uploads(job)
    assert len(uploads) == 1
    assert uploads[0]["with"]["path"] == (
        "benchmarks/results/BENCH_hotpath.json"
    )
    assert uploads[0]["with"]["if-no-files-found"] == "error"


def test_bench_kernels_runs_both_backends_and_gates_on_equivalence(workflow):
    job = workflow["jobs"]["bench-kernels"]
    runs = _runs(job)
    assert any(
        "KERNELS_SMOKE=1" in run
        and "benchmarks/test_kernels_bench.py" in run
        for run in runs
    )
    # A dedicated step re-reads the emitted JSON and exits non-zero when
    # the backend A/B diverged — the job cannot go green on a mismatch.
    assert any("d['equivalent']" in run for run in runs)
    # The committed baseline itself is integrity-checked: a full-run
    # artifact with equivalent backends and a scalar-fallback row share
    # under the documented 10% cap.
    assert any(
        "BENCH_kernels_baseline.json" in run
        and "fallback_rows" in run
        and "ratio < 0.10" in run
        for run in runs
    )
    uploads = _primary_uploads(job)
    assert len(uploads) == 1
    assert uploads[0]["with"]["path"] == (
        "benchmarks/results/BENCH_kernels.json"
    )
    assert uploads[0]["with"]["if-no-files-found"] == "error"


def test_bench_shards_pins_equivalence_and_uploads_baseline(workflow):
    job = workflow["jobs"]["bench-shards"]
    runs = _runs(job)
    assert any(
        "SHARDS_SMOKE=1" in run
        and "benchmarks/test_shards_bench.py" in run
        for run in runs
    )
    # A dedicated step re-reads the emitted JSON and exits non-zero when
    # the in-process sharded replay diverged from the single server.
    assert any("d['equivalent']" in run for run in runs)
    uploads = _primary_uploads(job)
    assert len(uploads) == 1
    assert uploads[0]["with"]["path"] == (
        "benchmarks/results/BENCH_shards.json"
    )
    assert uploads[0]["with"]["if-no-files-found"] == "error"


def test_bench_jobs_upload_flight_recorder_on_failure(workflow):
    """Every bench job archives flight-recorder spills when it fails.

    The upload is guarded by ``if: failure()`` (green runs stay light)
    and tolerates absent files — a job can fail before any recorder
    spill exists.
    """
    for name in ("bench-smoke", "bench-hotpath", "bench-kernels",
                 "bench-shards"):
        job = workflow["jobs"][name]
        failure_uploads = [
            step for step in _uploads(job) if step.get("if") == "failure()"
        ]
        assert len(failure_uploads) == 1, name
        upload = failure_uploads[0]["with"]
        assert "flight" in upload["path"], name
        assert upload["if-no-files-found"] == "ignore", name


def test_profile_smoke_covers_both_deployments_and_gates(workflow):
    """The profile-smoke job runs ``repro profile`` single-server *and*
    sharded (exercising cross-process aggregation), verifies both phase
    budgets close via ``benchmarks/profile_gate.py``, gates bit-identity
    plus enabled-mode overhead, and archives the folded-stack artifacts
    unconditionally (docs/OBSERVABILITY.md)."""
    job = workflow["jobs"]["profile-smoke"]
    runs = _runs(job)
    profile_runs = [run for run in runs if "repro profile" in run]
    assert len(profile_runs) == 2
    assert any("--shards 2" in run for run in profile_runs)
    assert all("--folded-out" in run for run in profile_runs)
    assert all("--profile-out" in run for run in profile_runs)
    # Structural verification covers both reports, with the sharded one
    # required to carry a per-shard sub-report for each of the 2 shards.
    verify = [run for run in runs if "profile_gate.py verify" in run]
    assert verify and any("--shards 2" in run for run in verify)
    # The contract gate: bit-identical disabled-mode output and < 5%
    # enabled-mode CPU overhead on the same scenario.
    assert any(
        "profile_gate.py gate" in run and "--threshold 0.05" in run
        for run in runs
    )
    uploads = _primary_uploads(job)
    assert len(uploads) == 1
    assert "folded" in uploads[0]["with"]["path"]
    assert uploads[0]["with"]["if-no-files-found"] == "error"


def test_fault_matrix_runs_canned_profiles_through_diagnose(workflow):
    """The fault-matrix job drives the simulator under the three canned
    fault profiles and replays each recorder through ``repro diagnose``
    (which exits 1 on invariant violations), archiving the recorder when
    the job fails (docs/ROBUSTNESS.md)."""
    job = workflow["jobs"]["fault-matrix"]
    profiles = job["strategy"]["matrix"]["profile"]
    assert {p["name"] for p in profiles} == {
        "lossy", "dup-reorder", "probe-timeout", "shard-kill",
        "elastic-drill",
    }
    specs = {p["name"]: p["spec"] for p in profiles}
    assert "drop=" in specs["lossy"] and "dup=" in specs["lossy"]
    assert "dup=" in specs["dup-reorder"] and "delay=" in specs["dup-reorder"]
    assert "probe_timeout=" in specs["probe-timeout"]
    # The shard-failure drill runs the same faulted replay sharded and
    # hard-kills one shard mid-run; containment is checked by the same
    # diagnose step (degraded flags exempt the frozen members).
    extras = {p["name"]: p.get("extra", "") for p in profiles}
    assert "--shards" in extras["shard-kill"]
    assert "--kill-shard" in extras["shard-kill"]
    # The elasticity drill grows and shrinks the cluster mid-run with
    # refresh probes on; the reshard_consistency check in the same
    # diagnose step fails the job on any split home table.
    assert "--shards" in extras["elastic-drill"]
    assert "--reshard" in extras["elastic-drill"]
    assert "--refresh-probes" in extras["elastic-drill"]
    runs = _runs(job)
    compare = [i for i, run in enumerate(runs)
               if "repro compare" in run and "--faults" in run
               and "--fault-seed" in run and "--flight-recorder" in run
               and "matrix.profile.extra" in run]
    diagnose = [i for i, run in enumerate(runs)
                if "repro diagnose" in run]
    assert compare and diagnose
    assert compare[0] < diagnose[0], "must record before diagnosing"
    failure_uploads = [
        step for step in _uploads(job) if step.get("if") == "failure()"
    ]
    assert len(failure_uploads) == 1
    assert failure_uploads[0]["with"]["if-no-files-found"] == "ignore"


def test_bench_jobs_gate_throughput_against_stashed_baseline(workflow):
    """Baseline-producing bench jobs stash the committed JSON and gate.

    The benchmark overwrites its committed baseline in place, so the
    job must copy it aside *before* the run and hand both files to
    ``benchmarks/check_regression.py`` afterwards.
    """
    for name, artifact in (
        ("bench-hotpath", "BENCH_hotpath.json"),
        ("bench-kernels", "BENCH_kernels.json"),
        ("bench-shards", "BENCH_shards.json"),
    ):
        runs = _runs(workflow["jobs"][name])
        stash = [
            i for i, run in enumerate(runs)
            if f"cp benchmarks/results/{artifact}" in run
        ]
        gate = [
            i for i, run in enumerate(runs)
            if "check_regression.py" in run and artifact in run
        ]
        assert stash and gate, f"{name} missing stash or gate step"
        assert stash[0] < gate[0], f"{name} must stash before gating"
