"""Regression tests: probed positions are full location reports.

A server-initiated probe can catch an object outside its safe region
(clients detect crossings at a finite polling rate; messages are
delayed).  The probed position may then contradict queries *other* than
the one that issued the probe.  An earlier implementation only repaired
the probing query; the error persisted until the object happened to
report again — observed as range queries stuck at 16% accuracy.  These
tests pin the fix: every probe cascades through affected-query
reevaluation.
"""

import random

from repro.core import DatabaseServer, KNNQuery, RangeQuery, ServerConfig
from repro.geometry import Point, Rect


class LaggyWorld:
    """A world whose clients may drift out of their regions unreported —
    exactly the window in which probes catch stale positions."""

    def __init__(self, seed=0, n=120):
        self.rng = random.Random(seed)
        self.positions = {
            oid: Point(self.rng.random(), self.rng.random()) for oid in range(n)
        }
        self.server = DatabaseServer(
            position_oracle=lambda oid: self.positions[oid],
            config=ServerConfig(grid_m=8),
        )
        self.server.load_objects(self.positions.items())

    def drift_everyone(self, magnitude=0.03):
        """Move every object without reporting (simulated poll latency)."""
        for oid, p in list(self.positions.items()):
            self.positions[oid] = Point(
                min(max(p.x + self.rng.uniform(-magnitude, magnitude), 0), 1),
                min(max(p.y + self.rng.uniform(-magnitude, magnitude), 0), 1),
            )

    def report(self, oid, t):
        self.server.handle_location_update(oid, self.positions[oid], t)


def test_probe_repairs_foreign_range_query():
    """An object probed for a kNN query while sitting inside a range
    query's rectangle must join that range query's result."""
    world = LaggyWorld(seed=3)
    box = RangeQuery(Rect(0.40, 0.40, 0.60, 0.60), query_id="box")
    knn = KNNQuery(Point(0.5, 0.5), 4, query_id="knn")
    world.server.register_query(box)
    world.server.register_query(knn)

    # Everyone drifts silently; then one object reports, triggering kNN
    # reevaluation that probes others near the centre — some of which
    # have silently entered/left the box.
    t = 0.0
    for round_ in range(30):
        world.drift_everyone(0.04)
        t += 0.1
        # Only a few objects report (the rest stay silently stale).
        for oid in world.rng.sample(sorted(world.positions), 6):
            if not world.server.safe_region_of(oid).contains_point(
                world.positions[oid]
            ):
                world.report(oid, t)

        # Invariant after every burst: any object the server has EXACT
        # knowledge of (point-sized region) is correctly classified.
        for oid in world.positions:
            region = world.server.object_index.rect_of(oid)
            if region.is_degenerate and region.width == 0 and region.height == 0:
                known = Point(region.min_x, region.min_y)
                assert (oid in box.results) == box.rect.contains_point(known), (
                    f"round {round_}: probe-known object {oid} misclassified"
                )


def test_no_persistent_range_errors_under_heavy_probing():
    """End state: after everything reports once, results are exact."""
    world = LaggyWorld(seed=7)
    queries = [
        RangeQuery(Rect(0.2, 0.2, 0.45, 0.45), query_id="a"),
        RangeQuery(Rect(0.55, 0.55, 0.8, 0.8), query_id="b"),
        KNNQuery(Point(0.5, 0.5), 3, query_id="k"),
    ]
    for query in queries:
        world.server.register_query(query)

    t = 0.0
    for _ in range(20):
        world.drift_everyone(0.05)
        t += 0.1
        for oid in world.rng.sample(sorted(world.positions), 10):
            world.report(oid, t)

    # Let every object report its true position once.
    for oid in sorted(world.positions):
        t += 0.01
        world.report(oid, t)

    for query in queries[:2]:
        expected = {
            oid for oid, p in world.positions.items()
            if query.rect.contains_point(p)
        }
        assert query.results == expected, query.query_id
    ranked = sorted(
        world.positions,
        key=lambda o: queries[2].center.distance_to(world.positions[o]),
    )
    assert queries[2].results == ranked[:3]
