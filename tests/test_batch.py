"""Tests for the batch range-query safe region (Section 5.3)."""

import random

import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.core.batch import batch_range_safe_region
from repro.geometry import Point, Rect

UNIT = Rect(0.0, 0.0, 1.0, 1.0)

unit_floats = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


def small_rects():
    return st.builds(
        lambda x, y, w, h: Rect(x, y, min(x + 0.05 + 0.2 * w, 1.0), min(y + 0.05 + 0.2 * h, 1.0)),
        unit_floats, unit_floats, unit_floats, unit_floats,
    )


def overlaps_open(a: Rect, b: Rect, eps: float = 1e-12) -> bool:
    """Open overlap deeper than float round-trip noise."""
    return a.overlap_area(b) > eps


class TestNoObstacles:
    def test_returns_cell(self):
        assert batch_range_safe_region(Point(0.5, 0.5), UNIT, []) == UNIT

    def test_p_on_cell_corner(self):
        rect = batch_range_safe_region(Point(0.0, 0.0), UNIT, [])
        assert rect == UNIT


class TestSingleObstacle:
    def test_avoids_and_contains(self):
        obstacle = Rect(0.4, 0.4, 0.6, 0.6)
        p = Point(0.2, 0.2)
        rect = batch_range_safe_region(p, UNIT, [obstacle])
        assert rect.contains_point(p)
        assert not overlaps_open(rect, obstacle)

    def test_obstacle_outside_cell_ignored(self):
        obstacle = Rect(2.0, 2.0, 3.0, 3.0)
        rect = batch_range_safe_region(Point(0.5, 0.5), UNIT, [obstacle])
        assert rect == UNIT

    def test_obstacle_straddling_cell_border(self):
        obstacle = Rect(0.9, 0.4, 1.5, 0.6)
        p = Point(0.5, 0.5)
        rect = batch_range_safe_region(p, UNIT, [obstacle])
        assert rect.contains_point(p)
        assert not overlaps_open(rect, obstacle)

    def test_p_on_obstacle_edge(self):
        obstacle = Rect(0.4, 0.4, 0.6, 0.6)
        p = Point(0.4, 0.5)  # exactly on the left edge
        rect = batch_range_safe_region(p, UNIT, [obstacle])
        assert rect.contains_point(p)
        assert not overlaps_open(rect, obstacle)

    def test_prefers_interior_over_perimeter(self):
        """A trim pinning p on the union face loses to an interior trim."""
        obstacle = Rect(0.45, 0.0, 0.55, 0.49)
        p = Point(0.5, 0.5)  # just above the obstacle, inside its x-span
        rect = batch_range_safe_region(p, UNIT, [obstacle])
        assert rect.contains_point(p)
        assert not overlaps_open(rect, obstacle)
        # p must not sit exactly on the trimmed face.
        assert min(
            p.x - rect.min_x, rect.max_x - p.x, p.y - rect.min_y, rect.max_y - p.y
        ) > 0


class TestManyObstacles:
    def build_random(self, seed, count):
        rng = random.Random(seed)
        obstacles = []
        while len(obstacles) < count:
            x, y = rng.random() * 0.9, rng.random() * 0.9
            w, h = rng.uniform(0.02, 0.15), rng.uniform(0.02, 0.15)
            obstacles.append(Rect(x, y, min(x + w, 1), min(y + h, 1)))
        return obstacles

    @pytest.mark.parametrize("seed", range(8))
    def test_avoidance_invariant(self, seed):
        obstacles = self.build_random(seed, 12)
        rng = random.Random(seed + 100)
        for _ in range(50):
            p = Point(rng.random(), rng.random())
            if any(
                o.contains_point(p) and o.intersects_open(Rect.from_point(p).expanded(1e-12))
                and o.min_x < p.x < o.max_x and o.min_y < p.y < o.max_y
                for o in obstacles
            ):
                continue  # p strictly inside an obstacle: precondition fails
            rect = batch_range_safe_region(p, UNIT, obstacles)
            assert rect.contains_point(p, eps=1e-12)
            assert UNIT.contains_rect(rect)
            for obstacle in obstacles:
                assert not overlaps_open(rect, obstacle)

    def test_competitive_with_best_single_component(self):
        """The 4-quadrant union is at least as good as staying in one quadrant."""
        obstacles = self.build_random(3, 6)
        p = Point(0.52, 0.48)
        if any(
            o.min_x < p.x < o.max_x and o.min_y < p.y < o.max_y for o in obstacles
        ):
            pytest.skip("p inside an obstacle for this seed")
        rect = batch_range_safe_region(p, UNIT, obstacles)
        assert rect.perimeter > 0


@settings(max_examples=120)
@given(
    st.lists(small_rects(), min_size=0, max_size=8),
    unit_floats,
    unit_floats,
)
def test_property_avoid_contain_clip(obstacles, px, py):
    p = Point(px, py)
    assume(
        not any(
            o.min_x < p.x < o.max_x and o.min_y < p.y < o.max_y
            for o in obstacles
        )
    )
    rect = batch_range_safe_region(p, UNIT, obstacles)
    assert rect.contains_point(p, eps=1e-12)
    assert UNIT.contains_rect(rect)
    for obstacle in obstacles:
        assert not overlaps_open(rect, obstacle)
