"""Tests for the Section 8 future-work query types.

The paper closes with "we plan to incorporate other types of queries into
the framework, such as spatial joins and aggregate queries" — these tests
exercise exactly those: :class:`ThresholdRangeQuery` (aggregate) and
:class:`ProximityPairQuery` (the distance-join primitive with a moving
anchor).
"""

import random

import pytest

from repro.core import DatabaseServer, ServerConfig
from repro.core.extensions import ProximityPairQuery, ThresholdRangeQuery
from repro.geometry import Point, Rect


def build_world(seed=0, n=150, grid_m=8):
    rng = random.Random(seed)
    positions = {oid: Point(rng.random(), rng.random()) for oid in range(n)}
    server = DatabaseServer(
        position_oracle=lambda oid: positions[oid],
        config=ServerConfig(grid_m=grid_m),
    )
    server.load_objects(positions.items())
    return rng, positions, server


def drive(rng, positions, server, steps=300, max_step=0.04):
    t = 0.0
    for _ in range(steps):
        t += 0.01
        oid = rng.randrange(len(positions))
        p = positions[oid]
        positions[oid] = Point(
            min(max(p.x + rng.uniform(-max_step, max_step), 0), 1),
            min(max(p.y + rng.uniform(-max_step, max_step), 0), 1),
        )
        if not server.safe_region_of(oid).contains_point(positions[oid]):
            server.handle_location_update(oid, positions[oid], t)


class TestThresholdRangeQuery:
    def test_validation(self):
        with pytest.raises(ValueError):
            ThresholdRangeQuery(Rect(0, 0, 1, 1), threshold=0)

    def test_snapshot_is_alert_and_count(self):
        query = ThresholdRangeQuery(Rect(0.4, 0.4, 0.6, 0.6), threshold=2)
        assert query.result_snapshot() == (False, 0)
        query.members = {"a", "b", "c"}
        assert query.result_snapshot() == (True, 3)

    def test_registration_counts(self):
        rng, positions, server = build_world(seed=1)
        query = ThresholdRangeQuery(Rect(0.3, 0.3, 0.7, 0.7), 5, query_id="agg")
        server.register_query(query)
        expected = {
            oid for oid, p in positions.items()
            if query.rect.contains_point(p)
        }
        assert query.members == expected
        assert query.count == len(expected)

    @pytest.mark.parametrize("seed", range(3))
    def test_monitoring_keeps_count_exact(self, seed):
        rng, positions, server = build_world(seed=seed)
        query = ThresholdRangeQuery(Rect(0.35, 0.35, 0.65, 0.65), 4, query_id="agg")
        server.register_query(query)
        drive(rng, positions, server)
        expected = {
            oid for oid, p in positions.items()
            if query.rect.contains_point(p)
        }
        assert query.members == expected
        assert query.alerting == (len(expected) >= 4)
        server.validate()

    def test_alert_transitions_reported(self):
        rng, positions, server = build_world(seed=4, n=60)
        query = ThresholdRangeQuery(Rect(0.4, 0.4, 0.6, 0.6), 1, query_id="agg")
        server.register_query(query)
        transitions = []
        t, previous = 0.0, query.result_snapshot()
        for _ in range(400):
            t += 0.01
            oid = rng.randrange(60)
            p = positions[oid]
            positions[oid] = Point(
                min(max(p.x + rng.uniform(-0.05, 0.05), 0), 1),
                min(max(p.y + rng.uniform(-0.05, 0.05), 0), 1),
            )
            if not server.safe_region_of(oid).contains_point(positions[oid]):
                outcome = server.handle_location_update(oid, positions[oid], t)
                for change in outcome.changed_queries():
                    if change.query_id == "agg":
                        transitions.append(change)
        # The monitored state is current regardless of reported deltas.
        expected = {
            oid for oid, p in positions.items()
            if query.rect.contains_point(p)
        }
        assert query.members == expected


class TestProximityPairQuery:
    def test_validation(self):
        with pytest.raises(ValueError):
            ProximityPairQuery("f", radius=0.0)

    def test_registration_finds_neighbours(self):
        rng, positions, server = build_world(seed=5)
        query = ProximityPairQuery(0, 0.15, query_id="pair")
        server.register_query(query)
        focal = positions[0]
        expected = {
            oid for oid, p in positions.items()
            if oid != 0 and focal.distance_to(p) <= 0.15
        }
        assert query.results == expected

    @pytest.mark.parametrize("seed", range(4))
    def test_monitoring_with_moving_anchor(self, seed):
        """The focal moves like everything else; pairs stay exact."""
        rng, positions, server = build_world(seed=seed, n=100)
        query = ProximityPairQuery(0, 0.18, query_id="pair")
        server.register_query(query)
        drive(rng, positions, server, steps=350)
        focal = positions[0]
        expected = {
            oid for oid, p in positions.items()
            if oid != 0 and focal.distance_to(p) <= 0.18
        }
        assert query.results == expected, (
            f"pairs drifted: extra={query.results - expected} "
            f"missing={expected - query.results}"
        )
        server.validate()

    def test_focal_never_in_results(self):
        rng, positions, server = build_world(seed=9, n=50)
        query = ProximityPairQuery(3, 0.25, query_id="pair")
        server.register_query(query)
        drive(rng, positions, server, steps=200)
        assert 3 not in query.results

    def test_mixes_with_other_queries(self):
        from repro.core import KNNQuery, RangeQuery

        rng, positions, server = build_world(seed=11, n=120)
        pair = ProximityPairQuery(7, 0.2, query_id="pair")
        box = RangeQuery(Rect(0.2, 0.2, 0.45, 0.45), query_id="box")
        knn = KNNQuery(Point(0.7, 0.7), 3, query_id="knn")
        for query in (pair, box, knn):
            server.register_query(query)
        drive(rng, positions, server, steps=300)
        focal = positions[7]
        assert pair.results == {
            oid for oid, p in positions.items()
            if oid != 7 and focal.distance_to(p) <= 0.2
        }
        assert box.results == {
            oid for oid, p in positions.items() if box.rect.contains_point(p)
        }
        ranked = sorted(
            positions, key=lambda o: knn.center.distance_to(positions[o])
        )
        assert knn.results == ranked[:3]

    def test_probe_economy(self):
        """Pair maintenance probes the focal, not the whole population."""
        rng, positions, server = build_world(seed=13, n=300)
        query = ProximityPairQuery(0, 0.1, query_id="pair")
        server.register_query(query)
        probes_after_registration = server.stats.probes
        assert probes_after_registration < 100


class TestMovingKNNQuery:
    def test_validation(self):
        from repro.core.extensions import MovingKNNQuery

        with pytest.raises(ValueError):
            MovingKNNQuery("f", k=0)

    def test_registration_finds_neighbours(self):
        from repro.core.extensions import MovingKNNQuery

        rng, positions, server = build_world(seed=21, n=100)
        query = MovingKNNQuery(0, k=3, query_id="mknn")
        server.register_query(query)
        focal = positions[0]
        expected = set(sorted(
            (oid for oid in positions if oid != 0),
            key=lambda o: focal.distance_to(positions[o]),
        )[:3])
        assert query.results == expected
        assert query.radius > 0

    @pytest.mark.parametrize("seed", range(4))
    def test_monitoring_with_moving_anchor(self, seed):
        from repro.core.extensions import MovingKNNQuery

        rng, positions, server = build_world(seed=seed + 40, n=80)
        query = MovingKNNQuery(0, k=3, query_id="mknn")
        server.register_query(query)
        drive(rng, positions, server, steps=300, max_step=0.03)
        focal = positions[0]
        expected = set(sorted(
            (oid for oid in positions if oid != 0),
            key=lambda o: focal.distance_to(positions[o]),
        )[:3])
        assert query.results == expected, (
            f"kNN drifted: got={sorted(query.results)} want={sorted(expected)}"
        )
        server.validate()

    def test_focal_excluded(self):
        from repro.core.extensions import MovingKNNQuery

        rng, positions, server = build_world(seed=50, n=40)
        query = MovingKNNQuery(5, k=2, query_id="mknn")
        server.register_query(query)
        drive(rng, positions, server, steps=150)
        assert 5 not in query.results

    def test_underflow_population(self):
        from repro.core.extensions import MovingKNNQuery

        rng, positions, server = build_world(seed=51, n=3)
        query = MovingKNNQuery(0, k=5, query_id="mknn")
        server.register_query(query)
        assert query.results == {1, 2}

    def test_coexists_with_pair_query(self):
        from repro.core.extensions import MovingKNNQuery

        rng, positions, server = build_world(seed=52, n=90)
        mknn = MovingKNNQuery(1, k=2, query_id="mknn")
        pair = ProximityPairQuery(2, 0.15, query_id="pair")
        server.register_query(mknn)
        server.register_query(pair)
        drive(rng, positions, server, steps=250)
        focal1, focal2 = positions[1], positions[2]
        expected_knn = set(sorted(
            (oid for oid in positions if oid != 1),
            key=lambda o: focal1.distance_to(positions[o]),
        )[:2])
        expected_pair = {
            oid for oid, p in positions.items()
            if oid != 2 and focal2.distance_to(p) <= 0.15
        }
        assert mknn.results == expected_knn
        assert pair.results == expected_pair
