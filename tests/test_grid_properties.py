"""Property-based tests for the grid query index."""

from hypothesis import given, settings, strategies as st

from repro.core.queries import KNNQuery, RangeQuery
from repro.geometry import Point, Rect
from repro.index import GridIndex

unit = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


@st.composite
def range_queries(draw):
    x = draw(unit) * 0.9
    y = draw(unit) * 0.9
    w = 0.01 + draw(unit) * 0.2
    h = 0.01 + draw(unit) * 0.2
    return RangeQuery(Rect(x, y, min(x + w, 1.0), min(y + h, 1.0)))


@st.composite
def knn_queries(draw):
    query = KNNQuery(Point(draw(unit), draw(unit)), k=1)
    query.radius = 0.01 + draw(unit) * 0.2
    return query


@settings(max_examples=120)
@given(
    st.lists(st.one_of(range_queries(), knn_queries()), min_size=1, max_size=10),
    st.integers(min_value=2, max_value=25),
    unit,
    unit,
)
def test_bucket_completeness(queries, m, px, py):
    """Every query whose quarantine covers p is found via p's cell.

    This is the safety property the affected-query filtering rests on:
    no false negatives, ever.
    """
    grid = GridIndex(m)
    for query in queries:
        grid.insert(query)
    p = Point(px, py)
    found = grid.queries_at(p)
    for query in queries:
        if query.quarantine_contains(p):
            assert query in found


@settings(max_examples=80)
@given(
    st.lists(range_queries(), min_size=1, max_size=8),
    st.integers(min_value=2, max_value=20),
    unit,
    unit,
    unit,
    unit,
)
def test_candidate_queries_cover_transitions(queries, m, ax, ay, bx, by):
    """An object moving a -> b: every affected query is a candidate."""
    grid = GridIndex(m)
    for query in queries:
        grid.insert(query)
    a, b = Point(ax, ay), Point(bx, by)
    candidates = grid.candidate_queries(b, a)
    for query in queries:
        if query.is_affected_by(b, a):
            assert query in candidates


@settings(max_examples=60)
@given(
    st.lists(knn_queries(), min_size=1, max_size=6),
    st.integers(min_value=2, max_value=15),
    unit,
)
def test_update_keeps_buckets_consistent(queries, m, new_radius_scale):
    """After radius changes + grid.update, lookups stay complete."""
    grid = GridIndex(m)
    for query in queries:
        grid.insert(query)
    for query in queries:
        query.radius = 0.01 + new_radius_scale * 0.3
        grid.update(query)
    # Recheck completeness at the query centres and circle edges.
    for query in queries:
        assert query in grid.queries_at(query.center)
        edge = Point(
            min(query.center.x + query.radius * 0.99, 1.0), query.center.y
        )
        if query.quarantine_contains(edge):
            assert query in grid.queries_at(edge)


@settings(max_examples=60)
@given(
    st.lists(range_queries(), min_size=2, max_size=8),
    st.integers(min_value=2, max_value=15),
)
def test_remove_leaves_no_trace(queries, m):
    grid = GridIndex(m)
    for query in queries:
        grid.insert(query)
    victim = queries[0]
    grid.remove(victim)
    assert victim not in grid
    assert len(grid) == len(queries) - 1
    for i in range(m):
        for j in range(m):
            assert victim not in grid.queries_in_cell((i, j))
