"""Cost-accounting consistency: one set of weights, used everywhere."""

import pathlib
import re

import pytest

from repro.experiments.figures import BENCH_BASE
from repro.experiments.runner import run_schemes
from repro.simulation.metrics import (
    C_PROBE,
    C_PUSH,
    C_UPDATE,
    CommunicationCosts,
    weighted_message_cost,
)

SRC = pathlib.Path(__file__).resolve().parent.parent / "src"

TINY = BENCH_BASE.with_overrides(
    num_objects=150,
    num_queries=8,
    duration=2.0,
    sample_interval=0.5,
)

SCHEMES = ("SRB", "OPT", "PRD(1)", "QIDX(1)")


def test_weighted_message_cost_formula():
    assert weighted_message_cost(10, 4, 6) == pytest.approx(
        C_UPDATE * 10 + C_PROBE * 4 + C_PUSH * 6
    )
    assert weighted_message_cost(0, 0, 0) == 0.0


def test_costs_total_uses_the_shared_weights():
    costs = CommunicationCosts(updates=7, probes=3, pushes=5)
    assert costs.total == pytest.approx(
        weighted_message_cost(7, 3, 5)
    )


def test_constants_are_defined_exactly_once():
    """The weights live in repro.simulation.metrics and nowhere else."""
    pattern = re.compile(r"^\s*(C_UPDATE|C_PROBE|C_PUSH)\s*=", re.MULTILINE)
    defining = [
        path.relative_to(SRC).as_posix()
        for path in sorted(SRC.rglob("*.py"))
        if pattern.search(path.read_text())
    ]
    assert defining == ["repro/simulation/metrics.py"]


def test_weighted_totals_agree_across_schemes():
    """Every scheme's reported total re-derives from its raw counters."""
    reports = run_schemes(TINY, schemes=SCHEMES)
    assert set(reports) == set(SCHEMES)
    for name, report in reports.items():
        costs = report.costs
        expected = (
            C_UPDATE * costs.updates
            + C_PROBE * costs.probes
            + C_PUSH * costs.pushes
        )
        assert costs.total == pytest.approx(expected), name
        assert report.comm_cost == pytest.approx(
            expected / (report.num_objects * report.duration)
        ), name
    # The periodic baselines send every object every period, and never
    # probe or push; their weighted total is pure uplink.
    for name in ("PRD(1)", "QIDX(1)"):
        costs = reports[name].costs
        assert costs.probes == 0 and costs.pushes == 0
        assert costs.total == pytest.approx(C_UPDATE * costs.updates)
