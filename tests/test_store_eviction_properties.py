"""Property test: PositionStore swap-remove × ``DatabaseServer.evict_object``.

The columnar position store deletes by swapping the last row into the
vacated slot, so every eviction permutes row order.  The server relies
on the store staying a *dense, exact* mirror of its object table through
any interleaving of adds, moves, and evictions — including the probe
ingests that ``evict_object`` triggers while refilling kNN results that
referenced the evicted object.  This test drives random op sequences
through a live server (queries registered, so evictions do real repair
work) and checks the mirror invariant after every operation.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import DatabaseServer, KNNQuery, RangeQuery, ServerConfig
from repro.geometry import Point, Rect

OIDS = [f"o{i}" for i in range(8)]

unit = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
# kind: 0 = add (or move if present), 1 = update (noop if absent),
#       2 = evict (noop if absent)
ops_strategy = st.lists(
    st.tuples(st.integers(min_value=0, max_value=2),
              st.integers(min_value=0, max_value=len(OIDS) - 1),
              unit, unit),
    min_size=1, max_size=50,
)


def _check_mirror(server: DatabaseServer) -> None:
    """The store is a dense, exact mirror of the object table."""
    store = server.positions
    objects = server._objects
    assert len(store) == len(objects)
    assert set(store) == set(objects)
    for oid, state in objects.items():
        assert store.get(oid) == (state.p_lst.x, state.p_lst.y)
    # Row order is permuted by swap-removes but the columns must stay
    # aligned with the id list.
    xs, ys = store.columns()
    assert dict(zip(store.ids, zip(list(xs), list(ys)))) == {
        oid: (state.p_lst.x, state.p_lst.y)
        for oid, state in objects.items()
    }


@settings(max_examples=40, deadline=None)
@given(ops=ops_strategy)
def test_store_mirrors_object_table_through_evictions(ops):
    live: dict[str, Point] = {}
    server = DatabaseServer(
        lambda oid: live[oid], ServerConfig(grid_m=4)
    )
    # Real queries make evictions do repair work: a kNN refill probes
    # surviving objects, whose positions re-ingest through the store.
    server.register_query(
        RangeQuery(Rect(0.2, 0.2, 0.8, 0.8), query_id="r0"), time=0.0
    )
    server.register_query(
        KNNQuery(Point(0.5, 0.5), 2, query_id="k0"), time=0.0
    )

    clock = 0.0
    for kind, idx, x, y in ops:
        clock += 1.0
        oid = OIDS[idx]
        p = Point(x, y)
        if kind == 0:
            live[oid] = p
            if oid in server._objects:
                server.handle_location_update(oid, p, time=clock)
            else:
                server.add_object(oid, p, time=clock)
        elif kind == 1 and oid in server._objects:
            live[oid] = p
            server.handle_location_update(oid, p, time=clock)
        elif kind == 2 and oid in server._objects:
            server.evict_object(oid, time=clock)
            live.pop(oid, None)
        _check_mirror(server)

    server.validate()


def test_evicting_unknown_object_raises():
    server = DatabaseServer(lambda oid: Point(0.0, 0.0), ServerConfig())
    with pytest.raises(KeyError):
        server.evict_object("ghost", time=0.0)
